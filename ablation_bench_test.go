package repro

// Ablation benchmarks for the design choices DESIGN.md commits to:
// parallel scheduling, content hashing as artifact identity, witness-set
// provenance in relational operators, and per-run-log vs indexed stores.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/views"
	"repro/internal/workloads"
)

// BenchmarkAblationWorkers quantifies the parallel scheduler: a wide
// random workflow (6 layers × 8 modules, fanin 2, compute-bound stages)
// under increasing worker counts.
func BenchmarkAblationWorkers(b *testing.B) {
	wf := workloads.RandomLayered(5, 6, 8, 2)
	for _, m := range wf.Modules {
		if err := wf.SetParam(m.ID, "work", "200"); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			reg := engine.NewRegistry()
			workloads.RegisterAll(reg)
			e := engine.New(engine.Options{Registry: reg, Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(context.Background(), wf, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationValueHashing isolates the cost of content hashing —
// the price paid for artifact identity, caching and run diffing — on a
// representative grid value.
func BenchmarkAblationValueHashing(b *testing.B) {
	grid := workloads.SynthesizeHead("bench.vtk", 24)
	v := engine.Value{Type: "grid", Data: grid}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Hash()
	}
}

// BenchmarkAblationWitnessTracking compares the provenance-tracking join
// against the same join with witness merging ablated (baseline measures
// tuple materialization only).
func BenchmarkAblationWitnessTracking(b *testing.B) {
	n := 1000
	rows := func(base int) [][]relalg.Val {
		out := make([][]relalg.Val, n)
		for i := 0; i < n; i++ {
			out[i] = []relalg.Val{int64(i % 100), int64(base + i)}
		}
		return out
	}
	l, err := relalg.NewRelation("l", []string{"k", "x"}, rows(0))
	if err != nil {
		b.Fatal(err)
	}
	r, err := relalg.NewRelation("r", []string{"k", "y"}, rows(5000))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("witnesses=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relalg.Join(l, r, "k", "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("witnesses=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx := map[int64][]int{}
			for j, t := range r.Tuples {
				idx[t.Values[0].(int64)] = append(idx[t.Values[0].(int64)], j)
			}
			var out [][]relalg.Val
			for _, t := range l.Tuples {
				for _, j := range idx[t.Values[0].(int64)] {
					vals := make([]relalg.Val, 0, 4)
					vals = append(vals, t.Values...)
					vals = append(vals, r.Tuples[j].Values...)
					out = append(out, vals)
				}
			}
			_ = out
		}
	})
}

// BenchmarkAblationViewGranularity shows abstraction cost as a function of
// group size on a 48-module chain run.
func BenchmarkAblationViewGranularity(b *testing.B) {
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 4})
	res, err := e.Run(context.Background(), workloads.Chain(48), nil)
	if err != nil {
		b.Fatal(err)
	}
	log, err := col.Log(res.RunID)
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{1, 4, 16} {
		v := views.NewView(fmt.Sprintf("g%d", g))
		for i := 0; i < 48; i += g {
			var members []string
			for j := i; j < i+g && j < 48; j++ {
				members = append(members, fmt.Sprintf("s%02d", j))
			}
			if err := v.Group(fmt.Sprintf("c%02d", i/g), members...); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("groupsize=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := v.Abstract(log); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStoreIngest compares indexed ingest (mem) against the
// lazily-rebuilt relational tables under repeated interleaved write/read,
// the access pattern of a live capture pipeline.
func BenchmarkAblationStoreIngest(b *testing.B) {
	makeLogs := func(k int) []*provenance.RunLog {
		col := provenance.NewCollector()
		reg := engine.NewRegistry()
		workloads.RegisterAll(reg)
		e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 4})
		var logs []*provenance.RunLog
		for i := 0; i < k; i++ {
			res, err := e.Run(context.Background(), workloads.Chain(10), nil)
			if err != nil {
				b.Fatal(err)
			}
			l, err := col.Log(res.RunID)
			if err != nil {
				b.Fatal(err)
			}
			logs = append(logs, l)
		}
		return logs
	}
	logs := makeLogs(8)
	bench := func(b *testing.B, mk func() store.Store) {
		for i := 0; i < b.N; i++ {
			s := mk()
			for _, l := range logs {
				if err := s.PutRunLog(l); err != nil {
					b.Fatal(err)
				}
				// Interleaved read forces index/table maintenance.
				if _, err := s.Execution(l.Executions[0].ID); err != nil {
					b.Fatal(err)
				}
			}
			s.Close()
		}
	}
	b.Run("store=mem", func(b *testing.B) { bench(b, func() store.Store { return store.NewMemStore() }) })
	b.Run("store=rel", func(b *testing.B) { bench(b, func() store.Store { return store.NewRelStore() }) })
	b.Run("store=triple", func(b *testing.B) { bench(b, func() store.Store { return store.NewTripleStore() }) })
}
