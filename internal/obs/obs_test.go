package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: every bucket's upper bound maps back into that
// bucket, and bucket boundaries are monotonically increasing.
func TestBucketRoundTrip(t *testing.T) {
	prev := uint64(0)
	for i := 0; i < histNumBucket; i++ {
		u := bucketUpper(i)
		if got := bucketIndex(u); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, u, got)
		}
		if i > 0 && u <= prev {
			t.Fatalf("bucket %d upper %d not > previous %d", i, u, prev)
		}
		prev = u
	}
	// Values past the top octave clamp into the final bucket.
	if got := bucketIndex(1 << 60); got != histNumBucket-1 {
		t.Fatalf("overflow value bucket = %d, want %d", got, histNumBucket-1)
	}
}

// TestQuantileAgainstSortedReference: histogram quantiles must bracket the
// exact sorted-sample quantile from below by the sample itself and from
// above by the 1/16 relative-error bound.
func TestQuantileAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 10, 1000, 20000} {
		var h Histogram
		vals := make([]uint64, n)
		for i := range vals {
			// Mix of magnitudes: exact small buckets through several octaves.
			v := uint64(rng.Int63n(1 << uint(4+rng.Intn(28))))
			vals[i] = v
			h.ObserveValue(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		snap := h.Snapshot()
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1.0} {
			rank := int(float64(n)*q+0.9999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			exact := vals[rank]
			got := snap.Quantile(q)
			if got < exact {
				t.Fatalf("n=%d q=%g: estimate %d below exact %d", n, q, got, exact)
			}
			// Upper bound: bucket upper edge over-reports by ≤ 1/16.
			if limit := exact + exact/histSubCount + 1; got > limit {
				t.Fatalf("n=%d q=%g: estimate %d above error bound %d (exact %d)", n, q, got, limit, exact)
			}
		}
		if got := snap.Quantile(1.0); got != vals[n-1] {
			t.Fatalf("n=%d: p100 %d != max %d", n, got, vals[n-1])
		}
		if snap.Max != vals[n-1] {
			t.Fatalf("n=%d: Max %d != %d", n, snap.Max, vals[n-1])
		}
	}
}

// TestSnapshotMergeAndSub: merging two instances equals observing into
// one; Sub recovers a window's observations.
func TestSnapshotMergeAndSub(t *testing.T) {
	var a, b, all Histogram
	for i := uint64(0); i < 500; i++ {
		a.ObserveValue(i * 3)
		all.ObserveValue(i * 3)
		b.ObserveValue(i * 7)
		all.ObserveValue(i * 7)
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	want := all.Snapshot()
	if m.Count != want.Count || m.Sum != want.Sum || m.Max != want.Max || m.Buckets != want.Buckets {
		t.Fatal("merged snapshot differs from combined histogram")
	}

	var h Histogram
	h.ObserveValue(10)
	before := h.Snapshot()
	h.ObserveValue(100)
	h.ObserveValue(200)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Sum != 300 {
		t.Fatalf("delta count=%d sum=%d, want 2/300", d.Count, d.Sum)
	}
	if q := d.Quantile(0.5); q < 100 || q > 107 {
		t.Fatalf("delta p50 = %d, want ~100", q)
	}
}

// TestConcurrentObserveSnapshot exercises parallel writers against
// concurrent snapshots and a scrape; run under -race this is the data-race
// proof for the lock-free histogram.
func TestConcurrentObserveSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_lat_seconds", "test latency")
	c := reg.Counter("t_ops_total", "test ops")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.ObserveValue(uint64(rng.Int63n(1 << 20)))
				c.Inc()
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot()
			_ = reg.WritePrometheus(&strings.Builder{})
		}
	}()
	wg.Wait()
	<-done
	snap := h.Snapshot()
	if snap.Count != workers*perWorker || c.Value() != workers*perWorker {
		t.Fatalf("count=%d counter=%d, want %d", snap.Count, c.Value(), workers*perWorker)
	}
	var total uint64
	for _, n := range snap.Buckets {
		total += n
	}
	if total != snap.Count {
		t.Fatalf("bucket total %d != count %d", total, snap.Count)
	}
}

// TestPrometheusGolden locks the text exposition format: deterministic
// ordering, label rendering, summary quantiles, seconds scaling.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_requests_total", "requests served", L("route", "/v1/query"), L("code", "200")).Add(7)
	reg.Counter("t_requests_total", "requests served", L("route", "/v1/query"), L("code", "500")).Inc()
	reg.Gauge("t_depth", "queue depth").Set(-3)
	reg.GaugeFunc("t_lag_bytes", "replication lag", func() float64 { return 128.5 })
	vh := reg.ValueHistogram("t_batch_records", "records per batch")
	for _, v := range []uint64{1, 2, 3} {
		vh.ObserveValue(v)
	}
	lh := reg.Histogram("t_commit_seconds", "commit latency")
	lh.Observe(1500 * time.Nanosecond)
	lh.Observe(1500 * time.Nanosecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_batch_records records per batch
# TYPE t_batch_records summary
t_batch_records{quantile="0.5"} 2
t_batch_records{quantile="0.9"} 3
t_batch_records{quantile="0.99"} 3
t_batch_records_sum 6
t_batch_records_count 3
# HELP t_commit_seconds commit latency
# TYPE t_commit_seconds summary
t_commit_seconds{quantile="0.5"} 1.5e-06
t_commit_seconds{quantile="0.9"} 1.5e-06
t_commit_seconds{quantile="0.99"} 1.5e-06
t_commit_seconds_sum 3e-06
t_commit_seconds_count 2
# HELP t_depth queue depth
# TYPE t_depth gauge
t_depth -3
# HELP t_lag_bytes replication lag
# TYPE t_lag_bytes gauge
t_lag_bytes 128.5
# HELP t_requests_total requests served
# TYPE t_requests_total counter
t_requests_total{route="/v1/query",code="200"} 7
t_requests_total{route="/v1/query",code="500"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrationIdempotent: same (name, labels) returns the same handle;
// GaugeFunc re-registration replaces the callback.
func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("t_x_total", "x")
	b := reg.Counter("t_x_total", "x")
	if a != b {
		t.Fatal("re-registered counter returned a different handle")
	}
	reg.GaugeFunc("t_fn", "fn", func() float64 { return 1 })
	reg.GaugeFunc("t_fn", "fn", func() float64 { return 2 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t_fn 2\n") {
		t.Fatalf("GaugeFunc re-registration did not replace callback:\n%s", sb.String())
	}
}

// TestDisableGate: with recording disabled, counters and histograms stay
// frozen and Now returns the zero time (so ObserveSince is a no-op).
func TestDisableGate(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	var h Histogram
	var c Counter
	c.Inc()
	c.Add(5)
	h.ObserveValue(42)
	h.ObserveSince(Now())
	if !Now().IsZero() {
		t.Fatal("Now() not zero while disabled")
	}
	if c.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("recording not gated: counter=%d histCount=%d", c.Value(), h.Snapshot().Count)
	}
	SetEnabled(true)
	c.Inc()
	h.ObserveSince(Now())
	if c.Value() != 1 || h.Snapshot().Count != 1 {
		t.Fatal("recording did not resume after re-enable")
	}
	SetEnabled(false)
}
