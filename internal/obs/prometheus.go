package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// quantiles exposed for every histogram family.
var expoQuantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"},
	{0.9, "0.9"},
	{0.99, "0.99"},
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Families and series are emitted in
// sorted order so the output is deterministic for a given state — the
// golden test depends on that. Histograms are exposed as summaries: one
// series per quantile plus _sum and _count; latency histograms record
// nanoseconds internally and are exposed in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind + "\n")
		for _, s := range f.sortedSeries() {
			switch {
			case s.c != nil:
				bw.WriteString(f.name + renderLabels(s.labels, "") + " " +
					strconv.FormatUint(s.c.Value(), 10) + "\n")
			case s.gf != nil:
				bw.WriteString(f.name + renderLabels(s.labels, "") + " " +
					formatFloat(s.gf()) + "\n")
			case s.g != nil:
				bw.WriteString(f.name + renderLabels(s.labels, "") + " " +
					strconv.FormatInt(s.g.Value(), 10) + "\n")
			case s.h != nil:
				snap := s.h.Snapshot()
				scale := 1.0
				if f.seconds {
					scale = 1e-9
				}
				for _, eq := range expoQuantiles {
					bw.WriteString(f.name + renderLabels(s.labels, eq.label) + " " +
						formatFloat(float64(snap.Quantile(eq.q))*scale) + "\n")
				}
				bw.WriteString(f.name + "_sum" + renderLabels(s.labels, "") + " " +
					formatFloat(float64(snap.Sum)*scale) + "\n")
				bw.WriteString(f.name + "_count" + renderLabels(s.labels, "") + " " +
					strconv.FormatUint(snap.Count, 10) + "\n")
			}
		}
	}
	return bw.Flush()
}

// renderLabels renders a label set (plus an optional quantile label) as
// {k="v",...}, or the empty string when there are no labels at all.
func renderLabels(labels []Label, quantile string) string {
	if len(labels) == 0 && quantile == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if quantile != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`quantile="` + quantile + `"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float compactly (integers without a trailing .0 is
// fine for Prometheus; %g keeps precision without noise).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
