// Package obs is the zero-dependency runtime-observability substrate the
// serving stack instruments itself with: atomic counters, gauges, and
// log-bucketed latency histograms collected in a Registry and exposed in
// Prometheus text exposition format (provd's GET /v1/metrics).
//
// Design constraints, in order:
//
//   - Recording must be cheap enough to leave on in production ingest and
//     query hot paths: a counter increment is one atomic add, a histogram
//     observation is two atomic adds plus one atomic increment on a bucket
//     computed with bit arithmetic — no locks, no allocation, no
//     formatting. Experiment E19 gates the end-to-end overhead.
//   - Metric handles are registered once (package-level vars in the
//     instrumented packages) and then used directly; the registry lock is
//     only taken at registration and at scrape time. Registration is
//     idempotent: the same (name, labels) returns the same handle, so
//     lazily instrumented call sites (per-route HTTP counters) need no
//     bookkeeping of their own.
//   - SetEnabled(false) turns every recording operation into a no-op
//     (timer acquisition via Now returns the zero time, and Observe/Inc
//     bail on one atomic flag load). E19 measures its "uninstrumented"
//     arm this way; operators get a kill switch for free.
//
// Histograms are log-linear bucketed (16 sub-buckets per power of two, so
// quantile estimates carry at most ~1/16 relative error; see histogram.go)
// with mergeable, subtractable snapshots — provbench derives p50/p99
// windows by snapshot deltas over the same histograms provd serves.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every recording operation. Scrapes (WritePrometheus) are
// unaffected: disabling stops the counters, not the endpoint.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches metric recording on or off process-wide and returns
// the previous state. Off, counters stop advancing, histograms stop
// observing, and Now returns the zero time so deferred ObserveSince calls
// are no-ops — the state E19 measures instrumentation overhead against.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// Now is the timer-acquisition helper for latency instrumentation: it
// returns time.Now() while recording is enabled and the zero time while
// disabled, so the disabled hot path skips the clock read entirely.
// Pair it with Histogram.ObserveSince, which ignores zero starts.
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Label is one constant key=value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if enabled.Load() {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds for exposition.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindSummary = "summary" // histograms expose as quantile summaries
)

// series is one labeled instance of a metric family. Exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels []Label
	key    string // rendered label signature (registration identity)
	c      *Counter
	g      *Gauge
	gf     func() float64 // functional gauge; replaces g when set
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    string
	seconds bool // histogram observations are nanoseconds, exposed as seconds
	series  map[string]*series
}

// Registry holds metric families and renders them for scraping. The zero
// value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code uses Default; separate
// registries exist for tests and for scoping (the HTTP middleware accepts
// one so handler tests assert on isolated counters).
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry every subsystem registers
// into; provd serves it at /v1/metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// lookup returns the family (creating it with the given kind/help on first
// use) and the series for the label set, creating the series via mk when
// absent. Registration is idempotent; re-registering an existing name with
// a different kind panics — that is a programming error, not runtime input.
func (r *Registry) lookup(name, help, kind string, seconds bool, labels []Label, mk func() *series) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			if f.kind != kind {
				panic("obs: metric " + name + " re-registered as " + kind + ", was " + f.kind)
			}
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, seconds: seconds, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered as " + kind + ", was " + f.kind)
	}
	s, ok := f.series[key]
	if !ok {
		s = mk()
		s.labels = append([]Label(nil), labels...)
		s.key = key
		f.series[key] = s
	}
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, false, labels, func() *series {
		return &series{c: &Counter{}}
	}).c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, false, labels, func() *series {
		return &series{g: &Gauge{}}
	}).g
}

// GaugeFunc registers a functional gauge evaluated at scrape time. Unlike
// the other constructors it REPLACES the callback when the series already
// exists: the natural semantics for instance-scoped values (a follower's
// replication lag) re-registered when a new instance starts in-process.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGauge, false, labels, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Histogram registers (or returns the existing) latency histogram: values
// observed as durations, exposed in seconds with p50/p90/p99 quantiles.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(name, help, kindSummary, true, labels, func() *series {
		return &series{h: &Histogram{}}
	}).h
}

// ValueHistogram registers (or returns the existing) histogram over raw
// unitless values (batch sizes, round counts), exposed without scaling.
func (r *Registry) ValueHistogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(name, help, kindSummary, false, labels, func() *series {
		return &series{h: &Histogram{}}
	}).h
}

// FindHistogram returns the already registered histogram for (name,
// labels), ok=false when absent — the read-side accessor provbench uses to
// derive p50/p99 deltas from the same histograms the daemon serves.
func (r *Registry) FindHistogram(name string, labels ...Label) (*Histogram, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok || f.kind != kindSummary {
		return nil, false
	}
	s, ok := f.series[labelKey(labels)]
	if !ok || s.h == nil {
		return nil, false
	}
	return s.h, true
}

// snapshotFamilies returns the families and their series in deterministic
// (sorted) order for exposition.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series sorted by label signature.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// labelKey renders a label set into its registration identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := ""
	for _, l := range ls {
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return key
}
