package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, 16 linear sub-buckets per
// power-of-two octave.
//
// Values below 16 get one exact bucket each (indices 0..15). A value
// v >= 16 with highest set bit o (octave, bits.Len64(v)-1 >= 4) lands in
//
//	idx = 16 + (o-4)*16 + ((v >> (o-4)) - 16)
//
// i.e. the top four mantissa bits after the leading one select one of 16
// sub-buckets inside the octave. Bucket width is 2^(o-4), so the upper
// bound of a bucket over-reports a contained value by at most 1/16 ≈ 6.25%
// — the relative error bound on every quantile estimate.
//
// Octaves are capped at histMaxOctave: with nanosecond observations the
// last finite bucket ends at 2^43-1 ns ≈ 2.4 hours, beyond any latency
// this stack can produce; larger values clamp into the final bucket.
const (
	histSubBits   = 4                // mantissa bits per octave
	histSubCount  = 1 << histSubBits // 16 sub-buckets
	histMaxOctave = 42               // top octave tracked exactly
	histNumBucket = histSubCount + (histMaxOctave-histSubBits+1)*histSubCount
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	o := bits.Len64(v) - 1
	if o > histMaxOctave {
		return histNumBucket - 1
	}
	sub := (v >> (o - histSubBits)) - histSubCount
	return histSubCount + (o-histSubBits)*histSubCount + int(sub)
}

// bucketUpper returns the largest value mapping to bucket idx (the value a
// quantile falling in this bucket reports).
func bucketUpper(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	o := histSubBits + (idx-histSubCount)/histSubCount
	sub := (idx - histSubCount) % histSubCount
	return (uint64(histSubCount+sub+1) << (o - histSubBits)) - 1
}

// Histogram is a lock-free log-bucketed histogram. Concurrent Observe and
// Snapshot are safe; a snapshot taken during concurrent writes is a
// consistent-enough view for monitoring (bucket sums may trail count by
// in-flight observations, never by more).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histNumBucket]atomic.Uint64
}

// ObserveValue records one raw observation.
func (h *Histogram) ObserveValue(v uint64) {
	if !enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records a duration in nanoseconds (negative durations clamp to
// zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveValue(uint64(d))
}

// ObserveSince records the elapsed time since start. A zero start — what
// Now returns while recording is disabled — is ignored, making
// "start := obs.Now(); defer h.ObserveSince(start)" free when disabled.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// HistSnapshot is a point-in-time copy of a histogram, mergeable and
// subtractable so callers can aggregate across shards or extract quantiles
// for a bounded window (end.Sub(begin)).
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [histNumBucket]uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge adds other's observations into s (aggregation across instances).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Sub returns the delta s − prev: the observations recorded between the
// two snapshots. Max cannot be windowed (it is a running maximum), so the
// delta conservatively keeps s.Max.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := s
	d.Count -= prev.Count
	d.Sum -= prev.Sum
	for i := range d.Buckets {
		d.Buckets[i] -= prev.Buckets[i]
	}
	return d
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// recorded values: the upper edge of the bucket holding the rank-⌈q·count⌉
// observation, capped at the observed maximum. Relative over-estimation is
// at most 1/16. Returns 0 when the snapshot is empty.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			u := bucketUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
