package collab

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func newRepo() *Repository {
	return NewRepository(store.NewMemStore())
}

func runOf(t *testing.T, wf *workflow.Workflow) *provenance.RunLog {
	t.Helper()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	col := provenance.NewCollector()
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	log, _ := col.Log(res.RunID)
	return log
}

func TestPublishAndGet(t *testing.T) {
	r := newRepo()
	if err := r.Publish(workloads.MedicalImaging(), "juliana", "figure 1", "imaging"); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(workloads.MedicalImaging(), "x", "dup"); err == nil {
		t.Fatal("duplicate publish accepted")
	}
	e, err := r.Get("medimg")
	if err != nil {
		t.Fatal(err)
	}
	if e.Owner != "juliana" || e.Downloads != 1 {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := r.Get("medimg"); err != nil {
		t.Fatal(err)
	}
	e2, _ := r.Peek("medimg")
	if e2.Downloads != 2 {
		t.Fatalf("downloads = %d", e2.Downloads)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("missing workflow returned")
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	r := newRepo()
	wf := workflow.New("bad", "bad")
	m := &workflow.Module{ID: "a", Type: "T"}
	if err := wf.AddModule(m); err != nil {
		t.Fatal(err)
	}
	if err := wf.AddModule(&workflow.Module{ID: "a", Type: "T"}); err == nil {
		t.Fatal("dup module")
	}
	// Force an invalid state directly.
	wf.Modules = append(wf.Modules, &workflow.Module{ID: "a", Type: "T"})
	if err := r.Publish(wf, "x", ""); err == nil {
		t.Fatal("invalid workflow published")
	}
}

func TestRatings(t *testing.T) {
	r := newRepo()
	if err := r.Publish(workloads.MedicalImaging(), "j", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.Rate("medimg", "u1", 5); err != nil {
		t.Fatal(err)
	}
	if err := r.Rate("medimg", "u2", 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Rate("medimg", "u1", 6); err == nil {
		t.Fatal("out-of-range rating accepted")
	}
	e, _ := r.Peek("medimg")
	avg, ok := e.AverageRating()
	if !ok || avg != 4 {
		t.Fatalf("avg = %v, %v", avg, ok)
	}
}

func TestPublishRunAndQuery(t *testing.T) {
	r := newRepo()
	wf := workloads.MedicalImaging()
	if err := r.Publish(wf, "j", ""); err != nil {
		t.Fatal(err)
	}
	log := runOf(t, wf)
	if err := r.PublishRun("medimg", "u1", log); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishRun("ghost", "u1", log); err == nil {
		t.Fatal("run for unknown workflow accepted")
	}
	runs := r.RunsOf("medimg")
	if len(runs) != 1 || runs[0] != log.Run.ID {
		t.Fatalf("runs = %v", runs)
	}
	if r.UserOfRun(log.Run.ID) != "u1" {
		t.Fatal("run attribution lost")
	}
	st := r.Stat()
	if st.Workflows != 1 || st.Runs != 1 || st.Users < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSearch(t *testing.T) {
	r := newRepo()
	if err := r.Publish(workloads.MedicalImaging(), "juliana", "CT isosurface study", "imaging"); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(workloads.Genomics("s1"), "susan", "variant calling pipeline", "genomics"); err != nil {
		t.Fatal(err)
	}
	hits := r.Search("isosurface imaging", 10)
	if len(hits) == 0 || hits[0].WorkflowID != "medimg" {
		t.Fatalf("hits = %+v", hits)
	}
	hits = r.Search("variant", 10)
	if len(hits) != 1 || hits[0].WorkflowID != "genomics-s1" {
		t.Fatalf("hits = %+v", hits)
	}
	// Module types are searchable.
	hits = r.Search("Contour", 10)
	if len(hits) != 1 || hits[0].WorkflowID != "medimg" {
		t.Fatalf("hits = %+v", hits)
	}
	if r.Search("", 10) != nil {
		t.Fatal("empty query returned hits")
	}
	if got := r.Search("nonexistentterm", 10); len(got) != 0 {
		t.Fatalf("hits = %v", got)
	}
}

func TestSynthesizeCommunityAndRecommend(t *testing.T) {
	r := newRepo()
	users, err := SynthesizeCommunity(r, CommunityOptions{Seed: 42, Users: 12, RunsEach: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 12 {
		t.Fatalf("users = %d", len(users))
	}
	st := r.Stat()
	if st.Workflows != 5 || st.Runs != 36 {
		t.Fatalf("stats = %+v", st)
	}
	// At least one user gets a non-empty recommendation excluding what
	// they already ran.
	got := 0
	for _, u := range users {
		recs := r.Recommend(u, 3)
		mine := map[string]bool{}
		for _, wfID := range r.List() {
			for _, runID := range r.RunsOf(wfID) {
				if r.UserOfRun(runID) == u {
					mine[wfID] = true
				}
			}
		}
		for _, rec := range recs {
			if mine[rec.WorkflowID] {
				t.Fatalf("recommended already-run workflow %s to %s", rec.WorkflowID, u)
			}
		}
		if len(recs) > 0 {
			got++
		}
	}
	if got == 0 {
		t.Fatal("no user received recommendations")
	}
	// Unknown user: nil.
	if r.Recommend("stranger", 3) != nil {
		t.Fatal("recommendations for unknown user")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := newRepo()
	wf := workloads.MedicalImaging()
	if err := r.Publish(wf, "juliana", "figure 1", "imaging"); err != nil {
		t.Fatal(err)
	}
	log := runOf(t, wf)
	if err := r.PublishRun("medimg", "u1", log); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var ids []string
	if code := getJSON("/workflows", &ids); code != 200 || len(ids) != 1 {
		t.Fatalf("list: %d %v", code, ids)
	}
	var entry Entry
	if code := getJSON("/workflows/medimg", &entry); code != 200 || entry.Owner != "juliana" {
		t.Fatalf("get: %d %+v", code, entry.Owner)
	}
	if code := getJSON("/workflows/ghost", nil); code != 404 {
		t.Fatalf("missing workflow: %d", code)
	}
	var runs []string
	if code := getJSON("/workflows/medimg/runs", &runs); code != 200 || len(runs) != 1 {
		t.Fatalf("runs: %d %v", code, runs)
	}
	var gotLog provenance.RunLog
	if code := getJSON("/runs/"+log.Run.ID, &gotLog); code != 200 || len(gotLog.Executions) != 4 {
		t.Fatalf("run log: %d", code)
	}
	// Lineage over HTTP.
	imageArt := ""
	for _, a := range log.Artifacts {
		if a.Type == workloads.TypeImage {
			imageArt = a.ID
		}
	}
	var lineage []string
	if code := getJSON("/lineage?id="+imageArt, &lineage); code != 200 || len(lineage) == 0 {
		t.Fatalf("lineage: %d %v", code, lineage)
	}
	if code := getJSON("/lineage", nil); code != 400 {
		t.Fatalf("lineage without id: %d", code)
	}
	if code := getJSON("/lineage?id=ghost", nil); code != 404 {
		t.Fatalf("lineage ghost: %d", code)
	}
	var deps []string
	gridArt := ""
	for _, a := range log.Artifacts {
		if a.Type == workloads.TypeGrid {
			gridArt = a.ID
		}
	}
	if code := getJSON("/dependents?id="+gridArt, &deps); code != 200 || len(deps) != 7 {
		t.Fatalf("dependents: %d %v", code, deps)
	}
	// Batch frontier expansion over HTTP: both artifacts in one call.
	var adj map[string][]string
	if code := getJSON("/expand?ids="+imageArt+","+gridArt+"&dir=down", &adj); code != 200 || len(adj) != 2 {
		t.Fatalf("expand: %d %v", code, adj)
	}
	if len(adj[gridArt]) != 2 {
		t.Fatalf("expand grid consumers = %v", adj[gridArt])
	}
	if code := getJSON("/expand?ids="+imageArt+"&dir=sideways", nil); code != 400 {
		t.Fatalf("expand bad dir: %d", code)
	}
	if code := getJSON("/expand", nil); code != 400 {
		t.Fatalf("expand without ids: %d", code)
	}
	// PQL over HTTP.
	var qres struct {
		Columns []string   `json:"Columns"`
		Rows    [][]string `json:"Rows"`
	}
	q := "/query?q=" + urlQuery("SELECT module FROM executions WHERE status = 'ok' ORDER BY module")
	if code := getJSON(q, &qres); code != 200 || len(qres.Rows) != 4 {
		t.Fatalf("query: %d %+v", code, qres)
	}
	if code := getJSON("/query?q="+urlQuery("BOGUS"), nil); code != 400 {
		t.Fatal("bad query accepted")
	}
	// Stats.
	var st Stats
	if code := getJSON("/stats", &st); code != 200 || st.Workflows != 1 {
		t.Fatalf("stats: %d %+v", code, st)
	}
	// Publish over HTTP.
	body, err := json.Marshal(map[string]any{
		"workflow":    workloads.Genomics("s9"),
		"owner":       "bob",
		"description": "uploaded via API",
		"tags":        []string{"genomics"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/workflows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("publish: %d", resp.StatusCode)
	}
	// Rate over HTTP.
	resp, err = http.Post(srv.URL+"/workflows/medimg/rating", "application/json",
		bytes.NewReader([]byte(`{"user":"u1","stars":5}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("rate: %d", resp.StatusCode)
	}
	e2, _ := r.Peek("medimg")
	if _, ok := e2.AverageRating(); !ok {
		t.Fatal("rating not recorded")
	}
}

func urlQuery(q string) string {
	out := ""
	for _, r := range q {
		switch r {
		case ' ':
			out += "%20"
		case '\'':
			out += "%27"
		case '=':
			out += "%3D"
		default:
			out += string(r)
		}
	}
	return out
}

func TestHTTPSearch(t *testing.T) {
	r := newRepo()
	if err := r.Publish(workloads.MedicalImaging(), "j", "isosurface", "imaging"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/workflows?q=isosurface")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hits []SearchResult
	if err := json.NewDecoder(resp.Body).Decode(&hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].WorkflowID != "medimg" {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestStatValues(t *testing.T) {
	r := newRepo()
	users, err := SynthesizeCommunity(r, CommunityOptions{Seed: 7, Users: 4, RunsEach: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stat()
	if st.Users < len(users) {
		t.Fatalf("stats users = %d < %d", st.Users, len(users))
	}
	_ = fmt.Sprint(st)
}

// TestHTTPClosureEndpointsCached runs the closure-serving endpoints over a
// store wrapped in the incremental closure cache (how provd -cache deploys
// it): warm queries must match the first answers, and runs published after
// the cache warmed must show up in subsequent closure responses via the
// ingest-time patch, not a flush.
func TestHTTPClosureEndpointsCached(t *testing.T) {
	cached := closurecache.Wrap(store.NewMemStore())
	r := NewRepository(cached)
	wf := workloads.MedicalImaging()
	if err := r.Publish(wf, "juliana", "figure 1", "imaging"); err != nil {
		t.Fatal(err)
	}
	log := runOf(t, wf)
	if err := r.PublishRun("medimg", "u1", log); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	gridArt := ""
	for _, a := range log.Artifacts {
		if a.Type == workloads.TypeGrid {
			gridArt = a.ID
		}
	}
	var cold, warm []string
	if code := getJSON("/dependents?id="+gridArt, &cold); code != 200 || len(cold) == 0 {
		t.Fatalf("dependents cold: %d %v", code, cold)
	}
	if code := getJSON("/dependents?id="+gridArt, &warm); code != 200 {
		t.Fatal("dependents warm failed")
	}
	if fmt.Sprint(cold) != fmt.Sprint(warm) {
		t.Fatalf("warm closure diverged: %v vs %v", cold, warm)
	}
	if m := cached.Metrics(); m.ClosureHits == 0 {
		t.Fatalf("warm request missed the cache: %+v", m)
	}

	// Publish a second run of the same workflow after the cache warmed; its
	// entities must be reachable through the cached endpoints.
	log2 := runOf(t, wf)
	if err := r.PublishRun("medimg", "u2", log2); err != nil {
		t.Fatal(err)
	}
	var adj map[string][]string
	if code := getJSON("/expand?ids="+gridArt+"&dir=down", &adj); code != 200 || len(adj[gridArt]) == 0 {
		t.Fatalf("expand post-ingest: %d %v", code, adj)
	}
	var lineage []string
	imageArt2 := ""
	for _, a := range log2.Artifacts {
		if a.Type == workloads.TypeImage {
			imageArt2 = a.ID
		}
	}
	if code := getJSON("/lineage?id="+imageArt2, &lineage); code != 200 || len(lineage) == 0 {
		t.Fatalf("lineage of second run: %d %v", code, lineage)
	}
	want, err := store.NaiveClosure(cached.Underlying(), imageArt2, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	// Cached closures guarantee set equality, not BFS order; compare sorted.
	sort.Strings(lineage)
	sort.Strings(want)
	if fmt.Sprint(lineage) != fmt.Sprint(want) {
		t.Fatalf("cached lineage diverged:\n got %v\nwant %v", lineage, want)
	}
}
