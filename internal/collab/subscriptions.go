package collab

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/collab/api"
	"repro/internal/query/standing"
	"repro/internal/store"
)

// Standing-query subscription routes:
//
//	POST   /v1/subscriptions              register; returns ID + snapshot
//	GET    /v1/subscriptions              list registered subscriptions
//	GET    /v1/subscriptions/{id}         full current result (re-snapshot)
//	DELETE /v1/subscriptions/{id}         unregister
//	GET    /v1/subscriptions/{id}/events  SSE delta stream; ?poll=1 long-polls
//
// The events endpoint streams Server-Sent Events: each event carries the
// subscription sequence as its SSE id, the event type (snapshot / add /
// remove / gap) as its event name, and the JSON items array as data.
// Reconnecting with Last-Event-ID (or ?from=N) resumes after that
// sequence; when the bounded replay buffer has evicted the missed events
// the server sends an explicit gap event followed by a fresh snapshot, so
// a consumer is never silently stale. Without a cursor the stream opens
// with a snapshot event. ?poll=1 is the long-poll fallback: it waits up to
// ?wait_ms for events after ?from and answers them as a JSON array
// (empty on timeout).

// sseHeartbeat keeps idle SSE connections alive through proxies.
const sseHeartbeat = 15 * time.Second

// maxPollWait caps the long-poll hold so a dead client cannot pin a
// handler goroutine for long.
const maxPollWait = 55 * time.Second

// specFromWire converts the wire registration to a standing spec.
func specFromWire(body api.SubscribeRequest) (standing.Spec, error) {
	spec := standing.Spec{
		Kind:    standing.Kind(body.Kind),
		Root:    body.Root,
		Pattern: store.Triple{S: body.Subject, P: body.Predicate, O: body.Object},
		Query:   body.Query,
		Output:  body.Output,
	}
	if body.Direction != "" {
		dir, err := store.ParseDirection(body.Direction)
		if err != nil {
			return standing.Spec{}, err
		}
		spec.Dir = dir
	}
	return spec, nil
}

// specToWire is the inverse, for listings.
func specToWire(spec standing.Spec) api.SubscribeRequest {
	out := api.SubscribeRequest{
		Kind:      string(spec.Kind),
		Root:      spec.Root,
		Subject:   spec.Pattern.S,
		Predicate: spec.Pattern.P,
		Object:    spec.Pattern.O,
		Query:     spec.Query,
		Output:    spec.Output,
	}
	if spec.Kind == standing.KindClosure {
		out.Direction = spec.Dir.String()
	}
	return out
}

func eventsToWire(evs []standing.Event) []api.SubscriptionEvent {
	out := make([]api.SubscriptionEvent, len(evs))
	for i, ev := range evs {
		out[i] = api.SubscriptionEvent{Seq: ev.Seq, Type: ev.Type, Items: ev.Items}
	}
	return out
}

// subscriptionsHandler serves the /v1/subscriptions collection.
func subscriptionsHandler(mgr *standing.Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if mgr == nil {
			writeError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
				errors.New("collab: this node does not serve standing queries"))
			return
		}
		switch req.Method {
		case http.MethodGet:
			infos := mgr.List()
			out := make([]api.Subscription, len(infos))
			for i, info := range infos {
				out[i] = api.Subscription{ID: info.ID, Spec: specToWire(info.Spec), Seq: info.Seq, Size: info.Size}
			}
			writeJSON(w, http.StatusOK, out)
		case http.MethodPost:
			var body api.SubscribeRequest
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("collab: bad subscribe body: %v", err))
				return
			}
			spec, err := specFromWire(body)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
			snap, err := mgr.Subscribe(spec)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
			writeJSON(w, http.StatusCreated, api.SubscribeResponse{ID: snap.ID, Seq: snap.Seq, Items: snap.Items})
		default:
			methodNotAllowed(w, "GET, POST")
		}
	}
}

// subscriptionHandler serves one subscription: snapshot, delete, events.
func subscriptionHandler(mgr *standing.Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if mgr == nil {
			writeError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
				errors.New("collab: this node does not serve standing queries"))
			return
		}
		rest := strings.TrimPrefix(req.URL.Path, api.V1Prefix+"/subscriptions/")
		parts := strings.Split(rest, "/")
		id := parts[0]
		switch {
		case len(parts) == 1 && req.Method == http.MethodGet:
			snap, ok := mgr.Snapshot(id)
			if !ok {
				writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: no subscription %q", id))
				return
			}
			writeJSON(w, http.StatusOK, api.SubscribeResponse{ID: snap.ID, Seq: snap.Seq, Items: snap.Items})
		case len(parts) == 1 && req.Method == http.MethodDelete:
			if !mgr.Unsubscribe(id) {
				writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: no subscription %q", id))
				return
			}
			writeJSON(w, http.StatusOK, api.StatusResponse{Status: "ok"})
		case len(parts) == 1:
			methodNotAllowed(w, "GET, DELETE")
		case len(parts) == 2 && parts[1] == "events":
			if req.Method != http.MethodGet {
				methodNotAllowed(w, "GET")
				return
			}
			serveEvents(mgr, w, req, id)
		default:
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: no route %s %s", req.Method, req.URL.Path))
		}
	}
}

// eventCursor resolves the consumer's resume position: the Last-Event-ID
// header (SSE reconnect) wins, then ?from. explicit reports whether the
// consumer named one at all — without a cursor an SSE stream opens with a
// fresh snapshot instead of replaying history.
func eventCursor(req *http.Request) (from uint64, explicit bool, err error) {
	if v := req.Header.Get("Last-Event-ID"); v != "" {
		from, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, false, fmt.Errorf("collab: bad Last-Event-ID %q", v)
		}
		return from, true, nil
	}
	if v := req.URL.Query().Get("from"); v != "" {
		from, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, false, fmt.Errorf("collab: bad from %q", v)
		}
		return from, true, nil
	}
	return 0, false, nil
}

// flusherOf finds the http.Flusher behind w, unwrapping middleware
// recorders (the same chain http.ResponseController walks).
func flusherOf(w http.ResponseWriter) http.Flusher {
	for {
		if f, ok := w.(http.Flusher); ok {
			return f
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil
		}
		w = u.Unwrap()
	}
}

func serveEvents(mgr *standing.Manager, w http.ResponseWriter, req *http.Request, id string) {
	from, explicit, err := eventCursor(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	if _, ok := mgr.Snapshot(id); !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: no subscription %q", id))
		return
	}
	if req.URL.Query().Get("poll") != "" {
		servePoll(mgr, w, req, id, from)
		return
	}
	flusher := flusherOf(w)
	if flusher == nil {
		// No streaming support in the chain: degrade to one long-poll round.
		servePoll(mgr, w, req, id, from)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	cursor := from
	if !explicit {
		// Fresh stream: open with the current result so the consumer needs
		// no separate snapshot fetch.
		snap, ok := mgr.Snapshot(id)
		if !ok {
			return
		}
		writeSSE(w, standing.Event{Seq: snap.Seq, Type: standing.EventSnapshot, Items: snap.Items})
		cursor = snap.Seq
	}
	flusher.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		evs, ok := mgr.EventsSince(id, cursor)
		if !ok {
			return // unsubscribed: close the stream
		}
		for _, ev := range evs {
			writeSSE(w, ev)
			cursor = ev.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		ch, ok := mgr.Changed(id, cursor)
		if !ok {
			return
		}
		if ch == nil {
			continue // events landed between the two calls
		}
		select {
		case <-ch:
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-req.Context().Done():
			return
		}
	}
}

// servePoll is the long-poll fallback: wait (bounded) for events after
// from, answering a JSON array — empty on timeout.
func servePoll(mgr *standing.Manager, w http.ResponseWriter, req *http.Request, id string, from uint64) {
	wait := 30 * time.Second
	if v := req.URL.Query().Get("wait_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("collab: bad wait_ms %q", v))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > maxPollWait {
		wait = maxPollWait
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs, ok := mgr.EventsSince(id, from)
		if !ok {
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: no subscription %q", id))
			return
		}
		if len(evs) > 0 {
			writeJSON(w, http.StatusOK, eventsToWire(evs))
			return
		}
		ch, ok := mgr.Changed(id, from)
		if !ok {
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: no subscription %q", id))
			return
		}
		if ch == nil {
			continue
		}
		select {
		case <-ch:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, []api.SubscriptionEvent{})
			return
		case <-req.Context().Done():
			return
		}
	}
}

// writeSSE frames one event in SSE wire format. Items are a single-line
// JSON array, so the data field never needs continuation lines.
func writeSSE(w http.ResponseWriter, ev standing.Event) {
	items, _ := json.Marshal(ev.Items)
	if ev.Items == nil {
		items = []byte("[]")
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, items)
}
