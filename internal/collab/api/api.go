// Package api is the typed wire contract of provd's versioned HTTP
// surface: the v1 route prefix, the shared error envelope every route
// answers failures with, replication positions and headers, and the
// request/response bodies — shared by the server (internal/collab), the
// Go client (used by the replication shipper, provctl and tests), and
// anything else that speaks to a provd.
package api

import (
	"fmt"

	"repro/internal/workflow"
)

// V1Prefix roots every current provd route; the bare legacy routes are
// deprecated aliases that delegate here.
const V1Prefix = "/v1"

// Error codes carried in the shared envelope, stable across versions —
// clients branch on Code, not on message text.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeConflict         = "conflict"
	CodeReadOnlyReplica  = "read_only_replica"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"
	// CodeStaleEpoch rejects a request carrying a replication epoch lower
	// than the node's own: the sender is acting on a fenced configuration
	// (an old primary, or a follower still bound to one) and must not be
	// served as if it were current.
	CodeStaleEpoch = "stale_epoch"
	// CodeFenced rejects writes on a primary that observed a higher
	// epoch: a newer primary exists, so accepting the write would
	// split-brain the fleet. The node keeps serving reads.
	CodeFenced = "fenced"
	// CodeReplicaTooStale rejects reads on a follower whose replication
	// lag exceeds its configured -max-lag bound: the operator asked for
	// bounded staleness, so beyond the bound a 503 beats a silently
	// arbitrarily stale answer.
	CodeReplicaTooStale = "replica_too_stale"
)

// Replication and staleness headers.
const (
	// HeaderReplicaApplied reports a follower's applied WAL position
	// (total committed bytes across shards) on every read response.
	HeaderReplicaApplied = "X-Replica-Applied"
	// HeaderReplicaLag reports how many committed primary bytes the
	// follower has not applied yet, so clients can enforce their own
	// staleness bounds.
	HeaderReplicaLag = "X-Replica-Lag"
	// HeaderLogCommitted accompanies a /v1/replication/stream chunk with
	// the shard's committed log size at read time: the shipper's target.
	HeaderLogCommitted = "X-Log-Committed"
	// HeaderRequestID stamps every response with the request's trace ID.
	// An incoming value is propagated verbatim (callers and proxies can
	// thread their own IDs); otherwise the server generates one. The same
	// ID appears in the structured request log and the slow-query log.
	HeaderRequestID = "X-Request-ID"
	// HeaderReplicationEpoch carries the fencing epoch. Servers with a
	// replication role stamp it on every response; replication-aware
	// clients (the follower's shipper, provctl promote/fence) send their
	// last-known epoch on requests. A request whose epoch is lower than
	// the node's own is rejected with CodeStaleEpoch; a node that sees a
	// HIGHER epoch than its own — in a request or a probe response —
	// adopts it, and if it was an unfenced primary, fences itself
	// read-only. This is what keeps a partitioned old primary from ever
	// accepting writes once a follower has been promoted past it.
	HeaderReplicationEpoch = "X-Replication-Epoch"
)

// Replication roles reported by /v1/replication/status.
const (
	RoleStandalone = "standalone"
	RolePrimary    = "primary"
	RoleFollower   = "follower"
)

// Error is the envelope every v1 route answers failures with.
type Error struct {
	Message string `json:"error"`
	Code    string `json:"code"`
}

// RemoteError is a decoded non-2xx response from a provd, surfaced by
// the client with the envelope's stable code.
type RemoteError struct {
	HTTPStatus int
	Code       string
	Message    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("api: %s (code=%s, http=%d)", e.Message, e.Code, e.HTTPStatus)
}

// PublishWorkflowRequest is POST /v1/workflows.
type PublishWorkflowRequest struct {
	Workflow    *workflow.Workflow `json:"workflow"`
	Owner       string             `json:"owner"`
	Description string             `json:"description"`
	Tags        []string           `json:"tags"`
}

// PublishWorkflowResponse acknowledges a publish.
type PublishWorkflowResponse struct {
	ID string `json:"id"`
}

// RateRequest is POST /v1/workflows/{id}/rating.
type RateRequest struct {
	User  string `json:"user"`
	Stars int    `json:"stars"`
}

// StatusResponse acknowledges a mutation with no other payload.
type StatusResponse struct {
	Status string `json:"status"`
}

// SearchHit is one scored workflow from GET /v1/workflows?q=.
type SearchHit struct {
	WorkflowID string
	Score      float64
}

// RepoStats mirrors GET /v1/stats.
type RepoStats struct {
	Workflows int
	Runs      int
	Users     int
}

// ShardPosition is one shard's replication state. On a primary, Applied
// equals Committed (it is its own log); on a follower, Committed is the
// last-seen primary position and Lag = Committed − Applied.
type ShardPosition struct {
	Shard      int   `json:"shard"`
	Committed  int64 `json:"committed"`
	Applied    int64 `json:"applied"`
	Lag        int64 `json:"lag"`
	Checkpoint int64 `json:"checkpoint"` // log offset of the last checkpoint, -1 when none
}

// ReplicationStatus is GET /v1/replication/status.
type ReplicationStatus struct {
	Role    string          `json:"role"`
	Sharded bool            `json:"sharded"`
	Shards  []ShardPosition `json:"shards"`
	// Epoch is the node's fencing epoch: monotone across promotions, so
	// any two nodes claiming the primary role are ordered — the lower
	// epoch is the stale one.
	Epoch uint64 `json:"epoch,omitempty"`
	// Fenced reports a primary that observed a higher epoch and demoted
	// itself read-only.
	Fenced bool `json:"fenced,omitempty"`
	// Primary is the upstream URL (followers only).
	Primary string `json:"primary,omitempty"`
	// Replicas are the configured followers with a best-effort probe of
	// each (primaries only).
	Replicas []ReplicaProbe `json:"replicas,omitempty"`
}

// PromoteResponse is POST /v1/replication/promote: the follower drained
// what it could reach, bumped the fencing epoch, and took over as
// primary.
type PromoteResponse struct {
	Role  string `json:"role"`  // the node's new role (primary)
	Epoch uint64 `json:"epoch"` // the new fencing epoch
	// AppliedBytes is the node's total applied log position at promotion
	// — the replication boundary: acked primary writes beyond it were
	// not shipped in time and live only on the fenced primary.
	AppliedBytes int64 `json:"applied_bytes"`
	// DrainErr records a best-effort catch-up drain that could not reach
	// the old primary (the failover case); empty when the drain completed.
	DrainErr string `json:"drain_err,omitempty"`
	// OldPrimaryFenced reports whether the old primary acknowledged the
	// fence; false when it was unreachable (it will fence itself on the
	// first epoch-stamped request it serves after the partition heals —
	// `provctl fence` forces the issue).
	OldPrimaryFenced bool `json:"old_primary_fenced"`
	// FenceErr is the best-effort fence failure, empty on success.
	FenceErr string `json:"fence_err,omitempty"`
}

// Replica health states reported by GET /v1/health on followers:
// connected (last primary contact succeeded), degraded (failing and
// retrying under backoff), disconnected (no successful contact for
// longer than the disconnect threshold).
const (
	HealthConnected    = "connected"
	HealthDegraded     = "degraded"
	HealthDisconnected = "disconnected"
)

// ReplicaHealth is the follower-side replication health block of
// GET /v1/health.
type ReplicaHealth struct {
	State               string  `json:"state"` // Health* constants
	ConsecutiveFailures int     `json:"consecutive_failures"`
	LastError           string  `json:"last_error,omitempty"`
	SecondsSinceContact float64 `json:"seconds_since_contact"`
	AppliedBytes        int64   `json:"applied_bytes"`
	LagBytes            int64   `json:"lag_bytes"`
	// MaxLagBytes echoes the node's -max-lag staleness bound (0: none).
	MaxLagBytes int64 `json:"max_lag_bytes,omitempty"`
}

// HealthResponse is GET /v1/health. The endpoint answers 200 while the
// node should stay in a load balancer's rotation and 503 when it should
// not (a follower past its staleness bound or disconnected from its
// primary); the body says why either way.
type HealthResponse struct {
	Status string `json:"status"` // "ok", or the reason for a 503
	Role   string `json:"role"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Fenced bool   `json:"fenced,omitempty"`
	// Replication is the follower's upstream health (followers only).
	Replication *ReplicaHealth `json:"replication,omitempty"`
}

// ReplicaProbe is one configured follower as seen from the primary.
type ReplicaProbe struct {
	URL    string             `json:"url"`
	Status *ReplicationStatus `json:"status,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// Subscription kinds and event types for the standing-query API. These
// mirror internal/query/standing but are restated here so the wire
// contract stands alone.
const (
	SubscriptionKindTriple      = "triple"
	SubscriptionKindClosure     = "closure"
	SubscriptionKindConjunctive = "conjunctive"

	SubscriptionEventSnapshot = "snapshot"
	SubscriptionEventAdd      = "add"
	SubscriptionEventRemove   = "remove"
	SubscriptionEventGap      = "gap"
)

// SubscribeRequest is POST /v1/subscriptions: register a standing query.
// Kind selects which fields matter — closure: Root + Direction; triple:
// Subject/Predicate/Object (empty = wildcard); conjunctive: Query (a
// Datalog conjunction like "used(E, A), generated(E, B)") + Output
// variables (empty: all, first-occurrence order).
type SubscribeRequest struct {
	Kind      string   `json:"kind"`
	Root      string   `json:"root,omitempty"`
	Direction string   `json:"direction,omitempty"` // "up" (default) or "down"
	Subject   string   `json:"subject,omitempty"`
	Predicate string   `json:"predicate,omitempty"`
	Object    string   `json:"object,omitempty"`
	Query     string   `json:"query,omitempty"`
	Output    []string `json:"output,omitempty"`
}

// SubscribeResponse acknowledges a registration with the subscription's
// initial result snapshot; events with seq > Seq continue from it. The
// same shape answers GET /v1/subscriptions/{id} with the current result.
type SubscribeResponse struct {
	ID    string   `json:"id"`
	Seq   uint64   `json:"seq"`
	Items []string `json:"items"`
}

// Subscription is one entry of GET /v1/subscriptions.
type Subscription struct {
	ID   string           `json:"id"`
	Spec SubscribeRequest `json:"spec"`
	Seq  uint64           `json:"seq"`
	Size int              `json:"size"`
}

// SubscriptionEvent is one element of a subscription's event stream —
// the JSON body of the long-poll fallback and the data/id/event fields of
// the SSE framing. A "gap" event means the replay buffer evicted events
// the consumer missed; the "snapshot" event that follows it (at the same
// sequence) replaces the consumer's state wholesale.
type SubscriptionEvent struct {
	Seq   uint64   `json:"seq"`
	Type  string   `json:"type"`
	Items []string `json:"items,omitempty"`
}

// NodeStatus is GET /v1/status: the fleet-inspection sibling of
// /v1/replication/status — one node's identity and configuration rather
// than its log positions.
type NodeStatus struct {
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Epoch and Fenced mirror the replication fencing state (omitted on
	// standalone nodes, which have no failover coordinator).
	Epoch  uint64 `json:"epoch,omitempty"`
	Fenced bool   `json:"fenced,omitempty"`
	// ReplicaState and ReplicaLagBytes summarize a follower's upstream
	// link (Health* constants; bytes behind the primary's committed
	// position).
	ReplicaState    string `json:"replica_state,omitempty"`
	ReplicaLagBytes int64  `json:"replica_lag_bytes,omitempty"`
	StoreDir        string `json:"store_dir,omitempty"`
	Shards          int    `json:"shards"`
	Durability      string `json:"durability,omitempty"`
	// Checkpoint describes the node's auto-checkpoint policy in the same
	// terms the provd flags configure it ("every 512 runs or 4.0 MiB",
	// "disabled").
	Checkpoint   string `json:"checkpoint,omitempty"`
	ClosureCache bool   `json:"closure_cache"`
	GoVersion    string `json:"go_version"`
	// Version and Revision come from runtime/debug.ReadBuildInfo: the main
	// module version and the vcs.revision the binary was built at, when
	// the build recorded them.
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
}
