package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/provenance"
	"repro/internal/query/pql"
	"repro/internal/workflow"
)

// DefaultTimeout bounds every non-streaming request made by a Client
// constructed with a nil *http.Client. http.Client.Timeout covers the
// whole exchange including the body read, so it cannot apply to SSE and
// long-poll calls — those go through a separate unbounded client and
// are cancelled via their context instead.
const DefaultTimeout = 10 * time.Second

// Client speaks provd's v1 API: the replication shipper's transport, and
// the typed alternative to hand-rolled query-param requests for provctl
// and tests. Safe for concurrent use.
//
// The client participates in epoch fencing passively: it remembers the
// highest X-Replication-Epoch it has seen on any response and stamps it
// on every subsequent request, so a shipper bound to a fenced primary
// identifies itself as stale and a promoted node's clients carry the
// new epoch to whatever they touch next.
type Client struct {
	base  string
	hc    *http.Client // bounded; all request/response calls
	sc    *http.Client // unbounded; SSE streams and long-polls
	epoch atomic.Uint64
}

// NewClient returns a client for the provd at base (e.g.
// "http://host:8080"). hc nil uses a client with DefaultTimeout for
// regular calls and an untimed client for streams; passing a client
// uses it for both, preserving whatever policy the caller configured.
func NewClient(base string, hc *http.Client) *Client {
	c := &Client{base: strings.TrimRight(base, "/")}
	if hc == nil {
		c.hc = &http.Client{Timeout: DefaultTimeout}
		c.sc = http.DefaultClient
	} else {
		c.hc = hc
		c.sc = hc
	}
	return c
}

// Base returns the server URL the client targets.
func (c *Client) Base() string { return c.base }

// Epoch returns the highest fencing epoch the client has observed (or
// been given via SetEpoch); 0 before any epoch-aware exchange.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// SetEpoch raises the fencing epoch stamped on subsequent requests.
// Lower values are ignored — the epoch is monotone by construction.
func (c *Client) SetEpoch(e uint64) {
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// do issues one request through hc with the epoch header stamped and
// the response's epoch observed. ctx nil means context.Background().
func (c *Client) do(ctx context.Context, hc *http.Client, method, path string, body io.Reader, header http.Header) (*http.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if e := c.epoch.Load(); e > 0 {
		req.Header.Set(HeaderReplicationEpoch, strconv.FormatUint(e, 10))
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	if v := resp.Header.Get(HeaderReplicationEpoch); v != "" {
		if e, perr := strconv.ParseUint(v, 10, 64); perr == nil {
			c.SetEpoch(e)
		}
	}
	return resp, nil
}

// decodeError turns a non-2xx response into a *RemoteError, preserving
// the envelope's stable code when the body carries one.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env Error
	if err := json.Unmarshal(body, &env); err != nil || env.Message == "" {
		env.Message = strings.TrimSpace(string(body))
		if env.Message == "" {
			env.Message = resp.Status
		}
	}
	return &RemoteError{HTTPStatus: resp.StatusCode, Code: env.Code, Message: env.Message}
}

func (c *Client) getJSONContext(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, c.hc, http.MethodGet, path, nil, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(path string, out any) error {
	return c.getJSONContext(context.Background(), path, out)
}

func (c *Client) postJSONContext(ctx context.Context, path string, in, out any) error {
	data, err := json.Marshal(in)
	if err != nil {
		return err
	}
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	resp, err := c.do(ctx, c.hc, http.MethodPost, path, bytes.NewReader(data), hdr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(path string, in, out any) error {
	return c.postJSONContext(context.Background(), path, in, out)
}

func (c *Client) deleteJSON(path string, out any) error {
	resp, err := c.do(context.Background(), c.hc, http.MethodDelete, path, nil, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Workflows lists published workflow IDs.
func (c *Client) Workflows() ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/workflows", &ids)
	return ids, err
}

// Search ranks published workflows against a free-text query.
func (c *Client) Search(q string) ([]SearchHit, error) {
	var hits []SearchHit
	err := c.getJSON(V1Prefix+"/workflows?q="+url.QueryEscape(q), &hits)
	return hits, err
}

// PublishWorkflow shares a workflow and returns its ID.
func (c *Client) PublishWorkflow(wf *workflow.Workflow, owner, description string, tags ...string) (string, error) {
	var resp PublishWorkflowResponse
	err := c.postJSON(V1Prefix+"/workflows", PublishWorkflowRequest{
		Workflow: wf, Owner: owner, Description: description, Tags: tags,
	}, &resp)
	return resp.ID, err
}

// Rate records a 1-5 star rating by a user.
func (c *Client) Rate(workflowID, user string, stars int) error {
	return c.postJSON(V1Prefix+"/workflows/"+url.PathEscape(workflowID)+"/rating",
		RateRequest{User: user, Stars: stars}, nil)
}

// RunsOf lists run IDs published for a workflow.
func (c *Client) RunsOf(workflowID string) ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/workflows/"+url.PathEscape(workflowID)+"/runs", &ids)
	return ids, err
}

// RunLog fetches a run's full provenance log.
func (c *Client) RunLog(runID string) (*provenance.RunLog, error) {
	var l provenance.RunLog
	if err := c.getJSON(V1Prefix+"/runs/"+url.PathEscape(runID), &l); err != nil {
		return nil, err
	}
	return &l, nil
}

// Lineage returns the upstream closure of an entity.
func (c *Client) Lineage(id string) ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/lineage?id="+url.QueryEscape(id), &ids)
	return ids, err
}

// Dependents returns the downstream closure of an entity.
func (c *Client) Dependents(id string) ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/dependents?id="+url.QueryEscape(id), &ids)
	return ids, err
}

// Expand returns the one-hop frontier of a batch of entities; dir is
// "up" or "down".
func (c *Client) Expand(ids []string, dir string) (map[string][]string, error) {
	var adj map[string][]string
	err := c.getJSON(V1Prefix+"/expand?ids="+url.QueryEscape(strings.Join(ids, ","))+"&dir="+url.QueryEscape(dir), &adj)
	return adj, err
}

// Query runs a PQL query against the server's provenance store.
func (c *Client) Query(q string) (*pql.Result, error) {
	var res pql.Result
	if err := c.getJSON(V1Prefix+"/query?q="+url.QueryEscape(q), &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Stats summarizes repository contents.
func (c *Client) Stats() (RepoStats, error) {
	var st RepoStats
	err := c.getJSON(V1Prefix+"/stats", &st)
	return st, err
}

// NodeStatus reports the server's identity and configuration.
func (c *Client) NodeStatus() (*NodeStatus, error) {
	var ns NodeStatus
	if err := c.getJSON(V1Prefix+"/status", &ns); err != nil {
		return nil, err
	}
	return &ns, nil
}

// Health reports the node's serving health. Both the healthy 200 and
// the out-of-rotation 503 carry a HealthResponse body, so a decodable
// 503 returns the body with ok=false rather than an error — the body
// says why the node took itself out.
func (c *Client) Health(ctx context.Context) (*HealthResponse, bool, error) {
	resp, err := c.do(ctx, c.hc, http.MethodGet, V1Prefix+"/health", nil, nil)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	ok := resp.StatusCode/100 == 2
	if !ok && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, false, decodeError(resp)
	}
	var h HealthResponse
	if derr := json.NewDecoder(resp.Body).Decode(&h); derr != nil {
		if !ok {
			return nil, false, &RemoteError{HTTPStatus: resp.StatusCode, Code: CodeUnavailable, Message: resp.Status}
		}
		return nil, false, derr
	}
	return &h, ok, nil
}

// MetricsText fetches the server's metrics in Prometheus text exposition
// format, verbatim — provctl metrics renders and diffs it client-side.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.do(context.Background(), c.hc, http.MethodGet, V1Prefix+"/metrics", nil, nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Subscribe registers a standing query and returns its ID plus the
// initial result snapshot.
func (c *Client) Subscribe(req SubscribeRequest) (*SubscribeResponse, error) {
	var resp SubscribeResponse
	if err := c.postJSON(V1Prefix+"/subscriptions", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Subscriptions lists the server's registered standing queries.
func (c *Client) Subscriptions() ([]Subscription, error) {
	var subs []Subscription
	err := c.getJSON(V1Prefix+"/subscriptions", &subs)
	return subs, err
}

// Subscription fetches a subscription's full current result — the
// re-snapshot a consumer takes after a gap event.
func (c *Client) Subscription(id string) (*SubscribeResponse, error) {
	var resp SubscribeResponse
	if err := c.getJSON(V1Prefix+"/subscriptions/"+url.PathEscape(id), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Unsubscribe deletes a standing query.
func (c *Client) Unsubscribe(id string) error {
	return c.deleteJSON(V1Prefix+"/subscriptions/"+url.PathEscape(id), nil)
}

// PollSubscriptionEvents long-polls for events after sequence from,
// waiting server-side up to wait (0: server default) before answering an
// empty slice. The long-poll fallback for clients that cannot hold an SSE
// stream. Goes through the untimed client: the server may legitimately
// hold the request far past DefaultTimeout.
func (c *Client) PollSubscriptionEvents(id string, from uint64, wait time.Duration) ([]SubscriptionEvent, error) {
	u := fmt.Sprintf("%s/subscriptions/%s/events?poll=1&from=%d", V1Prefix, url.PathEscape(id), from)
	if wait > 0 {
		u += fmt.Sprintf("&wait_ms=%d", wait.Milliseconds())
	}
	resp, err := c.do(context.Background(), c.sc, http.MethodGet, u, nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	var evs []SubscriptionEvent
	err = json.NewDecoder(resp.Body).Decode(&evs)
	return evs, err
}

// WatchSubscription consumes a subscription's SSE stream, invoking fn for
// every event until ctx is done, the server closes the stream (e.g. the
// subscription was deleted), or fn returns an error. from > 0 resumes
// after that sequence via the Last-Event-ID header; from == 0 asks the
// server to open with a fresh snapshot event. Returns the last sequence
// consumed, so a caller can reconnect without losing events.
func (c *Client) WatchSubscription(ctx context.Context, id string, from uint64, fn func(SubscriptionEvent) error) (uint64, error) {
	hdr := http.Header{"Accept": []string{"text/event-stream"}}
	if from > 0 {
		hdr.Set("Last-Event-ID", strconv.FormatUint(from, 10))
	}
	resp, err := c.do(ctx, c.sc, http.MethodGet,
		V1Prefix+"/subscriptions/"+url.PathEscape(id)+"/events", nil, hdr)
	if err != nil {
		return from, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return from, decodeError(resp)
	}
	last := from
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var ev SubscriptionEvent
	flush := func() error {
		if ev.Type == "" {
			ev = SubscriptionEvent{}
			return nil
		}
		e := ev
		ev = SubscriptionEvent{}
		if err := fn(e); err != nil {
			return err
		}
		last = e.Seq
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return last, err
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id:"):
			ev.Seq, _ = strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
		case strings.HasPrefix(line, "event:"):
			ev.Type = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			_ = json.Unmarshal([]byte(strings.TrimSpace(line[5:])), &ev.Items)
		}
	}
	if err := flush(); err != nil {
		return last, err
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return last, err
	}
	return last, nil
}

// ReplicationStatus reports the server's role and per-shard positions.
func (c *Client) ReplicationStatus() (*ReplicationStatus, error) {
	return c.ReplicationStatusContext(context.Background())
}

// ReplicationStatusContext is ReplicationStatus bounded by ctx.
func (c *Client) ReplicationStatusContext(ctx context.Context) (*ReplicationStatus, error) {
	var rs ReplicationStatus
	if err := c.getJSONContext(ctx, V1Prefix+"/replication/status", &rs); err != nil {
		return nil, err
	}
	return &rs, nil
}

// Promote asks a follower to take over as primary: drain what it can
// reach of the upstream log, bump the fencing epoch, drop read-only,
// and best-effort fence the old primary.
func (c *Client) Promote(ctx context.Context) (*PromoteResponse, error) {
	var pr PromoteResponse
	if err := c.postJSONContext(ctx, V1Prefix+"/replication/promote", struct{}{}, &pr); err != nil {
		return nil, err
	}
	c.SetEpoch(pr.Epoch)
	return &pr, nil
}

// Fence tells the node about epoch (typically a promoted node's) by
// stamping it on a status request: an unfenced primary at a lower epoch
// fences itself read-only on observing it. The returned status reflects
// the node's state after the exchange.
func (c *Client) Fence(ctx context.Context, epoch uint64) (*ReplicationStatus, error) {
	c.SetEpoch(epoch)
	return c.ReplicationStatusContext(ctx)
}

// StreamLog fetches a record-aligned chunk of a primary shard's
// committed log starting at from (at most maxBytes long; 0 for the
// server default), plus the shard's committed size at read time. An
// empty chunk with committed == from means the follower is caught up.
func (c *Client) StreamLog(shard int, from int64, maxBytes int) ([]byte, int64, error) {
	return c.StreamLogContext(context.Background(), shard, from, maxBytes)
}

// StreamLogContext is StreamLog bounded by ctx.
func (c *Client) StreamLogContext(ctx context.Context, shard int, from int64, maxBytes int) ([]byte, int64, error) {
	u := fmt.Sprintf("%s/replication/stream?shard=%d&from=%d&max=%d", V1Prefix, shard, from, maxBytes)
	resp, err := c.do(ctx, c.hc, http.MethodGet, u, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, 0, decodeError(resp)
	}
	committed, err := strconv.ParseInt(resp.Header.Get(HeaderLogCommitted), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("api: stream response missing %s header: %w", HeaderLogCommitted, err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return data, committed, nil
}

// ShardCheckpoint fetches the raw checkpoint snapshot of a primary
// shard, ok=false when the shard has none yet. New followers install it
// before opening their store so only the post-checkpoint log suffix
// replays.
func (c *Client) ShardCheckpoint(shard int) ([]byte, bool, error) {
	return c.ShardCheckpointContext(context.Background(), shard)
}

// ShardCheckpointContext is ShardCheckpoint bounded by ctx.
func (c *Client) ShardCheckpointContext(ctx context.Context, shard int) ([]byte, bool, error) {
	u := fmt.Sprintf("%s/replication/checkpoint?shard=%d", V1Prefix, shard)
	resp, err := c.do(ctx, c.hc, http.MethodGet, u, nil, nil)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode/100 != 2 {
		return nil, false, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}
