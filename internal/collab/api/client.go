package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/provenance"
	"repro/internal/query/pql"
	"repro/internal/workflow"
)

// Client speaks provd's v1 API: the replication shipper's transport, and
// the typed alternative to hand-rolled query-param requests for provctl
// and tests. Safe for concurrent use (it holds no mutable state beyond
// the http.Client).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the provd at base (e.g.
// "http://host:8080"). hc nil uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Base returns the server URL the client targets.
func (c *Client) Base() string { return c.base }

// decodeError turns a non-2xx response into a *RemoteError, preserving
// the envelope's stable code when the body carries one.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env Error
	if err := json.Unmarshal(body, &env); err != nil || env.Message == "" {
		env.Message = strings.TrimSpace(string(body))
		if env.Message == "" {
			env.Message = resp.Status
		}
	}
	return &RemoteError{HTTPStatus: resp.StatusCode, Code: env.Code, Message: env.Message}
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(path string, in, out any) error {
	data, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Workflows lists published workflow IDs.
func (c *Client) Workflows() ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/workflows", &ids)
	return ids, err
}

// Search ranks published workflows against a free-text query.
func (c *Client) Search(q string) ([]SearchHit, error) {
	var hits []SearchHit
	err := c.getJSON(V1Prefix+"/workflows?q="+url.QueryEscape(q), &hits)
	return hits, err
}

// PublishWorkflow shares a workflow and returns its ID.
func (c *Client) PublishWorkflow(wf *workflow.Workflow, owner, description string, tags ...string) (string, error) {
	var resp PublishWorkflowResponse
	err := c.postJSON(V1Prefix+"/workflows", PublishWorkflowRequest{
		Workflow: wf, Owner: owner, Description: description, Tags: tags,
	}, &resp)
	return resp.ID, err
}

// Rate records a 1-5 star rating by a user.
func (c *Client) Rate(workflowID, user string, stars int) error {
	return c.postJSON(V1Prefix+"/workflows/"+url.PathEscape(workflowID)+"/rating",
		RateRequest{User: user, Stars: stars}, nil)
}

// RunsOf lists run IDs published for a workflow.
func (c *Client) RunsOf(workflowID string) ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/workflows/"+url.PathEscape(workflowID)+"/runs", &ids)
	return ids, err
}

// RunLog fetches a run's full provenance log.
func (c *Client) RunLog(runID string) (*provenance.RunLog, error) {
	var l provenance.RunLog
	if err := c.getJSON(V1Prefix+"/runs/"+url.PathEscape(runID), &l); err != nil {
		return nil, err
	}
	return &l, nil
}

// Lineage returns the upstream closure of an entity.
func (c *Client) Lineage(id string) ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/lineage?id="+url.QueryEscape(id), &ids)
	return ids, err
}

// Dependents returns the downstream closure of an entity.
func (c *Client) Dependents(id string) ([]string, error) {
	var ids []string
	err := c.getJSON(V1Prefix+"/dependents?id="+url.QueryEscape(id), &ids)
	return ids, err
}

// Expand returns the one-hop frontier of a batch of entities; dir is
// "up" or "down".
func (c *Client) Expand(ids []string, dir string) (map[string][]string, error) {
	var adj map[string][]string
	err := c.getJSON(V1Prefix+"/expand?ids="+url.QueryEscape(strings.Join(ids, ","))+"&dir="+url.QueryEscape(dir), &adj)
	return adj, err
}

// Query runs a PQL query against the server's provenance store.
func (c *Client) Query(q string) (*pql.Result, error) {
	var res pql.Result
	if err := c.getJSON(V1Prefix+"/query?q="+url.QueryEscape(q), &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Stats summarizes repository contents.
func (c *Client) Stats() (RepoStats, error) {
	var st RepoStats
	err := c.getJSON(V1Prefix+"/stats", &st)
	return st, err
}

// NodeStatus reports the server's identity and configuration.
func (c *Client) NodeStatus() (*NodeStatus, error) {
	var ns NodeStatus
	if err := c.getJSON(V1Prefix+"/status", &ns); err != nil {
		return nil, err
	}
	return &ns, nil
}

// MetricsText fetches the server's metrics in Prometheus text exposition
// format, verbatim — provctl metrics renders and diffs it client-side.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.hc.Get(c.base + V1Prefix + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// ReplicationStatus reports the server's role and per-shard positions.
func (c *Client) ReplicationStatus() (*ReplicationStatus, error) {
	var rs ReplicationStatus
	if err := c.getJSON(V1Prefix+"/replication/status", &rs); err != nil {
		return nil, err
	}
	return &rs, nil
}

// StreamLog fetches a record-aligned chunk of a primary shard's
// committed log starting at from (at most maxBytes long; 0 for the
// server default), plus the shard's committed size at read time. An
// empty chunk with committed == from means the follower is caught up.
func (c *Client) StreamLog(shard int, from int64, maxBytes int) ([]byte, int64, error) {
	u := fmt.Sprintf("%s%s/replication/stream?shard=%d&from=%d&max=%d", c.base, V1Prefix, shard, from, maxBytes)
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, 0, decodeError(resp)
	}
	committed, err := strconv.ParseInt(resp.Header.Get(HeaderLogCommitted), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("api: stream response missing %s header: %w", HeaderLogCommitted, err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return data, committed, nil
}

// ShardCheckpoint fetches the raw checkpoint snapshot of a primary
// shard, ok=false when the shard has none yet. New followers install it
// before opening their store so only the post-checkpoint log suffix
// replays.
func (c *Client) ShardCheckpoint(shard int) ([]byte, bool, error) {
	resp, err := c.hc.Get(fmt.Sprintf("%s%s/replication/checkpoint?shard=%d", c.base, V1Prefix, shard))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode/100 != 2 {
		return nil, false, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}
