package collab

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/collab/api"
	"repro/internal/provenance"
	"repro/internal/query/standing"
	"repro/internal/store"
	"repro/internal/workloads"
)

// standingServer serves a repository whose store stack is tapped by a
// standing-query manager, the provd primary wiring.
func standingServer(t *testing.T, opt standing.Options, hopts HandlerOptions) (*httptest.Server, *Repository, *standing.Manager) {
	t.Helper()
	st := store.NewMemStore()
	t.Cleanup(func() { st.Close() })
	mgr := standing.NewManager(st, opt)
	r := NewRepository(standing.NewTap(st, mgr))
	wf := workloads.MedicalImaging()
	if err := r.Publish(wf, "juliana", "figure 1", "imaging"); err != nil {
		t.Fatal(err)
	}
	hopts.Standing = mgr
	srv := httptest.NewServer(NewHandlerWith(r, hopts))
	t.Cleanup(srv.Close)
	return srv, r, mgr
}

// watchRun is a self-contained run log: exec-N generates art-N.
func watchRun(i int) *provenance.RunLog {
	runID := fmt.Sprintf("wrun-%03d", i)
	exec := fmt.Sprintf("wexec-%03d", i)
	art := fmt.Sprintf("wart-%03d", i)
	return &provenance.RunLog{
		Run:        provenance.Run{ID: runID, WorkflowID: "medimg", Status: provenance.StatusOK},
		Executions: []*provenance.Execution{{ID: exec, RunID: runID, ModuleID: "m", ModuleType: "T", Status: provenance.StatusOK}},
		Artifacts:  []*provenance.Artifact{{ID: art, RunID: runID, Type: "blob"}},
		Events: []provenance.Event{
			{Seq: 1, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: art},
		},
	}
}

func TestV1SubscriptionsLifecycle(t *testing.T) {
	srv, repo, _ := standingServer(t, standing.Options{}, HandlerOptions{})
	c := api.NewClient(srv.URL, nil)

	sub, err := c.Subscribe(api.SubscribeRequest{Kind: api.SubscriptionKindTriple, Predicate: store.PredGenerated})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || len(sub.Items) != 0 {
		t.Fatalf("Subscribe = %+v", sub)
	}

	subs, err := c.Subscriptions()
	if err != nil || len(subs) != 1 || subs[0].ID != sub.ID {
		t.Fatalf("Subscriptions = %+v, %v", subs, err)
	}
	if subs[0].Spec.Kind != api.SubscriptionKindTriple || subs[0].Spec.Predicate != store.PredGenerated {
		t.Fatalf("listed spec = %+v", subs[0].Spec)
	}

	// A publish through the repository folds into the subscription.
	if err := repo.PublishRun("medimg", "juliana", watchRun(1)); err != nil {
		t.Fatal(err)
	}
	evs, err := c.PollSubscriptionEvents(sub.ID, sub.Seq, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != api.SubscriptionEventAdd ||
		!reflect.DeepEqual(evs[0].Items, []string{"wexec-001 " + store.PredGenerated + " wart-001"}) {
		t.Fatalf("events = %+v", evs)
	}

	// The re-snapshot endpoint reflects the current result and sequence.
	snap, err := c.Subscription(sub.ID)
	if err != nil || snap.Seq != evs[0].Seq || len(snap.Items) != 1 {
		t.Fatalf("Subscription = %+v, %v", snap, err)
	}

	if err := c.Unsubscribe(sub.ID); err != nil {
		t.Fatal(err)
	}
	var remote *api.RemoteError
	if _, err := c.Subscription(sub.ID); !errors.As(err, &remote) || remote.Code != api.CodeNotFound {
		t.Fatalf("post-delete fetch = %v", err)
	}
	if _, err := c.PollSubscriptionEvents(sub.ID, 0, 0); !errors.As(err, &remote) || remote.Code != api.CodeNotFound {
		t.Fatalf("post-delete events = %v", err)
	}
}

func TestV1SubscriptionsValidationAndMethods(t *testing.T) {
	srv, _, _ := standingServer(t, standing.Options{}, HandlerOptions{})
	c := api.NewClient(srv.URL, nil)

	// Invalid specs answer the shared envelope.
	var remote *api.RemoteError
	for _, req := range []api.SubscribeRequest{
		{Kind: "nope"},
		{Kind: api.SubscriptionKindClosure}, // missing root
		{Kind: api.SubscriptionKindClosure, Root: "x", Direction: "ne"}, // bad direction
		{Kind: api.SubscriptionKindConjunctive, Query: "mystery(X)"},    // unknown predicate
	} {
		if _, err := c.Subscribe(req); !errors.As(err, &remote) || remote.Code != api.CodeBadRequest {
			t.Errorf("Subscribe(%+v) = %v, want bad_request envelope", req, err)
		}
	}

	// Method checks.
	for _, tc := range []struct{ method, path, allow string }{
		{http.MethodDelete, "/v1/subscriptions", "GET, POST"},
		{http.MethodPost, "/v1/subscriptions/sub-000001", "GET, DELETE"},
		{http.MethodPost, "/v1/subscriptions/sub-000001/events", "GET"},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		decodeEnvelope(t, resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed)
	}
}

// A node without a standing manager answers the subscription routes
// unavailable — not a panic, not a 404.
func TestV1SubscriptionsUnavailable(t *testing.T) {
	srv, _ := seededServer(t, HandlerOptions{})
	resp, err := http.Post(srv.URL+"/v1/subscriptions", "application/json", strings.NewReader(`{"kind":"triple"}`))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusServiceUnavailable, api.CodeUnavailable)
}

// Followers must accept subscription registrations and deletions —
// node-local serving state — while still bouncing store writes.
func TestV1ReadOnlyFollowerAllowsSubscriptions(t *testing.T) {
	srv, _, _ := standingServer(t, standing.Options{}, HandlerOptions{
		ReadOnly: true,
		Lag:      func() (int64, int64) { return 1, 0 },
	})
	c := api.NewClient(srv.URL, nil)

	sub, err := c.Subscribe(api.SubscribeRequest{Kind: api.SubscriptionKindTriple})
	if err != nil {
		t.Fatalf("follower Subscribe: %v", err)
	}
	if err := c.Unsubscribe(sub.ID); err != nil {
		t.Fatalf("follower Unsubscribe: %v", err)
	}

	// Store writes still bounce.
	resp, err := http.Post(srv.URL+"/v1/workflows", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusForbidden, api.CodeReadOnlyReplica)
}

// TestV1SubscriptionSSEResume pins the stream protocol: a fresh stream
// opens with a snapshot event, deltas arrive live, and a reconnect with
// Last-Event-ID resumes exactly after the last consumed sequence — or,
// once the replay ring evicted the gap, yields gap + re-snapshot.
func TestV1SubscriptionSSEResume(t *testing.T) {
	srv, repo, _ := standingServer(t, standing.Options{ReplayRing: 4}, HandlerOptions{})
	c := api.NewClient(srv.URL, nil)

	sub, err := c.Subscribe(api.SubscribeRequest{Kind: api.SubscriptionKindTriple, Predicate: store.PredGenerated})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh stream (no cursor): first event is a snapshot at the current
	// sequence, then each publish arrives as one add.
	ctx, cancel := context.WithCancel(context.Background())
	type got struct {
		evs  []api.SubscriptionEvent
		last uint64
	}
	stream := make(chan got, 1)
	go func() {
		var g got
		g.last, _ = c.WatchSubscription(ctx, sub.ID, 0, func(ev api.SubscriptionEvent) error {
			g.evs = append(g.evs, ev)
			if len(g.evs) == 2 { // snapshot + first add: hang up
				cancel()
			}
			return nil
		})
		stream <- g
	}()
	time.Sleep(50 * time.Millisecond) // let the stream attach
	if err := repo.PublishRun("medimg", "juliana", watchRun(1)); err != nil {
		t.Fatal(err)
	}
	var g got
	select {
	case g = <-stream:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream delivered nothing")
	}
	cancel()
	if len(g.evs) != 2 || g.evs[0].Type != api.SubscriptionEventSnapshot || g.evs[1].Type != api.SubscriptionEventAdd {
		t.Fatalf("stream events = %+v, want [snapshot add]", g.evs)
	}
	if g.evs[1].Seq != g.last || g.last == 0 {
		t.Fatalf("last = %d, events = %+v", g.last, g.evs)
	}

	// Publish one more run, then resume from the last consumed sequence:
	// exactly the missed add arrives, no duplicates, no snapshot.
	if err := repo.PublishRun("medimg", "juliana", watchRun(2)); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var resumed []api.SubscriptionEvent
	_, err = c.WatchSubscription(ctx2, sub.ID, g.last, func(ev api.SubscriptionEvent) error {
		resumed = append(resumed, ev)
		return errStopWatch
	})
	if !errors.Is(err, errStopWatch) {
		t.Fatalf("resume watch: %v", err)
	}
	if len(resumed) != 1 || resumed[0].Type != api.SubscriptionEventAdd ||
		!reflect.DeepEqual(resumed[0].Items, []string{"wexec-002 " + store.PredGenerated + " wart-002"}) {
		t.Fatalf("resumed events = %+v", resumed)
	}

	// Overrun the 4-event replay ring, then resume from the stale cursor:
	// the server answers an explicit gap followed by a fresh snapshot.
	for i := 3; i <= 9; i++ {
		if err := repo.PublishRun("medimg", "juliana", watchRun(i)); err != nil {
			t.Fatal(err)
		}
	}
	evs, err := c.PollSubscriptionEvents(sub.ID, g.last, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Type != api.SubscriptionEventGap || evs[1].Type != api.SubscriptionEventSnapshot {
		t.Fatalf("stale resume = %+v, want [gap snapshot]", evs)
	}
	if len(evs[1].Items) != 9 { // wart-001..009 generated triples
		t.Fatalf("re-snapshot items = %v", evs[1].Items)
	}
	// Resuming after the snapshot's sequence is lossless: an immediate
	// poll has nothing more.
	evs, err = c.PollSubscriptionEvents(sub.ID, evs[1].Seq, 10*time.Millisecond)
	if err != nil || len(evs) != 0 {
		t.Fatalf("post-gap poll = %+v, %v", evs, err)
	}
}

var errStopWatch = errors.New("stop watch")

// TestV1SubscriptionSSEResumeAcrossRestart kills the consumer's live SSE
// connection the way a provd restart does (every established connection
// drops), publishes while the consumer is away, and resumes with the
// cursor WatchSubscription returned: the missed deltas arrive exactly
// once, and a long enough outage (replay ring overrun) yields the
// explicit gap + re-snapshot instead of silent loss. This is the
// contract `provctl watch`'s reconnect loop is built on.
func TestV1SubscriptionSSEResumeAcrossRestart(t *testing.T) {
	srv, repo, _ := standingServer(t, standing.Options{ReplayRing: 4}, HandlerOptions{})
	c := api.NewClient(srv.URL, nil)

	sub, err := c.Subscribe(api.SubscribeRequest{Kind: api.SubscriptionKindTriple, Predicate: store.PredGenerated})
	if err != nil {
		t.Fatal(err)
	}

	// Attach a live stream and feed it one delta.
	got := make(chan struct {
		last uint64
		err  error
	}, 1)
	consumed := make(chan api.SubscriptionEvent, 16)
	go func() {
		last, werr := c.WatchSubscription(context.Background(), sub.ID, 0, func(ev api.SubscriptionEvent) error {
			consumed <- ev
			return nil
		})
		got <- struct {
			last uint64
			err  error
		}{last, werr}
	}()
	waitEvent := func(want string) api.SubscriptionEvent {
		t.Helper()
		select {
		case ev := <-consumed:
			if ev.Type != want {
				t.Fatalf("stream event = %+v, want type %q", ev, want)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no %s event arrived", want)
			return api.SubscriptionEvent{}
		}
	}
	waitEvent(api.SubscriptionEventSnapshot)
	if err := repo.PublishRun("medimg", "juliana", watchRun(1)); err != nil {
		t.Fatal(err)
	}
	waitEvent(api.SubscriptionEventAdd)

	// "Restart": the server tears down every established connection. The
	// watcher must come back with an error and the last sequence it
	// actually delivered — the resume cursor.
	srv.CloseClientConnections()
	var g struct {
		last uint64
		err  error
	}
	select {
	case g = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not return after the connection dropped")
	}
	if g.err == nil {
		t.Fatal("watch returned nil error after a dropped connection")
	}
	var remote *api.RemoteError
	if errors.As(g.err, &remote) {
		t.Fatalf("dropped connection surfaced as a remote error: %v", g.err)
	}
	if g.last == 0 {
		t.Fatal("watch lost its cursor across the drop")
	}

	// One run published while the consumer was away: resuming after the
	// returned cursor delivers exactly that delta — no snapshot, no dup.
	if err := repo.PublishRun("medimg", "juliana", watchRun(2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var resumed []api.SubscriptionEvent
	_, err = c.WatchSubscription(ctx, sub.ID, g.last, func(ev api.SubscriptionEvent) error {
		resumed = append(resumed, ev)
		return errStopWatch
	})
	if !errors.Is(err, errStopWatch) {
		t.Fatalf("resume watch: %v", err)
	}
	if len(resumed) != 1 || resumed[0].Type != api.SubscriptionEventAdd ||
		!reflect.DeepEqual(resumed[0].Items, []string{"wexec-002 " + store.PredGenerated + " wart-002"}) {
		t.Fatalf("resumed events = %+v", resumed)
	}
	cursor := resumed[0].Seq

	// A longer outage that overruns the 4-event replay ring: the resumed
	// stream opens with the explicit gap, then a full re-snapshot, and
	// resuming after the snapshot's sequence is lossless.
	srv.CloseClientConnections()
	for i := 3; i <= 9; i++ {
		if err := repo.PublishRun("medimg", "juliana", watchRun(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var after []api.SubscriptionEvent
	_, err = c.WatchSubscription(ctx2, sub.ID, cursor, func(ev api.SubscriptionEvent) error {
		after = append(after, ev)
		if len(after) == 2 {
			return errStopWatch
		}
		return nil
	})
	if !errors.Is(err, errStopWatch) {
		t.Fatalf("gap resume watch: %v", err)
	}
	if after[0].Type != api.SubscriptionEventGap || after[1].Type != api.SubscriptionEventSnapshot {
		t.Fatalf("gap resume = %+v, want [gap snapshot]", after)
	}
	if len(after[1].Items) != 9 {
		t.Fatalf("re-snapshot items = %v", after[1].Items)
	}
	evs, err := c.PollSubscriptionEvents(sub.ID, after[1].Seq, 10*time.Millisecond)
	if err != nil || len(evs) != 0 {
		t.Fatalf("post-gap poll = %+v, %v", evs, err)
	}
}
