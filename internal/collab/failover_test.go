package collab

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/collab/api"
)

// stubFailover is a scriptable FailoverState for handler-level tests;
// the real implementation (replica.Node) cannot be imported here without
// cycling through this package's tests.
type stubFailover struct {
	mu         sync.Mutex
	role       string
	epoch      uint64
	fenced     bool
	healthOK   bool
	health     api.HealthResponse
	lagOK      bool
	promote    *api.PromoteResponse
	promoteErr error
}

func (s *stubFailover) Role() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role
}

func (s *stubFailover) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func (s *stubFailover) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

func (s *stubFailover) Observe(remote uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if remote <= s.epoch {
		return false
	}
	s.epoch = remote
	if s.role == api.RolePrimary && !s.fenced {
		s.fenced = true
		return true
	}
	return false
}

func (s *stubFailover) Promote(ctx context.Context) (*api.PromoteResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoteErr != nil {
		return nil, s.promoteErr
	}
	s.role = api.RolePrimary
	s.fenced = false
	s.epoch++
	return s.promote, nil
}

func (s *stubFailover) Health(maxLag int64) (api.HealthResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health
	if h.Role == "" {
		h = api.HealthResponse{Status: "ok", Role: s.role, Epoch: s.epoch, Fenced: s.fenced}
	}
	return h, s.healthOK
}

func (s *stubFailover) LagWithin(max int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lagOK
}

// TestV1EpochFencing pins the fencing exchange: lower request epochs are
// rejected with a stable code, higher ones are adopted (fencing the
// primary), and every response carries the node's epoch.
func TestV1EpochFencing(t *testing.T) {
	fo := &stubFailover{role: api.RolePrimary, epoch: 5, healthOK: true, lagOK: true}
	srv, _ := seededServer(t, HandlerOptions{Failover: fo})

	send := func(epoch string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != "" {
			req.Header.Set(api.HeaderReplicationEpoch, epoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// No epoch header: served, and taught our epoch.
	resp := send("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain read = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HeaderReplicationEpoch); got != "5" {
		t.Fatalf("response epoch = %q, want 5", got)
	}
	resp.Body.Close()

	// A lower epoch is acting on a fenced configuration: rejected, and the
	// rejection itself teaches the caller the current epoch.
	resp = send("3")
	if got := resp.Header.Get(api.HeaderReplicationEpoch); got != "5" {
		t.Fatalf("stale rejection epoch header = %q, want 5", got)
	}
	decodeEnvelope(t, resp, http.StatusConflict, api.CodeStaleEpoch)

	// A higher epoch is adopted — and fences this primary.
	resp = send("7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("higher-epoch read = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HeaderReplicationEpoch); got != "7" {
		t.Fatalf("adopted epoch header = %q, want 7", got)
	}
	resp.Body.Close()
	if !fo.Fenced() || fo.Epoch() != 7 {
		t.Fatalf("after observing 7: epoch=%d fenced=%v", fo.Epoch(), fo.Fenced())
	}

	// The fenced primary still serves reads but rejects writes.
	resp = send("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fenced read = %d", resp.StatusCode)
	}
	resp.Body.Close()
	wresp, err := http.Post(srv.URL+"/v1/workflows", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, wresp, http.StatusForbidden, api.CodeFenced)
}

// TestV1ClientEpochExchange pins the api.Client side: the client adopts
// the epoch from every response and stamps it on every request.
func TestV1ClientEpochExchange(t *testing.T) {
	fo := &stubFailover{role: api.RolePrimary, epoch: 9, healthOK: true, lagOK: true}
	srv, _ := seededServer(t, HandlerOptions{Failover: fo})
	c := api.NewClient(srv.URL, nil)

	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 9 {
		t.Fatalf("client epoch after first call = %d, want 9", c.Epoch())
	}
	// SetEpoch is monotone: a lower value never regresses it.
	c.SetEpoch(4)
	if c.Epoch() != 9 {
		t.Fatalf("SetEpoch(4) regressed the client to %d", c.Epoch())
	}
	// A raised client epoch reaches the server on the next request.
	c.SetEpoch(12)
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	if fo.Epoch() != 12 || !fo.Fenced() {
		t.Fatalf("server after client at 12: epoch=%d fenced=%v", fo.Epoch(), fo.Fenced())
	}
}

// TestV1FollowerMaxLag pins the staleness bound: past -max-lag, data
// reads answer 503 replica_too_stale while operational routes stay up.
func TestV1FollowerMaxLag(t *testing.T) {
	fo := &stubFailover{role: api.RoleFollower, epoch: 2, healthOK: true, lagOK: false}
	srv, _ := seededServer(t, HandlerOptions{
		Failover:    fo,
		MaxLagBytes: 50,
		Lag:         func() (int64, int64) { return 1000, 100 },
	})

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(api.HeaderReplicaLag); got != "100" {
		t.Fatalf("lag header = %q, want 100", got)
	}
	decodeEnvelope(t, resp, http.StatusServiceUnavailable, api.CodeReplicaTooStale)

	// Operators can still see what is happening.
	for _, path := range []string{"/v1/status", "/v1/metrics", "/v1/replication/status"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s while stale = %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Writes on a follower bounce regardless of lag.
	wresp, err := http.Post(srv.URL+"/v1/workflows", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, wresp, http.StatusForbidden, api.CodeReadOnlyReplica)
}

// TestV1HealthEndpoint pins /v1/health: in rotation (200) vs out (503),
// with the reason in the body either way.
func TestV1HealthEndpoint(t *testing.T) {
	// Without a failover coordinator, serving the request is the check.
	srv, _ := seededServer(t, HandlerOptions{})
	var h api.HealthResponse
	resp, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standalone health = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Role != api.RoleStandalone {
		t.Fatalf("standalone health body = %+v", h)
	}

	// A disconnected follower answers 503 with its replication state.
	fo := &stubFailover{role: api.RoleFollower, epoch: 3, lagOK: true, healthOK: false,
		health: api.HealthResponse{
			Status: api.HealthDisconnected, Role: api.RoleFollower, Epoch: 3,
			Replication: &api.ReplicaHealth{State: api.HealthDisconnected, ConsecutiveFailures: 8, LagBytes: 4096},
		}}
	srv2, _ := seededServer(t, HandlerOptions{Failover: fo, Lag: func() (int64, int64) { return 0, 4096 }})
	resp, err = http.Get(srv2.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disconnected health = %d, want 503", resp.StatusCode)
	}
	var h2 api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h2.Status != api.HealthDisconnected || h2.Replication == nil || h2.Replication.ConsecutiveFailures != 8 {
		t.Fatalf("disconnected health body = %+v", h2)
	}

	// The api.Client surfaces both sides without treating 503 as an error.
	hr, ok, err := api.NewClient(srv2.URL, nil).Health(context.Background())
	if err != nil || ok || hr.Status != api.HealthDisconnected {
		t.Fatalf("client Health = %+v, %v, %v", hr, ok, err)
	}
}

// TestV1PromoteEndpoint pins the cutover route: POST-only, failover
// coordinator required, conflicts surfaced with their own status, and a
// successful promotion passes the read-only guard on a follower.
func TestV1PromoteEndpoint(t *testing.T) {
	// No coordinator: the route exists but reports unavailable.
	srv, _ := seededServer(t, HandlerOptions{})
	resp, err := http.Post(srv.URL+"/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusNotFound, api.CodeUnavailable)

	// A follower promotes through the read-only guard.
	fo := &stubFailover{role: api.RoleFollower, epoch: 3, healthOK: true, lagOK: true,
		promote: &api.PromoteResponse{Role: api.RolePrimary, Epoch: 4, AppliedBytes: 123, OldPrimaryFenced: true}}
	srv2, _ := seededServer(t, HandlerOptions{Failover: fo, Lag: func() (int64, int64) { return 123, 0 }})

	resp, err = http.Get(srv2.URL + "/v1/replication/promote")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed)

	c := api.NewClient(srv2.URL, nil)
	pr, err := c.Promote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Role != api.RolePrimary || pr.Epoch != 4 || !pr.OldPrimaryFenced {
		t.Fatalf("promote = %+v", pr)
	}
	// The client learned the post-cutover epoch.
	if c.Epoch() != 4 {
		t.Fatalf("client epoch after promote = %d, want 4", c.Epoch())
	}
	// The node now accepts writes: the middleware passes POSTs through
	// (this malformed body reaches the handler and fails validation there,
	// not at the replica guard).
	wresp, err := http.Post(srv2.URL+"/v1/workflows", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, wresp, http.StatusBadRequest, api.CodeBadRequest)

	// Promotion conflicts keep their own status and code.
	fo2 := &stubFailover{role: api.RoleFollower, epoch: 1, healthOK: true, lagOK: true,
		promoteErr: &api.RemoteError{HTTPStatus: http.StatusConflict, Code: api.CodeConflict, Message: "already promoting"}}
	srv3, _ := seededServer(t, HandlerOptions{Failover: fo2, Lag: func() (int64, int64) { return 0, 0 }})
	resp, err = http.Post(srv3.URL+"/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusConflict, api.CodeConflict)
}

// TestV1StatusReportsFailover pins /v1/status surfacing the live role,
// epoch and replica state from the coordinator.
func TestV1StatusReportsFailover(t *testing.T) {
	fo := &stubFailover{role: api.RoleFollower, epoch: 6, healthOK: true, lagOK: true,
		health: api.HealthResponse{
			Status: "ok", Role: api.RoleFollower, Epoch: 6,
			Replication: &api.ReplicaHealth{State: api.HealthDegraded, LagBytes: 77},
		}}
	srv, _ := seededServer(t, HandlerOptions{Failover: fo, Lag: func() (int64, int64) { return 1, 77 }})

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ns api.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&ns); err != nil {
		t.Fatal(err)
	}
	if ns.Role != api.RoleFollower || ns.Epoch != 6 || ns.ReplicaState != api.HealthDegraded || ns.ReplicaLagBytes != 77 {
		t.Fatalf("status = %+v", ns)
	}
	if got := resp.Header.Get(api.HeaderReplicationEpoch); got != strconv.FormatUint(6, 10) {
		t.Fatalf("status epoch header = %q", got)
	}
}
