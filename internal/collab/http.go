package collab

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/query/pql"
	"repro/internal/store"
	"repro/internal/workflow"
)

// NewHandler exposes the repository and lineage service over HTTP (the
// collaboratory's Web face). Endpoints (all JSON):
//
//	GET  /workflows              list IDs (optionally ?q= full-text search)
//	GET  /workflows/{id}         entry (counts a download)
//	POST /workflows              publish {workflow, owner, description, tags}
//	POST /workflows/{id}/rating  rate {user, stars}
//	GET  /workflows/{id}/runs    run IDs for a workflow
//	GET  /runs/{id}              full run log
//	GET  /lineage?id=ENTITY      upstream closure of an entity
//	GET  /dependents?id=ENTITY   downstream closure of an entity
//	GET  /expand?ids=A,B&dir=up  one-hop frontier expansion (batch)
//	GET  /recommend?user=U       recommendations
//	GET  /query?q=PQL            PQL query against the provenance store
//	GET  /stats                  repository statistics
func NewHandler(repo *Repository) http.Handler {
	return NewHandlerWith(repo, HandlerOptions{})
}

// HandlerOptions tunes the HTTP face.
type HandlerOptions struct {
	// ExplainQueries, when set, receives each /query's executed-plan
	// report (join order, per-operator row counts, parallel scan width,
	// bytes allocated) — provd's -explain flag logs it.
	ExplainQueries func(query, explain string)
}

// NewHandlerWith is NewHandler with options.
func NewHandlerWith(repo *Repository, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/workflows", func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			if q := req.URL.Query().Get("q"); q != "" {
				writeJSON(w, http.StatusOK, repo.Search(q, 20))
				return
			}
			writeJSON(w, http.StatusOK, repo.List())
		case http.MethodPost:
			var body struct {
				Workflow    *workflow.Workflow `json:"workflow"`
				Owner       string             `json:"owner"`
				Description string             `json:"description"`
				Tags        []string           `json:"tags"`
			}
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil || body.Workflow == nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("collab: bad publish body: %v", err))
				return
			}
			if err := repo.Publish(body.Workflow, body.Owner, body.Description, body.Tags...); err != nil {
				httpError(w, http.StatusConflict, err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"id": body.Workflow.ID})
		default:
			httpError(w, http.StatusMethodNotAllowed, errors.New("collab: GET or POST"))
		}
	})

	mux.HandleFunc("/workflows/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/workflows/")
		parts := strings.Split(rest, "/")
		id := parts[0]
		switch {
		case len(parts) == 1 && req.Method == http.MethodGet:
			e, err := repo.Get(id)
			if err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, e)
		case len(parts) == 2 && parts[1] == "runs" && req.Method == http.MethodGet:
			if _, err := repo.Peek(id); err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, repo.RunsOf(id))
		case len(parts) == 2 && parts[1] == "rating" && req.Method == http.MethodPost:
			var body struct {
				User  string `json:"user"`
				Stars int    `json:"stars"`
			}
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			if err := repo.Rate(id, body.User, body.Stars); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		default:
			httpError(w, http.StatusNotFound, fmt.Errorf("collab: no route %s %s", req.Method, req.URL.Path))
		}
	})

	mux.HandleFunc("/runs/", func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/runs/")
		l, err := repo.Store().RunLog(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})

	// Closure endpoints run on the pushed-down batch traversal: one store
	// round-trip per BFS hop regardless of backend.
	closure := func(dir store.Direction) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			id := req.URL.Query().Get("id")
			if id == "" {
				httpError(w, http.StatusBadRequest, errors.New("collab: id parameter required"))
				return
			}
			ids, err := repo.Store().Closure(id, dir)
			if err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, ids)
		}
	}
	mux.HandleFunc("/lineage", closure(store.Up))
	mux.HandleFunc("/dependents", closure(store.Down))

	mux.HandleFunc("/expand", func(w http.ResponseWriter, req *http.Request) {
		idsParam := req.URL.Query().Get("ids")
		if idsParam == "" {
			httpError(w, http.StatusBadRequest, errors.New("collab: ids parameter required"))
			return
		}
		dir := store.Up
		if d := req.URL.Query().Get("dir"); d != "" {
			var err error
			if dir, err = store.ParseDirection(d); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		adj, err := repo.Store().Expand(strings.Split(idsParam, ","), dir)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, adj)
	})

	mux.HandleFunc("/recommend", func(w http.ResponseWriter, req *http.Request) {
		user := req.URL.Query().Get("user")
		if user == "" {
			httpError(w, http.StatusBadRequest, errors.New("collab: user parameter required"))
			return
		}
		k, _ := strconv.Atoi(req.URL.Query().Get("k"))
		if k <= 0 {
			k = 5
		}
		writeJSON(w, http.StatusOK, repo.Recommend(user, k))
	})

	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query().Get("q")
		if q == "" {
			httpError(w, http.StatusBadRequest, errors.New("collab: q parameter required"))
			return
		}
		if opts.ExplainQueries != nil {
			parsed, err := pql.Parse(q)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			res, ex, err := pql.ExecuteExplain(repo.Store(), parsed)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			opts.ExplainQueries(q, ex.String())
			writeJSON(w, http.StatusOK, res)
			return
		}
		res, err := pql.Run(repo.Store(), q)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, repo.Stat())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
