package collab

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/collab/api"
	"repro/internal/obs"
	"repro/internal/query/pql"
	"repro/internal/query/standing"
	"repro/internal/store"
)

// NewHandler exposes the repository and lineage service over HTTP (the
// collaboratory's Web face). All current routes live under the versioned
// /v1 prefix and answer failures with the shared envelope
// {"error": ..., "code": ...} (codes in internal/collab/api); the bare
// legacy paths remain as deprecated aliases that delegate to their v1
// twin. Endpoints (all JSON unless noted):
//
//	GET  /v1/workflows                  list IDs (optionally ?q= full-text search)
//	POST /v1/workflows                  publish {workflow, owner, description, tags}
//	GET  /v1/workflows/{id}             entry (counts a download)
//	GET  /v1/workflows/{id}/runs        run IDs for a workflow
//	POST /v1/workflows/{id}/rating      rate {user, stars}
//	GET  /v1/runs/{id}                  full run log
//	GET  /v1/lineage?id=ENTITY          upstream closure of an entity
//	GET  /v1/dependents?id=ENTITY       downstream closure of an entity
//	GET  /v1/expand?ids=A,B&dir=up      one-hop frontier expansion (batch)
//	GET  /v1/recommend?user=U           recommendations
//	GET  /v1/query?q=PQL                PQL query against the provenance store
//	GET  /v1/stats                      repository statistics
//	GET  /v1/status                     node identity: role, epoch, uptime,
//	                                    store config, build version
//	GET  /v1/health                     load-balancer health: 200 in
//	                                    rotation, 503 out (stale/disconnected
//	                                    follower), reason in the body
//	GET  /v1/metrics                    runtime metrics, Prometheus text
//	                                    exposition format (plain text)
//	GET  /v1/replication/status         role + per-shard replication positions
//	POST /v1/replication/promote        follower→primary cutover: drain,
//	                                    bump epoch, drop read-only
//	GET  /v1/replication/stream?shard=N&from=OFF&max=BYTES
//	                                    record-aligned committed log chunk
//	                                    (octet-stream, X-Log-Committed header)
//	GET  /v1/replication/checkpoint?shard=N
//	                                    raw shard checkpoint snapshot (octet-stream)
//	POST /v1/subscriptions              register a standing query
//	GET  /v1/subscriptions              list standing queries
//	GET  /v1/subscriptions/{id}         current full result (re-snapshot)
//	DEL  /v1/subscriptions/{id}         unregister
//	GET  /v1/subscriptions/{id}/events  live delta stream (SSE; ?poll=1
//	                                    long-polls) — see subscriptions.go
//
// Follower deployments (HandlerOptions.ReadOnly, or a Failover
// coordinator reporting the follower role) reject non-GET traffic with
// 403/read_only_replica — except the /v1/subscriptions routes, which
// mutate node-local serving state rather than the store, and the
// promote route, a follower's escape hatch out of read-only — and stamp
// every response with X-Replica-Applied and X-Replica-Lag so clients
// can bound staleness. With a Failover coordinator, every response also
// carries X-Replication-Epoch; requests from a lower epoch are rejected
// 409/stale_epoch, a fenced primary rejects writes 403/fenced, and a
// follower past its -max-lag bound answers data reads
// 503/replica_too_stale.
//
// Every v1 route runs inside the observability middleware (obs.go): the
// response carries an X-Request-ID (propagated from the request when
// present), prov_http_requests_total{route,code} and
// prov_http_request_seconds{route} record the call, and — when configured
// — each request is logged through log/slog with requests slower than the
// threshold escalated to the Warn-level slow-query log.
func NewHandler(repo *Repository) http.Handler {
	return NewHandlerWith(repo, HandlerOptions{})
}

// FailoverState is the per-request failover surface the handler
// consults: the node's live role (promotion changes it at runtime), its
// fencing epoch, whether it fenced itself, and the epoch/promotion
// operations. Implemented by replica.Node; nil means the node does not
// participate in failover (standalone) and the static HandlerOptions
// fields govern.
type FailoverState interface {
	// Role returns the node's current replication role (api.Role*).
	Role() string
	// Epoch returns the node's fencing epoch.
	Epoch() uint64
	// Fenced reports a primary that demoted itself after observing a
	// higher epoch.
	Fenced() bool
	// Observe teaches the node an epoch seen on a request; returns true
	// when the observation fenced the node.
	Observe(remote uint64) bool
	// Promote turns a follower into the primary (POST
	// /v1/replication/promote).
	Promote(ctx context.Context) (*api.PromoteResponse, error)
	// Health assembles the /v1/health body; ok=false answers 503.
	Health(maxLag int64) (h api.HealthResponse, ok bool)
	// LagWithin reports whether a follower's lag is within max bytes
	// (true for non-followers or max <= 0) — the -max-lag read gate.
	LagWithin(max int64) bool
}

// ReplicationSource serves the primary side of log shipping: positional
// reads of each shard's committed WAL prefix plus its checkpoint
// snapshot. Implemented by replica.Source over a FileStore or a sharded
// router.
type ReplicationSource interface {
	// ReadLog returns a record-aligned chunk of shard's committed log
	// from the given offset (maxBytes 0: server default) and the
	// committed size at read time.
	ReadLog(shard int, from int64, maxBytes int) (data []byte, committed int64, err error)
	// CheckpointBytes returns the shard's checkpoint snapshot verbatim,
	// ok=false when none has been written yet.
	CheckpointBytes(shard int) (data []byte, ok bool, err error)
	// Positions reports every shard's committed and checkpoint offsets.
	Positions() []api.ShardPosition
}

// HandlerOptions tunes the HTTP face.
type HandlerOptions struct {
	// ExplainQueries, when set, receives each /query's executed-plan
	// report (join order, per-operator row counts, parallel scan width,
	// bytes allocated) — provd's -explain flag logs it.
	ExplainQueries func(query, explain string)
	// Source, when set, serves the /v1/replication/{stream,checkpoint}
	// endpoints followers ship from (primary role).
	Source ReplicationSource
	// Status, when set, answers /v1/replication/status; nil reports a
	// standalone node with no shards.
	Status func() api.ReplicationStatus
	// ReadOnly rejects every mutating request with 403 and code
	// read_only_replica — the follower deployment, whose store has
	// exactly one writer: the replication applier. When Failover is set
	// it wins: the effective read-only state is "role is follower, or
	// the node fenced itself", so promotion drops read-only at runtime.
	ReadOnly bool
	// Failover, when set, turns on epoch fencing and runtime role
	// transitions: every response is stamped with X-Replication-Epoch,
	// requests carrying a lower epoch are rejected 409/stale_epoch,
	// higher epochs are adopted (fencing an unfenced primary), and
	// /v1/health + POST /v1/replication/promote are served from it.
	Failover FailoverState
	// MaxLagBytes, when positive on a follower, bounds read staleness:
	// data reads while the replication lag exceeds it answer
	// 503/replica_too_stale instead of silently serving arbitrarily
	// stale results. Health, status, metrics, replication and
	// subscription routes are exempt.
	MaxLagBytes int64
	// Lag, when set (followers), returns the node's total applied bytes
	// and how far behind the primary it is; every response is stamped
	// with the X-Replica-Applied / X-Replica-Lag headers.
	Lag func() (applied, behind int64)
	// Metrics is the registry the per-route middleware records into and
	// /v1/metrics serves; nil uses obs.Default() (the registry every
	// subsystem instruments), which is what provd wants — tests pass a
	// fresh registry to assert on isolated counters.
	Metrics *obs.Registry
	// RequestLog, when set, receives one structured line per request
	// (request ID, method, route, status, bytes, duration).
	RequestLog *slog.Logger
	// SlowRequest, when positive, logs requests at least this slow at
	// Warn level with their query string — the slow-query log.
	SlowRequest time.Duration
	// Node describes this node for /v1/status; the zero value reports a
	// standalone single-shard node.
	Node NodeInfo
	// Standing, when set, serves the standing-query subscription API
	// under /v1/subscriptions (registration, listing, SSE event streams);
	// nil answers those routes 503/unavailable. Followers serve it too —
	// subscriptions are node-local serving state, not store writes, so the
	// ReadOnly guard exempts the subscription routes.
	Standing *standing.Manager
}

// NewHandlerWith is NewHandler with options.
func NewHandlerWith(repo *Repository, opts HandlerOptions) http.Handler {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	hobs := &httpObs{reg: reg, log: opts.RequestLog, slow: opts.SlowRequest}
	mux := http.NewServeMux()
	// Every v1 route registers through the observability middleware; the
	// legacy aliases re-dispatch into these handlers, so each request is
	// counted exactly once, under its v1 route label.
	v1 := func(pattern string, fn http.HandlerFunc) {
		route := api.V1Prefix + pattern
		mux.HandleFunc(route, hobs.instrument(route, fn))
	}

	v1("/metrics", metricsHandler(reg))
	v1("/status", statusHandler(opts))
	v1("/health", healthHandler(opts))

	v1("/workflows", func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			if q := req.URL.Query().Get("q"); q != "" {
				writeJSON(w, http.StatusOK, repo.Search(q, 20))
				return
			}
			writeJSON(w, http.StatusOK, repo.List())
		case http.MethodPost:
			var body api.PublishWorkflowRequest
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil || body.Workflow == nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("collab: bad publish body: %v", err))
				return
			}
			if err := repo.Publish(body.Workflow, body.Owner, body.Description, body.Tags...); err != nil {
				writeError(w, http.StatusConflict, api.CodeConflict, err)
				return
			}
			writeJSON(w, http.StatusCreated, api.PublishWorkflowResponse{ID: body.Workflow.ID})
		default:
			methodNotAllowed(w, "GET, POST")
		}
	})

	v1("/workflows/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, api.V1Prefix+"/workflows/")
		parts := strings.Split(rest, "/")
		id := parts[0]
		switch {
		case len(parts) == 1:
			if req.Method != http.MethodGet {
				methodNotAllowed(w, "GET")
				return
			}
			e, err := repo.Get(id)
			if err != nil {
				writeError(w, http.StatusNotFound, api.CodeNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, e)
		case len(parts) == 2 && parts[1] == "runs":
			if req.Method != http.MethodGet {
				methodNotAllowed(w, "GET")
				return
			}
			if _, err := repo.Peek(id); err != nil {
				writeError(w, http.StatusNotFound, api.CodeNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, repo.RunsOf(id))
		case len(parts) == 2 && parts[1] == "rating":
			if req.Method != http.MethodPost {
				methodNotAllowed(w, "POST")
				return
			}
			var body api.RateRequest
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
			if err := repo.Rate(id, body.User, body.Stars); err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
			writeJSON(w, http.StatusOK, api.StatusResponse{Status: "ok"})
		default:
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: no route %s %s", req.Method, req.URL.Path))
		}
	})

	v1("/runs/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		id := strings.TrimPrefix(req.URL.Path, api.V1Prefix+"/runs/")
		l, err := repo.Store().RunLog(id)
		if err != nil {
			writeError(w, http.StatusNotFound, api.CodeNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})

	// Closure endpoints run on the pushed-down batch traversal: one store
	// round-trip per BFS hop regardless of backend.
	closure := func(dir store.Direction) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodGet {
				methodNotAllowed(w, "GET")
				return
			}
			id := req.URL.Query().Get("id")
			if id == "" {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, errors.New("collab: id parameter required"))
				return
			}
			ids, err := repo.Store().Closure(id, dir)
			if err != nil {
				writeError(w, http.StatusNotFound, api.CodeNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, ids)
		}
	}
	v1("/lineage", closure(store.Up))
	v1("/dependents", closure(store.Down))

	v1("/expand", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		idsParam := req.URL.Query().Get("ids")
		if idsParam == "" {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, errors.New("collab: ids parameter required"))
			return
		}
		dir := store.Up
		if d := req.URL.Query().Get("dir"); d != "" {
			var err error
			if dir, err = store.ParseDirection(d); err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
		}
		adj, err := repo.Store().Expand(strings.Split(idsParam, ","), dir)
		if err != nil {
			writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
			return
		}
		writeJSON(w, http.StatusOK, adj)
	})

	v1("/recommend", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		user := req.URL.Query().Get("user")
		if user == "" {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, errors.New("collab: user parameter required"))
			return
		}
		k, _ := strconv.Atoi(req.URL.Query().Get("k"))
		if k <= 0 {
			k = 5
		}
		writeJSON(w, http.StatusOK, repo.Recommend(user, k))
	})

	v1("/query", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		q := req.URL.Query().Get("q")
		if q == "" {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, errors.New("collab: q parameter required"))
			return
		}
		if opts.ExplainQueries != nil {
			parsed, err := pql.Parse(q)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
			res, ex, err := pql.ExecuteExplain(repo.Store(), parsed)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
			opts.ExplainQueries(q, ex.String())
			writeJSON(w, http.StatusOK, res)
			return
		}
		res, err := pql.Run(repo.Store(), q)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	v1("/stats", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		writeJSON(w, http.StatusOK, repo.Stat())
	})

	v1("/replication/status", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		if opts.Status != nil {
			writeJSON(w, http.StatusOK, opts.Status())
			return
		}
		writeJSON(w, http.StatusOK, api.ReplicationStatus{Role: api.RoleStandalone})
	})

	v1("/replication/stream", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		if opts.Source == nil {
			writeError(w, http.StatusNotFound, api.CodeUnavailable,
				errors.New("collab: this node does not serve a replicable log (start provd with -role primary)"))
			return
		}
		q := req.URL.Query()
		shard, _ := strconv.Atoi(q.Get("shard"))
		from, err := strconv.ParseInt(q.Get("from"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("collab: bad from offset %q", q.Get("from")))
			return
		}
		maxBytes, _ := strconv.Atoi(q.Get("max"))
		data, committed, err := opts.Source.ReadLog(shard, from, maxBytes)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
			return
		}
		w.Header().Set(api.HeaderLogCommitted, strconv.FormatInt(committed, 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})

	v1("/replication/checkpoint", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		if opts.Source == nil {
			writeError(w, http.StatusNotFound, api.CodeUnavailable,
				errors.New("collab: this node does not serve a replicable log (start provd with -role primary)"))
			return
		}
		shard, _ := strconv.Atoi(req.URL.Query().Get("shard"))
		data, ok, err := opts.Source.CheckpointBytes(shard)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("collab: shard %d has no checkpoint yet", shard))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})

	v1("/replication/promote", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			methodNotAllowed(w, "POST")
			return
		}
		if opts.Failover == nil {
			writeError(w, http.StatusNotFound, api.CodeUnavailable,
				errors.New("collab: this node has no failover coordinator (start provd with -role follower)"))
			return
		}
		pr, err := opts.Failover.Promote(req.Context())
		if err != nil {
			status, code := http.StatusInternalServerError, api.CodeInternal
			var re *api.RemoteError
			if errors.As(err, &re) {
				status, code = re.HTTPStatus, re.Code
			}
			writeError(w, status, code, err)
			return
		}
		writeJSON(w, http.StatusOK, pr)
	})

	v1("/subscriptions", subscriptionsHandler(opts.Standing))
	v1("/subscriptions/", subscriptionHandler(opts.Standing))

	// Deprecated bare aliases: each legacy path delegates to its v1 twin
	// by prefix rewrite, so there is exactly one implementation per
	// route.
	for _, p := range []string{
		"/workflows", "/workflows/", "/runs/", "/lineage", "/dependents",
		"/expand", "/recommend", "/query", "/stats",
	} {
		mux.HandleFunc(p, func(w http.ResponseWriter, req *http.Request) {
			r2 := req.Clone(req.Context())
			r2.URL.Path = api.V1Prefix + req.URL.Path
			mux.ServeHTTP(w, r2)
		})
	}

	if !opts.ReadOnly && opts.Lag == nil && opts.Failover == nil {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fo := opts.Failover
		role, fenced := "", false
		if fo != nil {
			// Epoch exchange first: a request from a lower epoch is acting
			// on a fenced configuration and must not be served; a higher
			// epoch teaches this node it has been superseded (an unfenced
			// primary fences itself inside Observe). The response always
			// carries our (possibly just-raised) epoch so the peer learns it.
			if v := req.Header.Get(api.HeaderReplicationEpoch); v != "" {
				if remote, err := strconv.ParseUint(v, 10, 64); err == nil {
					if remote < fo.Epoch() {
						w.Header().Set(api.HeaderReplicationEpoch, strconv.FormatUint(fo.Epoch(), 10))
						writeError(w, http.StatusConflict, api.CodeStaleEpoch,
							fmt.Errorf("collab: request epoch %d is behind this node's epoch %d", remote, fo.Epoch()))
						return
					}
					fo.Observe(remote)
				}
			}
			w.Header().Set(api.HeaderReplicationEpoch, strconv.FormatUint(fo.Epoch(), 10))
			role, fenced = fo.Role(), fo.Fenced()
		}
		follower := role == api.RoleFollower || (fo == nil && opts.Lag != nil)
		if follower && opts.Lag != nil {
			applied, behind := opts.Lag()
			w.Header().Set(api.HeaderReplicaApplied, strconv.FormatInt(applied, 10))
			w.Header().Set(api.HeaderReplicaLag, strconv.FormatInt(behind, 10))
			// The -max-lag staleness bound: beyond it a data read gets a
			// 503 rather than an arbitrarily stale answer. Health, status,
			// metrics, replication and subscription routes stay reachable —
			// they are how operators and consumers see the staleness. Only
			// reads are gated: a write never serves stale data, and gets
			// the more actionable read-only rejection below.
			if opts.MaxLagBytes > 0 && behind > opts.MaxLagBytes &&
				(req.Method == http.MethodGet || req.Method == http.MethodHead) &&
				!staleExempt(req.URL.Path) {
				writeError(w, http.StatusServiceUnavailable, api.CodeReplicaTooStale,
					fmt.Errorf("collab: replica lag %d bytes exceeds the node's -max-lag bound %d", behind, opts.MaxLagBytes))
				return
			}
		}
		// Subscriptions are node-local serving state, not store writes: a
		// follower hosts them (fed by replication apply), so registering
		// and deleting them must pass the read-only guard. Promotion is
		// the follower's escape hatch out of read-only, so it passes too.
		exemptRoute := strings.HasPrefix(req.URL.Path, api.V1Prefix+"/subscriptions") ||
			req.URL.Path == api.V1Prefix+"/replication/promote"
		if req.Method != http.MethodGet && req.Method != http.MethodHead && !exemptRoute {
			readOnly := opts.ReadOnly
			if fo != nil {
				readOnly = follower
			}
			if readOnly {
				writeError(w, http.StatusForbidden, api.CodeReadOnlyReplica,
					errors.New("collab: this node is a read replica; send writes to the primary"))
				return
			}
			if fenced {
				writeError(w, http.StatusForbidden, api.CodeFenced,
					errors.New("collab: this primary is fenced (a higher-epoch primary exists); send writes there"))
				return
			}
		}
		mux.ServeHTTP(w, req)
	})
}

// staleExempt lists the routes a staleness-bounded follower still
// serves past its -max-lag bound: operational surfaces and the
// replication/subscription machinery itself.
func staleExempt(path string) bool {
	for _, p := range []string{"/health", "/status", "/metrics"} {
		if path == api.V1Prefix+p {
			return true
		}
	}
	return strings.HasPrefix(path, api.V1Prefix+"/replication/") ||
		strings.HasPrefix(path, api.V1Prefix+"/subscriptions")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the shared v1 envelope; every failure path goes
// through here so clients can rely on {"error", "code"} uniformly.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, api.Error{Message: err.Error(), Code: code})
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
		fmt.Errorf("collab: method not allowed (use %s)", allow))
}
