package collab

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/collab/api"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestRequestIDMiddleware: every response carries an X-Request-ID; an
// incoming ID is propagated verbatim, a missing one is generated, and two
// generated IDs differ.
func TestRequestIDMiddleware(t *testing.T) {
	h := NewHandlerWith(NewRepository(store.NewMemStore()),
		HandlerOptions{Metrics: obs.NewRegistry()})
	srv := httptest.NewServer(h)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	req.Header.Set(api.HeaderRequestID, "caller-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.HeaderRequestID); got != "caller-trace-7" {
		t.Fatalf("incoming request ID not propagated: got %q", got)
	}

	var generated []string
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(api.HeaderRequestID)
		if id == "" {
			t.Fatal("no X-Request-ID generated")
		}
		generated = append(generated, id)
	}
	if generated[0] == generated[1] {
		t.Fatalf("generated request IDs collide: %q", generated[0])
	}
}

// TestPerRouteCounters: requests land in prov_http_requests_total under
// their v1 route label and status code — including legacy-alias requests,
// which re-dispatch into the v1 handler and must be counted exactly once.
func TestPerRouteCounters(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHandlerWith(NewRepository(store.NewMemStore()), HandlerOptions{Metrics: reg})
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/v1/stats", "/v1/stats", "/stats", "/v1/runs/nope"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if got := reg.Counter("prov_http_requests_total", "",
		obs.L("route", "/v1/stats"), obs.L("code", "200")).Value(); got != 3 {
		t.Errorf("stats 200 counter = %d, want 3 (two direct + one legacy alias)", got)
	}
	if got := reg.Counter("prov_http_requests_total", "",
		obs.L("route", "/v1/runs/"), obs.L("code", "404")).Value(); got != 1 {
		t.Errorf("runs 404 counter = %d, want 1", got)
	}
	if hist, ok := reg.FindHistogram("prov_http_request_seconds", obs.L("route", "/v1/stats")); !ok {
		t.Error("no latency histogram for /v1/stats")
	} else if n := hist.Snapshot().Count; n != 3 {
		t.Errorf("latency histogram count = %d, want 3", n)
	}
}

// TestMetricsEndpoint: /v1/metrics serves the registry as Prometheus text
// including the HTTP family recording the scrape's own route.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHandlerWith(NewRepository(store.NewMemStore()), HandlerOptions{Metrics: reg})
	srv := httptest.NewServer(h)
	defer srv.Close()

	if resp, err := http.Get(srv.URL + "/v1/stats"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	body, err := api.NewClient(srv.URL, nil).MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE prov_http_requests_total counter",
		`prov_http_requests_total{route="/v1/stats",code="200"} 1`,
		"# TYPE prov_http_request_seconds summary",
		`prov_http_request_seconds{route="/v1/stats",quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}

// TestStatusEndpoint: /v1/status reports the configured node identity.
func TestStatusEndpoint(t *testing.T) {
	h := NewHandlerWith(NewRepository(store.NewMemStore()), HandlerOptions{
		Metrics: obs.NewRegistry(),
		Node: NodeInfo{
			Role:       api.RolePrimary,
			StoreDir:   "/data/prov",
			Shards:     4,
			Durability: "group",
			Checkpoint: "every 512 runs or 4.0 MiB",
			Cache:      true,
			Start:      time.Now().Add(-time.Minute),
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	ns, err := api.NewClient(srv.URL, nil).NodeStatus()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Role != api.RolePrimary || ns.Shards != 4 || !ns.ClosureCache ||
		ns.StoreDir != "/data/prov" || ns.Durability != "group" {
		t.Errorf("unexpected status: %+v", ns)
	}
	if ns.UptimeSeconds < 59 {
		t.Errorf("uptime %.1fs, want >= 59s", ns.UptimeSeconds)
	}
	if ns.GoVersion == "" {
		t.Error("missing go version")
	}
}

// TestRequestAndSlowLogging: the request log carries the request ID and
// route; a zero slow threshold keeps the slow log quiet, a negative-cost
// threshold (1ns) escalates the same request to Warn with its query.
func TestRequestAndSlowLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	reg := obs.NewRegistry()
	h := NewHandlerWith(NewRepository(store.NewMemStore()), HandlerOptions{
		Metrics:     reg,
		RequestLog:  logger,
		SlowRequest: time.Nanosecond,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/query?q=bogus", nil)
	req.Header.Set(api.HeaderRequestID, "trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := buf.String()
	for _, want := range []string{
		`msg=request`, `id=trace-42`, `route=/v1/query`, `status=400`,
		`msg="slow request"`, `query="q=bogus"`, `level=WARN`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
	if got := reg.Counter("prov_http_slow_requests_total", "").Value(); got != 1 {
		t.Errorf("slow counter = %d, want 1", got)
	}
}
