package collab

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/collab/api"
	"repro/internal/store"
	"repro/internal/workloads"
)

// seededServer publishes a workflow plus one run and serves it.
func seededServer(t *testing.T, opts HandlerOptions) (*httptest.Server, *Repository) {
	t.Helper()
	r := newRepo()
	wf := workloads.MedicalImaging()
	if err := r.Publish(wf, "juliana", "figure 1", "imaging"); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishRun("medimg", "juliana", runOf(t, wf)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerWith(r, opts))
	t.Cleanup(srv.Close)
	return srv, r
}

// decodeEnvelope asserts the response is the shared v1 error envelope
// and returns it.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) api.Error {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var env api.Error
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Code != wantCode || env.Message == "" {
		t.Fatalf("envelope = %+v, want code %q and a message", env, wantCode)
	}
	return env
}

func TestV1ErrorEnvelope(t *testing.T) {
	srv, _ := seededServer(t, HandlerOptions{})

	resp, err := http.Get(srv.URL + "/v1/workflows/nope")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusNotFound, api.CodeNotFound)

	resp, err = http.Get(srv.URL + "/v1/lineage") // missing id param
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusBadRequest, api.CodeBadRequest)

	// Legacy aliases share the handler, so they share the envelope too.
	resp, err = http.Get(srv.URL + "/workflows/nope")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusNotFound, api.CodeNotFound)
}

func TestV1MethodChecks(t *testing.T) {
	srv, _ := seededServer(t, HandlerOptions{})
	for _, tc := range []struct {
		method, path, allow string
	}{
		{http.MethodDelete, "/v1/workflows", "GET, POST"},
		{http.MethodPost, "/v1/stats", "GET"},
		{http.MethodPost, "/v1/lineage?id=x", "GET"},
		{http.MethodGet, "/v1/workflows/medimg/rating", "POST"},
		{http.MethodPost, "/v1/replication/status", "GET"},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		decodeEnvelope(t, resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed)
	}
}

// TestV1LegacyAliases checks every bare legacy route answers exactly like
// its v1 twin.
func TestV1LegacyAliases(t *testing.T) {
	srv, _ := seededServer(t, HandlerOptions{})
	// GET /workflows/{id} is excluded: it counts downloads, so two
	// consecutive fetches legitimately differ — checked separately below.
	for _, path := range []string{
		"/workflows",
		"/workflows/medimg/runs",
		"/stats",
		"/query?q=" + strings.ReplaceAll("SELECT module FROM executions", " ", "+"),
	} {
		legacy, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		legacyBody, _ := io.ReadAll(legacy.Body)
		legacy.Body.Close()
		v1, err := http.Get(srv.URL + api.V1Prefix + path)
		if err != nil {
			t.Fatal(err)
		}
		v1Body, _ := io.ReadAll(v1.Body)
		v1.Body.Close()
		if legacy.StatusCode != v1.StatusCode || string(legacyBody) != string(v1Body) {
			t.Errorf("%s: legacy (%d, %q) != v1 (%d, %q)",
				path, legacy.StatusCode, legacyBody, v1.StatusCode, v1Body)
		}
	}

	resp, err := http.Get(srv.URL + "/workflows/medimg")
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || e.Owner != "juliana" {
		t.Fatalf("legacy workflow fetch: status %d, entry %+v", resp.StatusCode, e)
	}
}

func TestV1ReadOnlyFollowerFace(t *testing.T) {
	srv, _ := seededServer(t, HandlerOptions{
		ReadOnly: true,
		Lag:      func() (int64, int64) { return 12345, 67 },
	})

	// Reads pass and carry the staleness headers.
	resp, err := http.Get(srv.URL + "/v1/workflows")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read status = %d", resp.StatusCode)
	}
	if a := resp.Header.Get(api.HeaderReplicaApplied); a != "12345" {
		t.Fatalf("%s = %q", api.HeaderReplicaApplied, a)
	}
	if l := resp.Header.Get(api.HeaderReplicaLag); l != "67" {
		t.Fatalf("%s = %q", api.HeaderReplicaLag, l)
	}

	// Writes bounce with the stable read_only_replica code — on v1 and
	// legacy paths alike.
	for _, path := range []string{"/v1/workflows", "/workflows"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		decodeEnvelope(t, resp, http.StatusForbidden, api.CodeReadOnlyReplica)
	}
}

func TestV1ReplicationEndpointsWithoutSource(t *testing.T) {
	srv, _ := seededServer(t, HandlerOptions{})

	// No Status hook: the node reports itself standalone.
	var rs api.ReplicationStatus
	resp, err := http.Get(srv.URL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rs.Role != api.RoleStandalone || len(rs.Shards) != 0 {
		t.Fatalf("status = %+v", rs)
	}

	// No Source: stream and checkpoint are unavailable, not panics.
	for _, path := range []string{
		"/v1/replication/stream?shard=0&from=0&max=0",
		"/v1/replication/checkpoint?shard=0",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		decodeEnvelope(t, resp, http.StatusNotFound, api.CodeUnavailable)
	}
}

// TestV1ClientRoundtrip drives every typed client method against a live
// handler and checks remote errors surface as *api.RemoteError with the
// envelope's code.
func TestV1ClientRoundtrip(t *testing.T) {
	srv, repo := seededServer(t, HandlerOptions{})
	c := api.NewClient(srv.URL, nil)

	ids, err := c.Workflows()
	if err != nil || !reflect.DeepEqual(ids, []string{"medimg"}) {
		t.Fatalf("Workflows = %v, %v", ids, err)
	}
	hits, err := c.Search("imaging")
	if err != nil || len(hits) == 0 || hits[0].WorkflowID != "medimg" {
		t.Fatalf("Search = %+v, %v", hits, err)
	}

	wf := workloads.Genomics("sample-1")
	id, err := c.PublishWorkflow(wf, "carlos", "alignment pipeline", "genomics")
	if err != nil || id != wf.ID {
		t.Fatalf("PublishWorkflow = %q, %v", id, err)
	}
	if err := c.Rate(id, "juliana", 4); err != nil {
		t.Fatal(err)
	}

	runs, err := c.RunsOf("medimg")
	if err != nil || len(runs) != 1 {
		t.Fatalf("RunsOf = %v, %v", runs, err)
	}
	l, err := c.RunLog(runs[0])
	if err != nil || l.Run.ID != runs[0] {
		t.Fatalf("RunLog = %+v, %v", l, err)
	}

	// Closures via the client agree with the store.
	var someArtifact string
	for _, a := range l.Artifacts {
		someArtifact = a.ID
		break
	}
	up, err := c.Lineage(someArtifact)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repo.Store().Closure(someArtifact, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(up)
	sort.Strings(want)
	if !reflect.DeepEqual(up, want) {
		t.Fatalf("Lineage = %v, want %v", up, want)
	}
	if _, err := c.Dependents(someArtifact); err != nil {
		t.Fatal(err)
	}
	adj, err := c.Expand([]string{someArtifact}, "up")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := adj[someArtifact]; !ok {
		t.Fatalf("Expand missing seed: %v", adj)
	}

	res, err := c.Query("SELECT module FROM executions")
	if err != nil || len(res.Columns) == 0 {
		t.Fatalf("Query = %+v, %v", res, err)
	}
	st, err := c.Stats()
	if err != nil || st.Workflows != 2 || st.Runs != 1 {
		t.Fatalf("Stats = %+v, %v", st, err)
	}
	rs, err := c.ReplicationStatus()
	if err != nil || rs.Role != api.RoleStandalone {
		t.Fatalf("ReplicationStatus = %+v, %v", rs, err)
	}

	// Remote failures carry the envelope code.
	_, err = c.RunLog("nope")
	var remote *api.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *api.RemoteError", err)
	}
	if remote.HTTPStatus != http.StatusNotFound || remote.Code != api.CodeNotFound {
		t.Fatalf("remote = %+v", remote)
	}
}
