package collab

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// Recommendation is a scored workflow suggestion for a user.
type Recommendation struct {
	WorkflowID string
	Score      float64
}

// Recommend suggests workflows to a user by collaborative filtering over
// run history: workflows run by users who ran the same workflows as this
// user, weighted by overlap, excluding what the user already ran. Ties are
// broken by average rating, then ID.
func (r *Repository) Recommend(user string, topK int) []Recommendation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// user -> set of workflows they ran.
	ranBy := map[string]map[string]bool{}
	for wfID, runs := range r.runsBy {
		for _, runID := range runs {
			u := r.userOf[runID]
			if ranBy[u] == nil {
				ranBy[u] = map[string]bool{}
			}
			ranBy[u][wfID] = true
		}
	}
	mine := ranBy[user]
	if len(mine) == 0 {
		return nil
	}
	scores := map[string]float64{}
	for other, theirs := range ranBy {
		if other == user {
			continue
		}
		overlap := 0
		for wf := range mine {
			if theirs[wf] {
				overlap++
			}
		}
		if overlap == 0 {
			continue
		}
		w := float64(overlap) / float64(len(theirs))
		for wf := range theirs {
			if !mine[wf] {
				scores[wf] += w
			}
		}
	}
	out := make([]Recommendation, 0, len(scores))
	for wf, sc := range scores {
		out = append(out, Recommendation{WorkflowID: wf, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		ri, _ := r.entries[out[i].WorkflowID].AverageRating()
		rj, _ := r.entries[out[j].WorkflowID].AverageRating()
		if ri != rj {
			return ri > rj
		}
		return out[i].WorkflowID < out[j].WorkflowID
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

// CommunityOptions configures synthetic community generation.
type CommunityOptions struct {
	Seed     int64
	Users    int
	RunsEach int // runs published per user
}

// SynthesizeCommunity populates a repository with the workload pipelines
// and a user population whose run behaviour follows preferential
// attachment: popular workflows accumulate more runs, the skew observed on
// social-data-analysis sites (Many Eyes [44]). It returns the user names.
func SynthesizeCommunity(r *Repository, opt CommunityOptions) ([]string, error) {
	if opt.Users < 2 {
		opt.Users = 2
	}
	if opt.RunsEach < 1 {
		opt.RunsEach = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)

	catalog := []struct {
		wf   *workflow.Workflow
		desc string
		tags []string
	}{
		{workloads.MedicalImaging(), "CT histogram + isosurface (Figure 1)", []string{"imaging", "visualization"}},
		{workloads.SmoothedImaging(), "smoothed isosurface variant", []string{"imaging", "visualization"}},
		{workloads.Genomics("s1"), "read trimming, alignment and variant calling", []string{"genomics"}},
		{workloads.Forecasting("st1"), "sensor cleaning and forecasting", []string{"environment", "forecast"}},
		{workloads.DownloadAndRender(), "download and visualize remote data", []string{"visualization", "web"}},
	}
	owners := []string{"alice", "bob", "carol", "dave", "erin"}
	workflows := map[string]*workflow.Workflow{}
	for i, c := range catalog {
		if err := r.Publish(c.wf, owners[i%len(owners)], c.desc, c.tags...); err != nil {
			return nil, err
		}
		workflows[c.wf.ID] = c.wf
	}

	runOnce := func(wf *workflow.Workflow) (*provenance.RunLog, error) {
		col := provenance.NewCollector()
		e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
		res, err := e.Run(context.Background(), wf, nil)
		if err != nil {
			return nil, err
		}
		return col.Log(res.RunID)
	}

	users := make([]string, opt.Users)
	ids := r.List()
	runCount := map[string]int{}
	for _, id := range ids {
		runCount[id] = 1 // smoothing so every workflow is reachable
	}
	for i := range users {
		users[i] = fmt.Sprintf("user%03d", i)
		for k := 0; k < opt.RunsEach; k++ {
			id := pickPreferential(rng, ids, runCount)
			log, err := runOnce(workflows[id])
			if err != nil {
				return nil, err
			}
			if err := r.PublishRun(id, users[i], log); err != nil {
				return nil, err
			}
			runCount[id]++
			if rng.Intn(3) == 0 {
				if err := r.Rate(id, users[i], 3+rng.Intn(3)); err != nil {
					return nil, err
				}
			}
		}
	}
	return users, nil
}

func pickPreferential(rng *rand.Rand, ids []string, count map[string]int) string {
	total := 0
	for _, id := range ids {
		total += count[id]
	}
	x := rng.Intn(total)
	for _, id := range ids {
		x -= count[id]
		if x < 0 {
			return id
		}
	}
	return ids[len(ids)-1]
}
