package collab

// HTTP-surface observability: the per-route middleware every v1 handler is
// registered through (request counts by route and status, latency
// histograms, X-Request-ID stamping, structured request logging, the
// slow-query log) plus the /v1/metrics and /v1/status handlers.

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/collab/api"
	"repro/internal/obs"
)

// NodeInfo describes the serving node for /v1/status; provd fills it from
// its flags. The zero value reports a standalone node started when the
// handler was built.
type NodeInfo struct {
	Role       string    // api.Role*; "" reports standalone
	StoreDir   string    // store directory ("" for in-memory backends)
	Shards     int       // shard count (1 for unsharded stores)
	Durability string    // store.Durability string ("" when not applicable)
	Checkpoint string    // human-readable auto-checkpoint policy
	Cache      bool      // closure cache enabled
	Start      time.Time // process start (uptime origin)
}

// Request IDs are "<process>-<seq>": a per-process hex prefix (start time
// mixed with the PID) plus an atomic sequence number — unique within a
// fleet for tracing purposes without any coordination or crypto cost.
var (
	reqIDPrefix = fmt.Sprintf("%08x", uint32(time.Now().UnixNano())^uint32(os.Getpid())<<16)
	reqIDSeq    atomic.Uint64
)

func nextRequestID() string {
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDSeq.Add(1), 16)
}

// statusRecorder captures the status code a handler writes (200 when the
// handler never calls WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController so
// streaming handlers (SSE, replication) can still flush through the
// middleware.
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// httpObs is the per-handler observability state threaded through every
// v1 route registration.
type httpObs struct {
	reg  *obs.Registry
	log  *slog.Logger  // nil: no request logging
	slow time.Duration // 0: no slow-query log
}

// instrument wraps one route's handler with the observability middleware.
// The route label is the registered pattern — a closed set, so metric
// cardinality is bounded by the API surface, never by request paths. The
// latency histogram is resolved once at registration; the (route, code)
// counter per request (the code is only known afterwards).
func (h *httpObs) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	lat := h.reg.Histogram("prov_http_request_seconds",
		"Request latency by route.", obs.L("route", route))
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		id := req.Header.Get(api.HeaderRequestID)
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set(api.HeaderRequestID, id)
		rec := &statusRecorder{ResponseWriter: w}
		fn(rec, req)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		dur := time.Since(start)
		lat.Observe(dur)
		h.reg.Counter("prov_http_requests_total", "Requests served by route and status code.",
			obs.L("route", route), obs.L("code", strconv.Itoa(rec.status))).Inc()
		if h.log != nil {
			h.log.LogAttrs(req.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", req.Method),
				slog.String("route", route),
				slog.String("path", req.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("dur", dur),
			)
		}
		if h.slow > 0 && dur >= h.slow {
			h.reg.Counter("prov_http_slow_requests_total",
				"Requests slower than the configured slow-query threshold.").Inc()
			logger := h.log
			if logger == nil {
				logger = slog.Default()
			}
			logger.LogAttrs(req.Context(), slog.LevelWarn, "slow request",
				slog.String("id", id),
				slog.String("method", req.Method),
				slog.String("route", route),
				slog.String("path", req.URL.Path),
				slog.String("query", req.URL.RawQuery),
				slog.Int("status", rec.status),
				slog.Duration("dur", dur),
				slog.Duration("threshold", h.slow),
			)
		}
	}
}

// metricsHandler serves the registry in Prometheus text exposition format.
func metricsHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = reg.WritePrometheus(w)
	}
}

// statusHandler serves /v1/status from the node description plus the
// live failover state: role and epoch come from the coordinator when
// one is wired (promotion changes them at runtime), replica state and
// lag from the follower's health.
func statusHandler(opts HandlerOptions) http.HandlerFunc {
	node := opts.Node
	if node.Role == "" {
		node.Role = api.RoleStandalone
	}
	if node.Shards == 0 {
		node.Shards = 1
	}
	if node.Start.IsZero() {
		node.Start = time.Now()
	}
	version, revision := buildVersion()
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		ns := api.NodeStatus{
			Role:          node.Role,
			UptimeSeconds: time.Since(node.Start).Seconds(),
			StoreDir:      node.StoreDir,
			Shards:        node.Shards,
			Durability:    node.Durability,
			Checkpoint:    node.Checkpoint,
			ClosureCache:  node.Cache,
			GoVersion:     runtime.Version(),
			Version:       version,
			Revision:      revision,
		}
		if fo := opts.Failover; fo != nil {
			h, _ := fo.Health(opts.MaxLagBytes)
			ns.Role, ns.Epoch, ns.Fenced = h.Role, h.Epoch, h.Fenced
			if h.Replication != nil {
				ns.ReplicaState = h.Replication.State
				ns.ReplicaLagBytes = h.Replication.LagBytes
			}
		} else if opts.Lag != nil {
			_, ns.ReplicaLagBytes = opts.Lag()
		}
		writeJSON(w, http.StatusOK, ns)
	}
}

// healthHandler serves /v1/health: 200 while the node belongs in a load
// balancer's rotation, 503 when it does not (a disconnected or
// staleness-bounded follower), with the reason in the body either way.
// Nodes without a failover coordinator are simply alive: serving the
// request is the health check.
func healthHandler(opts HandlerOptions) http.HandlerFunc {
	role := opts.Node.Role
	if role == "" {
		role = api.RoleStandalone
	}
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		if opts.Failover == nil {
			writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok", Role: role})
			return
		}
		h, ok := opts.Failover.Health(opts.MaxLagBytes)
		code := http.StatusOK
		if !ok {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	}
}

// buildVersion extracts the main-module version and vcs revision the
// binary was built at; empty strings when the build recorded neither
// (e.g. plain `go build` in a dirty tree or a test binary).
func buildVersion() (version, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return version, revision
}
