// Package collab implements the social-data-analysis substrate of §2.3
// [19]: a science collaboratory where users share, search, re-use and rate
// workflows and their provenance. It provides a multi-user repository with
// full-text search, usage-based recommendation, a synthetic community
// generator for experiments, and an HTTP service (cmd/provd) exposing the
// repository and lineage queries.
package collab

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workflow"
)

// Entry is a shared workflow with its social metadata.
type Entry struct {
	Workflow    *workflow.Workflow `json:"workflow"`
	Owner       string             `json:"owner"`
	Description string             `json:"description"`
	Tags        []string           `json:"tags"`
	Downloads   int                `json:"downloads"`
	Ratings     map[string]int     `json:"ratings"` // user -> 1..5
}

// AverageRating returns the mean rating, or 0 with ok=false when unrated.
func (e *Entry) AverageRating() (float64, bool) {
	if len(e.Ratings) == 0 {
		return 0, false
	}
	sum := 0
	for _, r := range e.Ratings {
		sum += r
	}
	return float64(sum) / float64(len(e.Ratings)), true
}

// Repository is the collaboratory: shared workflows plus a provenance
// store for the runs users publish. Safe for concurrent use.
type Repository struct {
	mu      sync.RWMutex
	entries map[string]*Entry // workflow ID -> entry
	order   []string
	runsBy  map[string][]string // workflow ID -> run IDs
	userOf  map[string]string   // run ID -> user
	store   store.Store
	index   *invertedIndex
}

// NewRepository returns an empty collaboratory persisting run logs to s.
func NewRepository(s store.Store) *Repository {
	return &Repository{
		entries: map[string]*Entry{},
		runsBy:  map[string][]string{},
		userOf:  map[string]string{},
		store:   s,
		index:   newInvertedIndex(),
	}
}

// Store exposes the underlying provenance store (read-only use).
func (r *Repository) Store() store.Store { return r.store }

// Publish shares a workflow. Workflow IDs are unique in the repository.
func (r *Repository) Publish(wf *workflow.Workflow, owner, description string, tags ...string) error {
	if err := wf.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[wf.ID]; dup {
		return fmt.Errorf("collab: workflow %q already published", wf.ID)
	}
	e := &Entry{Workflow: wf.Clone(), Owner: owner, Description: description,
		Tags: append([]string(nil), tags...), Ratings: map[string]int{}}
	r.entries[wf.ID] = e
	r.order = append(r.order, wf.ID)
	r.index.add(wf.ID, indexText(e))
	return nil
}

// indexText collects the searchable text of an entry.
func indexText(e *Entry) string {
	var parts []string
	parts = append(parts, e.Workflow.ID, e.Workflow.Name, e.Owner, e.Description)
	parts = append(parts, e.Tags...)
	for _, m := range e.Workflow.Modules {
		parts = append(parts, m.ID, m.Type)
		for _, v := range m.Annotations {
			parts = append(parts, v)
		}
	}
	for _, v := range e.Workflow.Annotations {
		parts = append(parts, v)
	}
	return strings.Join(parts, " ")
}

// Get retrieves an entry and counts the download.
func (r *Repository) Get(workflowID string) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[workflowID]
	if !ok {
		return nil, fmt.Errorf("collab: workflow %q not found", workflowID)
	}
	e.Downloads++
	return e, nil
}

// Peek retrieves an entry without counting a download.
func (r *Repository) Peek(workflowID string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[workflowID]
	if !ok {
		return nil, fmt.Errorf("collab: workflow %q not found", workflowID)
	}
	return e, nil
}

// List returns all workflow IDs in publication order.
func (r *Repository) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Rate records a 1-5 rating by a user.
func (r *Repository) Rate(workflowID, user string, stars int) error {
	if stars < 1 || stars > 5 {
		return fmt.Errorf("collab: rating %d out of range 1..5", stars)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[workflowID]
	if !ok {
		return fmt.Errorf("collab: workflow %q not found", workflowID)
	}
	e.Ratings[user] = stars
	return nil
}

// PublishRun stores the provenance of a run of a published workflow,
// attributed to a user.
func (r *Repository) PublishRun(workflowID, user string, log *provenance.RunLog) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[workflowID]; !ok {
		return fmt.Errorf("collab: workflow %q not found", workflowID)
	}
	if err := r.store.PutRunLog(log); err != nil {
		return err
	}
	r.runsBy[workflowID] = append(r.runsBy[workflowID], log.Run.ID)
	r.userOf[log.Run.ID] = user
	return nil
}

// RunsOf returns the run IDs published for a workflow.
func (r *Repository) RunsOf(workflowID string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.runsBy[workflowID]...)
}

// UserOfRun returns who published a run.
func (r *Repository) UserOfRun(runID string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.userOf[runID]
}

// Stats summarizes repository contents.
type Stats struct {
	Workflows int
	Runs      int
	Users     int
}

// Stat computes repository statistics.
func (r *Repository) Stat() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	users := map[string]bool{}
	runs := 0
	for _, e := range r.entries {
		users[e.Owner] = true
	}
	for _, list := range r.runsBy {
		runs += len(list)
	}
	for _, u := range r.userOf {
		users[u] = true
	}
	return Stats{Workflows: len(r.entries), Runs: runs, Users: len(users)}
}

// --- search ----------------------------------------------------------------

// invertedIndex is a token -> document-ID index with term frequencies.
type invertedIndex struct {
	postings map[string]map[string]int
	docLen   map[string]int
}

func newInvertedIndex() *invertedIndex {
	return &invertedIndex{postings: map[string]map[string]int{}, docLen: map[string]int{}}
}

func tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
	return fields
}

func (ix *invertedIndex) add(docID, text string) {
	toks := tokenize(text)
	ix.docLen[docID] = len(toks)
	for _, tok := range toks {
		m, ok := ix.postings[tok]
		if !ok {
			m = map[string]int{}
			ix.postings[tok] = m
		}
		m[docID]++
	}
}

// SearchResult is a scored hit.
type SearchResult struct {
	WorkflowID string
	Score      float64
}

// Search ranks published workflows against a free-text query with a
// TF-normalized score summed over query tokens. Empty query returns nil.
func (r *Repository) Search(query string, topK int) []SearchResult {
	r.mu.RLock()
	defer r.mu.RUnlock()
	toks := tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	scores := map[string]float64{}
	for _, tok := range toks {
		for doc, tf := range r.index.postings[tok] {
			scores[doc] += float64(tf) / float64(r.index.docLen[doc]+1)
		}
	}
	out := make([]SearchResult, 0, len(scores))
	for doc, sc := range scores {
		out = append(out, SearchResult{WorkflowID: doc, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].WorkflowID < out[j].WorkflowID
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}
