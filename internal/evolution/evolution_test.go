package evolution

import (
	"strings"
	"testing"

	"repro/internal/workflow"
	"repro/internal/workloads"
)

// seedTree imports MedicalImaging as version 1 of a fresh tree.
func seedTree(t *testing.T) (*Tree, int) {
	t.Helper()
	tree := NewTree("medimg")
	v1, err := tree.Commit(tree.Root(), "juliana", "import figure-1 workflow",
		ImportWorkflow(workloads.MedicalImaging()))
	if err != nil {
		t.Fatal(err)
	}
	return tree, v1
}

func TestImportMaterializeRoundTrip(t *testing.T) {
	tree, v1 := seedTree(t)
	wf, err := tree.Materialize(v1)
	if err != nil {
		t.Fatal(err)
	}
	orig := workloads.MedicalImaging()
	if wf.ContentHash() != orig.ContentHash() {
		t.Fatal("materialized workflow differs from imported one")
	}
}

func TestRootIsEmpty(t *testing.T) {
	tree, _ := seedTree(t)
	wf, err := tree.Materialize(tree.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(wf.Modules) != 0 {
		t.Fatalf("root has %d modules", len(wf.Modules))
	}
}

func TestCommitValidatesActions(t *testing.T) {
	tree, v1 := seedTree(t)
	// Deleting a nonexistent module must fail.
	if _, err := tree.Commit(v1, "x", "", []Action{DeleteModuleAction("ghost")}); err == nil {
		t.Fatal("invalid action accepted")
	}
	// Creating a cycle must fail validation.
	bad := []Action{
		ConnectAction("render", "image", "histogram", "data"),
	}
	if _, err := tree.Commit(v1, "x", "", bad); err == nil {
		t.Fatal("type-mismatched connection accepted")
	}
	// Empty commit rejected.
	if _, err := tree.Commit(v1, "x", "", nil); err == nil {
		t.Fatal("empty commit accepted")
	}
	// Unknown parent rejected.
	if _, err := tree.Commit(999, "x", "", []Action{DeleteModuleAction("reader")}); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestBranchingHistory(t *testing.T) {
	tree, v1 := seedTree(t)
	// Branch A: change isovalue.
	va, err := tree.Commit(v1, "juliana", "try isovalue 110",
		[]Action{SetParamAction("contour", "isovalue", "110")})
	if err != nil {
		t.Fatal(err)
	}
	// Branch B: insert a Smooth module between contour and render.
	smooth := &workflow.Module{
		ID: "smooth", Name: "smooth", Type: "Smooth",
		Inputs:  []workflow.Port{{Name: "surface", Type: "mesh"}},
		Outputs: []workflow.Port{{Name: "surface", Type: "mesh"}},
	}
	vb, err := tree.Commit(v1, "susan", "insert smoothing", []Action{
		DisconnectAction("contour", "surface", "render", "surface"),
		AddModuleAction(smooth),
		ConnectAction("contour", "surface", "smooth", "surface"),
		ConnectAction("smooth", "surface", "render", "surface"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both branches materialize correctly and independently.
	wa, err := tree.Materialize(va)
	if err != nil {
		t.Fatal(err)
	}
	if wa.Module("contour").Params["isovalue"] != "110" {
		t.Fatal("branch A lost its param change")
	}
	if wa.Module("smooth") != nil {
		t.Fatal("branch A sees branch B's module")
	}
	wb, err := tree.Materialize(vb)
	if err != nil {
		t.Fatal(err)
	}
	if wb.Module("smooth") == nil {
		t.Fatal("branch B lost its module")
	}
	if wb.Module("contour").Params["isovalue"] != "57" {
		t.Fatal("branch B sees branch A's param change")
	}
	// The tree structure.
	kids := tree.Children(v1)
	if len(kids) != 2 || kids[0] != va || kids[1] != vb {
		t.Fatalf("children = %v", kids)
	}
	lca, err := tree.LCA(va, vb)
	if err != nil {
		t.Fatal(err)
	}
	if lca != v1 {
		t.Fatalf("LCA = %d, want %d", lca, v1)
	}
}

func TestDiffVersions(t *testing.T) {
	tree, v1 := seedTree(t)
	va, _ := tree.Commit(v1, "j", "", []Action{SetParamAction("contour", "isovalue", "110")})
	smooth := &workflow.Module{
		ID: "smooth", Name: "smooth", Type: "Smooth",
		Inputs:  []workflow.Port{{Name: "surface", Type: "mesh"}},
		Outputs: []workflow.Port{{Name: "surface", Type: "mesh"}},
	}
	vb, _ := tree.Commit(v1, "s", "", []Action{
		DisconnectAction("contour", "surface", "render", "surface"),
		AddModuleAction(smooth),
		ConnectAction("contour", "surface", "smooth", "surface"),
		ConnectAction("smooth", "surface", "render", "surface"),
	})
	d, err := tree.DiffVersions(va, vb)
	if err != nil {
		t.Fatal(err)
	}
	if d.LCA != v1 {
		t.Fatalf("diff LCA = %d", d.LCA)
	}
	if len(d.AddedModules) != 1 || d.AddedModules[0] != "smooth" {
		t.Fatalf("added = %v", d.AddedModules)
	}
	if len(d.RemovedModules) != 0 {
		t.Fatalf("removed = %v", d.RemovedModules)
	}
	if got := d.ParamChanges["contour.isovalue"]; got != [2]string{"110", "57"} {
		t.Fatalf("param changes = %v", d.ParamChanges)
	}
	if len(d.AddedConns) != 2 || len(d.RemovedConns) != 1 {
		t.Fatalf("conns +%v -%v", d.AddedConns, d.RemovedConns)
	}
}

func TestTags(t *testing.T) {
	tree, v1 := seedTree(t)
	if err := tree.Tag(v1, "baseline"); err != nil {
		t.Fatal(err)
	}
	id, err := tree.ByTag("baseline")
	if err != nil || id != v1 {
		t.Fatalf("ByTag = %d, %v", id, err)
	}
	va, _ := tree.Commit(v1, "j", "", []Action{SetParamAction("contour", "isovalue", "99")})
	if err := tree.Tag(va, "baseline"); err == nil {
		t.Fatal("duplicate tag accepted")
	}
	if err := tree.Tag(999, "x"); err == nil {
		t.Fatal("tag on unknown version accepted")
	}
	if _, err := tree.ByTag("nope"); err == nil {
		t.Fatal("unknown tag resolved")
	}
}

func TestJSONPersistence(t *testing.T) {
	tree, v1 := seedTree(t)
	va, _ := tree.Commit(v1, "j", "isovalue study", []Action{SetParamAction("contour", "isovalue", "110")})
	if err := tree.Tag(va, "iso110"); err != nil {
		t.Fatal(err)
	}
	data, err := tree.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tree.Len() {
		t.Fatalf("len = %d vs %d", back.Len(), tree.Len())
	}
	id, err := back.ByTag("iso110")
	if err != nil || id != va {
		t.Fatalf("tag lost: %d %v", id, err)
	}
	wf, err := back.Materialize(va)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Module("contour").Params["isovalue"] != "110" {
		t.Fatal("materialization after decode wrong")
	}
}

func TestDecodeRejectsDanglingParent(t *testing.T) {
	bad := `{"name":"x","versions":[{"id":0,"parent":-1},{"id":5,"parent":3,"actions":[]}]}`
	if _, err := DecodeJSON([]byte(bad)); err == nil {
		t.Fatal("dangling parent accepted")
	}
	if _, err := DecodeJSON([]byte("{")); err == nil {
		t.Fatal("malformed json accepted")
	}
}

func TestLinearHistoryDepth(t *testing.T) {
	tree, v1 := seedTree(t)
	at := v1
	for i := 0; i < 50; i++ {
		var err error
		at, err = tree.Commit(at, "j", "", []Action{
			SetParamAction("contour", "isovalue", strings.Repeat("1", i%5+1)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	path, err := tree.PathFromRoot(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 52 { // root + import + 50 edits
		t.Fatalf("path length = %d", len(path))
	}
	wf, err := tree.Materialize(at)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Module("contour").Params["isovalue"] != strings.Repeat("1", 49%5+1) {
		t.Fatalf("final isovalue = %q", wf.Module("contour").Params["isovalue"])
	}
}

func TestAnnotateActions(t *testing.T) {
	tree, v1 := seedTree(t)
	va, err := tree.Commit(v1, "j", "", []Action{
		{Kind: ActAnnotate, Key: "purpose", Value: "teaching demo"},
		{Kind: ActAnnotate, ModuleID: "contour", Key: "note", Value: "bone"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := tree.Materialize(va)
	if wf.Annotations["purpose"] != "teaching demo" {
		t.Fatal("workflow annotation lost")
	}
	if wf.Module("contour").Annotations["note"] != "bone" {
		t.Fatal("module annotation lost")
	}
}
