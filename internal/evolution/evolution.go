// Package evolution implements workflow evolution provenance: the
// VisTrails-style action-based version tree of Freire et al. [20] that the
// paper highlights for "managing rapidly-evolving scientific workflows"
// (§2.3). Instead of storing workflow snapshots, every edit is recorded as
// an action; a version is a node in a tree of actions, and any version's
// workflow is materialized by replaying the path from the root.
//
// This representation is itself provenance — of the workflow specification
// rather than of data — and powers comparing versions, explaining why two
// runs differ, and never losing an exploratory branch.
package evolution

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/workflow"
)

// ActionKind enumerates edit operations.
type ActionKind string

// Action kinds.
const (
	ActAddModule     ActionKind = "addModule"
	ActDeleteModule  ActionKind = "deleteModule"
	ActAddConnection ActionKind = "addConnection"
	ActDelConnection ActionKind = "deleteConnection"
	ActSetParam      ActionKind = "setParam"
	ActAnnotate      ActionKind = "annotate"
)

// Action is one edit. Fields are used according to Kind:
//
//	addModule:        Module
//	deleteModule:     ModuleID
//	addConnection:    Connection
//	deleteConnection: Connection
//	setParam:         ModuleID, Key, Value
//	annotate:         ModuleID (optional; empty = workflow), Key, Value
type Action struct {
	Kind       ActionKind           `json:"kind"`
	Module     *workflow.Module     `json:"module,omitempty"`
	ModuleID   string               `json:"moduleId,omitempty"`
	Connection *workflow.Connection `json:"connection,omitempty"`
	Key        string               `json:"key,omitempty"`
	Value      string               `json:"value,omitempty"`
}

// apply mutates wf according to the action.
func (a Action) apply(wf *workflow.Workflow) error {
	switch a.Kind {
	case ActAddModule:
		if a.Module == nil {
			return fmt.Errorf("evolution: addModule without module")
		}
		return wf.AddModule(a.Module.Clone())
	case ActDeleteModule:
		if !wf.RemoveModule(a.ModuleID) {
			return fmt.Errorf("evolution: deleteModule: %q not found", a.ModuleID)
		}
		return nil
	case ActAddConnection:
		if a.Connection == nil {
			return fmt.Errorf("evolution: addConnection without connection")
		}
		c := *a.Connection
		return wf.Connect(c.SrcModule, c.SrcPort, c.DstModule, c.DstPort)
	case ActDelConnection:
		if a.Connection == nil {
			return fmt.Errorf("evolution: deleteConnection without connection")
		}
		if !wf.Disconnect(*a.Connection) {
			return fmt.Errorf("evolution: deleteConnection: %s not found", a.Connection.Key())
		}
		return nil
	case ActSetParam:
		return wf.SetParam(a.ModuleID, a.Key, a.Value)
	case ActAnnotate:
		if a.ModuleID == "" {
			wf.Annotate(a.Key, a.Value)
			return nil
		}
		return wf.AnnotateModule(a.ModuleID, a.Key, a.Value)
	}
	return fmt.Errorf("evolution: unknown action kind %q", a.Kind)
}

// Version is a node in the version tree.
type Version struct {
	ID      int      `json:"id"`
	Parent  int      `json:"parent"` // -1 for the root
	Actions []Action `json:"actions"`
	Tag     string   `json:"tag,omitempty"`
	User    string   `json:"user,omitempty"`
	Note    string   `json:"note,omitempty"`
}

// Tree is a version tree for one evolving workflow. Version 0 is the empty
// root.
type Tree struct {
	Name     string
	versions map[int]*Version
	children map[int][]int
	nextID   int
	tags     map[string]int
}

// NewTree returns a tree containing only the empty root (version 0).
func NewTree(name string) *Tree {
	t := &Tree{
		Name:     name,
		versions: map[int]*Version{},
		children: map[int][]int{},
		tags:     map[string]int{},
		nextID:   1,
	}
	t.versions[0] = &Version{ID: 0, Parent: -1, Tag: "root"}
	t.tags["root"] = 0
	return t
}

// Root returns the root version ID (always 0).
func (t *Tree) Root() int { return 0 }

// Len returns the number of versions including the root.
func (t *Tree) Len() int { return len(t.versions) }

// Version returns a version by ID.
func (t *Tree) Version(id int) (*Version, error) {
	v, ok := t.versions[id]
	if !ok {
		return nil, fmt.Errorf("evolution: unknown version %d", id)
	}
	return v, nil
}

// Commit creates a child of parent with the given actions, after verifying
// that replaying them yields a structurally valid workflow. It returns the
// new version ID.
func (t *Tree) Commit(parent int, user, note string, actions []Action) (int, error) {
	if _, ok := t.versions[parent]; !ok {
		return 0, fmt.Errorf("evolution: unknown parent version %d", parent)
	}
	if len(actions) == 0 {
		return 0, fmt.Errorf("evolution: empty commit")
	}
	// Verify by materializing parent then applying.
	wf, err := t.Materialize(parent)
	if err != nil {
		return 0, err
	}
	for i, a := range actions {
		if err := a.apply(wf); err != nil {
			return 0, fmt.Errorf("evolution: action %d invalid: %w", i, err)
		}
	}
	if err := wf.Validate(); err != nil {
		return 0, fmt.Errorf("evolution: commit yields invalid workflow: %w", err)
	}
	id := t.nextID
	t.nextID++
	t.versions[id] = &Version{ID: id, Parent: parent, Actions: actions, User: user, Note: note}
	t.children[parent] = append(t.children[parent], id)
	return id, nil
}

// Tag names a version; tags are unique.
func (t *Tree) Tag(id int, tag string) error {
	if _, ok := t.versions[id]; !ok {
		return fmt.Errorf("evolution: unknown version %d", id)
	}
	if have, ok := t.tags[tag]; ok && have != id {
		return fmt.Errorf("evolution: tag %q already names version %d", tag, have)
	}
	t.tags[tag] = id
	t.versions[id].Tag = tag
	return nil
}

// ByTag resolves a tag to a version ID.
func (t *Tree) ByTag(tag string) (int, error) {
	id, ok := t.tags[tag]
	if !ok {
		return 0, fmt.Errorf("evolution: unknown tag %q", tag)
	}
	return id, nil
}

// Children returns the direct children of a version, sorted.
func (t *Tree) Children(id int) []int {
	out := append([]int(nil), t.children[id]...)
	sort.Ints(out)
	return out
}

// PathFromRoot returns the version IDs from the root to id, inclusive.
func (t *Tree) PathFromRoot(id int) ([]int, error) {
	var rev []int
	for at := id; ; {
		v, ok := t.versions[at]
		if !ok {
			return nil, fmt.Errorf("evolution: unknown version %d", at)
		}
		rev = append(rev, at)
		if v.Parent < 0 {
			break
		}
		at = v.Parent
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out, nil
}

// Materialize replays actions from the root to produce the workflow at a
// version. Cost is linear in the number of actions on the path, not in the
// number of versions in the tree (experiment E8).
func (t *Tree) Materialize(id int) (*workflow.Workflow, error) {
	path, err := t.PathFromRoot(id)
	if err != nil {
		return nil, err
	}
	wf := workflow.New(fmt.Sprintf("%s@v%d", t.Name, id), t.Name)
	for _, vid := range path {
		for i, a := range t.versions[vid].Actions {
			if err := a.apply(wf); err != nil {
				return nil, fmt.Errorf("evolution: replay version %d action %d: %w", vid, i, err)
			}
		}
	}
	return wf, nil
}

// LCA returns the lowest common ancestor of two versions.
func (t *Tree) LCA(a, b int) (int, error) {
	pa, err := t.PathFromRoot(a)
	if err != nil {
		return 0, err
	}
	pb, err := t.PathFromRoot(b)
	if err != nil {
		return 0, err
	}
	lca := 0
	for i := 0; i < len(pa) && i < len(pb) && pa[i] == pb[i]; i++ {
		lca = pa[i]
	}
	return lca, nil
}

// Diff describes how version B's workflow differs from version A's.
type Diff struct {
	LCA            int
	AddedModules   []string
	RemovedModules []string
	AddedConns     []string
	RemovedConns   []string
	ParamChanges   map[string][2]string // "module.key" -> [a, b]
}

// DiffVersions compares the materialized workflows of two versions (the
// "visual diff" of [20]).
func (t *Tree) DiffVersions(a, b int) (*Diff, error) {
	wa, err := t.Materialize(a)
	if err != nil {
		return nil, err
	}
	wb, err := t.Materialize(b)
	if err != nil {
		return nil, err
	}
	lca, err := t.LCA(a, b)
	if err != nil {
		return nil, err
	}
	d := &Diff{LCA: lca, ParamChanges: map[string][2]string{}}
	modsA := map[string]*workflow.Module{}
	for _, m := range wa.Modules {
		modsA[m.ID] = m
	}
	modsB := map[string]*workflow.Module{}
	for _, m := range wb.Modules {
		modsB[m.ID] = m
	}
	for id := range modsA {
		if _, ok := modsB[id]; !ok {
			d.RemovedModules = append(d.RemovedModules, id)
		}
	}
	for id := range modsB {
		if _, ok := modsA[id]; !ok {
			d.AddedModules = append(d.AddedModules, id)
		}
	}
	connsA := map[string]bool{}
	for _, c := range wa.Connections {
		connsA[c.Key()] = true
	}
	connsB := map[string]bool{}
	for _, c := range wb.Connections {
		connsB[c.Key()] = true
	}
	for k := range connsA {
		if !connsB[k] {
			d.RemovedConns = append(d.RemovedConns, k)
		}
	}
	for k := range connsB {
		if !connsA[k] {
			d.AddedConns = append(d.AddedConns, k)
		}
	}
	for id, ma := range modsA {
		mb, ok := modsB[id]
		if !ok {
			continue
		}
		for k, va := range ma.Params {
			if vb, ok := mb.Params[k]; ok && vb != va {
				d.ParamChanges[id+"."+k] = [2]string{va, vb}
			} else if !ok {
				d.ParamChanges[id+"."+k] = [2]string{va, ""}
			}
		}
		for k, vb := range mb.Params {
			if _, ok := ma.Params[k]; !ok {
				d.ParamChanges[id+"."+k] = [2]string{"", vb}
			}
		}
	}
	sort.Strings(d.AddedModules)
	sort.Strings(d.RemovedModules)
	sort.Strings(d.AddedConns)
	sort.Strings(d.RemovedConns)
	return d, nil
}

// treeDoc is the JSON persistence form.
type treeDoc struct {
	Name     string     `json:"name"`
	Versions []*Version `json:"versions"`
}

// EncodeJSON serializes the tree.
func (t *Tree) EncodeJSON() ([]byte, error) {
	doc := treeDoc{Name: t.Name}
	ids := make([]int, 0, len(t.versions))
	for id := range t.versions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		doc.Versions = append(doc.Versions, t.versions[id])
	}
	return json.MarshalIndent(doc, "", "  ")
}

// DecodeJSON reconstructs a tree, replaying nothing (actions are stored
// verbatim); materialization re-validates on demand.
func DecodeJSON(data []byte) (*Tree, error) {
	var doc treeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("evolution: decode: %w", err)
	}
	t := NewTree(doc.Name)
	for _, v := range doc.Versions {
		if v.ID == 0 {
			continue
		}
		cp := *v
		t.versions[v.ID] = &cp
		t.children[v.Parent] = append(t.children[v.Parent], v.ID)
		if v.ID >= t.nextID {
			t.nextID = v.ID + 1
		}
		if v.Tag != "" {
			t.tags[v.Tag] = v.ID
		}
	}
	// Integrity: every parent must exist.
	for id, v := range t.versions {
		if id == 0 {
			continue
		}
		if _, ok := t.versions[v.Parent]; !ok {
			return nil, fmt.Errorf("evolution: version %d has unknown parent %d", id, v.Parent)
		}
	}
	return t, nil
}

// AddModuleAction builds an addModule action.
func AddModuleAction(m *workflow.Module) Action {
	return Action{Kind: ActAddModule, Module: m.Clone()}
}

// DeleteModuleAction builds a deleteModule action.
func DeleteModuleAction(moduleID string) Action {
	return Action{Kind: ActDeleteModule, ModuleID: moduleID}
}

// ConnectAction builds an addConnection action.
func ConnectAction(srcModule, srcPort, dstModule, dstPort string) Action {
	return Action{Kind: ActAddConnection, Connection: &workflow.Connection{
		SrcModule: srcModule, SrcPort: srcPort, DstModule: dstModule, DstPort: dstPort}}
}

// DisconnectAction builds a deleteConnection action.
func DisconnectAction(srcModule, srcPort, dstModule, dstPort string) Action {
	return Action{Kind: ActDelConnection, Connection: &workflow.Connection{
		SrcModule: srcModule, SrcPort: srcPort, DstModule: dstModule, DstPort: dstPort}}
}

// SetParamAction builds a setParam action.
func SetParamAction(moduleID, key, value string) Action {
	return Action{Kind: ActSetParam, ModuleID: moduleID, Key: key, Value: value}
}

// ImportWorkflow converts an existing workflow into the action list that
// recreates it: the bridge from snapshot-based to action-based storage.
func ImportWorkflow(wf *workflow.Workflow) []Action {
	var actions []Action
	mods := make([]*workflow.Module, len(wf.Modules))
	copy(mods, wf.Modules)
	sort.Slice(mods, func(i, j int) bool { return mods[i].ID < mods[j].ID })
	for _, m := range mods {
		actions = append(actions, AddModuleAction(m))
	}
	conns := append([]workflow.Connection(nil), wf.Connections...)
	sort.Slice(conns, func(i, j int) bool { return conns[i].Key() < conns[j].Key() })
	for _, c := range conns {
		cc := c
		actions = append(actions, Action{Kind: ActAddConnection, Connection: &cc})
	}
	return actions
}
