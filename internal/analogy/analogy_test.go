package analogy

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func TestComputeDiffSmoothing(t *testing.T) {
	d := ComputeDiff(workloads.DownloadAndRender(), workloads.DownloadAndRenderSmoothed())
	if len(d.AddedModules) != 1 || d.AddedModules[0].Type != "Smooth" {
		t.Fatalf("added = %+v", d.AddedModules)
	}
	if len(d.RemovedModules) != 0 {
		t.Fatalf("removed = %+v", d.RemovedModules)
	}
	if len(d.RemovedConns) != 1 || len(d.AddedConns) != 2 {
		t.Fatalf("conns -%v +%v", d.RemovedConns, d.AddedConns)
	}
	// Anchors: contour (source of removed conn) and render (dst).
	if len(d.Anchors) != 2 || d.Anchors[0] != "contour" || d.Anchors[1] != "render" {
		t.Fatalf("anchors = %v", d.Anchors)
	}
}

func TestComputeDiffEmpty(t *testing.T) {
	d := ComputeDiff(workloads.MedicalImaging(), workloads.MedicalImaging())
	if !d.Empty() {
		t.Fatalf("diff = %+v", d)
	}
}

// TestFigure2 reproduces the paper's Figure 2 end to end: the user shows
// the system a pair (download→render, download→smooth→render) and the
// system applies the same smoothing insertion to the medical-imaging
// workflow, whose surrounding modules differ (FileReader vs Download,
// plus a histogram branch).
func TestFigure2AnalogyTransfer(t *testing.T) {
	res, err := Refine(
		workloads.DownloadAndRender(),
		workloads.DownloadAndRenderSmoothed(),
		workloads.MedicalImaging(),
	)
	if err != nil {
		t.Fatal(err)
	}
	refined := res.Workflow
	if refined.Module("smooth") == nil {
		t.Fatal("smooth module not inserted")
	}
	// The rewiring: contour -> smooth -> render; contour -/-> render.
	hasConn := func(src, dst string) bool {
		for _, c := range refined.Connections {
			if c.SrcModule == src && c.DstModule == dst {
				return true
			}
		}
		return false
	}
	if !hasConn("contour", "smooth") || !hasConn("smooth", "render") {
		t.Fatalf("rewiring wrong: %+v", refined.Connections)
	}
	if hasConn("contour", "render") {
		t.Fatal("old direct connection survives")
	}
	// The histogram branch is untouched.
	if refined.Module("histogram") == nil || !hasConn("reader", "histogram") {
		t.Fatal("unrelated branch damaged")
	}
	// Mapping found the analogous anchors.
	if res.Mapping["contour"] != "contour" || res.Mapping["render"] != "render" {
		t.Fatalf("mapping = %v", res.Mapping)
	}
	if err := refined.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The refined workflow must actually run and produce a smoothed image.
func TestRefinedWorkflowExecutes(t *testing.T) {
	res, err := Refine(
		workloads.DownloadAndRender(),
		workloads.DownloadAndRenderSmoothed(),
		workloads.MedicalImaging(),
	)
	if err != nil {
		t.Fatal(err)
	}
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg})
	run, err := e.Run(context.Background(), res.Workflow, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Status != provenance.StatusOK {
		t.Fatalf("refined run failed: %v", run.Failed)
	}
	if _, err := run.Output("smooth", "surface"); err != nil {
		t.Fatal(err)
	}
}

func TestParamChangeByAnalogy(t *testing.T) {
	wa := workloads.DownloadAndRender()
	wb := wa.Clone()
	if err := wb.SetParam("contour", "isovalue", "110"); err != nil {
		t.Fatal(err)
	}
	res, err := Refine(wa, wb, workloads.MedicalImaging())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflow.Module("contour").Params["isovalue"] != "110" {
		t.Fatalf("param not transferred: %v", res.Workflow.Module("contour").Params)
	}
}

func TestModuleRemovalByAnalogy(t *testing.T) {
	// Template: remove the histogram branch.
	wa := workloads.MedicalImaging()
	wb := wa.Clone()
	wb.RemoveModule("histogram")
	// Target: the smoothed variant, which also has a histogram.
	res, err := Refine(wa, wb, workloads.SmoothedImaging())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflow.Module("histogram") != nil {
		t.Fatal("histogram not removed")
	}
	if err := res.Workflow.Validate(); err != nil {
		t.Fatal(err)
	}
	// Smooth chain intact.
	if res.Workflow.Module("smooth") == nil {
		t.Fatal("unrelated module removed")
	}
}

func TestIDCollisionRenaming(t *testing.T) {
	// Target already contains an unrelated module whose ID collides with
	// the added module's ID.
	target := workloads.MedicalImaging()
	if err := target.AddModule(&workflow.Module{
		ID: "smooth", Name: "smooth", Type: "SensorGen",
		Outputs: []workflow.Port{{Name: "series", Type: "timeseries"}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Refine(
		workloads.DownloadAndRender(),
		workloads.DownloadAndRenderSmoothed(),
		target,
	)
	if err != nil {
		t.Fatal(err)
	}
	fresh, ok := res.Renamed["smooth"]
	if !ok {
		t.Fatalf("no rename recorded: %+v", res.Renamed)
	}
	if res.Workflow.Module(fresh) == nil {
		t.Fatalf("renamed module %q missing", fresh)
	}
	if err := res.Workflow.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFailsWithoutCandidate(t *testing.T) {
	// The template manipulates Contour/Render; genomics has neither.
	_, err := Refine(
		workloads.DownloadAndRender(),
		workloads.DownloadAndRenderSmoothed(),
		workloads.Genomics("s"),
	)
	if err == nil {
		t.Fatal("analogy onto unrelated workflow succeeded")
	}
}

func TestEmptyDiffApplication(t *testing.T) {
	d := ComputeDiff(workloads.MedicalImaging(), workloads.MedicalImaging())
	res, err := Apply(d, workloads.Genomics("s"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflow.ContentHash() != workloads.Genomics("s").ContentHash() {
		t.Fatal("empty diff changed target")
	}
}

func TestAnchorsOnParamOnlyDiff(t *testing.T) {
	wa := workloads.DownloadAndRender()
	wb := wa.Clone()
	if err := wb.SetParam("contour", "isovalue", "42"); err != nil {
		t.Fatal(err)
	}
	d := ComputeDiff(wa, wb)
	if len(d.Anchors) != 1 || d.Anchors[0] != "contour" {
		t.Fatalf("anchors = %v", d.Anchors)
	}
}

// Transfer success over a population of perturbed targets: the E2 metric.
func TestTransferAcrossPerturbedTargets(t *testing.T) {
	wa := workloads.DownloadAndRender()
	wb := workloads.DownloadAndRenderSmoothed()
	ok := 0
	total := 0
	for i := 0; i < 10; i++ {
		target := workloads.MedicalImaging()
		// Perturb: vary isovalue and add an extra independent module chain.
		if err := target.SetParam("contour", "isovalue", "57"); err != nil {
			t.Fatal(err)
		}
		extra := &workflow.Module{
			ID: "extra", Name: "extra", Type: "SensorGen",
			Outputs: []workflow.Port{{Name: "series", Type: "timeseries"}},
		}
		if i%2 == 0 {
			if err := target.AddModule(extra); err != nil {
				t.Fatal(err)
			}
		}
		total++
		res, err := Refine(wa, wb, target)
		if err != nil {
			continue
		}
		if res.Workflow.Validate() == nil {
			ok++
		}
	}
	if ok != total {
		t.Fatalf("transfer succeeded on %d/%d targets", ok, total)
	}
}
