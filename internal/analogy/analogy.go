// Package analogy implements workflow refinement by analogy (Figure 2 of
// the paper; Scheidegger et al. [34]): given a pair of workflows (wa, wb)
// that captures a change — e.g. "insert a smoothing step before rendering"
// — apply the *same* change to a third workflow wc, even when wc's modules
// do not match wa's exactly. The system identifies the most likely
// correspondence between the changed region's surroundings in wa and
// modules of wc, then replays the difference through that mapping.
package analogy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/workflow"
)

// Diff is the structural difference from wa to wb, keyed by module ID (the
// action-oriented view: modules/connections present in only one side).
type Diff struct {
	RemovedModules []*workflow.Module    // in wa only
	AddedModules   []*workflow.Module    // in wb only
	RemovedConns   []workflow.Connection // in wa only
	AddedConns     []workflow.Connection // in wb only
	ParamChanges   map[string][2]string  // "module.key" -> [a, b]
	// Anchors are modules present on both sides that touch the change:
	// the context that must be located in the target workflow.
	Anchors []string
}

// ComputeDiff derives the change template from an example pair.
func ComputeDiff(wa, wb *workflow.Workflow) *Diff {
	d := &Diff{ParamChanges: map[string][2]string{}}
	modsA := map[string]*workflow.Module{}
	for _, m := range wa.Modules {
		modsA[m.ID] = m
	}
	modsB := map[string]*workflow.Module{}
	for _, m := range wb.Modules {
		modsB[m.ID] = m
	}
	for _, m := range wa.Modules {
		if _, ok := modsB[m.ID]; !ok {
			d.RemovedModules = append(d.RemovedModules, m.Clone())
		}
	}
	for _, m := range wb.Modules {
		if _, ok := modsA[m.ID]; !ok {
			d.AddedModules = append(d.AddedModules, m.Clone())
		}
	}
	connsA := map[string]workflow.Connection{}
	for _, c := range wa.Connections {
		connsA[c.Key()] = c
	}
	connsB := map[string]workflow.Connection{}
	for _, c := range wb.Connections {
		connsB[c.Key()] = c
	}
	for k, c := range connsA {
		if _, ok := connsB[k]; !ok {
			d.RemovedConns = append(d.RemovedConns, c)
		}
	}
	for k, c := range connsB {
		if _, ok := connsA[k]; !ok {
			d.AddedConns = append(d.AddedConns, c)
		}
	}
	for id, ma := range modsA {
		mb, ok := modsB[id]
		if !ok {
			continue
		}
		for k, va := range ma.Params {
			if vb, ok := mb.Params[k]; ok && vb != va {
				d.ParamChanges[id+"."+k] = [2]string{va, vb}
			}
		}
	}
	// Anchors: shared modules adjacent to any removed/added element.
	changedMods := map[string]bool{}
	for _, m := range d.RemovedModules {
		changedMods[m.ID] = true
	}
	for _, m := range d.AddedModules {
		changedMods[m.ID] = true
	}
	anchorSet := map[string]bool{}
	touch := func(c workflow.Connection) {
		for _, end := range []string{c.SrcModule, c.DstModule} {
			if !changedMods[end] {
				if _, shared := modsA[end]; shared {
					if _, sharedB := modsB[end]; sharedB {
						anchorSet[end] = true
					}
				}
			}
		}
	}
	for _, c := range d.RemovedConns {
		touch(c)
	}
	for _, c := range d.AddedConns {
		touch(c)
	}
	for key := range d.ParamChanges {
		mod := key[:strings.LastIndex(key, ".")]
		anchorSet[mod] = true
	}
	for id := range anchorSet {
		d.Anchors = append(d.Anchors, id)
	}
	sort.Strings(d.Anchors)
	sortDiff(d)
	return d
}

func sortDiff(d *Diff) {
	sort.Slice(d.RemovedModules, func(i, j int) bool { return d.RemovedModules[i].ID < d.RemovedModules[j].ID })
	sort.Slice(d.AddedModules, func(i, j int) bool { return d.AddedModules[i].ID < d.AddedModules[j].ID })
	sort.Slice(d.RemovedConns, func(i, j int) bool { return d.RemovedConns[i].Key() < d.RemovedConns[j].Key() })
	sort.Slice(d.AddedConns, func(i, j int) bool { return d.AddedConns[i].Key() < d.AddedConns[j].Key() })
}

// Empty reports whether the diff carries no change.
func (d *Diff) Empty() bool {
	return len(d.RemovedModules) == 0 && len(d.AddedModules) == 0 &&
		len(d.RemovedConns) == 0 && len(d.AddedConns) == 0 && len(d.ParamChanges) == 0
}

// Result reports how an analogy application went.
type Result struct {
	Workflow *workflow.Workflow
	// Mapping records anchor (and removed-module) correspondences:
	// example-module ID -> target-module ID.
	Mapping map[string]string
	// Renamed records added modules whose IDs collided in the target and
	// were suffixed.
	Renamed map[string]string
}

// Apply replays the diff onto target by analogy: anchors (and removed
// modules) from the example are mapped onto the most similar modules of the
// target — same type required, matching names and neighborhoods preferred —
// then removals, additions, rewiring and parameter changes are applied
// through that mapping. The target is not mutated; the refined copy is
// returned.
func Apply(d *Diff, target *workflow.Workflow) (*Result, error) {
	if d.Empty() {
		return &Result{Workflow: target.Clone(), Mapping: map[string]string{}, Renamed: map[string]string{}}, nil
	}
	out := target.Clone()
	// Modules of the example that must be located in the target.
	var needed []*workflow.Module
	for _, m := range d.RemovedModules {
		needed = append(needed, m)
	}
	neededIDs := map[string]bool{}
	for _, m := range needed {
		neededIDs[m.ID] = true
	}
	for _, id := range d.Anchors {
		if !neededIDs[id] {
			// Anchor modules carry only type info via the connections; we
			// reconstruct a minimal descriptor from the diff's edges.
			needed = append(needed, &workflow.Module{ID: id})
		}
	}

	mapping := map[string]string{}
	used := map[string]bool{}
	// Order: removed modules first (they must exist), then anchors.
	for _, m := range needed {
		best, err := bestCandidate(m, d, out, used)
		if err != nil {
			return nil, err
		}
		mapping[m.ID] = best
		used[best] = true
	}

	mapID := func(exampleID string) string {
		if t, ok := mapping[exampleID]; ok {
			return t
		}
		return exampleID // added module: keeps its (possibly renamed) ID
	}

	// 1. Remove connections (endpoints mapped).
	for _, c := range d.RemovedConns {
		mc := workflow.Connection{
			SrcModule: mapID(c.SrcModule), SrcPort: c.SrcPort,
			DstModule: mapID(c.DstModule), DstPort: c.DstPort,
		}
		if !out.Disconnect(mc) {
			return nil, fmt.Errorf("analogy: target has no connection %s to remove", mc.Key())
		}
	}
	// 2. Remove modules.
	for _, m := range d.RemovedModules {
		if !out.RemoveModule(mapping[m.ID]) {
			return nil, fmt.Errorf("analogy: target module %q vanished", mapping[m.ID])
		}
	}
	// 3. Add modules (renaming on collision).
	renamed := map[string]string{}
	for _, m := range d.AddedModules {
		cp := m.Clone()
		if out.Module(cp.ID) != nil {
			fresh := cp.ID
			for i := 2; out.Module(fresh) != nil; i++ {
				fresh = fmt.Sprintf("%s_%d", cp.ID, i)
			}
			renamed[cp.ID] = fresh
			cp.ID = fresh
		}
		if err := out.AddModule(cp); err != nil {
			return nil, fmt.Errorf("analogy: adding module: %w", err)
		}
	}
	mapAdded := func(exampleID string) string {
		if fresh, ok := renamed[exampleID]; ok {
			return fresh
		}
		return mapID(exampleID)
	}
	// 4. Add connections through the mapping.
	for _, c := range d.AddedConns {
		if err := out.Connect(mapAdded(c.SrcModule), c.SrcPort, mapAdded(c.DstModule), c.DstPort); err != nil {
			return nil, fmt.Errorf("analogy: rewiring: %w", err)
		}
	}
	// 5. Parameter changes on mapped modules.
	for key, vals := range d.ParamChanges {
		i := strings.LastIndex(key, ".")
		mod, param := key[:i], key[i+1:]
		if err := out.SetParam(mapAdded(mod), param, vals[1]); err != nil {
			return nil, fmt.Errorf("analogy: param change: %w", err)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("analogy: refined workflow invalid: %w", err)
	}
	return &Result{Workflow: out, Mapping: mapping, Renamed: renamed}, nil
}

// bestCandidate scores target modules for correspondence with an example
// module. The figure's caption notes "the surrounding modules do not match
// exactly: the system identifies the most likely match" — scoring is
// type compatibility (required when the example declares a type), then name
// equality, then port-signature overlap.
func bestCandidate(m *workflow.Module, d *Diff, target *workflow.Workflow, used map[string]bool) (string, error) {
	bestScore := -1.0
	best := ""
	for _, cand := range target.Modules {
		if used[cand.ID] {
			continue
		}
		if m.Type != "" && cand.Type != m.Type {
			continue
		}
		score := 0.0
		if cand.ID == m.ID {
			score += 2
		}
		if m.Type != "" && cand.Type == m.Type {
			score += 1
		}
		score += portOverlap(m, cand)
		// Prefer candidates whose connections echo the diff's edge roles.
		score += roleOverlap(m.ID, d, cand, target)
		if score > bestScore || (score == bestScore && cand.ID < best) {
			bestScore = score
			best = cand.ID
		}
	}
	if best == "" {
		return "", fmt.Errorf("analogy: no target candidate for example module %q (type %q)", m.ID, m.Type)
	}
	return best, nil
}

func portOverlap(a, b *workflow.Module) float64 {
	if len(a.Inputs)+len(a.Outputs) == 0 {
		return 0
	}
	match := 0
	for _, p := range a.Inputs {
		if b.InputPort(p.Name) != nil {
			match++
		}
	}
	for _, p := range a.Outputs {
		if b.OutputPort(p.Name) != nil {
			match++
		}
	}
	return float64(match) / float64(len(a.Inputs)+len(a.Outputs))
}

// roleOverlap rewards candidates that participate in connections with the
// same port names as the example module does in the diff's removed edges.
func roleOverlap(exampleID string, d *Diff, cand *workflow.Module, target *workflow.Workflow) float64 {
	score := 0.0
	for _, c := range d.RemovedConns {
		if c.SrcModule == exampleID {
			for _, tc := range target.Connections {
				if tc.SrcModule == cand.ID && tc.SrcPort == c.SrcPort {
					score += 0.5
				}
			}
		}
		if c.DstModule == exampleID {
			for _, tc := range target.Connections {
				if tc.DstModule == cand.ID && tc.DstPort == c.DstPort {
					score += 0.5
				}
			}
		}
	}
	return score
}

// Refine is the one-call Figure 2 operation: compute the (wa → wb) template
// and apply it to target.
func Refine(wa, wb, target *workflow.Workflow) (*Result, error) {
	return Apply(ComputeDiff(wa, wb), target)
}
