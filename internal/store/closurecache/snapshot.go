package closurecache

import (
	"fmt"
	"path/filepath"

	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/wal"
)

// Closure-cache persistence: the memoized closures and the generation
// counter snapshot to a checkpoint file next to the store's log, so a
// daemon restart serves warm closures immediately instead of recomputing
// them cold — the closure-cache-persistence ROADMAP item, and the restart
// analogue of the ingest-time patching this package already does.
//
// The snapshot records the run prefix it was computed over (count + last
// run ID). Loading validates that prefix against the reopened store's run
// list and then REPLAYS the suffix runs through the same delta-patching
// path a live ingest uses, so a snapshot taken N runs ago is still
// restored — warm and correct — rather than discarded. Only a diverged
// history (different runs, truncated log) drops the snapshot, because the
// log, not the snapshot, is authoritative.

const snapshotFileName = "closures.json"

// snapshotEntry is one persisted closure.
type snapshotEntry struct {
	ID    string   `json:"id"`
	Dir   int      `json:"dir"`
	Order []string `json:"order"`
}

// cacheSnapshot is the on-disk form of the memoized closure state.
type cacheSnapshot struct {
	Generation uint64          `json:"generation"`
	RunCount   int             `json:"run_count"`
	LastRun    string          `json:"last_run"`
	Closures   []snapshotEntry `json:"closures"`
}

// SnapshotPath returns the file a cache with SnapshotDir dir persists to.
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotFileName) }

// Checkpoint implements store.Checkpointer: it checkpoints the wrapped
// store first (when it can), then snapshots the cache's closures and
// generation counter next to the log. With no SnapshotDir configured only
// the store checkpoint happens.
func (c *Cache) Checkpoint() error {
	if ck, ok := c.s.(store.Checkpointer); ok {
		if err := ck.Checkpoint(); err != nil {
			return err
		}
	}
	if c.opt.SnapshotDir == "" {
		return nil
	}
	return c.saveSnapshot()
}

// saveSnapshot writes the current closures and generation to the snapshot
// file. Holding the ingest gate exclusively quiesces in-flight ingests:
// an additive PutRunLog commits to the backing store before taking the
// cache lock, so without the gate Runs() could already include a run
// whose delta patch is still pending — the snapshot would record a
// RunCount covering that run while its closures miss the delta, and
// loadSnapshot (which replays only runs[RunCount:]) would serve those
// closures stale forever. With the gate held, every run the store
// reports is folded into the captured entries, so the recorded prefix
// and the closures are mutually consistent. The gate is released as soon
// as the run prefix is read — later commits append past the recorded
// prefix and their delta applies need the write lock, which the read
// lock held across the copy excludes — so ingests keep reaching the
// store's group-commit batches while the entries are copied, and the
// file write happens outside every lock.
func (c *Cache) saveSnapshot() error {
	c.ingestGate.Lock()
	c.mu.RLock()
	runs, err := c.s.Runs()
	c.ingestGate.Unlock()
	if err != nil {
		c.mu.RUnlock()
		return fmt.Errorf("closurecache: snapshot runs: %w", err)
	}
	snap := cacheSnapshot{
		Generation: c.generation,
		RunCount:   len(runs),
	}
	if len(runs) > 0 {
		snap.LastRun = runs[len(runs)-1]
	}
	for k, e := range c.closures {
		snap.Closures = append(snap.Closures, snapshotEntry{
			ID:    k.id,
			Dir:   int(k.dir),
			Order: append([]string(nil), e.order...),
		})
	}
	c.mu.RUnlock()
	return wal.SaveCheckpoint(SnapshotPath(c.opt.SnapshotDir), snap)
}

// loadSnapshot restores a persisted snapshot at construction time: the
// saved prefix must match the store's current run list; any suffix runs
// ingested after the snapshot replay through the live delta-patching path
// (with conservative hazard eviction, since the pre-ingest generator state
// is gone). Best-effort: a missing, corrupt or diverged snapshot leaves
// the cache cold, never broken.
func (c *Cache) loadSnapshot() {
	var snap cacheSnapshot
	ok, err := wal.LoadCheckpoint(SnapshotPath(c.opt.SnapshotDir), &snap)
	if err != nil || !ok {
		return
	}
	runs, err := c.s.Runs()
	if err != nil || len(runs) < snap.RunCount {
		return
	}
	if snap.RunCount > 0 && runs[snap.RunCount-1] != snap.LastRun {
		return // diverged history: the snapshot describes a different store
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, se := range snap.Closures {
		k := key{id: se.ID, dir: store.Direction(se.Dir)}
		if len(c.closures) >= c.opt.MaxClosures {
			break
		}
		c.admitClosureLocked(k, se.Order)
		c.restored.Add(1)
	}
	c.generation = snap.Generation

	// Replay the suffix the snapshot missed, exactly as live ingests
	// would have patched it.
	for _, runID := range runs[snap.RunCount:] {
		l, err := c.s.RunLog(runID)
		if err != nil {
			// A half-readable store: drop everything rather than serve
			// closures that missed a patch.
			c.flushLocked()
			return
		}
		c.applyDeltaLocked(l, c.residentRegenHazardsLocked(l))
		c.generation++
	}
}

// residentRegenHazardsLocked over-approximates generator hazards when the
// pre-ingest generator state is unknowable — snapshot suffix replay (the
// pre-ingest edge is gone) and the additive ingest path (its lock-free
// classification can race a concurrent declarer for the same artifact):
// every generation event touching a cache-resident artifact is treated as
// a replacement and evicts the upstream entries containing it. The common
// all-fresh-IDs ingest touches no resident artifact, so this costs
// nothing; on the rare hit, over-eviction costs warmth, never
// correctness.
func (c *Cache) residentRegenHazardsLocked(l *provenance.RunLog) map[string]bool {
	var hazards map[string]bool
	for _, ev := range l.Events {
		if ev.Kind != provenance.EventArtifactGen {
			continue
		}
		if !c.residentUpLocked(ev.ArtifactID) {
			continue
		}
		if hazards == nil {
			hazards = map[string]bool{}
		}
		hazards[ev.ArtifactID] = true
	}
	return hazards
}
