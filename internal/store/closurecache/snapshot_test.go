package closurecache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
)

// extRun builds a run consuming `in` and generating `out` (plus an
// optional generator re-declaration of `regen` by the same execution).
func extRun(id, in, out, regen string) *provenance.RunLog {
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: id, WorkflowID: "wf", Status: provenance.StatusOK}
	exec := id + "-exec"
	l.Executions = []*provenance.Execution{{ID: exec, RunID: id, ModuleID: "m", ModuleType: "T", Status: provenance.StatusOK}}
	l.Artifacts = []*provenance.Artifact{{ID: in, RunID: id, Type: "blob"}, {ID: out, RunID: id, Type: "blob"}}
	l.Events = []provenance.Event{
		{Seq: 1, RunID: id, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in},
		{Seq: 2, RunID: id, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out},
	}
	if regen != "" {
		l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: regen, RunID: id, Type: "blob"})
		l.Events = append(l.Events, provenance.Event{Seq: 3, RunID: id, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: regen})
	}
	return l
}

// TestSnapshotWarmRestart checkpoints a warm cache over a file store,
// reopens both, and asserts the first closure is a cache hit identical to
// a cold recomputation.
func TestSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	l, head, tail := chainLog(48)

	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(fs, Options{SnapshotDir: dir})
	if err := c.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	want, err := c.Closure(tail, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Closure(head, store.Down); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(fs2, Options{SnapshotDir: dir})
	defer c2.Close()
	m := c2.Metrics()
	if m.Restored != 2 {
		t.Fatalf("restored %d closures, want 2 (metrics %+v)", m.Restored, m)
	}
	if c2.Generation() != gen {
		t.Fatalf("generation = %d, want %d", c2.Generation(), gen)
	}
	got, err := c2.Closure(tail, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored closure diverged:\n got %v\nwant %v", got, want)
	}
	if m := c2.Metrics(); m.ClosureHits != 1 || m.ClosureMisses != 0 {
		t.Fatalf("restored closure was not a hit: %+v", m)
	}
}

// TestSnapshotSuffixReplay takes a snapshot, ingests more runs (bypassing
// any future cache), reopens, and asserts the restored closures were
// patched with the suffix — equal to NaiveClosure on the current graph.
func TestSnapshotSuffixReplay(t *testing.T) {
	dir := t.TempDir()
	l, head, tail := chainLog(16)

	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(fs, Options{SnapshotDir: dir})
	if err := c.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Closure(head, store.Down); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Two more runs land after the snapshot, extending the chain's tail.
	if err := c.PutRunLog(extRun("suffix-1", tail, "sx-art-1", "")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutRunLog(extRun("suffix-2", "sx-art-1", "sx-art-2", "")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(fs2, Options{SnapshotDir: dir})
	defer c2.Close()
	if m := c2.Metrics(); m.Restored == 0 {
		t.Fatalf("nothing restored: %+v", m)
	}
	got, err := c2.Closure(head, store.Down)
	if err != nil {
		t.Fatal(err)
	}
	if m := c2.Metrics(); m.ClosureHits != 1 {
		t.Fatalf("suffix-replayed closure was not a hit: %+v", m)
	}
	want, err := store.NaiveClosure(fs2, head, store.Down)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("suffix replay diverged:\n got %v\nwant %v", got, want)
	}
	for _, must := range []string{"sx-art-1", "sx-art-2"} {
		if sort.SearchStrings(got, must) == len(got) || got[sort.SearchStrings(got, must)] != must {
			t.Fatalf("suffix node %s missing from restored closure %v", must, got)
		}
	}
}

// TestSnapshotReplayHazardEvicts re-declares a cached artifact's generator
// in the suffix: the restored upstream entry containing it must not be
// served stale.
func TestSnapshotReplayHazardEvicts(t *testing.T) {
	dir := t.TempDir()
	l, _, tail := chainLog(8)

	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(fs, Options{SnapshotDir: dir})
	if err := c.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Closure(tail, store.Up); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The suffix run replaces the generator of a mid-chain artifact the
	// cached upstream closure contains.
	if err := c.PutRunLog(extRun("haz-1", "c-art-0000", "hz-out", "c-art-0004")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(fs2, Options{SnapshotDir: dir})
	defer c2.Close()
	got, err := c2.Closure(tail, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.NaiveClosure(fs2, tail, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-hazard closure diverged:\n got %v\nwant %v", got, want)
	}
}

// TestSnapshotDivergedStoreIgnored replaces the store under a snapshot:
// the snapshot must be dropped, not half-applied.
func TestSnapshotDivergedStoreIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _, tail := chainLog(8)
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(fs, Options{SnapshotDir: dir})
	if err := c.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Closure(tail, store.Up); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A different history: same snapshot file, fresh store with one
	// different run.
	other, _, _ := chainLog(4)
	other.Run.ID = "different-run"
	for _, e := range other.Executions {
		e.RunID = other.Run.ID
	}
	for _, a := range other.Artifacts {
		a.RunID = other.Run.ID
	}
	for i := range other.Events {
		other.Events[i].RunID = other.Run.ID
	}
	mem := store.NewMemStore()
	if err := mem.PutRunLog(other); err != nil {
		t.Fatal(err)
	}
	c2 := New(mem, Options{SnapshotDir: dir})
	if m := c2.Metrics(); m.Restored != 0 || m.ClosureEntries != 0 {
		t.Fatalf("diverged snapshot partially restored: %+v", m)
	}
}

// TestWarmReopenSurvivesCorruptPrefix is the acceptance scenario: after a
// checkpoint, the pre-checkpoint log prefix is corrupted in place, and the
// reopened store still serves the closure warm from the restored snapshot
// — proof that neither the store nor the cache replayed the full log.
func TestWarmReopenSurvivesCorruptPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, tail := chainLog(32)

	fs, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	c := New(fs, Options{SnapshotDir: dir})
	if err := c.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	want, err := c.Closure(tail, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckptOff, ok := fs.LastCheckpoint()
	if !ok || ckptOff < 64 {
		t.Fatalf("LastCheckpoint = %d, %v", ckptOff, ok)
	}
	// One post-checkpoint run so the reopen has a real suffix to replay.
	if err := c.PutRunLog(extRun("post", tail, "post-art", "")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Scribble over most of the pre-checkpoint prefix.
	logPath := filepath.Join(dir, store.LogFileName)
	f, err := os.OpenFile(logPath, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, ckptOff-16)
	for i := range garbage {
		garbage[i] = '?'
	}
	if _, err := f.WriteAt(garbage, 8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs2, err := store.OpenFileStoreWith(dir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(fs2, Options{SnapshotDir: dir})
	defer c2.Close()
	got, err := c2.Closure(tail, store.Up)
	if err != nil {
		t.Fatal(err)
	}
	if m := c2.Metrics(); m.ClosureHits != 1 || m.Restored == 0 {
		t.Fatalf("closure not served warm after corrupt-prefix reopen: %+v", m)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm closure diverged after corrupt-prefix reopen:\n got %v\nwant %v", got, want)
	}
	// The suffix run must be visible too: the downstream closure of the
	// old tail reaches the post-checkpoint artifact.
	down, err := c2.Closure(tail, store.Down)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range down {
		if id == "post-art" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-checkpoint suffix missing from reopened store: %v", down)
	}
}

// TestCachePutDoesNotSerializeGroupCommit pins the -cache -durability
// group stack: additive ingests must reach the WAL concurrently (the
// cache lock is not held across the store commit), so concurrent writers
// coalesce into shared fsync batches instead of degenerating to one
// fsync per run. GroupFlushDelay gives each lone leader a bounded joiner
// window — on tmpfs the fsync itself is too fast for commit-latency
// overlap to batch reliably — and a serialized cache still fails here,
// because writers stuck behind a cache lock can never join the window.
func TestCachePutDoesNotSerializeGroupCommit(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFileStoreWith(dir, store.FileOptions{
		Durability:      store.DurabilityGroup,
		GroupFlushDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(fs, Options{SnapshotDir: dir})
	defer c.Close()
	const writers, each = 16, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := fmt.Sprintf("gc-%02d-%03d", w, i)
				if err := c.PutRunLog(extRun(id, id+"-in", id+"-out", "")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := fs.WALMetrics()
	if m.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", m.Appends, writers*each)
	}
	if m.Syncs >= m.Appends {
		t.Fatalf("cache serialized group commit: %d syncs for %d appends", m.Syncs, m.Appends)
	}
	t.Logf("coalesced %d cached ingests into %d fsyncs", m.Appends, m.Syncs)
	// And the cached state stayed coherent with the store.
	got, err := c.Closure("gc-00-000-in", store.Down)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.NaiveClosure(fs, "gc-00-000-in", store.Down)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached closure diverged after concurrent ingest:\n got %v\nwant %v", got, want)
	}
}

// TestAutoCheckpointEvery asserts CheckpointEvery writes the snapshot
// without an explicit call.
func TestAutoCheckpointEvery(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(fs, Options{SnapshotDir: dir, CheckpointEvery: 2})
	defer c.Close()
	l, _, tail := chainLog(4)
	if err := c.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Closure(tail, store.Up); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(SnapshotPath(dir)); !os.IsNotExist(err) {
		t.Fatalf("snapshot written before CheckpointEvery reached: err=%v", err)
	}
	if err := c.PutRunLog(extRun("auto-1", tail, "au-art-1", "")); err != nil {
		t.Fatal(err)
	}
	// Auto-checkpoints run off the ingest path; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(SnapshotPath(dir)); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot not written at CheckpointEvery")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
