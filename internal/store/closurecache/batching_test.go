package closurecache

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/store"
)

// TestConcurrentAdditiveIngestBatching pins the additive write path under
// contention: many goroutines extend a warm cache at once, every delta is
// applied exactly once (Ingests counts them all), no writer's delta is
// lost to another writer's drain, and the patched closures match a cold
// recomputation over the backing store.
func TestConcurrentAdditiveIngestBatching(t *testing.T) {
	chain, head, tail := chainLog(16)
	c := Wrap(store.NewMemStore())
	if err := c.PutRunLog(chain); err != nil {
		t.Fatal(err)
	}
	// Warm both directions so the concurrent deltas patch resident entries.
	if _, err := c.Closure(head, store.Down); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Closure(tail, store.Up); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Each log hangs a fresh artifact off the shared tail —
				// purely additive, all contending on the same cache lock.
				id := fmt.Sprintf("ext-%d-%d", g, i)
				if err := c.PutRunLog(extRun(id, tail, id+"-art", "")); err != nil {
					t.Errorf("ingest %s: %v", id, err)
				}
			}
		}(g)
	}
	wg.Wait()

	m := c.Metrics()
	if want := uint64(1 + writers*perWriter); m.Ingests != want {
		t.Fatalf("Ingests = %d, want %d (every delta applied exactly once)", m.Ingests, want)
	}
	// Batched is incidental (it depends on scheduling), but it must never
	// exceed the deltas that could have queued behind another writer.
	if m.Batched > uint64(writers*perWriter) {
		t.Fatalf("Batched = %d exceeds concurrent ingest count", m.Batched)
	}

	// The patched warm closures match a cold reference BFS on the store.
	for _, dir := range []store.Direction{store.Down, store.Up} {
		seed := head
		if dir == store.Up {
			// Upstream of one of the new leaves reaches the whole chain.
			seed = "ext-0-0-art"
		}
		got, err := c.Closure(seed, dir)
		if err != nil {
			t.Fatal(err)
		}
		want, err := store.NaiveClosure(c.Underlying(), seed, dir)
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("closure(%s, %v) diverged after concurrent ingest:\n got %d nodes\nwant %d nodes", seed, dir, len(got), len(want))
		}
	}
}

// BenchmarkCacheConcurrentIngest measures the contended additive ingest
// path the pending-queue batching targets: parallel writers extending a
// warm cache.
func BenchmarkCacheConcurrentIngest(b *testing.B) {
	chain, head, tail := chainLog(32)
	c := Wrap(store.NewMemStore())
	if err := c.PutRunLog(chain); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Closure(head, store.Down); err != nil {
		b.Fatal(err)
	}
	var n sync.Mutex
	next := 0
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.Lock()
			i := next
			next++
			n.Unlock()
			id := fmt.Sprintf("bench-ext-%d", i)
			if err := c.PutRunLog(extRun(id, tail, id+"-art", "")); err != nil {
				b.Fatal(err)
			}
		}
	})
}
