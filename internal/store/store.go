// Package store provides the provenance storage infrastructure of §2.2:
// one Store interface with four backends mirroring the storage spectrum the
// paper surveys —
//
//   - MemStore: native in-memory graph (adjacency indexes), the fastest
//     baseline;
//   - RelStore: provenance as tuples in relational tables (systems like [3]
//     store provenance in an RDBMS), built on internal/relalg;
//   - TripleStore: provenance as (subject, predicate, object) triples with
//     SPO/POS/OSP indexes, the Semantic-Web/RDF approach of [46, 26, 22];
//   - FileStore: provenance as append-only log files with an offset index,
//     the XML/file-dialect approach, with crash recovery on reopen.
//
// Query engines (package query) are written against the interface, so every
// language runs on every backend.
package store

import (
	"errors"
	"fmt"

	"repro/internal/provenance"
)

// ErrNotFound is returned when an entity is not in the store.
var ErrNotFound = errors.New("store: not found")

// Stats summarizes a store's contents and footprint.
type Stats struct {
	Runs        int
	Executions  int
	Artifacts   int
	Events      int
	Annotations int
	Bytes       int64 // approximate storage footprint
}

// Store persists and navigates retrospective provenance. Implementations
// must be safe for concurrent readers with a single writer.
type Store interface {
	// PutRunLog persists a complete run log. Logs are immutable once
	// stored; re-putting a run ID is an error.
	PutRunLog(l *provenance.RunLog) error
	// RunLog retrieves a stored log by run ID.
	RunLog(runID string) (*provenance.RunLog, error)
	// Runs lists stored run IDs in insertion order.
	Runs() ([]string, error)
	// Artifact and Execution retrieve single entities by ID.
	Artifact(id string) (*provenance.Artifact, error)
	Execution(id string) (*provenance.Execution, error)
	// GeneratorOf returns the execution that generated an artifact
	// (ErrNotFound if the artifact is raw input or unknown).
	GeneratorOf(artifactID string) (string, error)
	// ConsumersOf returns the executions that used an artifact, sorted.
	ConsumersOf(artifactID string) ([]string, error)
	// Used returns the artifact IDs an execution consumed, sorted.
	Used(execID string) ([]string, error)
	// Generated returns the artifact IDs an execution produced, sorted.
	Generated(execID string) ([]string, error)
	// Stats reports entity counts and approximate footprint.
	Stats() (Stats, error)
	// Name identifies the backend ("mem", "rel", "triple", "file").
	Name() string
	// Close releases resources.
	Close() error
}

// Lineage computes the full upstream closure (artifacts and executions) of
// an entity by navigating any Store. It is the backend-independent BFS the
// query-language engines are compared against in experiment E6.
func Lineage(s Store, entityID string) ([]string, error) {
	seen := map[string]bool{}
	var order []string
	frontier := []string{entityID}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			parents, err := parentsOf(s, id)
			if err != nil {
				return nil, err
			}
			for _, p := range parents {
				if !seen[p] {
					seen[p] = true
					order = append(order, p)
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// Dependents computes the full downstream closure of an entity.
func Dependents(s Store, entityID string) ([]string, error) {
	seen := map[string]bool{}
	var order []string
	frontier := []string{entityID}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			children, err := childrenOf(s, id)
			if err != nil {
				return nil, err
			}
			for _, c := range children {
				if !seen[c] {
					seen[c] = true
					order = append(order, c)
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

func parentsOf(s Store, id string) ([]string, error) {
	// Artifact: parent is its generator. Execution: parents are used
	// artifacts. Try artifact first, then execution.
	if _, err := s.Artifact(id); err == nil {
		gen, err := s.GeneratorOf(id)
		if errors.Is(err, ErrNotFound) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		return []string{gen}, nil
	}
	if _, err := s.Execution(id); err == nil {
		return s.Used(id)
	}
	return nil, fmt.Errorf("%w: entity %q", ErrNotFound, id)
}

func childrenOf(s Store, id string) ([]string, error) {
	if _, err := s.Artifact(id); err == nil {
		return s.ConsumersOf(id)
	}
	if _, err := s.Execution(id); err == nil {
		return s.Generated(id)
	}
	return nil, fmt.Errorf("%w: entity %q", ErrNotFound, id)
}
