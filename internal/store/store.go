// Package store provides the provenance storage infrastructure of §2.2:
// one Store interface with four backends mirroring the storage spectrum the
// paper surveys —
//
//   - MemStore: native in-memory graph (adjacency indexes), the fastest
//     baseline;
//   - RelStore: provenance as tuples in relational tables (systems like [3]
//     store provenance in an RDBMS), built on internal/relalg;
//   - TripleStore: provenance as (subject, predicate, object) triples with
//     SPO/POS/OSP indexes, the Semantic-Web/RDF approach of [46, 26, 22];
//   - FileStore: provenance as append-only log files with an offset index
//     and a resident adjacency index, the XML/file-dialect approach, with
//     crash recovery on reopen.
//
// Query engines (package query) are written against the interface, so every
// language runs on every backend.
//
// # Batch traversal
//
// Graph navigation is frontier-batched: Expand answers one whole BFS
// frontier per backend call, and Closure evaluates a full lineage or
// dependents closure pushed down into the backend, so a closure costs
// O(hops) backend round-trips instead of O(edges). Each backend implements
// the pair natively (MemStore and TripleStore serve whole closures under a
// single read lock; RelStore expands a hop with one semijoin scan per
// table; FileStore navigates a resident adjacency index and never touches
// disk). Lineage and Dependents are thin wrappers over Closure;
// NaiveClosure preserves the per-edge reference BFS that conformance tests
// and benchmarks compare against.
package store

import (
	"errors"
	"fmt"

	"repro/internal/provenance"
)

// ErrNotFound is returned when an entity is not in the store.
var ErrNotFound = errors.New("store: not found")

// Direction orients graph traversal: Up walks toward the inputs an entity
// was derived from (lineage), Down toward everything derived from it
// (dependents).
type Direction int

// Traversal directions.
const (
	Up Direction = iota
	Down
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// ParseDirection maps "up"/"down" (the wire form used by the HTTP API and
// CLIs) to a Direction.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "up":
		return Up, nil
	case "down":
		return Down, nil
	}
	return 0, fmt.Errorf("store: unknown direction %q (want up or down)", s)
}

// Stats summarizes a store's contents and footprint.
type Stats struct {
	Runs        int
	Executions  int
	Artifacts   int
	Events      int
	Annotations int
	Bytes       int64 // approximate storage footprint
}

// Store persists and navigates retrospective provenance. Implementations
// must be safe for concurrent readers with a single writer.
type Store interface {
	// PutRunLog persists a complete run log. Logs are immutable once
	// stored; re-putting a run ID is an error.
	PutRunLog(l *provenance.RunLog) error
	// RunLog retrieves a stored log by run ID.
	RunLog(runID string) (*provenance.RunLog, error)
	// Runs lists stored run IDs in insertion order.
	Runs() ([]string, error)
	// Artifact and Execution retrieve single entities by ID.
	Artifact(id string) (*provenance.Artifact, error)
	Execution(id string) (*provenance.Execution, error)
	// GeneratorOf returns the execution that generated an artifact
	// (ErrNotFound if the artifact is raw input or unknown).
	GeneratorOf(artifactID string) (string, error)
	// ConsumersOf returns the executions that used an artifact, sorted.
	ConsumersOf(artifactID string) ([]string, error)
	// Used returns the artifact IDs an execution consumed, sorted.
	Used(execID string) ([]string, error)
	// Generated returns the artifact IDs an execution produced, sorted.
	Generated(execID string) ([]string, error)
	// Expand answers one BFS frontier in a single backend call: for every
	// known entity in ids the result holds that entity's neighbors in the
	// given direction (the generating execution or used artifacts going Up;
	// consuming executions or generated artifacts going Down). Neighbor
	// lists are sorted and deduplicated. Known entities always have an
	// entry (possibly empty); unknown IDs are absent from the map rather
	// than an error, so callers can distinguish "no neighbors" from "no
	// such entity".
	Expand(ids []string, dir Direction) (map[string][]string, error)
	// Closure computes the full transitive closure of seed in the given
	// direction, pushed down into the backend: BFS order, seed excluded,
	// ErrNotFound when the seed is unknown. Equivalent to NaiveClosure but
	// O(hops) instead of O(edges) backend operations.
	Closure(seed string, dir Direction) ([]string, error)
	// Stats reports entity counts and approximate footprint.
	Stats() (Stats, error)
	// Name identifies the backend ("mem", "rel", "triple", "file").
	Name() string
	// Close releases resources.
	Close() error
}

// Lineage computes the full upstream closure (artifacts and executions) of
// an entity: the backend-independent query of experiments E4/E6, served by
// the backend's pushed-down Closure.
func Lineage(s Store, entityID string) ([]string, error) {
	return s.Closure(entityID, Up)
}

// Dependents computes the full downstream closure of an entity.
func Dependents(s Store, entityID string) ([]string, error) {
	return s.Closure(entityID, Down)
}

// ExpandViaNav implements Expand with per-entity navigation calls: the
// shared fallback for minimal Store implementations that have no native
// batch path. Backends in this package all override it natively.
func ExpandViaNav(s Store, ids []string, dir Direction) (map[string][]string, error) {
	out := make(map[string][]string, len(ids))
	for _, id := range ids {
		ns, ok, err := navNeighbors(s, id, dir)
		if err != nil {
			return nil, err
		}
		if ok {
			out[id] = ns
		}
	}
	return out, nil
}

// LocalNeighbors is one expanded entity's neighbor list in a CloseLocal
// result. Results are slices, not maps: the sharded router's pushdown
// driver consumes every entry of every round, and a slice walk avoids the
// per-round map allocation, hashing and iteration costs that would
// otherwise dominate deep traversals.
type LocalNeighbors struct {
	ID        string
	Neighbors []string
}

// LocalCloser is an optional Store capability used by the sharded router's
// closure pushdown: run a BFS fixpoint entirely inside the backend — under
// one lock acquisition on the indexed backends — from a whole batch of
// seeds, instead of being driven one frontier hop at a time from outside.
//
// The result holds every entity the call expanded (the known seeds plus
// everything transitively reachable from them through this backend's own
// edges) with its sorted-unique neighbor list in the given direction,
// exactly as Expand would report it; each expanded entity appears exactly
// once, in local discovery order. Entities for which skip reports true are
// treated as already expanded by an earlier call: they terminate the local
// walk and are absent from the result. Unknown seeds are ignored. A nil
// skip expands everything.
//
// The result is appended to buf (append-style: the caller passes last
// round's slice re-truncated to reuse its backing array, or nil for a
// fresh one) — a deep traversal's driver calls this once per round, and
// the container reuse is what keeps rounds allocation-flat.
//
// MemStore, FileStore and TripleStore implement it natively over their
// resident indexes; backends without the capability (RelStore) are served
// by LocalCloseOverExpand, which drives the same contract through batched
// Expand calls.
type LocalCloser interface {
	CloseLocal(seeds []string, dir Direction, skip func(id string) bool, buf []LocalNeighbors) ([]LocalNeighbors, error)
}

// localCloseBFS is the shared local-fixpoint walk behind every native
// CloseLocal: a BFS over a per-node neighbor function that stops at skip
// boundaries and records each expanded node's neighbor list. neighbors
// reports ok=false for unknown entities (they are not expanded; a run
// log's events only reference entities declared in the same log, so a
// backend's own edges never dangle).
//
// Dedup is hybrid: the typical pushdown round expands a handful of nodes,
// where a linear scan of the result beats allocating a set, and a walk
// that grows past the threshold (a single-shard store's whole closure)
// spills into a map once.
func localCloseBFS(seeds []string, dir Direction, skip func(string) bool, neighbors func(id string, dir Direction) ([]string, bool), buf []LocalNeighbors) []LocalNeighbors {
	out := buf[:0]
	const spill = 32
	var seen map[string]struct{}
	expanded := func(id string) bool {
		if seen != nil {
			_, ok := seen[id]
			return ok
		}
		for i := range out {
			if out[i].ID == id {
				return true
			}
		}
		return false
	}
	// Level buffers alternate (the seed slice is caller-owned and never
	// written), keeping the walk allocation-flat across levels.
	var bufs [2][]string
	frontier := seeds
	which := 0
	for len(frontier) > 0 {
		next := bufs[which][:0]
		for _, id := range frontier {
			if expanded(id) {
				continue
			}
			if skip != nil && skip(id) {
				continue
			}
			ns, ok := neighbors(id, dir)
			if !ok {
				continue
			}
			if seen == nil && len(out) >= spill {
				seen = make(map[string]struct{}, 4*spill)
				for i := range out {
					seen[out[i].ID] = struct{}{}
				}
			}
			if seen != nil {
				seen[id] = struct{}{}
			}
			out = append(out, LocalNeighbors{ID: id, Neighbors: ns})
			for _, n := range ns {
				if !expanded(n) {
					next = append(next, n)
				}
			}
		}
		bufs[which] = next
		frontier = next
		which ^= 1
	}
	return out
}

// LocalCloseOverExpand implements the LocalCloser contract for backends
// that only offer batched Expand (RelStore behind the sharded router): one
// Expand per local hop, accumulating each expanded entity's neighbor list
// until the local fixpoint. Costs O(local hops) backend calls where the
// native implementations pay one lock acquisition total, but preserves the
// same results.
func LocalCloseOverExpand(expand func([]string, Direction) (map[string][]string, error), seeds []string, dir Direction, skip func(id string) bool, buf []LocalNeighbors) ([]LocalNeighbors, error) {
	out := buf[:0]
	seen := make(map[string]struct{}, len(seeds)*2)
	pending := make([]string, 0, len(seeds))
	for _, id := range seeds {
		if skip == nil || !skip(id) {
			pending = append(pending, id)
		}
	}
	for len(pending) > 0 {
		adj, err := expand(pending, dir)
		if err != nil {
			return nil, err
		}
		var next []string
		for _, id := range pending {
			if _, done := seen[id]; done {
				continue
			}
			ns, known := adj[id]
			if !known {
				continue // unknown locally
			}
			seen[id] = struct{}{}
			out = append(out, LocalNeighbors{ID: id, Neighbors: ns})
			for _, n := range ns {
				if _, done := seen[n]; done {
					continue
				}
				if skip != nil && skip(n) {
					continue
				}
				next = append(next, n)
			}
		}
		pending = next
	}
	return out, nil
}

// CloseOverExpand is the shared Closure fallback for minimal Store
// implementations whose only batch primitive is Expand: one Expand call
// per hop, visiting neighbors in per-node sorted order, seed excluded,
// ErrNotFound for unknown seeds. The built-in backends implement Closure
// natively (single-lock BFS, or RelStore's one-scan hash plan), but the
// conformance property test asserts this fallback agrees with them.
func CloseOverExpand(expand func([]string, Direction) (map[string][]string, error), seed string, dir Direction) ([]string, error) {
	seen := map[string]bool{}
	var order []string
	frontier := []string{seed}
	for hop := 0; len(frontier) > 0; hop++ {
		adj, err := expand(frontier, dir)
		if err != nil {
			return nil, err
		}
		if hop == 0 {
			if _, known := adj[seed]; !known {
				return nil, fmt.Errorf("%w: entity %q", ErrNotFound, seed)
			}
		}
		var next []string
		for _, id := range frontier {
			for _, n := range adj[id] {
				if !seen[n] {
					seen[n] = true
					order = append(order, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// bfsClosure runs the same BFS over a per-node neighbor function; backends
// that can hold one lock across the whole traversal (mem, triple, file)
// use it with their locked lookup. neighbors reports ok=false for unknown
// entities.
func bfsClosure(seed string, dir Direction, neighbors func(id string, dir Direction) ([]string, bool)) ([]string, error) {
	if _, known := neighbors(seed, dir); !known {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, seed)
	}
	seen := map[string]bool{}
	var order []string
	frontier := []string{seed}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			ns, _ := neighbors(id, dir)
			for _, n := range ns {
				if !seen[n] {
					seen[n] = true
					order = append(order, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// NaiveClosure is the per-edge reference BFS the batch API replaced: one
// navigation call per visited node. Conformance tests assert every
// backend's Closure matches it, and BenchmarkE4b quantifies the gap.
func NaiveClosure(s Store, entityID string, dir Direction) ([]string, error) {
	seen := map[string]bool{}
	var order []string
	frontier := []string{entityID}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			ns, ok, err := navNeighbors(s, id, dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("%w: entity %q", ErrNotFound, id)
			}
			for _, n := range ns {
				if !seen[n] {
					seen[n] = true
					order = append(order, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// navNeighbors resolves one entity's neighbors through the single-entity
// navigation methods. ok=false means the entity is neither a stored
// artifact nor a stored execution.
func navNeighbors(s Store, id string, dir Direction) ([]string, bool, error) {
	if _, err := s.Artifact(id); err == nil {
		if dir == Up {
			gen, err := s.GeneratorOf(id)
			if errors.Is(err, ErrNotFound) {
				return nil, true, nil
			}
			if err != nil {
				return nil, false, err
			}
			return []string{gen}, true, nil
		}
		ns, err := s.ConsumersOf(id)
		return ns, true, err
	}
	if _, err := s.Execution(id); err == nil {
		if dir == Up {
			ns, err := s.Used(id)
			return ns, true, err
		}
		ns, err := s.Generated(id)
		return ns, true, err
	}
	return nil, false, nil
}
