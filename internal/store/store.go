// Package store provides the provenance storage infrastructure of §2.2:
// one Store interface with four backends mirroring the storage spectrum the
// paper surveys —
//
//   - MemStore: native in-memory graph (adjacency indexes), the fastest
//     baseline;
//   - RelStore: provenance as tuples in relational tables (systems like [3]
//     store provenance in an RDBMS), built on internal/relalg;
//   - TripleStore: provenance as (subject, predicate, object) triples with
//     SPO/POS/OSP indexes, the Semantic-Web/RDF approach of [46, 26, 22];
//   - FileStore: provenance as append-only log files with an offset index
//     and a resident adjacency index, the XML/file-dialect approach, with
//     crash recovery on reopen.
//
// Query engines (package query) are written against the interface, so every
// language runs on every backend.
//
// # Batch traversal
//
// Graph navigation is frontier-batched: Expand answers one whole BFS
// frontier per backend call, and Closure evaluates a full lineage or
// dependents closure pushed down into the backend, so a closure costs
// O(hops) backend round-trips instead of O(edges). Each backend implements
// the pair natively (MemStore and TripleStore serve whole closures under a
// single read lock; RelStore expands a hop with one semijoin scan per
// table; FileStore navigates a resident adjacency index and never touches
// disk). Lineage and Dependents are thin wrappers over Closure;
// NaiveClosure preserves the per-edge reference BFS that conformance tests
// and benchmarks compare against.
package store

import (
	"errors"
	"fmt"

	"repro/internal/provenance"
)

// ErrNotFound is returned when an entity is not in the store.
var ErrNotFound = errors.New("store: not found")

// Direction orients graph traversal: Up walks toward the inputs an entity
// was derived from (lineage), Down toward everything derived from it
// (dependents).
type Direction int

// Traversal directions.
const (
	Up Direction = iota
	Down
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// ParseDirection maps "up"/"down" (the wire form used by the HTTP API and
// CLIs) to a Direction.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "up":
		return Up, nil
	case "down":
		return Down, nil
	}
	return 0, fmt.Errorf("store: unknown direction %q (want up or down)", s)
}

// Stats summarizes a store's contents and footprint.
type Stats struct {
	Runs        int
	Executions  int
	Artifacts   int
	Events      int
	Annotations int
	Bytes       int64 // approximate storage footprint
}

// Store persists and navigates retrospective provenance. Implementations
// must be safe for concurrent readers with a single writer.
type Store interface {
	// PutRunLog persists a complete run log. Logs are immutable once
	// stored; re-putting a run ID is an error.
	PutRunLog(l *provenance.RunLog) error
	// RunLog retrieves a stored log by run ID.
	RunLog(runID string) (*provenance.RunLog, error)
	// Runs lists stored run IDs in insertion order.
	Runs() ([]string, error)
	// Artifact and Execution retrieve single entities by ID.
	Artifact(id string) (*provenance.Artifact, error)
	Execution(id string) (*provenance.Execution, error)
	// GeneratorOf returns the execution that generated an artifact
	// (ErrNotFound if the artifact is raw input or unknown).
	GeneratorOf(artifactID string) (string, error)
	// ConsumersOf returns the executions that used an artifact, sorted.
	ConsumersOf(artifactID string) ([]string, error)
	// Used returns the artifact IDs an execution consumed, sorted.
	Used(execID string) ([]string, error)
	// Generated returns the artifact IDs an execution produced, sorted.
	Generated(execID string) ([]string, error)
	// Expand answers one BFS frontier in a single backend call: for every
	// known entity in ids the result holds that entity's neighbors in the
	// given direction (the generating execution or used artifacts going Up;
	// consuming executions or generated artifacts going Down). Neighbor
	// lists are sorted and deduplicated. Known entities always have an
	// entry (possibly empty); unknown IDs are absent from the map rather
	// than an error, so callers can distinguish "no neighbors" from "no
	// such entity".
	Expand(ids []string, dir Direction) (map[string][]string, error)
	// Closure computes the full transitive closure of seed in the given
	// direction, pushed down into the backend: BFS order, seed excluded,
	// ErrNotFound when the seed is unknown. Equivalent to NaiveClosure but
	// O(hops) instead of O(edges) backend operations.
	Closure(seed string, dir Direction) ([]string, error)
	// Stats reports entity counts and approximate footprint.
	Stats() (Stats, error)
	// Name identifies the backend ("mem", "rel", "triple", "file").
	Name() string
	// Close releases resources.
	Close() error
}

// Lineage computes the full upstream closure (artifacts and executions) of
// an entity: the backend-independent query of experiments E4/E6, served by
// the backend's pushed-down Closure.
func Lineage(s Store, entityID string) ([]string, error) {
	return s.Closure(entityID, Up)
}

// Dependents computes the full downstream closure of an entity.
func Dependents(s Store, entityID string) ([]string, error) {
	return s.Closure(entityID, Down)
}

// ExpandViaNav implements Expand with per-entity navigation calls: the
// shared fallback for minimal Store implementations that have no native
// batch path. Backends in this package all override it natively.
func ExpandViaNav(s Store, ids []string, dir Direction) (map[string][]string, error) {
	out := make(map[string][]string, len(ids))
	for _, id := range ids {
		ns, ok, err := navNeighbors(s, id, dir)
		if err != nil {
			return nil, err
		}
		if ok {
			out[id] = ns
		}
	}
	return out, nil
}

// CloseOverExpand is the shared Closure fallback for minimal Store
// implementations whose only batch primitive is Expand: one Expand call
// per hop, visiting neighbors in per-node sorted order, seed excluded,
// ErrNotFound for unknown seeds. The built-in backends implement Closure
// natively (single-lock BFS, or RelStore's one-scan hash plan), but the
// conformance property test asserts this fallback agrees with them.
func CloseOverExpand(expand func([]string, Direction) (map[string][]string, error), seed string, dir Direction) ([]string, error) {
	seen := map[string]bool{}
	var order []string
	frontier := []string{seed}
	for hop := 0; len(frontier) > 0; hop++ {
		adj, err := expand(frontier, dir)
		if err != nil {
			return nil, err
		}
		if hop == 0 {
			if _, known := adj[seed]; !known {
				return nil, fmt.Errorf("%w: entity %q", ErrNotFound, seed)
			}
		}
		var next []string
		for _, id := range frontier {
			for _, n := range adj[id] {
				if !seen[n] {
					seen[n] = true
					order = append(order, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// bfsClosure runs the same BFS over a per-node neighbor function; backends
// that can hold one lock across the whole traversal (mem, triple, file)
// use it with their locked lookup. neighbors reports ok=false for unknown
// entities.
func bfsClosure(seed string, dir Direction, neighbors func(id string, dir Direction) ([]string, bool)) ([]string, error) {
	if _, known := neighbors(seed, dir); !known {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, seed)
	}
	seen := map[string]bool{}
	var order []string
	frontier := []string{seed}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			ns, _ := neighbors(id, dir)
			for _, n := range ns {
				if !seen[n] {
					seen[n] = true
					order = append(order, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// NaiveClosure is the per-edge reference BFS the batch API replaced: one
// navigation call per visited node. Conformance tests assert every
// backend's Closure matches it, and BenchmarkE4b quantifies the gap.
func NaiveClosure(s Store, entityID string, dir Direction) ([]string, error) {
	seen := map[string]bool{}
	var order []string
	frontier := []string{entityID}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			ns, ok, err := navNeighbors(s, id, dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("%w: entity %q", ErrNotFound, id)
			}
			for _, n := range ns {
				if !seen[n] {
					seen[n] = true
					order = append(order, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// navNeighbors resolves one entity's neighbors through the single-entity
// navigation methods. ok=false means the entity is neither a stored
// artifact nor a stored execution.
func navNeighbors(s Store, id string, dir Direction) ([]string, bool, error) {
	if _, err := s.Artifact(id); err == nil {
		if dir == Up {
			gen, err := s.GeneratorOf(id)
			if errors.Is(err, ErrNotFound) {
				return nil, true, nil
			}
			if err != nil {
				return nil, false, err
			}
			return []string{gen}, true, nil
		}
		ns, err := s.ConsumersOf(id)
		return ns, true, err
	}
	if _, err := s.Execution(id); err == nil {
		if dir == Up {
			ns, err := s.Used(id)
			return ns, true, err
		}
		ns, err := s.Generated(id)
		return ns, true, err
	}
	return nil, false, nil
}
