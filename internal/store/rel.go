package store

import (
	"fmt"
	"sync"

	"repro/internal/provenance"
	"repro/internal/relalg"
)

// RelStore keeps provenance as tuples in relational tables, the approach of
// systems that map provenance onto an RDBMS [3]. Navigation queries are
// relational scans — deliberately index-free, so experiment E4 exposes the
// cost difference against adjacency- and triple-indexed backends. Since the
// batch-traversal API landed, single-entity navigation runs through the
// same one-pass semijoin plan as Expand with a one-element frontier,
// instead of materializing relations and per-call relalg Select plans.
//
// Tables:
//
//	runs(id, workflow, hash, agent, status)
//	executions(id, run, module, moduleType, status, wallNanos)
//	artifacts(id, run, type, contentHash, size)
//	uses(exec, artifact, port)
//	gens(exec, artifact, port)
//	annotations(subject, key, value, author)
type RelStore struct {
	mu    sync.RWMutex
	logs  map[string]*provenance.RunLog
	order []string

	runRows  [][]relalg.Val
	execRows [][]relalg.Val
	artRows  [][]relalg.Val
	useRows  [][]relalg.Val
	genRows  [][]relalg.Val
	annRows  [][]relalg.Val

	dirty  bool
	tables map[string]*relalg.Relation
}

// NewRelStore returns an empty relational store.
func NewRelStore() *RelStore {
	return &RelStore{logs: map[string]*provenance.RunLog{}, tables: map[string]*relalg.Relation{}}
}

var _ Store = (*RelStore)(nil)

// Name implements Store.
func (s *RelStore) Name() string { return "rel" }

// PutRunLog implements Store.
func (s *RelStore) PutRunLog(l *provenance.RunLog) error {
	if err := l.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.logs[l.Run.ID]; dup {
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	s.logs[l.Run.ID] = l
	s.order = append(s.order, l.Run.ID)
	s.runRows = append(s.runRows, []relalg.Val{l.Run.ID, l.Run.WorkflowID, l.Run.WorkflowHash, l.Run.Agent, string(l.Run.Status)})
	for _, e := range l.Executions {
		s.execRows = append(s.execRows, []relalg.Val{e.ID, e.RunID, e.ModuleID, e.ModuleType, string(e.Status), e.WallNanos})
	}
	for _, a := range l.Artifacts {
		s.artRows = append(s.artRows, []relalg.Val{a.ID, a.RunID, a.Type, a.ContentHash, a.Size})
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventArtifactUsed:
			s.useRows = append(s.useRows, []relalg.Val{ev.ExecutionID, ev.ArtifactID, ev.Port})
		case provenance.EventArtifactGen:
			s.genRows = append(s.genRows, []relalg.Val{ev.ExecutionID, ev.ArtifactID, ev.Port})
		}
	}
	for _, an := range l.Annotations {
		s.annRows = append(s.annRows, []relalg.Val{an.Subject, an.Key, an.Value, an.Author})
	}
	s.dirty = true
	return nil
}

// Tables materializes (lazily, after writes) the current relational view.
// The returned relations are immutable. Exposed so the PQL engine and
// dbprov can query provenance relationally.
func (s *RelStore) Tables() map[string]*relalg.Relation {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebuildLocked()
	out := make(map[string]*relalg.Relation, len(s.tables))
	for k, v := range s.tables {
		out[k] = v
	}
	return out
}

func (s *RelStore) rebuildLocked() {
	if !s.dirty && len(s.tables) > 0 {
		return
	}
	mustRel := func(name string, schema []string, rows [][]relalg.Val) *relalg.Relation {
		r, err := relalg.NewRelation(name, schema, rows)
		if err != nil {
			// Schemas are static and rows are arity-checked on insert.
			panic(fmt.Sprintf("store: rebuilding %s: %v", name, err))
		}
		return r
	}
	s.tables = map[string]*relalg.Relation{
		"runs":        mustRel("runs", []string{"id", "workflow", "hash", "agent", "status"}, s.runRows),
		"executions":  mustRel("executions", []string{"id", "run", "module", "moduleType", "status", "wallNanos"}, s.execRows),
		"artifacts":   mustRel("artifacts", []string{"id", "run", "type", "contentHash", "size"}, s.artRows),
		"uses":        mustRel("uses", []string{"exec", "artifact", "port"}, s.useRows),
		"gens":        mustRel("gens", []string{"exec", "artifact", "port"}, s.genRows),
		"annotations": mustRel("annotations", []string{"subject", "key", "value", "author"}, s.annRows),
	}
	s.dirty = false
}

func (s *RelStore) table(name string) *relalg.Relation {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebuildLocked()
	return s.tables[name]
}

// RunLog implements Store.
func (s *RelStore) RunLog(runID string) (*provenance.RunLog, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.logs[runID]
	if !ok {
		return nil, fmt.Errorf("%w: run %q", ErrNotFound, runID)
	}
	return l, nil
}

// Runs implements Store.
func (s *RelStore) Runs() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...), nil
}

// Artifact implements Store.
func (s *RelStore) Artifact(id string) (*provenance.Artifact, error) {
	arts := s.table("artifacts")
	pred, err := relalg.Eq(arts, "id", id)
	if err != nil {
		return nil, err
	}
	sel := relalg.Select(arts, pred)
	if sel.Len() == 0 {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	t := sel.Tuples[0]
	return &provenance.Artifact{
		ID:          t.Values[0].(string),
		RunID:       t.Values[1].(string),
		Type:        t.Values[2].(string),
		ContentHash: t.Values[3].(string),
		Size:        t.Values[4].(int64),
	}, nil
}

// Execution implements Store.
func (s *RelStore) Execution(id string) (*provenance.Execution, error) {
	execs := s.table("executions")
	pred, err := relalg.Eq(execs, "id", id)
	if err != nil {
		return nil, err
	}
	sel := relalg.Select(execs, pred)
	if sel.Len() == 0 {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	t := sel.Tuples[0]
	return &provenance.Execution{
		ID:         t.Values[0].(string),
		RunID:      t.Values[1].(string),
		ModuleID:   t.Values[2].(string),
		ModuleType: t.Values[3].(string),
		Status:     provenance.ExecStatus(t.Values[4].(string)),
		WallNanos:  t.Values[5].(int64),
	}, nil
}

// GeneratorOf implements Store, routed through a one-element Expand
// frontier: one classification + adjacency semijoin pass over the base
// rows, no relation materialization and no per-call relalg plan.
func (s *RelStore) GeneratorOf(artifactID string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, isArt, _ := s.expandLocked([]string{artifactID}, Up)
	if !isArt[artifactID] || len(out[artifactID]) == 0 {
		return "", fmt.Errorf("%w: generator of %q", ErrNotFound, artifactID)
	}
	return out[artifactID][0], nil
}

// ConsumersOf implements Store, via a one-element Down frontier.
func (s *RelStore) ConsumersOf(artifactID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, isArt, _ := s.expandLocked([]string{artifactID}, Down)
	if !isArt[artifactID] {
		return nil, nil
	}
	return out[artifactID], nil
}

// Used implements Store, via a one-element Up frontier. Expand classifies
// artifact-first, so an ID stored as both kinds falls back to a direct
// uses scan — keeping the execution-side adjacency addressable, as on
// MemStore and the other backends.
func (s *RelStore) Used(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, isArt, isExec := s.expandLocked([]string{execID}, Up)
	switch {
	case isExec[execID]:
		return out[execID], nil
	case isArt[execID]:
		return s.execAdjacencyLocked(execID, Up), nil
	}
	return nil, nil
}

// Generated implements Store, via a one-element Down frontier, with the
// same dual-kind fallback as Used.
func (s *RelStore) Generated(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, isArt, isExec := s.expandLocked([]string{execID}, Down)
	switch {
	case isExec[execID]:
		return out[execID], nil
	case isArt[execID]:
		return s.execAdjacencyLocked(execID, Down), nil
	}
	return nil, nil
}

// execAdjacencyLocked scans the edge tables for one execution's adjacency,
// bypassing Expand's artifact-first classification: the dual-kind path of
// Used/Generated. Returns nil when the ID is not a stored execution.
func (s *RelStore) execAdjacencyLocked(execID string, dir Direction) []string {
	known := false
	for _, row := range s.execRows {
		if row[0].(string) == execID {
			known = true
			break
		}
	}
	if !known {
		return nil
	}
	rows := s.useRows
	if dir == Down {
		rows = s.genRows
	}
	var ns []string
	for _, row := range rows {
		if row[0].(string) == execID {
			ns = append(ns, row[1].(string))
		}
	}
	return sortedUnique(ns)
}

// Expand implements Store. One hop costs a fixed number of semijoin scans
// — artifacts and executions to classify the frontier, then uses/gens for
// the adjacency — regardless of frontier width, where per-edge navigation
// re-scanned a table per frontier node. The semijoins (table ⋉ frontier)
// are evaluated directly over the base rows: materializing them through
// relalg.Semijoin would clone tuples and witness sets per hop, which costs
// more than the scan itself on narrow frontiers.
func (s *RelStore) Expand(ids []string, dir Direction) (map[string][]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, _, _ := s.expandLocked(ids, dir)
	return out, nil
}

// expandLocked answers one frontier and reports how each frontier ID was
// classified (artifact wins over execution, as everywhere else). It is the
// shared plan behind Expand and — with one-element frontiers — the
// single-entity navigation methods. The caller holds at least a read lock.
func (s *RelStore) expandLocked(ids []string, dir Direction) (out map[string][]string, isArt, isExec map[string]bool) {
	frontier := make(map[string]bool, len(ids))
	for _, id := range ids {
		frontier[id] = true
	}
	out = make(map[string][]string, len(ids))
	isArt = map[string]bool{}
	isExec = map[string]bool{}
	for _, row := range s.artRows {
		if id := row[0].(string); frontier[id] {
			isArt[id] = true
			out[id] = nil
		}
	}
	for _, row := range s.execRows {
		// Artifact classification wins for an ID stored as both (matching
		// the artifact-first order of navNeighbors and the other backends).
		if id := row[0].(string); frontier[id] && !isArt[id] {
			isExec[id] = true
			out[id] = nil
		}
	}
	// uses(exec, artifact, port) and gens(exec, artifact, port): one
	// semijoin scan each, grouped back onto the frontier.
	switch dir {
	case Up:
		for _, row := range s.genRows {
			// Artifact -> generating execution: first scan hit wins, like
			// GeneratorOf.
			if art := row[1].(string); isArt[art] && out[art] == nil {
				out[art] = []string{row[0].(string)}
			}
		}
		for _, row := range s.useRows {
			if exec := row[0].(string); isExec[exec] {
				out[exec] = append(out[exec], row[1].(string))
			}
		}
	default:
		for _, row := range s.useRows {
			if art := row[1].(string); isArt[art] {
				out[art] = append(out[art], row[0].(string))
			}
		}
		for _, row := range s.genRows {
			if exec := row[0].(string); isExec[exec] {
				out[exec] = append(out[exec], row[1].(string))
			}
		}
	}
	for id, ns := range out {
		if dir == Up && isArt[id] {
			continue // single generator, already in scan order
		}
		out[id] = sortedUnique(ns)
	}
	return out, isArt, isExec
}

// Closure implements Store with the pushed-down plan an index-free
// relational backend wants for a whole closure: one scan per table builds
// the hash adjacency (the build side the per-hop semijoins would otherwise
// re-scan every hop), then the BFS runs over the hash maps. Total cost is
// O(rows + closure), where per-hop scans pay O(rows) per hop and the
// per-edge path paid O(rows) per visited node.
func (s *RelStore) Closure(seed string, dir Direction) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	isArt := make(map[string]bool, len(s.artRows))
	for _, row := range s.artRows {
		isArt[row[0].(string)] = true
	}
	isExec := make(map[string]bool, len(s.execRows))
	for _, row := range s.execRows {
		isExec[row[0].(string)] = true
	}
	genBy := map[string]string{} // artifact -> first generating execution
	adj := map[string][]string{} // execution->artifacts (Up) or either (Down)
	switch dir {
	case Up:
		for _, row := range s.genRows {
			if art := row[1].(string); genBy[art] == "" {
				genBy[art] = row[0].(string)
			}
		}
		for _, row := range s.useRows {
			exec := row[0].(string)
			adj[exec] = append(adj[exec], row[1].(string))
		}
	default:
		for _, row := range s.useRows {
			art := row[1].(string)
			adj[art] = append(adj[art], row[0].(string))
		}
		for _, row := range s.genRows {
			exec := row[0].(string)
			adj[exec] = append(adj[exec], row[1].(string))
		}
	}
	return bfsClosure(seed, dir, func(id string, d Direction) ([]string, bool) {
		switch {
		case isArt[id]:
			if d == Up {
				if g := genBy[id]; g != "" {
					return []string{g}, true
				}
				return nil, true
			}
			return sortedUnique(adj[id]), true
		case isExec[id]:
			return sortedUnique(adj[id]), true
		}
		return nil, false
	})
}

// Stats implements Store.
func (s *RelStore) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Runs: len(s.logs)}
	st.Executions = len(s.execRows)
	st.Artifacts = len(s.artRows)
	for _, l := range s.logs {
		st.Events += len(l.Events)
		st.Annotations += len(l.Annotations)
	}
	// Rough per-row footprints: values plus tuple/witness overhead.
	for _, rows := range [][][]relalg.Val{s.runRows, s.execRows, s.artRows, s.useRows, s.genRows, s.annRows} {
		for _, row := range rows {
			st.Bytes += 32 // tuple + witness overhead
			for _, v := range row {
				if str, ok := v.(string); ok {
					st.Bytes += int64(len(str))
				} else {
					st.Bytes += 8
				}
			}
		}
	}
	return st, nil
}

// Close implements Store.
func (s *RelStore) Close() error { return nil }
