package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/provenance"
)

// Triple is an RDF-style (subject, predicate, object) statement.
type Triple struct {
	S, P, O string
}

// Predicates used when flattening provenance into triples. They mirror the
// vocabulary of the RDF-based systems the paper surveys [46, 26, 22].
const (
	PredType       = "rdf:type"
	PredGenerated  = "prov:generated"   // execution -> artifact
	PredUsed       = "prov:used"        // execution -> artifact
	PredPartOfRun  = "prov:partOfRun"   // execution/artifact -> run
	PredModule     = "prov:module"      // execution -> module ID
	PredModuleType = "prov:moduleType"  // execution -> module type
	PredStatus     = "prov:status"      // execution/run -> status
	PredHash       = "prov:contentHash" // artifact -> hash
	PredArtType    = "prov:artifactType"
	PredWorkflow   = "prov:workflow" // run -> workflow ID
	PredAgent      = "prov:agent"    // run -> agent
	PredAnnKey     = "ann:key"
	PredAnnValue   = "ann:value"
	PredAnnSubject = "ann:subject"
)

// TripleStore keeps provenance as triples with SPO/POS/OSP hash indexes,
// the Semantic-Web storage approach. It also serves as the data source for
// the SPARQL-like query engine (package query/triplequery).
type TripleStore struct {
	mu    sync.RWMutex
	logs  map[string]*provenance.RunLog
	order []string
	spo   map[string]map[string][]string // s -> p -> objects
	pos   map[string]map[string][]string // p -> o -> subjects
	osp   map[string]map[string][]string // o -> s -> predicates
	count int
	bytes int64
}

// NewTripleStore returns an empty triple store.
func NewTripleStore() *TripleStore {
	return &TripleStore{
		logs: map[string]*provenance.RunLog{},
		spo:  map[string]map[string][]string{},
		pos:  map[string]map[string][]string{},
		osp:  map[string]map[string][]string{},
	}
}

var _ Store = (*TripleStore)(nil)
var _ LocalCloser = (*TripleStore)(nil)

// Name implements Store.
func (s *TripleStore) Name() string { return "triple" }

func (s *TripleStore) insert(t Triple) {
	addTo(s.spo, t.S, t.P, t.O)
	addTo(s.pos, t.P, t.O, t.S)
	addTo(s.osp, t.O, t.S, t.P)
	s.count++
	s.bytes += int64(len(t.S) + len(t.P) + len(t.O) + 24)
}

func addTo(idx map[string]map[string][]string, a, b, c string) {
	m, ok := idx[a]
	if !ok {
		m = map[string][]string{}
		idx[a] = m
	}
	m[b] = append(m[b], c)
}

// TriplesOf flattens a run log into the triples PutRunLog stores, in
// insertion order. It is the single source of truth for the provenance
// vocabulary, shared with the closure cache's ingest-time pattern patching
// (package closurecache), which must predict exactly which triples an
// ingest adds.
func TriplesOf(l *provenance.RunLog) []Triple {
	out := make([]Triple, 0, 4+5*len(l.Executions)+4*len(l.Artifacts)+len(l.Events)+4*len(l.Annotations))
	out = append(out,
		Triple{l.Run.ID, PredType, "Run"},
		Triple{l.Run.ID, PredWorkflow, l.Run.WorkflowID},
		Triple{l.Run.ID, PredAgent, l.Run.Agent},
		Triple{l.Run.ID, PredStatus, string(l.Run.Status)})
	for _, e := range l.Executions {
		out = append(out,
			Triple{e.ID, PredType, "Execution"},
			Triple{e.ID, PredPartOfRun, e.RunID},
			Triple{e.ID, PredModule, e.ModuleID},
			Triple{e.ID, PredModuleType, e.ModuleType},
			Triple{e.ID, PredStatus, string(e.Status)})
	}
	for _, a := range l.Artifacts {
		out = append(out,
			Triple{a.ID, PredType, "Artifact"},
			Triple{a.ID, PredPartOfRun, a.RunID},
			Triple{a.ID, PredHash, a.ContentHash},
			Triple{a.ID, PredArtType, a.Type})
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventArtifactUsed:
			out = append(out, Triple{ev.ExecutionID, PredUsed, ev.ArtifactID})
		case provenance.EventArtifactGen:
			out = append(out, Triple{ev.ExecutionID, PredGenerated, ev.ArtifactID})
		}
	}
	for i, an := range l.Annotations {
		node := fmt.Sprintf("_:ann-%s-%d", l.Run.ID, i)
		out = append(out,
			Triple{node, PredType, "Annotation"},
			Triple{node, PredAnnSubject, an.Subject},
			Triple{node, PredAnnKey, an.Key},
			Triple{node, PredAnnValue, an.Value})
	}
	return out
}

// PutRunLog implements Store.
func (s *TripleStore) PutRunLog(l *provenance.RunLog) error {
	if err := l.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.logs[l.Run.ID]; dup {
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	s.logs[l.Run.ID] = l
	s.order = append(s.order, l.Run.ID)
	for _, t := range TriplesOf(l) {
		s.insert(t)
	}
	return nil
}

// Match returns triples matching a pattern; empty strings are wildcards.
// Results are sorted. This is the primitive the SPARQL-like engine joins
// over.
func (s *TripleStore) Match(subj, pred, obj string) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.matchLocked(subj, pred, obj)
}

// MatchBatch resolves many patterns (empty strings are wildcards, as in
// Match) under a single read lock: the batched index-probe primitive the
// SPARQL-like engine uses to evaluate one pattern across a whole binding
// frontier in one store call. Result i holds the matches of patterns[i].
func (s *TripleStore) MatchBatch(patterns []Triple) [][]Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]Triple, len(patterns))
	for i, p := range patterns {
		out[i] = s.matchLocked(p.S, p.P, p.O)
	}
	return out
}

func (s *TripleStore) matchLocked(subj, pred, obj string) []Triple {
	var out []Triple
	switch {
	case subj != "" && pred != "":
		for _, o := range s.spo[subj][pred] {
			if obj == "" || obj == o {
				out = append(out, Triple{subj, pred, o})
			}
		}
	case subj != "":
		for p, objs := range s.spo[subj] {
			for _, o := range objs {
				if obj == "" || obj == o {
					out = append(out, Triple{subj, p, o})
				}
			}
		}
	case pred != "" && obj != "":
		for _, sub := range s.pos[pred][obj] {
			out = append(out, Triple{sub, pred, obj})
		}
	case pred != "":
		for o, subs := range s.pos[pred] {
			for _, sub := range subs {
				out = append(out, Triple{sub, pred, o})
			}
		}
	case obj != "":
		for sub, preds := range s.osp[obj] {
			for _, p := range preds {
				out = append(out, Triple{sub, p, obj})
			}
		}
	default:
		for sub, pm := range s.spo {
			for p, objs := range pm {
				for _, o := range objs {
					out = append(out, Triple{sub, p, o})
				}
			}
		}
	}
	SortTriples(out)
	return out
}

// SortTriples orders triples by (S, P, O): the canonical result order of
// Match/MatchBatch, shared with the closure cache's pattern patching so
// warm results sort exactly like cold ones.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}

// RunLog implements Store.
func (s *TripleStore) RunLog(runID string) (*provenance.RunLog, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.logs[runID]
	if !ok {
		return nil, fmt.Errorf("%w: run %q", ErrNotFound, runID)
	}
	return l, nil
}

// Runs implements Store.
func (s *TripleStore) Runs() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...), nil
}

// Artifact implements Store.
func (s *TripleStore) Artifact(id string) (*provenance.Artifact, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !hasObj(s.spo, id, PredType, "Artifact") {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	a := &provenance.Artifact{ID: id}
	a.RunID = firstObj(s.spo, id, PredPartOfRun)
	a.ContentHash = firstObj(s.spo, id, PredHash)
	a.Type = firstObj(s.spo, id, PredArtType)
	return a, nil
}

// Execution implements Store.
func (s *TripleStore) Execution(id string) (*provenance.Execution, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !hasObj(s.spo, id, PredType, "Execution") {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	e := &provenance.Execution{ID: id}
	e.RunID = firstObj(s.spo, id, PredPartOfRun)
	e.ModuleID = firstObj(s.spo, id, PredModule)
	e.ModuleType = firstObj(s.spo, id, PredModuleType)
	e.Status = provenance.ExecStatus(firstObj(s.spo, id, PredStatus))
	return e, nil
}

func hasObj(spo map[string]map[string][]string, s, p, o string) bool {
	for _, have := range spo[s][p] {
		if have == o {
			return true
		}
	}
	return false
}

func firstObj(spo map[string]map[string][]string, s, p string) string {
	objs := spo[s][p]
	if len(objs) == 0 {
		return ""
	}
	return objs[0]
}

// GeneratorOf implements Store.
func (s *TripleStore) GeneratorOf(artifactID string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	subs := s.pos[PredGenerated][artifactID]
	if len(subs) == 0 {
		return "", fmt.Errorf("%w: generator of %q", ErrNotFound, artifactID)
	}
	return subs[0], nil
}

// ConsumersOf implements Store.
func (s *TripleStore) ConsumersOf(artifactID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedUnique(s.pos[PredUsed][artifactID]), nil
}

// Used implements Store.
func (s *TripleStore) Used(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedUnique(s.spo[execID][PredUsed]), nil
}

// Generated implements Store.
func (s *TripleStore) Generated(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedUnique(s.spo[execID][PredGenerated]), nil
}

// neighborsLocked resolves one entity's frontier neighbors with SPO/POS
// index probes; the caller holds at least a read lock. Only Artifact and
// Execution nodes participate in traversal (Run and Annotation subjects
// are not causal-graph entities).
func (s *TripleStore) neighborsLocked(id string, dir Direction) ([]string, bool) {
	switch {
	case hasObj(s.spo, id, PredType, "Artifact"):
		if dir == Up {
			if gens := s.pos[PredGenerated][id]; len(gens) > 0 {
				return gens[:1:1], true
			}
			return nil, true
		}
		return sortedUnique(s.pos[PredUsed][id]), true
	case hasObj(s.spo, id, PredType, "Execution"):
		if dir == Up {
			return sortedUnique(s.spo[id][PredUsed]), true
		}
		return sortedUnique(s.spo[id][PredGenerated]), true
	}
	return nil, false
}

// Expand implements Store: the whole frontier's SPO/POS probes run under
// one read lock.
func (s *TripleStore) Expand(ids []string, dir Direction) (map[string][]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]string, len(ids))
	for _, id := range ids {
		if ns, ok := s.neighborsLocked(id, dir); ok {
			out[id] = ns
		}
	}
	return out, nil
}

// Closure implements Store: the full BFS runs under a single read lock,
// probing the triple indexes directly.
func (s *TripleStore) Closure(seed string, dir Direction) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return bfsClosure(seed, dir, s.neighborsLocked)
}

// CloseLocal implements LocalCloser: the local fixpoint probes the
// SPO/POS indexes under one read lock (the sharded router's
// closure-pushdown primitive).
func (s *TripleStore) CloseLocal(seeds []string, dir Direction, skip func(string) bool, buf []LocalNeighbors) ([]LocalNeighbors, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return localCloseBFS(seeds, dir, skip, s.neighborsLocked, buf), nil
}

// Stats implements Store.
func (s *TripleStore) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Runs: len(s.logs), Bytes: s.bytes}
	for _, l := range s.logs {
		st.Executions += len(l.Executions)
		st.Artifacts += len(l.Artifacts)
		st.Events += len(l.Events)
		st.Annotations += len(l.Annotations)
	}
	return st, nil
}

// TripleCount returns the number of stored triples.
func (s *TripleStore) TripleCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Close implements Store.
func (s *TripleStore) Close() error { return nil }
