package store

// Conformance for RelStore's single-entity navigation, which now runs
// through one-element Expand frontiers instead of per-call relalg Select
// scans: on random runs it must agree with MemStore on every navigation
// method, including unknown IDs and raw (generator-less) artifacts.

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/provenance"
)

func TestQuickRelNavMatchesMem(t *testing.T) {
	f := func(seed int64) bool {
		log := randomLog(t, seed)
		mem, rel := NewMemStore(), NewRelStore()
		if err := mem.PutRunLog(log); err != nil || rel.PutRunLog(log) != nil {
			return false
		}
		for _, a := range log.Artifacts {
			memGen, memErr := mem.GeneratorOf(a.ID)
			relGen, relErr := rel.GeneratorOf(a.ID)
			if (memErr == nil) != (relErr == nil) || memGen != relGen {
				t.Logf("GeneratorOf(%s): mem=%q,%v rel=%q,%v", a.ID, memGen, memErr, relGen, relErr)
				return false
			}
			if relErr != nil && !errors.Is(relErr, ErrNotFound) {
				return false
			}
			memCons, _ := mem.ConsumersOf(a.ID)
			relCons, err := rel.ConsumersOf(a.ID)
			if err != nil || fmt.Sprint(memCons) != fmt.Sprint(relCons) {
				t.Logf("ConsumersOf(%s): mem=%v rel=%v,%v", a.ID, memCons, relCons, err)
				return false
			}
		}
		for _, e := range log.Executions {
			memUsed, _ := mem.Used(e.ID)
			relUsed, err := rel.Used(e.ID)
			if err != nil || fmt.Sprint(memUsed) != fmt.Sprint(relUsed) {
				t.Logf("Used(%s): mem=%v rel=%v,%v", e.ID, memUsed, relUsed, err)
				return false
			}
			memGen, _ := mem.Generated(e.ID)
			relGen, err := rel.Generated(e.ID)
			if err != nil || fmt.Sprint(memGen) != fmt.Sprint(relGen) {
				t.Logf("Generated(%s): mem=%v rel=%v,%v", e.ID, memGen, relGen, err)
				return false
			}
		}
		// Unknown IDs: GeneratorOf errors with ErrNotFound; list-valued
		// navigation returns empty without error, as on MemStore.
		if _, err := rel.GeneratorOf("ghost-entity"); !errors.Is(err, ErrNotFound) {
			return false
		}
		for _, probe := range []func(string) ([]string, error){rel.ConsumersOf, rel.Used, rel.Generated} {
			if ns, err := probe("ghost-entity"); err != nil || len(ns) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestRelNavDualKindID pins the pathological case of one ID declared as
// both an artifact and an execution: Expand classifies artifact-first, but
// Used/Generated must still answer the execution-side adjacency, as
// MemStore does.
func TestRelNavDualKindID(t *testing.T) {
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: "dual", WorkflowID: "wf", Status: provenance.StatusOK}
	l.Executions = []*provenance.Execution{
		{ID: "x", RunID: "dual", ModuleID: "m", ModuleType: "T", Status: provenance.StatusOK},
	}
	l.Artifacts = []*provenance.Artifact{
		{ID: "x", RunID: "dual", Type: "blob"}, // same ID as the execution
		{ID: "in", RunID: "dual", Type: "blob"},
		{ID: "out", RunID: "dual", Type: "blob"},
	}
	l.Events = []provenance.Event{
		{Seq: 1, RunID: "dual", Kind: provenance.EventArtifactUsed, ExecutionID: "x", ArtifactID: "in"},
		{Seq: 2, RunID: "dual", Kind: provenance.EventArtifactGen, ExecutionID: "x", ArtifactID: "out"},
	}
	mem, rel := NewMemStore(), NewRelStore()
	if err := mem.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	if err := rel.PutRunLog(l); err != nil {
		t.Fatal(err)
	}
	for name, probe := range map[string]func(Store) ([]string, error){
		"Used":      func(s Store) ([]string, error) { return s.Used("x") },
		"Generated": func(s Store) ([]string, error) { return s.Generated("x") },
	} {
		want, err := probe(mem)
		if err != nil {
			t.Fatal(err)
		}
		got, err := probe(rel)
		if err != nil || fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s dual-kind: rel=%v,%v mem=%v", name, got, err, want)
		}
	}
}
