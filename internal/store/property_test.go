package store

// Backend conformance property: for random generated runs, all four
// backends agree on every navigation primitive and on full closures.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workloads"
)

func randomLog(t *testing.T, seed int64) *provenance.RunLog {
	t.Helper()
	wf := workloads.RandomLayered(seed, 4, 3, 2)
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 2})
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	log, err := col.Log(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestQuickBackendsAgree(t *testing.T) {
	f := func(seed int64) bool {
		log := randomLog(t, seed)
		fs, err := OpenFileStore(t.TempDir())
		if err != nil {
			return false
		}
		defer fs.Close()
		backends := []Store{NewMemStore(), NewRelStore(), NewTripleStore(), fs}
		for _, s := range backends {
			if err := s.PutRunLog(log); err != nil {
				return false
			}
		}
		ref := backends[0]
		for _, a := range log.Artifacts {
			refGen, refErr := ref.GeneratorOf(a.ID)
			refCons, _ := ref.ConsumersOf(a.ID)
			refLin, _ := Lineage(ref, a.ID)
			refDeps, _ := Dependents(ref, a.ID)
			for _, s := range backends[1:] {
				gen, err := s.GeneratorOf(a.ID)
				if (err == nil) != (refErr == nil) || gen != refGen {
					return false
				}
				cons, err := s.ConsumersOf(a.ID)
				if err != nil || fmt.Sprint(cons) != fmt.Sprint(refCons) {
					return false
				}
				lin, err := Lineage(s, a.ID)
				if err != nil || fmt.Sprint(lin) != fmt.Sprint(refLin) {
					return false
				}
				deps, err := Dependents(s, a.ID)
				if err != nil || fmt.Sprint(deps) != fmt.Sprint(refDeps) {
					return false
				}
			}
		}
		for _, e := range log.Executions {
			refUsed, _ := ref.Used(e.ID)
			refGen, _ := ref.Generated(e.ID)
			for _, s := range backends[1:] {
				used, err := s.Used(e.ID)
				if err != nil || fmt.Sprint(used) != fmt.Sprint(refUsed) {
					return false
				}
				gen, err := s.Generated(e.ID)
				if err != nil || fmt.Sprint(gen) != fmt.Sprint(refGen) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// encodeAdj renders an Expand result deterministically for comparison.
func encodeAdj(adj map[string][]string) string {
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, adj[k])
	}
	return b.String()
}

// Property: on randomized DAGs, every backend's native Expand matches the
// per-entity navigation fallback and every backend's pushed-down Closure
// matches the per-edge reference BFS, in both directions — the conformance
// contract of the batch traversal API.
func TestQuickExpandClosureConformance(t *testing.T) {
	f := func(seed int64) bool {
		log := randomLog(t, seed)
		fs, err := OpenFileStore(t.TempDir())
		if err != nil {
			return false
		}
		defer fs.Close()
		backends := []Store{NewMemStore(), NewRelStore(), NewTripleStore(), fs}
		for _, s := range backends {
			if err := s.PutRunLog(log); err != nil {
				return false
			}
		}
		var entities []string
		for _, a := range log.Artifacts {
			entities = append(entities, a.ID)
		}
		for _, e := range log.Executions {
			entities = append(entities, e.ID)
		}
		for _, s := range backends {
			for _, dir := range []Direction{Up, Down} {
				// Whole-graph frontier: one batch call vs per-entity calls.
				want, err := ExpandViaNav(s, entities, dir)
				if err != nil {
					t.Logf("%s: ExpandViaNav: %v", s.Name(), err)
					return false
				}
				got, err := s.Expand(entities, dir)
				if err != nil {
					t.Logf("%s: Expand: %v", s.Name(), err)
					return false
				}
				if encodeAdj(got) != encodeAdj(want) {
					t.Logf("%s %v: Expand mismatch:\n got %s\nwant %s", s.Name(), dir, encodeAdj(got), encodeAdj(want))
					return false
				}
				// Unknown IDs are absent, not errors.
				if adj, err := s.Expand([]string{"ghost-entity"}, dir); err != nil || len(adj) != 0 {
					t.Logf("%s %v: ghost Expand = %v, %v", s.Name(), dir, adj, err)
					return false
				}
				// Pushed-down closure vs per-edge reference BFS vs the
				// Expand-based fallback, including identical visit order.
				for _, id := range entities {
					want, werr := NaiveClosure(s, id, dir)
					got, gerr := s.Closure(id, dir)
					if (werr == nil) != (gerr == nil) || fmt.Sprint(got) != fmt.Sprint(want) {
						t.Logf("%s %v: Closure(%s) = %v, %v; want %v, %v", s.Name(), dir, id, got, gerr, want, werr)
						return false
					}
					fb, ferr := CloseOverExpand(s.Expand, id, dir)
					if (werr == nil) != (ferr == nil) || fmt.Sprint(fb) != fmt.Sprint(want) {
						t.Logf("%s %v: CloseOverExpand(%s) = %v, %v; want %v, %v", s.Name(), dir, id, fb, ferr, want, werr)
						return false
					}
				}
				if _, err := s.Closure("ghost-entity", dir); !errors.Is(err, ErrNotFound) {
					t.Logf("%s %v: ghost Closure err = %v", s.Name(), dir, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// closeLocal resolves a backend's LocalCloser face, falling back to the
// Expand-based implementation the sharded router uses for backends
// without the capability (RelStore), and flattens the result to a map —
// asserting each expanded entity appears exactly once on the way.
func closeLocal(t *testing.T, s Store, seeds []string, dir Direction, skip func(string) bool) (map[string][]string, error) {
	t.Helper()
	var (
		res []LocalNeighbors
		err error
	)
	if lc, ok := s.(LocalCloser); ok {
		res, err = lc.CloseLocal(seeds, dir, skip, nil)
	} else {
		res, err = LocalCloseOverExpand(s.Expand, seeds, dir, skip, nil)
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string, len(res))
	for _, ln := range res {
		if _, dup := out[ln.ID]; dup {
			t.Fatalf("%s: CloseLocal expanded %s twice", s.Name(), ln.ID)
		}
		out[ln.ID] = ln.Neighbors
	}
	return out, nil
}

// Property: every backend's CloseLocal (native or via the Expand
// fallback) expands exactly the seed's reachable set — the seed plus its
// Closure — and reports each expanded entity's neighbors exactly as
// Expand would; a skip boundary covering everything but the seed stops
// the walk after one expansion. On a single backend the local fixpoint
// and the global closure coincide, which is what makes this the
// correctness contract the sharded router's pushdown builds on.
func TestQuickCloseLocalConformance(t *testing.T) {
	f := func(seed int64) bool {
		log := randomLog(t, seed)
		fs, err := OpenFileStore(t.TempDir())
		if err != nil {
			return false
		}
		defer fs.Close()
		backends := []Store{NewMemStore(), NewRelStore(), NewTripleStore(), fs}
		for _, s := range backends {
			if err := s.PutRunLog(log); err != nil {
				return false
			}
		}
		var entities []string
		for _, a := range log.Artifacts {
			entities = append(entities, a.ID)
		}
		for _, e := range log.Executions {
			entities = append(entities, e.ID)
		}
		for _, s := range backends {
			for _, dir := range []Direction{Up, Down} {
				for _, id := range entities {
					local, err := closeLocal(t, s, []string{id}, dir, nil)
					if err != nil {
						t.Logf("%s %v: CloseLocal(%s): %v", s.Name(), dir, id, err)
						return false
					}
					reach, err := s.Closure(id, dir)
					if err != nil {
						return false
					}
					wantKeys := map[string]bool{id: true}
					for _, n := range reach {
						wantKeys[n] = true
					}
					if len(local) != len(wantKeys) {
						t.Logf("%s %v: CloseLocal(%s) expanded %d entities, want %d", s.Name(), dir, id, len(local), len(wantKeys))
						return false
					}
					probe := make([]string, 0, len(local))
					for n := range local {
						if !wantKeys[n] {
							t.Logf("%s %v: CloseLocal(%s) expanded %s outside the reachable set", s.Name(), dir, id, n)
							return false
						}
						probe = append(probe, n)
					}
					want, err := s.Expand(probe, dir)
					if err != nil {
						return false
					}
					if encodeAdj(local) != encodeAdj(want) {
						t.Logf("%s %v: CloseLocal(%s) lists:\n got %s\nwant %s", s.Name(), dir, id, encodeAdj(local), encodeAdj(want))
						return false
					}
					// A skip boundary on everything but the seed stops the
					// walk after the seed's own expansion.
					bounded, err := closeLocal(t, s, []string{id}, dir, func(n string) bool { return n != id })
					if err != nil {
						return false
					}
					if len(bounded) != 1 || fmt.Sprint(bounded[id]) != fmt.Sprint(want[id]) {
						t.Logf("%s %v: bounded CloseLocal(%s) = %v, want only %v", s.Name(), dir, id, bounded, want[id])
						return false
					}
				}
				// Unknown seeds are ignored, not errors.
				if got, err := closeLocal(t, s, []string{"ghost-entity"}, dir, nil); err != nil || len(got) != 0 {
					t.Logf("%s %v: ghost CloseLocal = %v, %v", s.Name(), dir, got, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// Property: lineage and dependents are converse relations on every backend.
func TestQuickLineageDependentsConverse(t *testing.T) {
	f := func(seed int64) bool {
		log := randomLog(t, seed)
		s := NewMemStore()
		if err := s.PutRunLog(log); err != nil {
			return false
		}
		for _, a := range log.Artifacts {
			lin, err := Lineage(s, a.ID)
			if err != nil {
				return false
			}
			for _, up := range lin {
				deps, err := Dependents(s, up)
				if err != nil {
					return false
				}
				found := false
				for _, d := range deps {
					if d == a.ID {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
