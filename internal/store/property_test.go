package store

// Backend conformance property: for random generated runs, all four
// backends agree on every navigation primitive and on full closures.

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workloads"
)

func randomLog(t *testing.T, seed int64) *provenance.RunLog {
	t.Helper()
	wf := workloads.RandomLayered(seed, 4, 3, 2)
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 2})
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	log, err := col.Log(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestQuickBackendsAgree(t *testing.T) {
	f := func(seed int64) bool {
		log := randomLog(t, seed)
		fs, err := OpenFileStore(t.TempDir())
		if err != nil {
			return false
		}
		defer fs.Close()
		backends := []Store{NewMemStore(), NewRelStore(), NewTripleStore(), fs}
		for _, s := range backends {
			if err := s.PutRunLog(log); err != nil {
				return false
			}
		}
		ref := backends[0]
		for _, a := range log.Artifacts {
			refGen, refErr := ref.GeneratorOf(a.ID)
			refCons, _ := ref.ConsumersOf(a.ID)
			refLin, _ := Lineage(ref, a.ID)
			refDeps, _ := Dependents(ref, a.ID)
			for _, s := range backends[1:] {
				gen, err := s.GeneratorOf(a.ID)
				if (err == nil) != (refErr == nil) || gen != refGen {
					return false
				}
				cons, err := s.ConsumersOf(a.ID)
				if err != nil || fmt.Sprint(cons) != fmt.Sprint(refCons) {
					return false
				}
				lin, err := Lineage(s, a.ID)
				if err != nil || fmt.Sprint(lin) != fmt.Sprint(refLin) {
					return false
				}
				deps, err := Dependents(s, a.ID)
				if err != nil || fmt.Sprint(deps) != fmt.Sprint(refDeps) {
					return false
				}
			}
		}
		for _, e := range log.Executions {
			refUsed, _ := ref.Used(e.ID)
			refGen, _ := ref.Generated(e.ID)
			for _, s := range backends[1:] {
				used, err := s.Used(e.ID)
				if err != nil || fmt.Sprint(used) != fmt.Sprint(refUsed) {
					return false
				}
				gen, err := s.Generated(e.ID)
				if err != nil || fmt.Sprint(gen) != fmt.Sprint(refGen) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: lineage and dependents are converse relations on every backend.
func TestQuickLineageDependentsConverse(t *testing.T) {
	f := func(seed int64) bool {
		log := randomLog(t, seed)
		s := NewMemStore()
		if err := s.PutRunLog(log); err != nil {
			return false
		}
		for _, a := range log.Artifacts {
			lin, err := Lineage(s, a.ID)
			if err != nil {
				return false
			}
			for _, up := range lin {
				deps, err := Dependents(s, up)
				if err != nil {
					return false
				}
				found := false
				for _, d := range deps {
					if d == a.ID {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
