package shardedstore

// Conformance properties of the pushdown Closure (local fixpoint per shard
// + cross-shard frontier exchange): on chain-, star- and diamond-shaped
// DAGs — including cross-shard generator re-declarations, the
// last-write-wins case whose stale edges a shard's local walk may follow —
// the pushdown must answer exactly like the per-edge reference BFS
// (store.NaiveClosure) and the pre-pushdown per-hop path
// (ClosureViaExpand), and its round count must stay within the cross-shard
// crossing bound. Run under -race in CI: the query phase below exercises
// concurrent pushdowns against live ingest.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/provenance"
	"repro/internal/store"
)

// shapedRun assembles one run log from explicit use/gen edge lists,
// declaring every referenced entity.
func shapedRun(runID string, execID string, uses, gens []string) *provenance.RunLog {
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: runID, WorkflowID: "shape", Status: provenance.StatusOK}
	l.Executions = []*provenance.Execution{{ID: execID, RunID: runID, ModuleID: "m", ModuleType: "Shape", Status: provenance.StatusOK}}
	declared := map[string]bool{}
	var seq uint64
	for _, a := range uses {
		if !declared[a] {
			declared[a] = true
			l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: a, RunID: runID, Type: "blob"})
		}
		seq++
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: runID, Kind: provenance.EventArtifactUsed, ExecutionID: execID, ArtifactID: a})
	}
	for _, a := range gens {
		if !declared[a] {
			declared[a] = true
			l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: a, RunID: runID, Type: "blob"})
		}
		seq++
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: runID, Kind: provenance.EventArtifactGen, ExecutionID: execID, ArtifactID: a})
	}
	return l
}

// chainShape: run i consumes artifact i and generates artifact i+1 — the
// deep-lineage worst case for per-hop scatter/gather. Occasional extra
// runs re-declare the generator of an earlier chain artifact, which lands
// on a (usually) different shard than the original declaration.
func chainShape(rng *rand.Rand, tag string, n int) []*provenance.RunLog {
	var logs []*provenance.RunLog
	art := func(i int) string { return fmt.Sprintf("%s-art-%03d", tag, i) }
	logs = append(logs, shapedRun(tag+"-src", tag+"-src-x", nil, []string{art(0)}))
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-run-%03d", tag, i)
		logs = append(logs, shapedRun(id, id+"-x", []string{art(i)}, []string{art(i + 1)}))
	}
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			id := fmt.Sprintf("%s-redecl-%03d", tag, i)
			logs = append(logs, shapedRun(id, id+"-x", nil, []string{art(rng.Intn(n))}))
		}
	}
	return logs
}

// starShape: one hub artifact consumed by n spoke runs, each generating a
// few leaves — the wide-fan-out case. Some spokes' leaves get their
// generators re-declared by later runs on other shards.
func starShape(rng *rand.Rand, tag string, n int) []*provenance.RunLog {
	hub := tag + "-hub"
	logs := []*provenance.RunLog{shapedRun(tag+"-src", tag+"-src-x", nil, []string{hub})}
	var leaves []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-spoke-%03d", tag, i)
		var gens []string
		for f := 0; f <= rng.Intn(3); f++ {
			leaf := fmt.Sprintf("%s-leaf-%03d-%d", tag, i, f)
			gens = append(gens, leaf)
			leaves = append(leaves, leaf)
		}
		logs = append(logs, shapedRun(id, id+"-x", []string{hub}, gens))
	}
	for i := 0; i < n/4; i++ {
		id := fmt.Sprintf("%s-redecl-%03d", tag, i)
		logs = append(logs, shapedRun(id, id+"-x", nil, []string{leaves[rng.Intn(len(leaves))]}))
	}
	return logs
}

// diamondShape: a root fans out to n branch chains that re-converge into
// one sink run — shared upstream and downstream closures with multiple
// shortest paths.
func diamondShape(rng *rand.Rand, tag string, n int) []*provenance.RunLog {
	root := tag + "-root"
	logs := []*provenance.RunLog{shapedRun(tag+"-src", tag+"-src-x", nil, []string{root})}
	var mids []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-branch-%03d", tag, i)
		mid := fmt.Sprintf("%s-mid-%03d", tag, i)
		logs = append(logs, shapedRun(id, id+"-x", []string{root}, []string{mid}))
		if rng.Intn(2) == 0 { // deepen some branches by one extra hop
			id2 := fmt.Sprintf("%s-branch2-%03d", tag, i)
			mid2 := fmt.Sprintf("%s-mid2-%03d", tag, i)
			logs = append(logs, shapedRun(id2, id2+"-x", []string{mid}, []string{mid2}))
			mid = mid2
		}
		mids = append(mids, mid)
	}
	logs = append(logs, shapedRun(tag+"-sink", tag+"-sink-x", mids, []string{tag + "-out"}))
	if n > 0 {
		id := tag + "-redecl"
		logs = append(logs, shapedRun(id, id+"-x", nil, []string{mids[rng.Intn(len(mids))]}))
	}
	return logs
}

// assertPushdownConformance checks, for every entity and both directions,
// that the pushdown Closure reproduces the per-edge reference BFS and the
// per-hop path exactly, order included. (Round-count guarantees are pinned
// separately against independently computed run placement — see
// TestPushdownRoundsMatchChainCrossings — because the trace's own crossing
// counter cannot discriminate a degraded round structure.)
func assertPushdownConformance(t *testing.T, r *Router, logs []*provenance.RunLog, label string) bool {
	t.Helper()
	for _, id := range entitiesOf(logs) {
		for _, dir := range []store.Direction{store.Up, store.Down} {
			want, werr := store.NaiveClosure(r, id, dir)
			legacy, lerr := r.ClosureViaExpand(id, dir)
			got, _, gerr := r.TracedClosure(id, dir)
			if (werr == nil) != (gerr == nil) || (lerr == nil) != (gerr == nil) {
				t.Logf("%s %v: Closure(%s) errs: naive %v, legacy %v, pushdown %v", label, dir, id, werr, lerr, gerr)
				return false
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Logf("%s %v: pushdown Closure(%s) = %v, want naive %v", label, dir, id, got, want)
				return false
			}
			if fmt.Sprint(got) != fmt.Sprint(legacy) {
				t.Logf("%s %v: pushdown Closure(%s) = %v, want per-hop %v", label, dir, id, got, legacy)
				return false
			}
		}
	}
	return true
}

// The pushdown's round structure, pinned against ground truth that the
// traversal cannot influence: on a pure chain (no re-declarations), the
// upstream walk from the tail hands off between shards exactly where
// consecutive runs were placed on different home shards, so rounds must
// equal that placement-derived crossing count + 1. A pushdown that
// degrades toward one hop per round inflates its rounds well past this
// bound and fails here (the trace's own Crossings counter would keep
// pace, which is why it is not the reference).
func TestPushdownRoundsMatchChainCrossings(t *testing.T) {
	const n = 40
	for _, nShards := range []int{2, 4} {
		logs := chainShape(rand.New(rand.NewSource(1)), fmt.Sprintf("cx%d", nShards), n)[:n+1] // src + n runs, no redecls
		r := NewMem(nShards)
		for _, l := range logs {
			if err := r.PutRunLog(l); err != nil {
				t.Fatal(err)
			}
		}
		crossings := 0
		for i := 2; i < len(logs); i++ { // consecutive chain runs (logs[0] is the source)
			if r.HomeShard(logs[i].Run.ID) != r.HomeShard(logs[i-1].Run.ID) {
				crossings++
			}
		}
		tail := fmt.Sprintf("cx%d-art-%03d", nShards, n)
		_, tr, err := r.TracedClosure(tail, store.Up)
		if err != nil {
			t.Fatal(err)
		}
		// The source run's segment merges into the first chain run's
		// segment iff they share a home; its hand-off is part of the
		// chain-run pair loop above only from logs[2] on, so account for
		// the src→run-0 boundary explicitly.
		if r.HomeShard(logs[1].Run.ID) != r.HomeShard(logs[0].Run.ID) {
			crossings++
		}
		if tr.Rounds != crossings+1 || tr.Crossings != crossings {
			t.Fatalf("shards=%d: pushdown executed %d rounds / %d crossings; run placement implies exactly %d crossings (+1 round)",
				nShards, tr.Rounds, tr.Crossings, crossings)
		}
	}
}

// Property: on chain, star and diamond DAGs with cross-shard generator
// re-declarations, the pushdown Closure ≡ NaiveClosure ≡ the per-hop path
// at 1, 2 and 4 shards.
func TestQuickPushdownMatchesNaiveClosure(t *testing.T) {
	shapes := []struct {
		name  string
		build func(rng *rand.Rand, tag string, n int) []*provenance.RunLog
	}{
		{"chain", chainShape},
		{"star", starShape},
		{"diamond", diamondShape},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, shape := range shapes {
			n := 6 + rng.Intn(10)
			logs := shape.build(rng, fmt.Sprintf("%s-%d", shape.name, seed), n)
			for _, nShards := range []int{1, 2, 4} {
				r := NewMem(nShards)
				for _, l := range logs {
					if err := r.PutRunLog(l); err != nil {
						t.Logf("%s shards=%d ingest: %v", shape.name, nShards, err)
						return false
					}
				}
				if !assertPushdownConformance(t, r, logs, fmt.Sprintf("%s shards=%d", shape.name, nShards)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// Pushdown closures racing live ingest must never fail on entities that
// were fully ingested before the queries started, and must conform exactly
// once ingest quiesces. The concurrent phase is what -race bites on: many
// pushdown drivers reading the router indexes and each shard's adjacency
// while writers append and re-declare generators across shards.
func TestPushdownConcurrentQueriesDuringIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := chainShape(rng, "base", 24)
	extra := starShape(rng, "extra", 16)
	r := NewMem(4)
	for _, l := range base {
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	baseEntities := entitiesOf(base)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Base entities were fully ingested before the queries
				// started, so ANY error — including a spurious
				// ErrNotFound from a racing index read — is a failure.
				id := baseEntities[(g*31+i)%len(baseEntities)]
				dir := store.Direction(i % 2)
				if _, _, err := r.TracedClosure(id, dir); err != nil {
					t.Errorf("closure(%s, %v): %v", id, dir, err)
					return
				}
			}
		}(g)
	}
	for _, l := range extra {
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	all := append(append([]*provenance.RunLog(nil), base...), extra...)
	if !assertPushdownConformance(t, r, all, "post-ingest") {
		t.Fatal("pushdown diverged from reference after concurrent ingest")
	}
}
