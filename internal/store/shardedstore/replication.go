package shardedstore

import (
	"fmt"

	"repro/internal/provenance"
	"repro/internal/store"
)

// Dir returns the router's root directory ("" for NewMem routers).
func (r *Router) Dir() string { return r.dir }

// FileShard returns shard i as the file-backed store replication ships
// from and applies to, or an error for memory-backed routers.
func (r *Router) FileShard(i int) (*store.FileStore, error) {
	if i < 0 || i >= len(r.shards) {
		return nil, fmt.Errorf("shardedstore: shard %d outside [0,%d)", i, len(r.shards))
	}
	fs, ok := r.shards[i].(*store.FileStore)
	if !ok {
		return nil, fmt.Errorf("shardedstore: shard %d is %s, not file-backed — replication needs a durable log", i, r.shards[i].Name())
	}
	return fs, nil
}

// ApplyReplicated folds a shipped batch of the given shard's primary log
// into that shard and then into the router's own routing and entity
// indexes, returning the decoded run logs and the shard's new committed
// offset. Shard placement is the primary's: the batch lands on the shard
// it was shipped for, with no re-hashing (both sides run the same
// routing hash at the same count, enforced by the meta record, so the
// placements agree anyway).
//
// The manifest journal records the runs in apply order. Per-shard
// streams are independent, so a follower's cross-shard manifest order
// can differ from the primary's — the same advisory skew a journal-
// missed run has after a primary crash (see Open): run data never
// depends on it, only cross-shard generator tie-break replay order.
func (r *Router) ApplyReplicated(shard int, data []byte) ([]*provenance.RunLog, int64, error) {
	fs, err := r.FileShard(shard)
	if err != nil {
		return nil, 0, err
	}
	logs, end, err := fs.ApplyReplicated(data)
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	for _, l := range logs {
		r.indexLocked(l, shard)
		if r.manifest != nil {
			_, _ = r.manifest.WriteString(l.Run.ID + "\n")
		}
	}
	r.mu.Unlock()
	for range logs {
		r.autoCkpt.Tick(0, r.Checkpoint)
	}
	return logs, end, nil
}
