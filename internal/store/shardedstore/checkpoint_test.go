package shardedstore

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/store/wal"
)

// TestShardCountMismatchRejected asserts a store directory written with
// one shard count refuses to open with another — silently misrouting runs
// was the failure mode the ROADMAP called out.
func TestShardCountMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	logs := synthLogs(7, 6)
	for _, l := range logs {
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, 4, false); err == nil {
		t.Fatal("opened a 2-shard directory with 4 shards")
	} else if !strings.Contains(err.Error(), "2 shards") {
		t.Fatalf("mismatch error not loud about the written count: %v", err)
	}
	if _, err := Open(dir, 1, false); err == nil {
		t.Fatal("opened a 2-shard directory with 1 shard")
	}

	// The correct count still opens and sees every run.
	r2, err := Open(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	runs, err := r2.Runs()
	if err != nil || len(runs) != len(logs) {
		t.Fatalf("reopen: %d runs, err %v", len(runs), err)
	}
}

// TestUnshardedDirRejected asserts an unsharded FileStore directory is not
// silently treated as an empty sharded store.
func TestUnshardedDirRejected(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.PutRunLog(synthLogs(3, 1)[0]); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	if _, err := Open(dir, 2, false); err == nil {
		t.Fatal("opened an unsharded store directory as sharded")
	}
}

// TestLegacyLayoutWithoutMetaStillChecked asserts pre-meta directories
// (shard dirs but no router-meta.json) are protected by the directory
// count fallback.
func TestLegacyLayoutWithoutMetaStillChecked(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := os.Remove(filepath.Join(dir, metaFileName)); err != nil {
		t.Fatal(err)
	}
	if n, unsharded := DetectShards(dir); n != 3 || unsharded {
		t.Fatalf("DetectShards = %d,%v want 3,false", n, unsharded)
	}
	if _, err := Open(dir, 2, false); err == nil {
		t.Fatal("legacy layout opened with wrong shard count")
	}
}

// TestRouterCheckpointReopen checkpoints a group-commit sharded store and
// asserts the meta records per-shard positions and a reopen restores the
// exact contents.
func TestRouterCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenWith(dir, 2, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	logs := synthLogs(11, 8)
	for _, l := range logs {
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	wantRuns, _ := r.Runs()
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var meta routerMeta
	if ok, err := wal.LoadCheckpoint(filepath.Join(dir, metaFileName), &meta); err != nil || !ok {
		t.Fatalf("meta after checkpoint: ok=%v err=%v", ok, err)
	}
	if meta.Shards != 2 || len(meta.Checkpoints) != 2 {
		t.Fatalf("meta = %+v", meta)
	}
	for i, off := range meta.Checkpoints {
		if off <= 0 {
			t.Fatalf("shard %d checkpoint offset = %d, want > 0", i, off)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenWith(dir, 2, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	gotRuns, err := r2.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRuns, wantRuns) {
		t.Fatalf("reopen runs = %v, want %v", gotRuns, wantRuns)
	}
	for _, id := range entitiesOf(logs) {
		want, werr := store.NaiveClosure(r2, id, store.Up)
		got, gerr := r2.Closure(id, store.Up)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("closure(%s) err mismatch: %v vs %v", id, werr, gerr)
		}
		if werr == nil && !reflect.DeepEqual(sortedCopyStrings(got), sortedCopyStrings(want)) {
			t.Fatalf("closure(%s) diverged after checkpointed reopen", id)
		}
	}
}

// TestRouterAutoCheckpoint asserts router-wide CheckpointEvery triggers
// shard checkpoints without explicit calls.
func TestRouterAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenWith(dir, 2, store.FileOptions{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, l := range synthLogs(5, 4) {
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	// Auto-checkpoints run off the ingest path; poll briefly for a meta
	// record carrying a shard checkpoint position.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var meta routerMeta
		if ok, _ := wal.LoadCheckpoint(filepath.Join(dir, metaFileName), &meta); ok {
			for _, off := range meta.Checkpoints {
				if off > 0 {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shard recorded a checkpoint position after CheckpointEvery ingests")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func sortedCopyStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
