// Package shardedstore partitions runs across N store.Store shards behind
// one router that itself implements store.Store, so every query engine —
// and the closure cache, which wraps any Store — runs over a partitioned
// store unchanged. The pieces:
//
//   - Deterministic hash routing: a run's home shard is FNV-1a(runID) mod
//     N. Whole runs live on one shard, so a run log is one shard append and
//     one shard read, and runs with different homes ingest concurrently
//     under per-shard locking instead of one global writer.
//   - A global entity→shard index: artifacts and executions that appear in
//     runs on multiple shards (shared, content-addressed inputs) are
//     tracked per kind, so the router knows exactly which shards to ask
//     about any entity — and which single shard holds an artifact's current
//     generator edge (generator edges are last-write-wins; the router
//     remembers the shard of the most recent re-declaration).
//   - Parallel scatter/gather Expand: one BFS frontier fans out to every
//     shard holding any frontier entity — one goroutine per shard with
//     work — and the per-shard neighbor lists merge under the same
//     tie-break/dedup rules as the single-store backends
//     (store.MergeNeighbors; artifact Up edges come only from the
//     generator's shard).
//   - Closure iterates sharded Expand to fixpoint (store.CloseOverExpand),
//     so a whole-graph traversal costs O(hops) scatter/gather rounds.
//
// The router holds no edges of its own: shards own the graph, the router
// owns only the routing and membership maps, so its memory footprint is
// O(entities), not O(edges).
package shardedstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/wal"
)

// Router implements store.Store over N underlying shards (any mix of
// backends). Reads scatter to the shards named by the entity index and
// gather under the shared merge rules; ingests route whole runs to their
// home shard. Safe for concurrent readers and concurrent writers: writers
// serialize per shard (plus a brief global index update), not globally.
type Router struct {
	shards []store.Store
	name   string
	dir    string // store directory for file-backed routers ("" otherwise)

	autoCkpt *store.AutoCheckpoint

	mu         sync.RWMutex
	manifest   *os.File         // global accepted-run order journal (file-backed routers)
	runShard   map[string]int   // run -> home shard
	order      []string         // runs in accepted order
	artShards  map[string][]int // artifact -> shards holding it (sorted)
	execShards map[string][]int // execution -> shards holding it (sorted)
	artLatest  map[string]int   // artifact -> shard of its latest declaration
	execLatest map[string]int   // execution -> shard of its latest declaration
	genShard   map[string]int   // artifact -> shard of its current generator edge
}

var _ store.Store = (*Router)(nil)
var _ store.Checkpointer = (*Router)(nil)

// New builds a router over the given shards (at least one). The shards
// should be empty or previously populated through a router with the same
// shard count and order; use Open to reopen file-backed shards.
func New(shards []store.Store) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shardedstore: need at least one shard")
	}
	r := &Router{
		shards:     shards,
		name:       fmt.Sprintf("sharded(%d×%s)", len(shards), shards[0].Name()),
		runShard:   map[string]int{},
		artShards:  map[string][]int{},
		execShards: map[string][]int{},
		artLatest:  map[string]int{},
		execLatest: map[string]int{},
		genShard:   map[string]int{},
	}
	return r, nil
}

// NewMem returns a router over n fresh in-memory shards (n < 1 is treated
// as 1).
func NewMem(n int) *Router {
	if n < 1 {
		n = 1
	}
	shards := make([]store.Store, n)
	for i := range shards {
		shards[i] = store.NewMemStore()
	}
	r, _ := New(shards)
	return r
}

const (
	manifestFileName = "router-manifest.log"
	metaFileName     = "router-meta.json"
)

// routerMeta is the durable record of a sharded store directory's layout:
// the shard count it was written with (reopening with any other count is
// rejected loudly — hash routing would silently misroute every run) and
// the per-shard checkpoint positions of the last Checkpoint, so operators
// and tools can see how much log each shard replays at reopen.
type routerMeta struct {
	Shards      int     `json:"shards"`
	Checkpoints []int64 `json:"checkpoint_offsets,omitempty"`
}

// DetectShards inspects a store directory's layout: the number of shards
// it was written with (from the meta record, falling back to counting
// shard subdirectories for pre-meta stores) and whether it holds an
// unsharded single-store log instead. n == 0 means the directory is empty
// or brand new.
func DetectShards(dir string) (n int, unsharded bool) {
	if _, err := os.Stat(filepath.Join(dir, store.LogFileName)); err == nil {
		return 0, true
	}
	var meta routerMeta
	if ok, _ := wal.LoadCheckpoint(filepath.Join(dir, metaFileName), &meta); ok && meta.Shards > 0 {
		return meta.Shards, false
	}
	for i := 0; ; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%03d", i))); err != nil {
			return i, false
		}
	}
}

// validateLayout rejects reopening a store directory with a different
// shard count than it was written with.
func validateLayout(dir string, n int) error {
	existing, unsharded := DetectShards(dir)
	if unsharded {
		return fmt.Errorf("shardedstore: %s holds an unsharded store log; open it without shards or reshard it offline", dir)
	}
	if existing > 0 && existing != n {
		return fmt.Errorf("shardedstore: %s was written with %d shards, refusing to open with %d (hash routing would misroute runs; reshard offline instead)", dir, existing, n)
	}
	return nil
}

// Open opens (or creates) n file-backed shards under dir/shard-000 …
// dir/shard-N-1 and rebuilds the router's run and entity indexes from the
// shards' logs. With durable set, every ingest fsyncs its home shard's log
// before returning (see store.OpenFileStoreDurable) — the configuration
// experiment E14 measures. OpenWith exposes the full durability and
// checkpoint configuration, including group commit.
//
// A small manifest journal (dir/router-manifest.log, one run ID per
// accepted ingest) preserves the global cross-shard ingest order, so a
// reopened router restores Runs() order and generator last-write-wins
// tie-breaks exactly in the common case. The manifest is advisory, not
// authoritative: runs the journal misses (a crash between the shard append
// and the manifest append, or a failed journal write) are recovered from
// the shard scan and replayed after the journaled runs, stale or torn
// entries are dropped, and the journal is rewritten to the recovered order
// so later reopens are stable. Run data thus never depends on the journal;
// the one observable skew is that a journal-missed run replays last, which
// can flip a generator tie-break for an artifact whose generator was
// re-declared across shards (journaling durably would need an fsync per
// ingest on a shared file — exactly the serialization sharding removes).
func Open(dir string, n int, durable bool) (*Router, error) {
	opt := store.FileOptions{}
	if durable {
		opt.Durability = store.DurabilityFsync
	}
	return OpenWith(dir, n, opt)
}

// OpenWith is Open with explicit per-shard durability and checkpoint
// configuration. Each shard owns its own write-ahead group-commit log
// (store.FileOptions.Durability selects none/fsync/group per append), so
// under DurabilityGroup concurrent ingests coalesce per shard AND overlap
// across shards. CheckpointEvery is counted router-wide: every N accepted
// ingests the router checkpoints all shards and records their checkpoint
// positions in the store's meta record.
//
// A store directory must be reopened with the shard count it was written
// with: any mismatch (including opening an unsharded log as sharded) is
// rejected loudly, because hash routing at the wrong count would silently
// misroute every run.
func OpenWith(dir string, n int, opt store.FileOptions) (*Router, error) {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardedstore: create dir: %w", err)
	}
	if err := validateLayout(dir, n); err != nil {
		return nil, err
	}
	// Checkpointing is coordinated by the router, not per shard.
	shardOpt := opt
	shardOpt.CheckpointEvery = 0
	shards := make([]store.Store, n)
	for i := range shards {
		fs, err := store.OpenFileStoreWith(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)), shardOpt)
		if err != nil {
			for _, s := range shards[:i] {
				s.Close()
			}
			return nil, fmt.Errorf("shardedstore: open shard %d: %w", i, err)
		}
		shards[i] = fs
	}
	r, err := New(shards)
	if err != nil {
		return nil, err
	}
	r.dir = dir
	r.autoCkpt = store.NewAutoCheckpoint(opt.CheckpointEvery)
	if err := r.rebuild(dir); err != nil {
		r.Close()
		return nil, err
	}
	if err := r.writeMeta(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// writeMeta records the directory's shard count and the shards' last
// checkpoint positions.
func (r *Router) writeMeta() error {
	if r.dir == "" {
		return nil
	}
	meta := routerMeta{Shards: len(r.shards)}
	for _, s := range r.shards {
		var off int64 = -1
		if fs, ok := s.(*store.FileStore); ok {
			if o, has := fs.LastCheckpoint(); has {
				off = o
			}
		}
		meta.Checkpoints = append(meta.Checkpoints, off)
	}
	return wal.SaveCheckpoint(filepath.Join(r.dir, metaFileName), meta)
}

// Checkpoint implements store.Checkpointer: every shard checkpoints in
// parallel (snapshot + log fsync each), then the meta record captures the
// new checkpoint positions. Closure-cache layers above the router persist
// their own snapshot on top of this.
func (r *Router) Checkpoint() error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		ck, ok := s.(store.Checkpointer)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, ck store.Checkpointer) {
			defer wg.Done()
			errs[i] = ck.Checkpoint()
		}(i, ck)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return r.writeMeta()
}

// rebuild reconstructs the routing and entity indexes: shard contents are
// replayed in the manifest's global order where the journal has them, then
// any journal-missed runs in shard-scan order, and the manifest is
// rewritten to the recovered order.
func (r *Router) rebuild(dir string) error {
	manifestPath := filepath.Join(dir, manifestFileName)
	var manifestOrder []string
	if data, err := os.ReadFile(manifestPath); err == nil {
		lines := strings.Split(string(data), "\n")
		if len(lines) > 0 && !strings.HasSuffix(string(data), "\n") {
			lines = lines[:len(lines)-1] // torn trailing entry
		}
		for _, l := range lines {
			if l != "" {
				manifestOrder = append(manifestOrder, l)
			}
		}
	}

	type rec struct {
		l     *provenance.RunLog
		shard int
	}
	byRun := map[string]rec{}
	var shardOrder []string
	for si, s := range r.shards {
		runs, err := s.Runs()
		if err != nil {
			return fmt.Errorf("shardedstore: rebuild shard %d: %w", si, err)
		}
		for _, runID := range runs {
			l, err := s.RunLog(runID)
			if err != nil {
				return fmt.Errorf("shardedstore: rebuild run %s: %w", runID, err)
			}
			byRun[runID] = rec{l, si}
			shardOrder = append(shardOrder, runID)
		}
	}
	seen := map[string]bool{}
	replay := func(runID string) {
		if rc, ok := byRun[runID]; ok && !seen[runID] {
			seen[runID] = true
			r.indexLocked(rc.l, rc.shard)
		}
	}
	for _, runID := range manifestOrder {
		replay(runID)
	}
	for _, runID := range shardOrder {
		replay(runID)
	}

	// Rewrite the journal to the recovered order and keep it open for
	// appends.
	var b strings.Builder
	for _, runID := range r.order {
		b.WriteString(runID)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(manifestPath, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("shardedstore: rewrite manifest: %w", err)
	}
	f, err := os.OpenFile(manifestPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shardedstore: open manifest: %w", err)
	}
	r.manifest = f
	return nil
}

// shardOf is the deterministic routing function: FNV-1a of the run ID.
func (r *Router) shardOf(runID string) int {
	h := fnv.New32a()
	h.Write([]byte(runID))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// NumShards reports the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// HomeShard reports the shard a run ID routes to — the deterministic hash
// placement, exposed so ingest pipelines can partition work per shard
// (one producer per shard never contends on a shard lock) and operators
// can locate a run's log on disk.
func (r *Router) HomeShard(runID string) int { return r.shardOf(runID) }

// Shard exposes one underlying shard (tests and stats tooling).
func (r *Router) Shard(i int) store.Store { return r.shards[i] }

// indexLocked folds one accepted run into the routing and entity indexes;
// the caller holds the write lock (or has exclusive access during rebuild).
func (r *Router) indexLocked(l *provenance.RunLog, shard int) {
	r.runShard[l.Run.ID] = shard
	r.order = append(r.order, l.Run.ID)
	for _, a := range l.Artifacts {
		r.artShards[a.ID] = addShard(r.artShards[a.ID], shard)
		r.artLatest[a.ID] = shard
	}
	for _, e := range l.Executions {
		r.execShards[e.ID] = addShard(r.execShards[e.ID], shard)
		r.execLatest[e.ID] = shard
	}
	for _, ev := range l.Events {
		if ev.Kind == provenance.EventArtifactGen {
			r.genShard[ev.ArtifactID] = shard
		}
	}
}

// addShard inserts a shard index into a small sorted set.
func addShard(set []int, shard int) []int {
	for i, s := range set {
		if s == shard {
			return set
		}
		if s > shard {
			set = append(set, 0)
			copy(set[i+1:], set[i:])
			set[i] = shard
			return set
		}
	}
	return append(set, shard)
}

// --- Store: ingest -----------------------------------------------------------

// PutRunLog implements Store: the run routes whole to its home shard, and
// runs whose homes differ ingest concurrently — the shard serializes its
// own appends and rejects duplicates, so the router only takes its global
// lock for the brief index update after the shard accepts the log.
// Validation is the shard's: every backend validates before storing, and a
// second router-side pass would serialize that CPU across all writers.
func (r *Router) PutRunLog(l *provenance.RunLog) error {
	shard := r.shardOf(l.Run.ID)
	r.mu.RLock()
	_, dup := r.runShard[l.Run.ID]
	r.mu.RUnlock()
	if dup {
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	// Concurrent puts of the same run ID race to the same home shard, which
	// accepts exactly one; the loser returns the shard's duplicate error.
	if err := r.shards[shard].PutRunLog(l); err != nil {
		return err
	}
	r.mu.Lock()
	r.indexLocked(l, shard)
	if r.manifest != nil {
		// Advisory order journal; never fail the ingest the shard already
		// committed over it. A missed append costs this run its place in
		// the reopen ordering: it replays after the journaled runs, which
		// can flip a cross-shard generator tie-break if another run
		// re-declared the same artifact's generator (see Open).
		_, _ = r.manifest.WriteString(l.Run.ID + "\n")
	}
	r.mu.Unlock()
	r.autoCkpt.Tick(r.Checkpoint)
	return nil
}

// --- Store: routed single-entity reads ---------------------------------------

// RunLog implements Store, served by the run's home shard.
func (r *Router) RunLog(runID string) (*provenance.RunLog, error) {
	r.mu.RLock()
	shard, ok := r.runShard[runID]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: run %q", store.ErrNotFound, runID)
	}
	return r.shards[shard].RunLog(runID)
}

// Runs implements Store: accepted order across all shards.
func (r *Router) Runs() ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...), nil
}

// Artifact implements Store, served by the shard that most recently
// declared the artifact — entity records are last-write-wins on every
// single-store backend, and the router preserves that across shards.
func (r *Router) Artifact(id string) (*provenance.Artifact, error) {
	r.mu.RLock()
	shard, ok := r.artLatest[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: artifact %q", store.ErrNotFound, id)
	}
	return r.shards[shard].Artifact(id)
}

// Execution implements Store, served by the latest declaring shard.
func (r *Router) Execution(id string) (*provenance.Execution, error) {
	r.mu.RLock()
	shard, ok := r.execLatest[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: execution %q", store.ErrNotFound, id)
	}
	return r.shards[shard].Execution(id)
}

// GeneratorOf implements Store: generator edges are last-write-wins across
// the whole store, and the router remembers which shard holds the current
// edge, so the answer is a single routed call.
func (r *Router) GeneratorOf(artifactID string) (string, error) {
	r.mu.RLock()
	shard, ok := r.genShard[artifactID]
	r.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: generator of %q", store.ErrNotFound, artifactID)
	}
	return r.shards[shard].GeneratorOf(artifactID)
}

// ConsumersOf implements Store: consumer lists accumulate across runs, so
// the answer is the merge of every holding shard's list.
func (r *Router) ConsumersOf(artifactID string) ([]string, error) {
	return r.mergedNav(artifactID, r.artShards, store.Store.ConsumersOf)
}

// Used implements Store.
func (r *Router) Used(execID string) ([]string, error) {
	return r.mergedNav(execID, r.execShards, store.Store.Used)
}

// Generated implements Store.
func (r *Router) Generated(execID string) ([]string, error) {
	return r.mergedNav(execID, r.execShards, store.Store.Generated)
}

// mergedNav gathers one navigation list from every shard holding the
// entity and merges under the shared dedup rules. Unknown entities resolve
// to an empty list, mirroring the in-memory reference backend.
func (r *Router) mergedNav(id string, index map[string][]int, nav func(store.Store, string) ([]string, error)) ([]string, error) {
	r.mu.RLock()
	shards := append([]int(nil), index[id]...)
	r.mu.RUnlock()
	lists := make([][]string, 0, len(shards))
	for _, si := range shards {
		ns, err := nav(r.shards[si], id)
		if err != nil {
			return nil, err
		}
		lists = append(lists, ns)
	}
	return store.MergeNeighbors(lists...), nil
}

// --- Store: scatter/gather traversal -----------------------------------------

// Expand implements Store: the frontier is planned against the entity
// index, scattered to every shard with work in parallel (one goroutine per
// shard), and gathered under the shared merge rules. Known entities always
// get an entry; artifact Up edges come only from the shard holding the
// artifact's current generator edge, so a generator re-declared on another
// shard never resurrects the stale edge.
func (r *Router) Expand(ids []string, dir store.Direction) (map[string][]string, error) {
	perShard := make([][]string, len(r.shards))
	plan := make(map[string][]int, len(ids))
	r.mu.RLock()
	for _, id := range ids {
		if _, done := plan[id]; done {
			continue
		}
		if shards, isArt := r.artShards[id]; isArt {
			// Artifact classification wins for an ID stored as both kinds.
			if dir == store.Up {
				if gs, ok := r.genShard[id]; ok {
					plan[id] = []int{gs}
					perShard[gs] = append(perShard[gs], id)
				} else {
					plan[id] = nil // known artifact, no generator: empty entry
				}
			} else {
				plan[id] = shards
				for _, si := range shards {
					perShard[si] = append(perShard[si], id)
				}
			}
		} else if shards, isExec := r.execShards[id]; isExec {
			plan[id] = shards
			for _, si := range shards {
				perShard[si] = append(perShard[si], id)
			}
		}
		// Unknown IDs stay absent from the plan and the result.
	}
	r.mu.RUnlock()

	// Scatter: one concurrent Expand per shard with work.
	results := make([]map[string][]string, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for si, list := range perShard {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, list []string) {
			defer wg.Done()
			results[si], errs[si] = r.shards[si].Expand(list, dir)
		}(si, list)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	// Gather: merge per-shard neighbor lists per frontier entity.
	out := make(map[string][]string, len(plan))
	for id, shards := range plan {
		lists := make([][]string, 0, len(shards))
		for _, si := range shards {
			if ns, ok := results[si][id]; ok {
				lists = append(lists, ns)
			}
		}
		out[id] = store.MergeNeighbors(lists...)
	}
	return out, nil
}

// Closure implements Store by iterating sharded Expand to fixpoint: each
// BFS hop is one parallel scatter/gather round, and the visit order matches
// the single-store backends (per-node sorted neighbors, seed excluded).
func (r *Router) Closure(seed string, dir store.Direction) ([]string, error) {
	return store.CloseOverExpand(r.Expand, seed, dir)
}

// --- Store: aggregates -------------------------------------------------------

// Stats implements Store: entity counts come from the global index (shared
// entities counted once), volumes sum across shards.
func (r *Router) Stats() (store.Stats, error) {
	r.mu.RLock()
	st := store.Stats{
		Runs:       len(r.runShard),
		Artifacts:  len(r.artShards),
		Executions: len(r.execShards),
	}
	r.mu.RUnlock()
	for _, s := range r.shards {
		sub, err := s.Stats()
		if err != nil {
			return store.Stats{}, err
		}
		st.Events += sub.Events
		st.Annotations += sub.Annotations
		st.Bytes += sub.Bytes
	}
	return st, nil
}

// Name implements Store, e.g. "sharded(4×file)".
func (r *Router) Name() string { return r.name }

// Close implements Store, draining any in-flight auto-checkpoint before
// closing every shard and the manifest journal.
func (r *Router) Close() error {
	r.autoCkpt.Drain()
	var errs []error
	for _, s := range r.shards {
		errs = append(errs, s.Close())
	}
	if r.manifest != nil {
		errs = append(errs, r.manifest.Close())
	}
	return errors.Join(errs...)
}
