// Package shardedstore partitions runs across N store.Store shards behind
// one router that itself implements store.Store, so every query engine —
// and the closure cache, which wraps any Store — runs over a partitioned
// store unchanged. The pieces:
//
//   - Deterministic hash routing: a run's home shard is FNV-1a(runID) mod
//     N. Whole runs live on one shard, so a run log is one shard append and
//     one shard read, and runs with different homes ingest concurrently
//     under per-shard locking instead of one global writer.
//   - A global entity→shard index: artifacts and executions that appear in
//     runs on multiple shards (shared, content-addressed inputs) are
//     tracked per kind, so the router knows exactly which shards to ask
//     about any entity — and which single shard holds an artifact's current
//     generator edge (generator edges are last-write-wins; the router
//     remembers the shard of the most recent re-declaration).
//   - Parallel scatter/gather Expand: one BFS frontier fans out to every
//     shard holding any frontier entity — one goroutine per shard with
//     work — and the per-shard neighbor lists merge under the same
//     tie-break/dedup rules as the single-store backends
//     (store.MergeNeighbors; artifact Up edges come only from the
//     generator's shard).
//   - Closure pushdown: instead of one scatter/gather round per BFS hop,
//     each shard runs its local closure to fixpoint inside its own lock
//     (store.LocalCloser, with a store.LocalCloseOverExpand fallback for
//     backends without the capability) and only the frontier of entities
//     whose edges continue on another shard is exchanged between rounds.
//     Synchronization rounds drop from O(depth) to O(cross-shard boundary
//     crossings): the router skips frontier entities with no remote edges
//     (the entity→shard and generator-edge indexes already know), batches
//     each round's probes per destination shard, and finally replays the
//     gathered subgraph in memory to reproduce the exact single-store BFS
//     order. ClosureViaExpand keeps the per-hop path as the conformance
//     and benchmarking reference; TracedClosure exposes the round
//     structure (-trace-rounds, experiment E16).
//
// The router holds no edges of its own: shards own the graph, the router
// owns only the routing and membership maps, so its resident footprint is
// O(entities), not O(edges). (A pushdown closure transiently gathers the
// traversed subgraph's edges for the ordering replay, released when the
// query returns.)
package shardedstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/wal"
)

// Router observability: cross-shard latency and traversal-shape histograms.
// The underlying per-shard FileStores feed the prov_store_* families; these
// series measure the routed operation end to end, so the gap between
// prov_store_closure_seconds and prov_router_closure_seconds is the
// scatter/gather + frontier-exchange overhead.
var (
	mRouterIngestSecs  = obs.Default().Histogram("prov_router_ingest_seconds", "Routed PutRunLog latency: shard commit plus global index.")
	mRouterClosureSecs = obs.Default().Histogram("prov_router_closure_seconds", "Sharded closure latency (pushdown or per-hop fallback).")
	mRouterRounds      = obs.Default().ValueHistogram("prov_router_closure_rounds", "Pushdown rounds per sharded closure.")
	mRouterCrossings   = obs.Default().ValueHistogram("prov_router_closure_crossings", "Cross-shard frontier crossings per sharded closure.")
	mRouterFanout      = obs.Default().ValueHistogram("prov_router_scatter_shards", "Shards probed per scatter/gather Expand.")
)

// Router implements store.Store over N underlying shards (any mix of
// backends). Reads scatter to the shards named by the entity index and
// gather under the shared merge rules; ingests route whole runs to their
// home shard. Safe for concurrent readers and concurrent writers: writers
// serialize per shard (plus a brief global index update), not globally.
type Router struct {
	shards []store.Store
	name   string
	dir    string // store directory for file-backed routers ("" otherwise)

	autoCkpt *store.AutoCheckpoint

	// scratch pools the per-shard request/response buffers Expand and the
	// pushdown closure driver need every round, so deep traversals and
	// wide fan-out hops stop reallocating them per hop. single holds the
	// precomputed one-shard sets ({0}, {1}, …) traversal planning hands
	// out for generator-edge lookups without allocating.
	scratch sync.Pool
	single  [][]int

	mu         sync.RWMutex
	manifest   *os.File         // global accepted-run order journal (file-backed routers)
	runShard   map[string]int   // run -> home shard
	order      []string         // runs in accepted order
	artShards  map[string][]int // artifact -> shards holding it (sorted)
	execShards map[string][]int // execution -> shards holding it (sorted)
	// entityShard collapses both kind indexes for the pushdown's hot
	// classification path: the one shard an entity lives on, or -1 once
	// it spans shards or kinds (then the full per-kind indexes decide).
	entityShard map[string]int32
	artLatest   map[string]int // artifact -> shard of its latest declaration
	execLatest  map[string]int // execution -> shard of its latest declaration
	genShard    map[string]int // artifact -> shard of its current generator edge
}

var _ store.Store = (*Router)(nil)
var _ store.Checkpointer = (*Router)(nil)

// New builds a router over the given shards (at least one). The shards
// should be empty or previously populated through a router with the same
// shard count and order; use Open to reopen file-backed shards.
func New(shards []store.Store) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shardedstore: need at least one shard")
	}
	r := &Router{
		shards:      shards,
		name:        fmt.Sprintf("sharded(%d×%s)", len(shards), shards[0].Name()),
		runShard:    map[string]int{},
		artShards:   map[string][]int{},
		execShards:  map[string][]int{},
		entityShard: map[string]int32{},
		artLatest:   map[string]int{},
		execLatest:  map[string]int{},
		genShard:    map[string]int{},
	}
	r.scratch.New = func() any { return &expandScratch{} }
	r.single = make([][]int, len(shards))
	for i := range r.single {
		r.single[i] = []int{i}
	}
	return r, nil
}

// NewMem returns a router over n fresh in-memory shards (n < 1 is treated
// as 1).
func NewMem(n int) *Router {
	if n < 1 {
		n = 1
	}
	shards := make([]store.Store, n)
	for i := range shards {
		shards[i] = store.NewMemStore()
	}
	r, _ := New(shards)
	return r
}

const (
	manifestFileName = "router-manifest.log"
	metaFileName     = "router-meta.json"
)

// routerMeta is the durable record of a sharded store directory's layout:
// the shard count it was written with (reopening with any other count is
// rejected loudly — hash routing would silently misroute every run) and
// the per-shard checkpoint positions of the last Checkpoint, so operators
// and tools can see how much log each shard replays at reopen.
type routerMeta struct {
	Shards      int     `json:"shards"`
	Checkpoints []int64 `json:"checkpoint_offsets,omitempty"`
}

// DetectShards inspects a store directory's layout: the number of shards
// it was written with (from the meta record, falling back to counting
// shard subdirectories for pre-meta stores) and whether it holds an
// unsharded single-store log instead. n == 0 means the directory is empty
// or brand new.
func DetectShards(dir string) (n int, unsharded bool) {
	if _, err := os.Stat(filepath.Join(dir, store.LogFileName)); err == nil {
		return 0, true
	}
	var meta routerMeta
	if ok, _ := wal.LoadCheckpoint(filepath.Join(dir, metaFileName), &meta); ok && meta.Shards > 0 {
		return meta.Shards, false
	}
	for i := 0; ; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%03d", i))); err != nil {
			return i, false
		}
	}
}

// validateLayout rejects reopening a store directory with a different
// shard count than it was written with.
func validateLayout(dir string, n int) error {
	existing, unsharded := DetectShards(dir)
	if unsharded {
		return fmt.Errorf("shardedstore: %s holds an unsharded store log; open it without shards or reshard it offline", dir)
	}
	if existing > 0 && existing != n {
		return fmt.Errorf("shardedstore: %s was written with %d shards, refusing to open with %d (hash routing would misroute runs; reshard offline instead)", dir, existing, n)
	}
	return nil
}

// Open opens (or creates) n file-backed shards under dir/shard-000 …
// dir/shard-N-1 and rebuilds the router's run and entity indexes from the
// shards' logs. With durable set, every ingest fsyncs its home shard's log
// before returning (see store.OpenFileStoreDurable) — the configuration
// experiment E14 measures. OpenWith exposes the full durability and
// checkpoint configuration, including group commit.
//
// A small manifest journal (dir/router-manifest.log, one run ID per
// accepted ingest) preserves the global cross-shard ingest order, so a
// reopened router restores Runs() order and generator last-write-wins
// tie-breaks exactly in the common case. The manifest is advisory, not
// authoritative: runs the journal misses (a crash between the shard append
// and the manifest append, or a failed journal write) are recovered from
// the shard scan and replayed after the journaled runs, stale or torn
// entries are dropped, and the journal is rewritten to the recovered order
// so later reopens are stable. Run data thus never depends on the journal;
// the one observable skew is that a journal-missed run replays last, which
// can flip a generator tie-break for an artifact whose generator was
// re-declared across shards (journaling durably would need an fsync per
// ingest on a shared file — exactly the serialization sharding removes).
func Open(dir string, n int, durable bool) (*Router, error) {
	opt := store.FileOptions{}
	if durable {
		opt.Durability = store.DurabilityFsync
	}
	return OpenWith(dir, n, opt)
}

// OpenWith is Open with explicit per-shard durability and checkpoint
// configuration. Each shard owns its own write-ahead group-commit log
// (store.FileOptions.Durability selects none/fsync/group per append), so
// under DurabilityGroup concurrent ingests coalesce per shard AND overlap
// across shards. CheckpointEvery is counted router-wide: every N accepted
// ingests the router checkpoints all shards and records their checkpoint
// positions in the store's meta record.
//
// A store directory must be reopened with the shard count it was written
// with: any mismatch (including opening an unsharded log as sharded) is
// rejected loudly, because hash routing at the wrong count would silently
// misroute every run.
func OpenWith(dir string, n int, opt store.FileOptions) (*Router, error) {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardedstore: create dir: %w", err)
	}
	if err := validateLayout(dir, n); err != nil {
		return nil, err
	}
	// Checkpointing is coordinated by the router, not per shard.
	shardOpt := opt
	shardOpt.CheckpointEvery = 0
	shardOpt.CheckpointInterval = 0
	shardOpt.CheckpointBytes = 0
	shards := make([]store.Store, n)
	for i := range shards {
		fs, err := store.OpenFileStoreWith(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)), shardOpt)
		if err != nil {
			for _, s := range shards[:i] {
				s.Close()
			}
			return nil, fmt.Errorf("shardedstore: open shard %d: %w", i, err)
		}
		shards[i] = fs
	}
	r, err := New(shards)
	if err != nil {
		return nil, err
	}
	r.dir = dir
	// Byte-based triggering stays per-FileStore (the router does not see
	// append sizes); router-wide checkpoints trigger on runs and time.
	r.autoCkpt = store.NewAutoCheckpointPolicy(store.CheckpointPolicy{
		EveryRuns: opt.CheckpointEvery,
		Interval:  opt.CheckpointInterval,
	})
	if err := r.rebuild(dir); err != nil {
		r.Close()
		return nil, err
	}
	if err := r.writeMeta(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// writeMeta records the directory's shard count and the shards' last
// checkpoint positions.
func (r *Router) writeMeta() error {
	if r.dir == "" {
		return nil
	}
	meta := routerMeta{Shards: len(r.shards)}
	for _, s := range r.shards {
		var off int64 = -1
		if fs, ok := s.(*store.FileStore); ok {
			if o, has := fs.LastCheckpoint(); has {
				off = o
			}
		}
		meta.Checkpoints = append(meta.Checkpoints, off)
	}
	return wal.SaveCheckpoint(filepath.Join(r.dir, metaFileName), meta)
}

// Checkpoint implements store.Checkpointer: every shard checkpoints in
// parallel (snapshot + log fsync each), then the meta record captures the
// new checkpoint positions. Closure-cache layers above the router persist
// their own snapshot on top of this.
func (r *Router) Checkpoint() error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		ck, ok := s.(store.Checkpointer)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, ck store.Checkpointer) {
			defer wg.Done()
			errs[i] = ck.Checkpoint()
		}(i, ck)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return r.writeMeta()
}

// rebuild reconstructs the routing and entity indexes: shard contents are
// replayed in the manifest's global order where the journal has them, then
// any journal-missed runs in shard-scan order, and the manifest is
// rewritten to the recovered order.
func (r *Router) rebuild(dir string) error {
	manifestPath := filepath.Join(dir, manifestFileName)
	var manifestOrder []string
	if data, err := os.ReadFile(manifestPath); err == nil {
		lines := strings.Split(string(data), "\n")
		if len(lines) > 0 && !strings.HasSuffix(string(data), "\n") {
			lines = lines[:len(lines)-1] // torn trailing entry
		}
		for _, l := range lines {
			if l != "" {
				manifestOrder = append(manifestOrder, l)
			}
		}
	}

	type rec struct {
		l     *provenance.RunLog
		shard int
	}
	byRun := map[string]rec{}
	var shardOrder []string
	for si, s := range r.shards {
		runs, err := s.Runs()
		if err != nil {
			return fmt.Errorf("shardedstore: rebuild shard %d: %w", si, err)
		}
		for _, runID := range runs {
			l, err := s.RunLog(runID)
			if err != nil {
				return fmt.Errorf("shardedstore: rebuild run %s: %w", runID, err)
			}
			byRun[runID] = rec{l, si}
			shardOrder = append(shardOrder, runID)
		}
	}
	seen := map[string]bool{}
	replay := func(runID string) {
		if rc, ok := byRun[runID]; ok && !seen[runID] {
			seen[runID] = true
			r.indexLocked(rc.l, rc.shard)
		}
	}
	for _, runID := range manifestOrder {
		replay(runID)
	}
	for _, runID := range shardOrder {
		replay(runID)
	}

	// Rewrite the journal to the recovered order and keep it open for
	// appends.
	var b strings.Builder
	for _, runID := range r.order {
		b.WriteString(runID)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(manifestPath, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("shardedstore: rewrite manifest: %w", err)
	}
	f, err := os.OpenFile(manifestPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shardedstore: open manifest: %w", err)
	}
	r.manifest = f
	return nil
}

// shardOf is the deterministic routing function: FNV-1a of the run ID,
// finished with one avalanche round. FNV-1a's low-order bits mix weakly
// and shard selection is a modulo, so without the finalizer sequential run
// IDs land in near-alternating patterns that maximize cross-shard
// boundaries on chain-shaped lineages (measurably more pushdown rounds
// than random placement); the finalizer restores uniform dispersion.
// Changing the function is safe for existing directories: reopen rebuilds
// the run→shard index from actual shard contents, never from the hash.
func (r *Router) shardOf(runID string) int {
	h := fnv.New32a()
	h.Write([]byte(runID))
	x := h.Sum32()
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x % uint32(len(r.shards)))
}

// NumShards reports the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// HomeShard reports the shard a run ID routes to — the deterministic hash
// placement, exposed so ingest pipelines can partition work per shard
// (one producer per shard never contends on a shard lock) and operators
// can locate a run's log on disk.
func (r *Router) HomeShard(runID string) int { return r.shardOf(runID) }

// Shard exposes one underlying shard (tests and stats tooling).
func (r *Router) Shard(i int) store.Store { return r.shards[i] }

// indexLocked folds one accepted run into the routing and entity indexes;
// the caller holds the write lock (or has exclusive access during rebuild).
func (r *Router) indexLocked(l *provenance.RunLog, shard int) {
	r.runShard[l.Run.ID] = shard
	r.order = append(r.order, l.Run.ID)
	single := func(id string) {
		if es, ok := r.entityShard[id]; !ok {
			r.entityShard[id] = int32(shard)
		} else if es != int32(shard) {
			r.entityShard[id] = -1
		}
	}
	for _, a := range l.Artifacts {
		r.artShards[a.ID] = addShard(r.artShards[a.ID], shard)
		r.artLatest[a.ID] = shard
		single(a.ID)
	}
	for _, e := range l.Executions {
		r.execShards[e.ID] = addShard(r.execShards[e.ID], shard)
		r.execLatest[e.ID] = shard
		single(e.ID)
	}
	for _, ev := range l.Events {
		if ev.Kind == provenance.EventArtifactGen {
			r.genShard[ev.ArtifactID] = shard
		}
	}
}

// addShard inserts a shard index into a small sorted set. Insertion always
// allocates a fresh backing array: published sets are read outside the
// router lock (Expand plans and the pushdown closure's allowed-shard sets
// hold them across rounds), so an in-place insert would race those readers.
func addShard(set []int, shard int) []int {
	for i, s := range set {
		if s == shard {
			return set
		}
		if s > shard {
			out := make([]int, 0, len(set)+1)
			out = append(out, set[:i]...)
			out = append(out, shard)
			return append(out, set[i:]...)
		}
	}
	out := make([]int, 0, len(set)+1)
	return append(append(out, set...), shard)
}

// containsShard reports membership in a small sorted shard set.
func containsShard(set []int, shard int) bool {
	for _, s := range set {
		if s == shard {
			return true
		}
	}
	return false
}

// --- Store: ingest -----------------------------------------------------------

// PutRunLog implements Store: the run routes whole to its home shard, and
// runs whose homes differ ingest concurrently — the shard serializes its
// own appends and rejects duplicates, so the router only takes its global
// lock for the brief index update after the shard accepts the log.
// Validation is the shard's: every backend validates before storing, and a
// second router-side pass would serialize that CPU across all writers.
func (r *Router) PutRunLog(l *provenance.RunLog) error {
	start := obs.Now()
	shard := r.shardOf(l.Run.ID)
	r.mu.RLock()
	_, dup := r.runShard[l.Run.ID]
	r.mu.RUnlock()
	if dup {
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	// Concurrent puts of the same run ID race to the same home shard, which
	// accepts exactly one; the loser returns the shard's duplicate error.
	if err := r.shards[shard].PutRunLog(l); err != nil {
		return err
	}
	r.mu.Lock()
	r.indexLocked(l, shard)
	if r.manifest != nil {
		// Advisory order journal; never fail the ingest the shard already
		// committed over it. A missed append costs this run its place in
		// the reopen ordering: it replays after the journaled runs, which
		// can flip a cross-shard generator tie-break if another run
		// re-declared the same artifact's generator (see Open).
		_, _ = r.manifest.WriteString(l.Run.ID + "\n")
	}
	r.mu.Unlock()
	r.autoCkpt.Tick(0, r.Checkpoint)
	mRouterIngestSecs.ObserveSince(start)
	return nil
}

// --- Store: routed single-entity reads ---------------------------------------

// RunLog implements Store, served by the run's home shard.
func (r *Router) RunLog(runID string) (*provenance.RunLog, error) {
	r.mu.RLock()
	shard, ok := r.runShard[runID]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: run %q", store.ErrNotFound, runID)
	}
	return r.shards[shard].RunLog(runID)
}

// Runs implements Store: accepted order across all shards.
func (r *Router) Runs() ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...), nil
}

// Artifact implements Store, served by the shard that most recently
// declared the artifact — entity records are last-write-wins on every
// single-store backend, and the router preserves that across shards.
func (r *Router) Artifact(id string) (*provenance.Artifact, error) {
	r.mu.RLock()
	shard, ok := r.artLatest[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: artifact %q", store.ErrNotFound, id)
	}
	return r.shards[shard].Artifact(id)
}

// Execution implements Store, served by the latest declaring shard.
func (r *Router) Execution(id string) (*provenance.Execution, error) {
	r.mu.RLock()
	shard, ok := r.execLatest[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: execution %q", store.ErrNotFound, id)
	}
	return r.shards[shard].Execution(id)
}

// GeneratorOf implements Store: generator edges are last-write-wins across
// the whole store, and the router remembers which shard holds the current
// edge, so the answer is a single routed call.
func (r *Router) GeneratorOf(artifactID string) (string, error) {
	r.mu.RLock()
	shard, ok := r.genShard[artifactID]
	r.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: generator of %q", store.ErrNotFound, artifactID)
	}
	return r.shards[shard].GeneratorOf(artifactID)
}

// ConsumersOf implements Store: consumer lists accumulate across runs, so
// the answer is the merge of every holding shard's list.
func (r *Router) ConsumersOf(artifactID string) ([]string, error) {
	return r.mergedNav(artifactID, r.artShards, store.Store.ConsumersOf)
}

// Used implements Store.
func (r *Router) Used(execID string) ([]string, error) {
	return r.mergedNav(execID, r.execShards, store.Store.Used)
}

// Generated implements Store.
func (r *Router) Generated(execID string) ([]string, error) {
	return r.mergedNav(execID, r.execShards, store.Store.Generated)
}

// mergedNav gathers one navigation list from every shard holding the
// entity and merges under the shared dedup rules. Unknown entities resolve
// to an empty list, mirroring the in-memory reference backend.
func (r *Router) mergedNav(id string, index map[string][]int, nav func(store.Store, string) ([]string, error)) ([]string, error) {
	r.mu.RLock()
	shards := append([]int(nil), index[id]...)
	r.mu.RUnlock()
	lists := make([][]string, 0, len(shards))
	for _, si := range shards {
		ns, err := nav(r.shards[si], id)
		if err != nil {
			return nil, err
		}
		lists = append(lists, ns)
	}
	return store.MergeNeighbors(lists...), nil
}

// --- Store: scatter/gather traversal -----------------------------------------

// expandScratch holds the per-shard request/response buffers one Expand
// call or pushdown closure round needs. Pooled on the router, so a deep
// traversal's rounds (and repeated wide fan-out hops) reuse the same
// buffers instead of re-growing fresh ones every round.
type expandScratch struct {
	perShard [][]string               // per-shard probe/seed lists
	results  []map[string][]string    // per-shard Expand responses
	local    [][]store.LocalNeighbors // per-shard CloseLocal responses
	errs     []error
	lists    [][]string // per-entity gather workspace
}

// getScratch checks a scratch buffer set out of the pool, sized for the
// router's shard count with every slot reset.
func (r *Router) getScratch() *expandScratch {
	sc := r.scratch.Get().(*expandScratch)
	n := len(r.shards)
	if cap(sc.perShard) < n {
		sc.perShard = make([][]string, n)
		sc.results = make([]map[string][]string, n)
		sc.local = make([][]store.LocalNeighbors, n)
		sc.errs = make([]error, n)
	} else {
		sc.perShard = sc.perShard[:n]
		sc.results = sc.results[:n]
		sc.local = sc.local[:n]
		sc.errs = sc.errs[:n]
	}
	for i := 0; i < n; i++ {
		sc.perShard[i] = sc.perShard[i][:0]
		sc.results[i] = nil
		sc.local[i] = sc.local[i][:0] // keep capacity: CloseLocal appends into it
		sc.errs[i] = nil
	}
	sc.lists = sc.lists[:0]
	return sc
}

// Expand implements Store: the frontier is planned against the entity
// index, scattered to every shard with work in parallel (one goroutine per
// shard, or a direct call when a single shard holds the whole frontier),
// and gathered under the shared merge rules. Known entities always get an
// entry; artifact Up edges come only from the shard holding the artifact's
// current generator edge, so a generator re-declared on another shard
// never resurrects the stale edge. Neighbor lists in the result may alias
// the shards' per-call response slices; callers must not mutate them.
func (r *Router) Expand(ids []string, dir store.Direction) (map[string][]string, error) {
	sc := r.getScratch()
	defer r.scratch.Put(sc)
	plan := make(map[string][]int, len(ids))
	r.mu.RLock()
	for _, id := range ids {
		if _, done := plan[id]; done {
			continue
		}
		if shards, isArt := r.artShards[id]; isArt {
			// Artifact classification wins for an ID stored as both kinds.
			if dir == store.Up {
				if gs, ok := r.genShard[id]; ok {
					plan[id] = r.single[gs]
					sc.perShard[gs] = append(sc.perShard[gs], id)
				} else {
					plan[id] = nil // known artifact, no generator: empty entry
				}
			} else {
				plan[id] = shards
				for _, si := range shards {
					sc.perShard[si] = append(sc.perShard[si], id)
				}
			}
		} else if shards, isExec := r.execShards[id]; isExec {
			plan[id] = shards
			for _, si := range shards {
				sc.perShard[si] = append(sc.perShard[si], id)
			}
		}
		// Unknown IDs stay absent from the plan and the result.
	}
	r.mu.RUnlock()

	if obs.Enabled() {
		fanout := 0
		for _, seeds := range sc.perShard {
			if len(seeds) > 0 {
				fanout++
			}
		}
		mRouterFanout.ObserveValue(uint64(fanout))
	}

	// Scatter: one concurrent Expand per shard with work.
	if err := scatter(sc.perShard, sc.results, sc.errs, func(si int, seeds []string) (map[string][]string, error) {
		return r.shards[si].Expand(seeds, dir)
	}); err != nil {
		return nil, err
	}

	// Gather: merge per-shard neighbor lists per frontier entity, the
	// result map preallocated from the frontier size.
	out := make(map[string][]string, len(ids))
	for id, shards := range plan {
		lists := sc.lists[:0]
		for _, si := range shards {
			if ns, ok := sc.results[si][id]; ok {
				lists = append(lists, ns)
			}
		}
		switch len(lists) {
		case 0:
			out[id] = nil
		case 1:
			// Single-shard entities adopt the shard's freshly built list
			// without the merge copy.
			out[id] = lists[0]
		default:
			out[id] = store.MergeNeighbors(lists...)
		}
		sc.lists = lists[:0]
	}
	return out, nil
}

// scatter runs probe once per shard with pending seeds, in parallel when
// more than one shard participates (the single-shard round of a deep chain
// traversal pays no goroutine handoff), and joins the per-shard errors.
func scatter[T any](perShard [][]string, results []T, errs []error, probe func(si int, seeds []string) (T, error)) error {
	active, last := 0, -1
	for si, list := range perShard {
		if len(list) > 0 {
			active++
			last = si
		}
	}
	switch {
	case active == 0:
		return nil
	case active == 1:
		results[last], errs[last] = probe(last, perShard[last])
		return errs[last]
	default:
		var wg sync.WaitGroup
		for si, list := range perShard {
			if len(list) == 0 {
				continue
			}
			wg.Add(1)
			go func(si int, list []string) {
				defer wg.Done()
				results[si], errs[si] = probe(si, list)
			}(si, list)
		}
		wg.Wait()
	}
	return errors.Join(errs...)
}

// ClosureTrace describes the round structure of one pushdown Closure: the
// observability surface behind provctl/provd's -trace-rounds flag and
// E16's rounds-executed metric. Rounds ≤ Crossings + 1 by construction —
// every round past the first is driven by at least one cross-shard
// continuation.
type ClosureTrace struct {
	Seed      string
	Dir       store.Direction
	Rounds    int   // local-fixpoint rounds executed
	Probes    []int // (entity, shard) probes issued per round
	Crossings int   // cross-shard continuations: probes issued after round 1
	Nodes     int   // closure size
}

// Closure implements Store with per-shard closure pushdown: every round,
// each probed shard runs its local closure to fixpoint inside its own lock
// (store.LocalCloser) and only entities whose edges continue on another
// shard — known from the entity→shard and generator-edge indexes — are
// exchanged for the next round, batched per destination shard. The visit
// order still matches the single-store backends exactly (per-node sorted
// neighbors merged under the shared tie-break rules, seed excluded): the
// gathered subgraph is replayed in memory to reconstruct the global BFS.
func (r *Router) Closure(seed string, dir store.Direction) ([]string, error) {
	order, _, err := r.TracedClosure(seed, dir)
	return order, err
}

// ClosureViaExpand is the pre-pushdown traversal: one scatter/gather
// Expand round per BFS hop. Kept as the reference path the conformance
// tests pin the pushdown against and the baseline experiment E16 measures
// the pushdown over.
func (r *Router) ClosureViaExpand(seed string, dir store.Direction) ([]string, error) {
	return store.CloseOverExpand(r.Expand, seed, dir)
}

// pdNode is one entity's traversal state during a pushdown closure.
// allowed holds the shards the entity's edges may legitimately come from
// under the global classification rules (artifact Up: only the current
// generator edge's shard; everything else: every holding shard) — lists
// returned by other shards are dropped, so a stale generator edge or a
// diverging local kind on a shard that re-declared the ID never leaks
// into the merged adjacency. probed tracks (as a bitmask — the pushdown
// driver serves routers up to 64 shards and falls back to the per-hop
// path beyond) which shards have locally expanded the entity; an entity
// with allowed ⊆ probed has no remote edges left and is never exchanged
// again.
type pdNode struct {
	allowed []int    // accepted source shards (global classification)
	probed  uint64   // shards whose local fixpoint expanded the node
	adj     []string // accepted, globally merged neighbor list
	visited bool     // reached by the ordering replay
}

// TracedClosure is Closure returning its round trace.
func (r *Router) TracedClosure(seed string, dir store.Direction) ([]string, ClosureTrace, error) {
	start := obs.Now()
	order, tr, err := r.tracedClosure(seed, dir)
	if err == nil {
		mRouterClosureSecs.ObserveSince(start)
		mRouterRounds.ObserveValue(uint64(tr.Rounds))
		mRouterCrossings.ObserveValue(uint64(tr.Crossings))
	}
	return order, tr, err
}

func (r *Router) tracedClosure(seed string, dir store.Direction) ([]string, ClosureTrace, error) {
	tr := ClosureTrace{Seed: seed, Dir: dir}
	if len(r.shards) > 64 {
		// The pushdown's probed bitmask covers 64 shards; beyond that the
		// per-hop path serves (every hop is a global exchange, so the
		// trace reports one crossing per round past the first).
		order, err := store.CloseOverExpand(func(ids []string, d store.Direction) (map[string][]string, error) {
			tr.Rounds++
			tr.Probes = append(tr.Probes, len(ids))
			return r.Expand(ids, d)
		}, seed, dir)
		if tr.Rounds > 1 {
			tr.Crossings = tr.Rounds - 1
		}
		tr.Nodes = len(order)
		return order, tr, err
	}
	r.mu.RLock()
	seedAllowed, known := r.allowedShardsLocked(seed, dir)
	r.mu.RUnlock()
	if !known {
		return nil, tr, fmt.Errorf("%w: entity %q", store.ErrNotFound, seed)
	}

	// Node state lives in a flat arena addressed by index: the name map
	// carries int32 values (no write barrier per insert, half the lookups
	// of a two-map design), and the arena grows only between scatter
	// phases, so pointers taken into it within one phase stay valid.
	arena := make([]pdNode, 1, 256)
	arena[0] = pdNode{allowed: seedAllowed}
	nodes := make(map[string]int32, 256)
	nodes[seed] = 0

	sc := r.getScratch()
	defer r.scratch.Put(sc)
	pending := sc.perShard
	npending := 0
	enqueue := func(id string, st *pdNode) {
		for _, si := range st.allowed {
			if st.probed&(1<<uint(si)) == 0 {
				pending[si] = append(pending[si], id)
				npending++
			}
		}
	}
	enqueue(seed, &arena[0])

	// The per-shard skip predicates and probe closures are built once:
	// during a round the driver does not mutate nodes, so the shard
	// goroutines' reads of the map race nothing.
	skips := make([]func(string) bool, len(r.shards))
	probes := make([]func([]string) ([]store.LocalNeighbors, error), len(r.shards))
	for si := range r.shards {
		si := si
		mask := uint64(1) << uint(si)
		skips[si] = func(id string) bool {
			idx, ok := nodes[id]
			return ok && arena[idx].probed&mask != 0
		}
		if lc, ok := r.shards[si].(store.LocalCloser); ok {
			probes[si] = func(seeds []string) ([]store.LocalNeighbors, error) {
				return lc.CloseLocal(seeds, dir, skips[si], sc.local[si][:0])
			}
		} else {
			expand := r.shards[si].Expand
			probes[si] = func(seeds []string) ([]store.LocalNeighbors, error) {
				return store.LocalCloseOverExpand(expand, seeds, dir, skips[si], sc.local[si][:0])
			}
		}
	}

	probeFn := func(si int, seeds []string) ([]store.LocalNeighbors, error) {
		return probes[si](seeds)
	}

	var discovered []string // this round's new entity names…
	var discIdx []int32     // …and their arena indexes
	var stash []int32       // per-round node indexes, aligned with the result walk
	for npending > 0 {
		tr.Rounds++
		tr.Probes = append(tr.Probes, npending)
		if tr.Rounds > 1 {
			tr.Crossings += npending
		}

		// Scatter: one local fixpoint per shard with probes, skipping
		// entities that shard already expanded in an earlier round.
		if err := scatter(sc.perShard, sc.local, sc.errs, probeFn); err != nil {
			return nil, tr, err
		}

		// Gather, phase 1: record coverage, collect newly seen entities,
		// stashing each entry's node index so phase 2 skips the map
		// lookup. Arena growth happens only here, between scatters.
		discovered = discovered[:0]
		discIdx = discIdx[:0]
		stash = stash[:0]
		for si, res := range sc.local {
			mask := uint64(1) << uint(si)
			for i := range res {
				n := res[i].ID
				idx, ok := nodes[n]
				if !ok {
					arena = append(arena, pdNode{})
					idx = int32(len(arena) - 1)
					nodes[n] = idx
					discovered = append(discovered, n)
					discIdx = append(discIdx, idx)
				}
				arena[idx].probed |= mask
				stash = append(stash, idx)
			}
		}
		// Classify this round's discoveries under one index lock. The
		// returned sets are immutable (addShard copies on insert, single
		// is precomputed), so holding them across rounds is safe.
		if len(discovered) > 0 {
			r.mu.RLock()
			for i, n := range discovered {
				arena[discIdx[i]].allowed, _ = r.allowedShardsLocked(n, dir)
			}
			r.mu.RUnlock()
		}
		// Gather, phase 2: accept neighbor lists from allowed shards only,
		// merging under the shared dedup rules when an entity's edges span
		// shards.
		k := 0
		for si, res := range sc.local {
			for i := range res {
				st := &arena[stash[k]]
				k++
				if !containsShard(st.allowed, si) {
					continue
				}
				if st.adj == nil {
					// First accepted list is adopted as-is (empty lists
					// merge to the same set either way).
					st.adj = res[i].Neighbors
				} else {
					st.adj = store.MergeNeighbors(st.adj, res[i].Neighbors)
				}
			}
		}

		// Next round: only entities with unprobed allowed shards cross —
		// the cross-shard frontier, batched per destination shard. Result
		// containers are truncated, not dropped: each shard's next
		// CloseLocal appends into the same backing array.
		for si := range pending {
			pending[si] = pending[si][:0]
			sc.local[si] = sc.local[si][:0]
		}
		npending = 0
		for i, n := range discovered {
			enqueue(n, &arena[discIdx[i]])
		}
	}
	// Replay: the gathered subgraph already holds every traversed entity's
	// globally merged neighbor list, so the exact single-store BFS order
	// (the contract pinned by the conformance suite) is reconstructed with
	// in-memory map lookups — no further store rounds. Frontiers carry
	// node pointers (one lookup per edge, none per level) and the two
	// level buffers alternate, keeping the loop allocation-flat.
	order := make([]string, 0, len(arena)) // every traversed entity, bounded by the arena
	var bufs [2][]int32
	frontier := append(bufs[0], 0) // the seed's arena index
	which := 1
	for len(frontier) > 0 {
		next := bufs[which][:0]
		for _, idx := range frontier {
			for _, n := range arena[idx].adj {
				if j, ok := nodes[n]; ok && !arena[j].visited {
					arena[j].visited = true
					order = append(order, n)
					next = append(next, j)
				}
			}
		}
		bufs[which] = next
		frontier = next
		which ^= 1
	}
	tr.Nodes = len(order)
	return order, tr, nil
}

// allowedShardsLocked reports which shards may contribute an entity's
// neighbor lists in a direction — the plan rule shared with Expand:
// artifact Up edges only from the current generator edge's shard,
// everything else from every holding shard. known=false for IDs absent
// from the entity index. The caller holds at least a read lock; returned
// slices are immutable once published (see addShard) and safe to hold
// after the lock is released.
func (r *Router) allowedShardsLocked(id string, dir store.Direction) (shards []int, known bool) {
	// Fast path: an entity on a single shard (and single kind) gets that
	// shard whatever the direction — its generator edge, if any, lives
	// there too, and local kind classification agrees with the global one.
	if es, ok := r.entityShard[id]; ok && es >= 0 {
		return r.single[es], true
	}
	if shards, isArt := r.artShards[id]; isArt {
		if dir == store.Up {
			if gs, ok := r.genShard[id]; ok {
				return r.single[gs], true
			}
			return nil, true
		}
		return shards, true
	}
	if shards, isExec := r.execShards[id]; isExec {
		return shards, true
	}
	return nil, false
}

// WithTrace wraps the router so every pushdown Closure that executes
// reports its round trace through report — the -trace-rounds debug
// surface of provctl and provd. All other Store methods pass through.
func (r *Router) WithTrace(report func(ClosureTrace)) store.Store {
	if report == nil {
		return r
	}
	return &tracedRouter{Router: r, report: report}
}

// tracedRouter overrides Closure to publish the trace; everything else
// (including Checkpoint) promotes from the embedded router.
type tracedRouter struct {
	*Router
	report func(ClosureTrace)
}

// Closure implements Store, reporting the executed trace on success.
func (t *tracedRouter) Closure(seed string, dir store.Direction) ([]string, error) {
	order, tr, err := t.Router.TracedClosure(seed, dir)
	if err == nil {
		t.report(tr)
	}
	return order, err
}

// Underlying exposes the wrapped router, so stack-walking callers (the
// CLIs' unwrap helpers) can reach it.
func (t *tracedRouter) Underlying() store.Store { return t.Router }

// --- Store: aggregates -------------------------------------------------------

// Stats implements Store: entity counts come from the global index (shared
// entities counted once), volumes sum across shards.
func (r *Router) Stats() (store.Stats, error) {
	r.mu.RLock()
	st := store.Stats{
		Runs:       len(r.runShard),
		Artifacts:  len(r.artShards),
		Executions: len(r.execShards),
	}
	r.mu.RUnlock()
	for _, s := range r.shards {
		sub, err := s.Stats()
		if err != nil {
			return store.Stats{}, err
		}
		st.Events += sub.Events
		st.Annotations += sub.Annotations
		st.Bytes += sub.Bytes
	}
	return st, nil
}

// Name implements Store, e.g. "sharded(4×file)".
func (r *Router) Name() string { return r.name }

// Close implements Store, draining any in-flight auto-checkpoint before
// closing every shard and the manifest journal.
func (r *Router) Close() error {
	r.autoCkpt.Drain()
	var errs []error
	for _, s := range r.shards {
		errs = append(errs, s.Close())
	}
	if r.manifest != nil {
		errs = append(errs, r.manifest.Close())
	}
	return errors.Join(errs...)
}
