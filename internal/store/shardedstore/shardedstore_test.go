package shardedstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/provenance"
	"repro/internal/store"
)

// synthLogs generates a randomized sequence of valid run logs that share
// artifacts across runs (so entities land on multiple shards), including
// occasional generator re-declarations (the last-write-wins case) and
// consumers of artifacts produced many runs earlier.
func synthLogs(seed int64, nRuns int) []*provenance.RunLog {
	rng := rand.New(rand.NewSource(seed))
	var pool []string // artifacts produced by earlier runs
	var logs []*provenance.RunLog
	nextArt := 0
	for run := 0; run < nRuns; run++ {
		runID := fmt.Sprintf("run-%d-%03d", seed, run)
		l := &provenance.RunLog{}
		l.Run = provenance.Run{ID: runID, WorkflowID: "synth", Status: provenance.StatusOK}
		declared := map[string]bool{}
		genned := map[string]bool{}
		var seq uint64
		nExecs := 1 + rng.Intn(3)
		for e := 0; e < nExecs; e++ {
			execID := fmt.Sprintf("exec-%s-%d", runID, e)
			l.Executions = append(l.Executions, &provenance.Execution{
				ID: execID, RunID: runID, ModuleID: fmt.Sprintf("m%d", e),
				ModuleType: "Synth", Status: provenance.StatusOK,
			})
			// Use up to two artifacts from earlier runs.
			for u := 0; u < rng.Intn(3) && len(pool) > 0; u++ {
				art := pool[rng.Intn(len(pool))]
				if !declared[art] {
					declared[art] = true
					l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: art, RunID: runID, Type: "blob"})
				}
				seq++
				l.Events = append(l.Events, provenance.Event{
					Seq: seq, RunID: runID, Kind: provenance.EventArtifactUsed,
					ExecutionID: execID, ArtifactID: art,
				})
			}
			// Generate one or two artifacts; occasionally re-declare the
			// generator of an existing artifact instead of a fresh one.
			for g := 0; g < 1+rng.Intn(2); g++ {
				var art string
				if len(pool) > 0 && rng.Intn(6) == 0 {
					art = pool[rng.Intn(len(pool))]
					if genned[art] {
						continue // one generator per artifact within a log
					}
				} else {
					art = fmt.Sprintf("art-%d-%04d", seed, nextArt)
					nextArt++
					pool = append(pool, art)
				}
				if !declared[art] {
					declared[art] = true
					l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: art, RunID: runID, Type: "blob"})
				}
				genned[art] = true
				seq++
				l.Events = append(l.Events, provenance.Event{
					Seq: seq, RunID: runID, Kind: provenance.EventArtifactGen,
					ExecutionID: execID, ArtifactID: art,
				})
			}
		}
		logs = append(logs, l)
	}
	return logs
}

// entitiesOf collects every artifact and execution ID across the logs.
func entitiesOf(logs []*provenance.RunLog) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range logs {
		for _, a := range l.Artifacts {
			if !seen[a.ID] {
				seen[a.ID] = true
				out = append(out, a.ID)
			}
		}
		for _, e := range l.Executions {
			if !seen[e.ID] {
				seen[e.ID] = true
				out = append(out, e.ID)
			}
		}
	}
	return out
}

func encodeAdj(adj map[string][]string) string {
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, adj[k])
	}
	return b.String()
}

// Property: a sharded router over 1, 2 and 4 shards answers every
// navigation, Expand and Closure query identically to a single MemStore
// loaded with the same run logs in the same order — the router's
// conformance contract (ISSUE 3 acceptance).
func TestQuickShardedMatchesSingleStore(t *testing.T) {
	f := func(seed int64) bool {
		logs := synthLogs(seed, 12)
		ref := store.NewMemStore()
		for _, l := range logs {
			if err := ref.PutRunLog(l); err != nil {
				t.Logf("ref ingest: %v", err)
				return false
			}
		}
		entities := entitiesOf(logs)
		for _, nShards := range []int{1, 2, 4} {
			r := NewMem(nShards)
			for _, l := range logs {
				if err := r.PutRunLog(l); err != nil {
					t.Logf("shards=%d ingest: %v", nShards, err)
					return false
				}
			}
			if !agreesWithReference(t, r, ref, logs, entities, fmt.Sprintf("shards=%d", nShards)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// agreesWithReference asserts the router and the reference store agree on
// runs, stats, every single-entity navigation call, whole-graph Expand
// frontiers and every closure, in both directions.
func agreesWithReference(t *testing.T, r *Router, ref *store.MemStore, logs []*provenance.RunLog, entities []string, label string) bool {
	t.Helper()
	refRuns, _ := ref.Runs()
	gotRuns, _ := r.Runs()
	if fmt.Sprint(gotRuns) != fmt.Sprint(refRuns) {
		t.Logf("%s: Runs = %v, want %v", label, gotRuns, refRuns)
		return false
	}
	refStats, _ := ref.Stats()
	gotStats, err := r.Stats()
	if err != nil || gotStats.Runs != refStats.Runs || gotStats.Artifacts != refStats.Artifacts ||
		gotStats.Executions != refStats.Executions || gotStats.Events != refStats.Events {
		t.Logf("%s: Stats = %+v (err %v), want counts of %+v", label, gotStats, err, refStats)
		return false
	}
	for _, id := range entities {
		// Entity records are last-write-wins: the router must serve the
		// same (latest) declaration the reference store holds.
		refArt, refArtErr := ref.Artifact(id)
		art, artErr := r.Artifact(id)
		if (artErr == nil) != (refArtErr == nil) ||
			(artErr == nil && art.RunID != refArt.RunID) {
			t.Logf("%s: Artifact(%s) run = %v (%v); want %v (%v)", label, id, art, artErr, refArt, refArtErr)
			return false
		}
		refExec, refExecErr := ref.Execution(id)
		exec, execErr := r.Execution(id)
		if (execErr == nil) != (refExecErr == nil) ||
			(execErr == nil && exec.RunID != refExec.RunID) {
			t.Logf("%s: Execution(%s) run = %v (%v); want %v (%v)", label, id, exec, execErr, refExec, refExecErr)
			return false
		}
		refGen, refErr := ref.GeneratorOf(id)
		gen, err := r.GeneratorOf(id)
		if (err == nil) != (refErr == nil) || gen != refGen {
			t.Logf("%s: GeneratorOf(%s) = %q, %v; want %q, %v", label, id, gen, err, refGen, refErr)
			return false
		}
		for name, pair := range map[string][2]func(string) ([]string, error){
			"ConsumersOf": {r.ConsumersOf, ref.ConsumersOf},
			"Used":        {r.Used, ref.Used},
			"Generated":   {r.Generated, ref.Generated},
		} {
			got, gerr := pair[0](id)
			want, werr := pair[1](id)
			if (gerr == nil) != (werr == nil) || fmt.Sprint(got) != fmt.Sprint(want) {
				t.Logf("%s: %s(%s) = %v, %v; want %v, %v", label, name, id, got, gerr, want, werr)
				return false
			}
		}
	}
	probe := append(append([]string(nil), entities...), "ghost-entity")
	for _, dir := range []store.Direction{store.Up, store.Down} {
		want, err := ref.Expand(probe, dir)
		if err != nil {
			t.Logf("%s: ref Expand: %v", label, err)
			return false
		}
		got, err := r.Expand(probe, dir)
		if err != nil {
			t.Logf("%s: Expand: %v", label, err)
			return false
		}
		if encodeAdj(got) != encodeAdj(want) {
			t.Logf("%s %v: Expand mismatch:\n got %s\nwant %s", label, dir, encodeAdj(got), encodeAdj(want))
			return false
		}
		for _, id := range entities {
			want, werr := ref.Closure(id, dir)
			got, gerr := r.Closure(id, dir)
			if (werr == nil) != (gerr == nil) || fmt.Sprint(got) != fmt.Sprint(want) {
				t.Logf("%s %v: Closure(%s) = %v, %v; want %v, %v", label, dir, id, got, gerr, want, werr)
				return false
			}
		}
		if _, err := r.Closure("ghost-entity", dir); !errors.Is(err, store.ErrNotFound) {
			t.Logf("%s %v: ghost Closure err = %v", label, dir, err)
			return false
		}
	}
	return true
}

// A router over a mix of backends (mem and file shards) behaves like the
// homogeneous configurations.
func TestShardedMixedBackends(t *testing.T) {
	fs, err := store.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r, err := New([]store.Store{store.NewMemStore(), fs, store.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	logs := synthLogs(42, 10)
	ref := store.NewMemStore()
	for _, l := range logs {
		if err := ref.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	if !agreesWithReference(t, r, ref, logs, entitiesOf(logs), "mixed") {
		t.Fatal("mixed-backend router diverged from reference")
	}
}

// Concurrent multi-writer ingest: writers with disjoint run sets ingest in
// parallel (runs hash across all shards) while readers traverse; the final
// state must match a single reference store, and the duplicate-run error
// must surface exactly once per contended ID. Run under -race in CI.
func TestShardedConcurrentIngest(t *testing.T) {
	const writers = 8
	const runsEach = 6
	r, err := Open(t.TempDir(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	perWriter := make([][]*provenance.RunLog, writers)
	var all []*provenance.RunLog
	for w := 0; w < writers; w++ {
		perWriter[w] = synthLogs(int64(1000+w), runsEach)
		all = append(all, perWriter[w]...)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers exercise scatter/gather and the index under ingest.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				runs, err := r.Runs()
				if err != nil {
					t.Error(err)
					return
				}
				for _, runID := range runs {
					l, err := r.RunLog(runID)
					if err != nil {
						t.Error(err)
						return
					}
					for _, a := range l.Artifacts {
						if _, err := r.Closure(a.ID, store.Down); err != nil && !errors.Is(err, store.ErrNotFound) {
							t.Error(err)
							return
						}
					}
					break // one run per sweep keeps the loop cheap
				}
			}
		}()
	}
	var werr sync.Map
	var ingest sync.WaitGroup
	for w := 0; w < writers; w++ {
		ingest.Add(1)
		go func(w int) {
			defer ingest.Done()
			for _, l := range perWriter[w] {
				if err := r.PutRunLog(l); err != nil {
					werr.Store(l.Run.ID, err)
				}
			}
		}(w)
	}
	ingest.Wait()
	close(stop)
	wg.Wait()
	werr.Range(func(k, v any) bool {
		t.Errorf("ingest %v: %v", k, v)
		return true
	})

	// Duplicate ingest of an already-stored run fails wherever it raced to.
	if err := r.PutRunLog(perWriter[0][0]); err == nil {
		t.Fatal("duplicate run accepted")
	}

	// Final state: every run retrievable, closures equal to a reference
	// store loaded with the same logs. Writers had disjoint entity
	// namespaces, so ingest interleaving cannot change the final graph.
	ref := store.NewMemStore()
	for _, l := range all {
		if err := ref.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := r.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(all) {
		t.Fatalf("stored %d runs, want %d", len(runs), len(all))
	}
	for _, id := range entitiesOf(all) {
		for _, dir := range []store.Direction{store.Up, store.Down} {
			want, werr := ref.Closure(id, dir)
			got, gerr := r.Closure(id, dir)
			if (werr == nil) != (gerr == nil) || fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%v: Closure(%s) = %v, %v; want %v, %v", dir, id, got, gerr, want, werr)
			}
		}
	}
}

// Reopening file-backed shards rebuilds the routing and entity indexes
// from the shard logs plus the manifest order journal: Runs() order and
// generator last-write-wins tie-breaks are restored exactly, so the
// reopened router still answers identically to the reference store —
// including across the generator re-declarations synthLogs mixes in.
func TestShardedReopenRebuild(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	logs := synthLogs(7, 10)
	ref := store.NewMemStore()
	for _, l := range logs {
		if err := ref.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if !agreesWithReference(t, r2, ref, logs, entitiesOf(logs), "reopened") {
		t.Fatal("reopened router diverged from reference")
	}

	// Losing the manifest degrades only ordering metadata: a reopen without
	// it recovers every run from the shard scan.
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestFileName)); err != nil {
		t.Fatal(err)
	}
	r3, err := Open(dir, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	runs, err := r3.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(logs) {
		t.Fatalf("manifest-less reopen found %d runs, want %d", len(runs), len(logs))
	}
	for _, id := range runs {
		if _, err := r3.RunLog(id); err != nil {
			t.Fatal(err)
		}
	}
}

// Routing is deterministic and run-complete: a run log lives whole on the
// shard its ID hashes to, and no other shard stores any part of it.
func TestShardedRoutingDeterministic(t *testing.T) {
	r := NewMem(4)
	logs := synthLogs(99, 8)
	for _, l := range logs {
		if err := r.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range logs {
		home := r.shardOf(l.Run.ID)
		for si := 0; si < r.NumShards(); si++ {
			_, err := r.Shard(si).RunLog(l.Run.ID)
			if si == home && err != nil {
				t.Fatalf("run %s missing from home shard %d: %v", l.Run.ID, home, err)
			}
			if si != home && err == nil {
				t.Fatalf("run %s duplicated on shard %d (home %d)", l.Run.ID, si, home)
			}
		}
	}
}
