package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func openLog(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(t.TempDir(), "test.log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestAppendSequential checks offsets, file contents and metrics for a
// single writer under each policy.
func TestAppendSequential(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncNone, SyncEachAppend, SyncBatch} {
		t.Run(policy.String(), func(t *testing.T) {
			f := openLog(t)
			w := NewWriter(f, 0, Options{Policy: policy})
			var want bytes.Buffer
			for i := 0; i < 20; i++ {
				rec := []byte(fmt.Sprintf("rec-%02d\n", i))
				off, err := w.Append(rec)
				if err != nil {
					t.Fatal(err)
				}
				if off != int64(want.Len()) {
					t.Fatalf("append %d: offset %d, want %d", i, off, want.Len())
				}
				want.Write(rec)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(f.Name())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("log content mismatch:\n got %q\nwant %q", got, want.Bytes())
			}
			m := w.Metrics()
			if m.Appends != 20 || m.Bytes != uint64(want.Len()) {
				t.Fatalf("metrics = %+v", m)
			}
			if policy == SyncEachAppend && m.Syncs != 20 {
				t.Fatalf("SyncEachAppend issued %d syncs, want 20", m.Syncs)
			}
			if policy == SyncNone && m.Syncs != 0 {
				t.Fatalf("SyncNone issued %d syncs", m.Syncs)
			}
		})
	}
}

// TestGroupCommitCoalesces drives many concurrent appenders through a
// SyncBatch writer and asserts (a) every record lands intact at its
// returned offset and (b) the sync count is well below the append count —
// the whole point of group commit.
func TestGroupCommitCoalesces(t *testing.T) {
	f := openLog(t)
	w := NewWriter(f, 0, Options{Policy: SyncBatch})
	const writers, each = 16, 25
	type placed struct {
		off int64
		rec string
	}
	results := make([][]placed, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := fmt.Sprintf("w%02d-%03d\n", g, i)
				off, err := w.Append([]byte(rec))
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = append(results[g], placed{off, rec})
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	var all []placed
	for _, rs := range results {
		all = append(all, rs...)
	}
	if len(all) != writers*each {
		t.Fatalf("%d records placed, want %d", len(all), writers*each)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].off < all[j].off })
	var pos int64
	for _, p := range all {
		if p.off != pos {
			t.Fatalf("offset gap: record %q at %d, expected %d", p.rec, p.off, pos)
		}
		end := p.off + int64(len(p.rec))
		if string(data[p.off:end]) != p.rec {
			t.Fatalf("record at %d = %q, want %q", p.off, data[p.off:end], p.rec)
		}
		pos = end
	}
	if pos != int64(len(data)) {
		t.Fatalf("log has %d bytes, records cover %d", len(data), pos)
	}
	m := w.Metrics()
	if m.Appends != writers*each {
		t.Fatalf("appends = %d", m.Appends)
	}
	if m.Syncs >= m.Appends {
		t.Fatalf("group commit did not coalesce: %d syncs for %d appends", m.Syncs, m.Appends)
	}
	t.Logf("coalesced %d appends into %d batches (%d syncs)", m.Appends, m.Batches, m.Syncs)
}

// TestFlushDelayBatches checks that a leader with FlushDelay waits for
// joiners instead of committing a lone record, and that MaxBatchBytes
// seals a batch early.
func TestFlushDelayBatches(t *testing.T) {
	f := openLog(t)
	w := NewWriter(f, 0, Options{Policy: SyncBatch, FlushDelay: 50 * time.Millisecond, MaxBatchBytes: 16})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := w.Append([]byte(fmt.Sprintf("delay-%d\n", g))); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Appends != 4 {
		t.Fatalf("appends = %d", m.Appends)
	}
	// 8-byte records against a 16-byte cap: at most 2 records per batch,
	// so at least 2 batches; the flush delay should have merged at least
	// one pair.
	if m.Batches < 2 || m.Batches > 4 {
		t.Fatalf("batches = %d, want 2..4 (cap 16 bytes, 4×8-byte records)", m.Batches)
	}
}

// TestCheckpointRoundTrip exercises save/load, corruption detection and
// the missing-file path.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	type payload struct {
		N     int
		Names []string
	}
	in := payload{N: 42, Names: []string{"a", "b"}}
	if err := SaveCheckpoint(path, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := LoadCheckpoint(path, &out)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if out.N != in.N || len(out.Names) != 2 {
		t.Fatalf("round trip = %+v", out)
	}

	// Flip a payload byte: the CRC must reject it.
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := LoadCheckpoint(path, &out); ok || err != nil {
		t.Fatalf("corrupt checkpoint accepted: ok=%v err=%v", ok, err)
	}

	// Truncated file.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, _ := LoadCheckpoint(path, &out); ok {
		t.Fatal("torn checkpoint accepted")
	}

	// Missing file is not an error.
	if ok, err := LoadCheckpoint(filepath.Join(dir, "nope.json"), &out); ok || err != nil {
		t.Fatalf("missing checkpoint: ok=%v err=%v", ok, err)
	}
	if err := RemoveCheckpoint(filepath.Join(dir, "nope.json")); err != nil {
		t.Fatal(err)
	}
}

// TestWriterClosed checks the closed-writer error path.
func TestWriterClosed(t *testing.T) {
	f := openLog(t)
	w := NewWriter(f, 0, Options{Policy: SyncBatch})
	if _, err := w.Append([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("y\n")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if _, err := w.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}

// TestWriterPoisonedAfterFailedTruncate drives a commit failure whose
// cleanup truncate also fails (a read-only file descriptor fails both):
// the writer must refuse every later append instead of writing over
// bytes it could not truncate — appending there could resurrect a
// rejected record at the next recovery scan.
func TestWriterPoisonedAfterFailedTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path) // read-only: WriteAt and Truncate both fail
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f, 0, Options{Policy: SyncBatch})
	if _, err := w.Append([]byte("a\n")); err == nil {
		t.Fatal("append to read-only file succeeded")
	}
	_, err = w.Append([]byte("b\n"))
	if err == nil {
		t.Fatal("append after failed truncate succeeded")
	}
	if !strings.Contains(err.Error(), "truncate after failed commit") {
		t.Fatalf("append after failed truncate returned %q, want the poison error", err)
	}
}

// TestSaveCheckpointSweepsCrashedTemps plants orphan temp files (as a
// crash mid-save would leave) and checks the next save removes them while
// leaving unrelated files alone.
func TestSaveCheckpointSweepsCrashedTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	for _, orphan := range []string{"checkpoint.json.tmp-111", "checkpoint.json.tmp-222"} {
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	other := filepath.Join(dir, "closures.json.tmp-333")
	if err := os.WriteFile(other, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("stale temp files survived the save: %v", left)
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatalf("unrelated temp file was swept: %v", err)
	}
	var got map[string]int
	if ok, err := LoadCheckpoint(path, &got); err != nil || !ok || got["x"] != 1 {
		t.Fatalf("checkpoint not readable after sweep: ok=%v err=%v got=%v", ok, err, got)
	}
}
