// Package wal is the durability layer under the file-backed stores: a
// group-commit append log plus atomic checkpoint files.
//
// # Group commit
//
// A Writer owns the tail of one append-only log file. Concurrent Append
// calls coalesce under a leader/follower protocol: every appender adds its
// record to the open batch, and the batch's creator is its leader — it
// waits for its turn in the commit order, seals the batch (later appends
// start the next one), writes the whole batch with one positional write
// and, under SyncBatch, one fsync, then wakes the followers. While a
// leader's fsync is in flight the next batch accumulates behind it, so the
// batch size adapts to the storage medium: the slower the sync, the more
// appends each sync amortizes, and a lone writer degenerates to one write
// + one sync per record with no added latency (there is no mandatory timer
// wait). An optional FlushDelay adds a bounded wait for joiners, for media
// where the sync itself is too fast to accumulate a batch.
//
// Batches commit strictly in offset order, so the durable log is always a
// prefix of the accepted appends: after a crash, every record whose Append
// returned is on disk, possibly followed by a partial tail from an
// unacknowledged batch — which the owning store's recovery scan truncates,
// exactly as it truncated torn single appends before group commit.
//
// # Failure handling
//
// A failed write or sync fails every Append in the batch and in every
// batch queued behind it (their offsets assumed the failed bytes),
// truncates the file back to the failed batch's base offset, and resets
// the writer so later appends retry from the truncation point: a rejected
// record is never silently resurrected, matching the single-append discard
// semantics the file store had before this layer existed. If that truncate
// itself fails, the rejected bytes are stuck on disk: the writer corrupts
// the rejected batch's head (so a reopen scan drops the tail at the batch
// base instead of parsing rejected records as valid) and poisons itself —
// every later Append fails — rather than appending over bytes whose
// durable state is unknowable.
package wal

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// Process-wide observability mirrors of the per-writer counters, plus the
// latency/shape histograms only the global registry tracks. Registered
// once; every Writer in the process feeds the same series (provd runs one
// writer per shard — the aggregate is what an operator wants).
var (
	mAppends       = obs.Default().Counter("prov_wal_appends_total", "Records accepted by WAL writers.")
	mBatches       = obs.Default().Counter("prov_wal_batches_total", "Committed group-commit batches (write syscalls).")
	mFsyncs        = obs.Default().Counter("prov_wal_fsyncs_total", "Fsyncs issued by WAL writers.")
	mBytes         = obs.Default().Counter("prov_wal_bytes_total", "Payload bytes committed to WAL logs.")
	mBatchRecords  = obs.Default().ValueHistogram("prov_wal_batch_records", "Records coalesced per committed batch.")
	mCommitSeconds = obs.Default().Histogram("prov_wal_commit_seconds", "Batch commit latency: positional write plus fsync.")
)

// SyncPolicy selects what Append guarantees when it returns.
type SyncPolicy int

const (
	// SyncNone: the record reached the OS (one buffered write per batch);
	// durability is left to the kernel. The cheapest mode.
	SyncNone SyncPolicy = iota
	// SyncEachAppend: every record is its own batch with its own fsync —
	// the pre-group-commit durable mode, kept for comparison and for
	// single-writer workloads that want minimum commit latency.
	SyncEachAppend
	// SyncBatch: group commit — one fsync per coalesced batch; Append
	// returns once the batch containing its record is on stable storage.
	SyncBatch
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncEachAppend:
		return "each"
	case SyncBatch:
		return "batch"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a Writer. The zero value is a valid SyncNone writer.
type Options struct {
	// Policy selects the durability guarantee of Append.
	Policy SyncPolicy
	// MaxBatchBytes seals a batch early once its buffered records reach
	// this size (default 1 MiB), bounding commit latency and memory under
	// very large records.
	MaxBatchBytes int
	// FlushDelay, when positive, makes a SyncBatch leader whose batch
	// still holds a single record at its commit turn wait this long for
	// joiners before committing. The default 0 relies purely on
	// commit-latency overlap, which never delays a lone writer.
	FlushDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	return o
}

// Metrics counts a writer's activity since creation.
type Metrics struct {
	Appends uint64 // records accepted
	Batches uint64 // committed batches (== write syscalls)
	Syncs   uint64 // fsyncs issued
	Bytes   uint64 // payload bytes committed
}

// batch is one group of records committed together.
type batch struct {
	seq    uint64 // commit-order ticket
	base   int64  // file offset of buf[0]
	buf    []byte
	n      int           // records joined
	sealed bool          // no further joins
	full   chan struct{} // closed at seal (wakes a leader in its flush delay)
	done   chan struct{} // closed when committed or failed
	err    error         // set before done closes; nil on success
}

// Writer appends records to one log file with group commit. Safe for
// concurrent use. The writer owns the file tail: all writes are positional
// (WriteAt), so readers may concurrently ReadAt committed regions of the
// same file handle.
type Writer struct {
	f   *os.File
	opt Options

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when the commit ticket advances
	cur     *batch     // open batch accepting joins, nil when none
	pending []*batch   // created, uncommitted batches in seq order
	nextOff int64      // file offset the next record will land at
	nextSeq uint64     // ticket for the next batch
	commits uint64     // next ticket allowed to commit
	closed  bool
	// poisoned is set when the truncate after a failed commit itself
	// fails: the file then still holds rejected bytes past nextOff, and
	// retrying appends over them could let a crash-recovery scan read a
	// stale rejected record as valid (resurrection). Every later Append
	// fails instead.
	poisoned error

	appends, batches, syncs, bytes uint64
}

// NewWriter wraps an open log file whose committed content ends at off.
// The writer assumes exclusive ownership of the file tail from off on.
func NewWriter(f *os.File, off int64, opt Options) *Writer {
	w := &Writer{f: f, opt: opt.withDefaults(), nextOff: off}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Policy reports the writer's sync policy.
func (w *Writer) Policy() SyncPolicy { return w.opt.Policy }

// Offset reports the file offset the next accepted record will start at.
func (w *Writer) Offset() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextOff
}

// Metrics snapshots the writer's counters.
func (w *Writer) Metrics() Metrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Metrics{Appends: w.appends, Batches: w.batches, Syncs: w.syncs, Bytes: w.bytes}
}

// Append commits one record and returns the file offset it was written at.
// Under SyncBatch/SyncEachAppend the record is on stable storage when
// Append returns; under SyncNone it has reached the OS. Concurrent Appends
// to the same writer coalesce into shared batches.
func (w *Writer) Append(rec []byte) (int64, error) {
	if len(rec) == 0 {
		return 0, fmt.Errorf("wal: empty record")
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: writer closed")
	}
	if w.poisoned != nil {
		err := w.poisoned
		w.mu.Unlock()
		return 0, err
	}
	b := w.cur
	lead := false
	if b == nil || b.sealed || (w.opt.Policy == SyncEachAppend && len(b.buf) > 0) {
		b = &batch{
			seq:  w.nextSeq,
			base: w.nextOff,
			full: make(chan struct{}),
			done: make(chan struct{}),
		}
		w.nextSeq++
		w.cur = b
		w.pending = append(w.pending, b)
		lead = true // the creator leads its batch
	}
	off := b.base + int64(len(b.buf))
	b.buf = append(b.buf, rec...)
	w.nextOff += int64(len(rec))
	w.appends++
	b.n++
	mAppends.Inc()
	if len(b.buf) >= w.opt.MaxBatchBytes && !b.sealed {
		w.sealLocked(b)
	}
	if !lead {
		// Follower: the batch's creator drives the commit.
		w.mu.Unlock()
		<-b.done
		return off, b.err
	}

	// Leader: wait for our turn in the commit order. While we wait —
	// typically for the predecessor batch's fsync — followers keep
	// joining our batch; that overlap is where group commit's batching
	// comes from. A predecessor's failure fails us too (err set).
	for w.commits != b.seq && b.err == nil {
		w.cond.Wait()
	}
	if b.err != nil {
		w.mu.Unlock()
		return 0, b.err
	}
	if !b.sealed && w.opt.Policy == SyncBatch && w.opt.FlushDelay > 0 && len(b.buf) == len(rec) {
		// Still a lone record at our turn: the medium commits faster than
		// writers arrive. Give joiners one bounded window.
		w.mu.Unlock()
		t := time.NewTimer(w.opt.FlushDelay)
		select {
		case <-b.full:
		case <-t.C:
		}
		t.Stop()
		w.mu.Lock()
	}
	w.sealLocked(b)
	buf, base, nrec := b.buf, b.base, b.n
	w.mu.Unlock()

	// Commit outside the lock: one positional write, one optional fsync.
	commitStart := obs.Now()
	_, err := w.f.WriteAt(buf, base)
	if err == nil && w.opt.Policy != SyncNone {
		err = w.f.Sync()
	}

	w.mu.Lock()
	if err != nil {
		if terr := w.f.Truncate(base); terr != nil {
			// The rejected bytes cannot be removed — and after a failed
			// sync they may well be on disk, where a reopen scan would
			// parse a fully-written rejected batch as valid records.
			// Corrupt the batch head (best effort) so the scan stops at
			// base and drops the rejected tail instead, then refuse all
			// further appends: the file's durable state is unknowable. If
			// this write fails too, the residual window is a rejected
			// batch surviving to reopen on a device that failed sync,
			// truncate and write in a row.
			_, _ = w.f.WriteAt([]byte{0}, base)
			w.poisoned = fmt.Errorf("wal: writer unusable: truncate after failed commit: %w (commit error: %v)", terr, err)
		}
		w.failLocked(b, err)
		w.mu.Unlock()
		return 0, b.err
	}
	w.batches++
	w.bytes += uint64(len(buf))
	mBatches.Inc()
	mBytes.Add(uint64(len(buf)))
	mBatchRecords.ObserveValue(uint64(nrec))
	mCommitSeconds.ObserveSince(commitStart)
	if w.opt.Policy != SyncNone {
		w.syncs++
		mFsyncs.Inc()
	}
	w.commits = b.seq + 1
	w.pending = w.pending[1:] // b is always the head: commits are in seq order
	close(b.done)
	w.cond.Broadcast()
	w.mu.Unlock()
	return off, nil
}

// sealLocked closes a batch to further joins; the caller holds w.mu.
func (w *Writer) sealLocked(b *batch) {
	if b.sealed {
		return
	}
	b.sealed = true
	close(b.full)
	if w.cur == b {
		w.cur = nil
	}
}

// failLocked fails a batch after an I/O error, plus every batch queued
// behind it (their offsets assumed the truncated bytes), and resets the
// writer to the failed batch's base offset. The caller holds w.mu and has
// already truncated the file.
func (w *Writer) failLocked(b *batch, err error) {
	b.err = fmt.Errorf("wal: commit batch at offset %d: %w", b.base, err)
	for _, p := range w.pending {
		if p.seq <= b.seq {
			continue
		}
		p.err = fmt.Errorf("wal: predecessor batch failed: %w", err)
		w.sealLocked(p)
		close(p.done)
	}
	close(b.done)
	w.pending = w.pending[:0]
	w.cur = nil
	w.commits = w.nextSeq // every created batch is resolved
	w.nextOff = b.base
	w.cond.Broadcast()
}

// Close drains in-flight batches and marks the writer closed. It does not
// close the file, which the owning store shares with its readers.
func (w *Writer) Close() error {
	w.mu.Lock()
	for len(w.pending) > 0 {
		w.cond.Wait()
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}
