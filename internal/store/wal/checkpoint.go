package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoint files: a JSON payload framed by a one-line header carrying a
// CRC32 of the payload, written atomically (temp file + fsync + rename).
// A checkpoint is advisory state — the log remains authoritative — so
// loaders treat a missing, torn or corrupt checkpoint as "no checkpoint"
// and fall back to a full log scan rather than failing the open.

// checkpointMagic guards against loading a file that is not a checkpoint.
const checkpointMagic = "provckpt1"

// SaveCheckpoint atomically writes payload (JSON-encoded) to path with an
// integrity header. The file is fsynced before the rename and the
// directory after it, so a crash leaves either the old checkpoint or the
// new one, never a torn mix.
func SaveCheckpoint(path string, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %08x %d\n", checkpointMagic, crc32.ChecksumIEEE(body), len(body))
	buf.Write(body)

	dir := filepath.Dir(path)
	// Sweep temp files a crashed earlier save left behind — the deferred
	// remove below only runs in-process, so without this a repeatedly
	// crashing daemon accumulates orphans next to the log. A concurrent
	// save of the same path can lose its temp to the sweep and fail its
	// rename, which is harmless: the surviving save installs a complete
	// checkpoint.
	if stale, gerr := filepath.Glob(path + ".tmp-*"); gerr == nil {
		for _, p := range stale {
			_ = os.Remove(p)
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into dst.
// ok=false (with a nil error) means no usable checkpoint exists — absent,
// torn or corrupt — and the caller should rebuild from the log instead.
func LoadCheckpoint(path string, dst any) (ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return false, nil
	}
	var magic string
	var sum uint32
	var size int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %x %d", &magic, &sum, &size); err != nil || magic != checkpointMagic {
		return false, nil
	}
	body := data[nl+1:]
	if len(body) != size || crc32.ChecksumIEEE(body) != sum {
		return false, nil
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return false, nil
	}
	return true, nil
}

// RemoveCheckpoint deletes a checkpoint file if present (tests and tools
// forcing a cold reopen).
func RemoveCheckpoint(path string) error {
	err := os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
