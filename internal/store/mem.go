package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/provenance"
)

// MemStore keeps provenance in native maps with adjacency indexes: the
// fastest backend and the reference implementation for the others.
type MemStore struct {
	mu        sync.RWMutex
	logs      map[string]*provenance.RunLog
	order     []string
	artifacts map[string]*provenance.Artifact
	execs     map[string]*provenance.Execution
	adj       adjacency
	bytes     int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		logs:      map[string]*provenance.RunLog{},
		artifacts: map[string]*provenance.Artifact{},
		execs:     map[string]*provenance.Execution{},
		adj:       newAdjacency(),
	}
}

var _ Store = (*MemStore)(nil)
var _ LocalCloser = (*MemStore)(nil)

// Name implements Store.
func (s *MemStore) Name() string { return "mem" }

// PutRunLog implements Store.
func (s *MemStore) PutRunLog(l *provenance.RunLog) error {
	if err := l.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.logs[l.Run.ID]; dup {
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	s.logs[l.Run.ID] = l
	s.order = append(s.order, l.Run.ID)
	for _, a := range l.Artifacts {
		s.artifacts[a.ID] = a
		s.bytes += int64(len(a.ID)+len(a.Type)+len(a.ContentHash)+len(a.Preview)) + 16
	}
	for _, e := range l.Executions {
		s.execs[e.ID] = e
		s.bytes += int64(len(e.ID)+len(e.ModuleID)+len(e.ModuleType)) + 48
	}
	s.adj.fold(l.Events)
	s.bytes += int64(len(l.Events)) * 48
	s.bytes += int64(len(l.Annotations)) * 64
	return nil
}

// RunLog implements Store.
func (s *MemStore) RunLog(runID string) (*provenance.RunLog, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.logs[runID]
	if !ok {
		return nil, fmt.Errorf("%w: run %q", ErrNotFound, runID)
	}
	return l, nil
}

// Runs implements Store.
func (s *MemStore) Runs() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...), nil
}

// Artifact implements Store.
func (s *MemStore) Artifact(id string) (*provenance.Artifact, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.artifacts[id]
	if !ok {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	return a, nil
}

// Execution implements Store.
func (s *MemStore) Execution(id string) (*provenance.Execution, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.execs[id]
	if !ok {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	return e, nil
}

// GeneratorOf implements Store.
func (s *MemStore) GeneratorOf(artifactID string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.adj.genBy[artifactID]
	if !ok {
		return "", fmt.Errorf("%w: generator of %q", ErrNotFound, artifactID)
	}
	return g, nil
}

// ConsumersOf implements Store.
func (s *MemStore) ConsumersOf(artifactID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedUnique(s.adj.consumers[artifactID]), nil
}

// Used implements Store.
func (s *MemStore) Used(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedUnique(s.adj.used[execID]), nil
}

// Generated implements Store.
func (s *MemStore) Generated(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedUnique(s.adj.generated[execID]), nil
}

// kindLocked classifies an ID for traversal; the caller holds at least a
// read lock.
func (s *MemStore) kindLocked(id string) entityKind {
	if _, isArt := s.artifacts[id]; isArt {
		return kindArtifact
	}
	if _, isExec := s.execs[id]; isExec {
		return kindExecution
	}
	return kindUnknown
}

// neighborsLocked resolves one entity's frontier neighbors from the shared
// adjacency core; the caller holds at least a read lock.
func (s *MemStore) neighborsLocked(id string, dir Direction) ([]string, bool) {
	return s.adj.neighbors(id, dir, s.kindLocked(id))
}

// Expand implements Store: the whole frontier is served under one RLock.
func (s *MemStore) Expand(ids []string, dir Direction) (map[string][]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]string, len(ids))
	for _, id := range ids {
		if ns, ok := s.neighborsLocked(id, dir); ok {
			out[id] = ns
		}
	}
	return out, nil
}

// Closure implements Store: the full BFS runs under a single RLock with
// direct map lookups, no per-edge locking.
func (s *MemStore) Closure(seed string, dir Direction) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return bfsClosure(seed, dir, s.neighborsLocked)
}

// CloseLocal implements LocalCloser: the whole local fixpoint runs under
// one RLock (the sharded router's closure-pushdown primitive).
func (s *MemStore) CloseLocal(seeds []string, dir Direction, skip func(string) bool, buf []LocalNeighbors) ([]LocalNeighbors, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return localCloseBFS(seeds, dir, skip, s.neighborsLocked, buf), nil
}

// Stats implements Store.
func (s *MemStore) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Runs: len(s.logs), Artifacts: len(s.artifacts), Executions: len(s.execs), Bytes: s.bytes}
	for _, l := range s.logs {
		st.Events += len(l.Events)
		st.Annotations += len(l.Annotations)
	}
	return st, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

func sortedUnique(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	dedup := out[:1]
	for _, s := range out[1:] {
		if s != dedup[len(dedup)-1] {
			dedup = append(dedup, s)
		}
	}
	return dedup
}
