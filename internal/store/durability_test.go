package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/provenance"
)

// TestAutoCheckpointDrain pins the close-path contract: Drain must wait
// for an in-flight background checkpoint (so owners can close the files
// it touches) and suppress any checkpoint ticked afterwards.
func TestAutoCheckpointDrain(t *testing.T) {
	ac := NewAutoCheckpoint(1)
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	ac.Tick(0, func() error {
		runs.Add(1)
		close(started)
		<-release
		return nil
	})
	<-started

	drained := make(chan struct{})
	go func() {
		ac.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a checkpoint was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight checkpoint finished")
	}

	ac.Tick(0, func() error { runs.Add(1); return nil })
	time.Sleep(20 * time.Millisecond)
	if got := runs.Load(); got != 1 {
		t.Fatalf("checkpoint ran after Drain: %d runs, want 1", got)
	}
	ac.Drain() // idempotent
}

// TestAutoCheckpointDrainNil asserts Drain is safe on the nil trigger a
// router built without checkpoint configuration carries.
func TestAutoCheckpointDrainNil(t *testing.T) {
	var ac *AutoCheckpoint
	ac.Drain()
	ac.Tick(0, func() error { return nil })
}

// TestAutoCheckpointByteTrigger pins the EveryBytes policy: the trigger
// fires once the appended bytes cross the threshold, resets its counter,
// and fires again only after another threshold's worth of bytes.
func TestAutoCheckpointByteTrigger(t *testing.T) {
	ac := NewAutoCheckpointPolicy(CheckpointPolicy{EveryBytes: 100})
	var runs atomic.Int32
	fired := make(chan struct{}, 8)
	ckpt := func() error { runs.Add(1); fired <- struct{}{}; return nil }

	ac.Tick(60, ckpt)
	select {
	case <-fired:
		t.Fatal("fired below the byte threshold")
	case <-time.After(20 * time.Millisecond):
	}
	ac.Tick(60, ckpt) // 120 >= 100: fires and resets
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("byte trigger did not fire at the threshold")
	}
	ac.Tick(60, ckpt) // fresh accumulation: below threshold again
	select {
	case <-fired:
		t.Fatal("fired again without a full threshold of new bytes")
	case <-time.After(20 * time.Millisecond):
	}
	ac.Tick(60, ckpt)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("byte trigger did not fire on the second threshold")
	}
	ac.Drain()
	if got := runs.Load(); got != 2 {
		t.Fatalf("checkpoints = %d, want 2", got)
	}
}

// TestAutoCheckpointIntervalTrigger pins the Interval policy: a dirty
// store checkpoints within the interval, and an idle one (no ingests
// since the last snapshot) never re-arms the clock.
func TestAutoCheckpointIntervalTrigger(t *testing.T) {
	ac := NewAutoCheckpointPolicy(CheckpointPolicy{Interval: 20 * time.Millisecond})
	var runs atomic.Int32
	fired := make(chan struct{}, 8)
	ckpt := func() error { runs.Add(1); fired <- struct{}{}; return nil }

	ac.Tick(1, ckpt)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("interval trigger did not fire after an ingest")
	}
	// No further ingests: the timer must not re-arm on its own.
	time.Sleep(80 * time.Millisecond)
	if got := runs.Load(); got != 1 {
		t.Fatalf("idle store checkpointed on a clock: %d runs, want 1", got)
	}
	ac.Tick(1, ckpt)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("interval trigger did not re-arm after a new ingest")
	}
	ac.Drain()
}

// TestFileStoreCheckpointBytesPolicy drives the byte policy end-to-end:
// a file store opened with CheckpointBytes writes a checkpoint on its
// own once enough log bytes accumulate.
func TestFileStoreCheckpointBytesPolicy(t *testing.T) {
	s, err := OpenFileStoreWith(t.TempDir(), FileOptions{CheckpointBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	log := &provenance.RunLog{Run: provenance.Run{ID: "r1", WorkflowID: "wf", Status: provenance.StatusOK}}
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.LastCheckpoint(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written under the byte policy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFileStoreConcurrentDuplicateRun hammers the duplicate-ID guard
// under group commit: retries of one run ID race fillers that keep the
// fold watermark busy, and exactly one attempt may ever commit. The
// reservation must be held until the record is folded into offsets — a
// writer parked at the watermark has committed its record but not yet
// made it visible to the offsets guard, so releasing the reservation
// earlier lets a concurrent retry pass both checks and store the run
// twice.
func TestFileStoreConcurrentDuplicateRun(t *testing.T) {
	mk := func(run string, n int) *provenance.RunLog {
		art := fmt.Sprintf("%s-art-%d", run, n)
		exec := fmt.Sprintf("%s-exec-%d", run, n)
		return &provenance.RunLog{
			Run:        provenance.Run{ID: run, WorkflowID: "wf", Status: provenance.StatusOK},
			Artifacts:  []*provenance.Artifact{{ID: art, RunID: run, Type: "blob"}},
			Executions: []*provenance.Execution{{ID: exec, RunID: run, ModuleID: "m", ModuleType: "T", Status: provenance.StatusOK}},
			Events: []provenance.Event{
				{Seq: 1, RunID: run, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: art},
			},
		}
	}
	const iters, dups, fillers = 40, 4, 4
	for iter := 0; iter < iters; iter++ {
		s, err := OpenFileStoreWith(t.TempDir(), FileOptions{Durability: DurabilityGroup})
		if err != nil {
			t.Fatal(err)
		}
		var successes atomic.Int32
		var wg sync.WaitGroup
		for g := 0; g < dups; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if err := s.PutRunLog(mk("dup", g)); err == nil {
					successes.Add(1)
				}
			}(g)
		}
		for g := 0; g < fillers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if err := s.PutRunLog(mk(fmt.Sprintf("fill-%d", g), g)); err != nil {
					t.Error(err)
				}
			}(g)
		}
		wg.Wait()
		if got := successes.Load(); got != 1 {
			t.Fatalf("iter %d: %d concurrent puts of the same run ID succeeded, want 1", iter, got)
		}
		runs, err := s.Runs()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, id := range runs {
			if seen[id] {
				t.Fatalf("iter %d: run %q stored twice: %v", iter, id, runs)
			}
			seen[id] = true
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
