package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/provenance"
)

// TestAutoCheckpointDrain pins the close-path contract: Drain must wait
// for an in-flight background checkpoint (so owners can close the files
// it touches) and suppress any checkpoint ticked afterwards.
func TestAutoCheckpointDrain(t *testing.T) {
	ac := NewAutoCheckpoint(1)
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	ac.Tick(func() error {
		runs.Add(1)
		close(started)
		<-release
		return nil
	})
	<-started

	drained := make(chan struct{})
	go func() {
		ac.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a checkpoint was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight checkpoint finished")
	}

	ac.Tick(func() error { runs.Add(1); return nil })
	time.Sleep(20 * time.Millisecond)
	if got := runs.Load(); got != 1 {
		t.Fatalf("checkpoint ran after Drain: %d runs, want 1", got)
	}
	ac.Drain() // idempotent
}

// TestAutoCheckpointDrainNil asserts Drain is safe on the nil trigger a
// router built without checkpoint configuration carries.
func TestAutoCheckpointDrainNil(t *testing.T) {
	var ac *AutoCheckpoint
	ac.Drain()
	ac.Tick(func() error { return nil })
}

// TestFileStoreConcurrentDuplicateRun hammers the duplicate-ID guard
// under group commit: retries of one run ID race fillers that keep the
// fold watermark busy, and exactly one attempt may ever commit. The
// reservation must be held until the record is folded into offsets — a
// writer parked at the watermark has committed its record but not yet
// made it visible to the offsets guard, so releasing the reservation
// earlier lets a concurrent retry pass both checks and store the run
// twice.
func TestFileStoreConcurrentDuplicateRun(t *testing.T) {
	mk := func(run string, n int) *provenance.RunLog {
		art := fmt.Sprintf("%s-art-%d", run, n)
		exec := fmt.Sprintf("%s-exec-%d", run, n)
		return &provenance.RunLog{
			Run:        provenance.Run{ID: run, WorkflowID: "wf", Status: provenance.StatusOK},
			Artifacts:  []*provenance.Artifact{{ID: art, RunID: run, Type: "blob"}},
			Executions: []*provenance.Execution{{ID: exec, RunID: run, ModuleID: "m", ModuleType: "T", Status: provenance.StatusOK}},
			Events: []provenance.Event{
				{Seq: 1, RunID: run, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: art},
			},
		}
	}
	const iters, dups, fillers = 40, 4, 4
	for iter := 0; iter < iters; iter++ {
		s, err := OpenFileStoreWith(t.TempDir(), FileOptions{Durability: DurabilityGroup})
		if err != nil {
			t.Fatal(err)
		}
		var successes atomic.Int32
		var wg sync.WaitGroup
		for g := 0; g < dups; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if err := s.PutRunLog(mk("dup", g)); err == nil {
					successes.Add(1)
				}
			}(g)
		}
		for g := 0; g < fillers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if err := s.PutRunLog(mk(fmt.Sprintf("fill-%d", g), g)); err != nil {
					t.Error(err)
				}
			}(g)
		}
		wg.Wait()
		if got := successes.Load(); got != 1 {
			t.Fatalf("iter %d: %d concurrent puts of the same run ID succeeded, want 1", iter, got)
		}
		runs, err := s.Runs()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, id := range runs {
			if seen[id] {
				t.Fatalf("iter %d: run %q stored twice: %v", iter, id, runs)
			}
			seen[id] = true
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
