package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collab"
	"repro/internal/collab/api"
	"repro/internal/faultinject"
	"repro/internal/store"
)

// serveFailover exposes a store over the full v1 face with a failover
// coordinator wired — the provd deployment shape, for either role.
func serveFailover(t *testing.T, st store.Store, node *Node, f *Follower) *httptest.Server {
	t.Helper()
	src, err := NewSource(st)
	if err != nil {
		t.Fatal(err)
	}
	opts := collab.HandlerOptions{
		Source:   src,
		Failover: node,
		Status: func() api.ReplicationStatus {
			var rs api.ReplicationStatus
			if f != nil && node.Role() == api.RoleFollower {
				rs = f.Status()
			} else {
				rs = src.Status(nil, nil)
			}
			rs.Epoch, rs.Fenced = node.Epoch(), node.Fenced()
			return rs
		},
	}
	if f != nil {
		opts.Lag = f.Lag
	}
	srv := httptest.NewServer(collab.NewHandlerWith(collab.NewRepository(st), opts))
	t.Cleanup(srv.Close)
	return srv
}

// postWrite sends a minimal store write and returns the decoded status
// and error code — the middleware's verdict is all these tests read.
func postWrite(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/workflows", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.Error
	_ = readJSON(resp, &env)
	return resp.StatusCode, env.Code
}

func readJSON(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestNodeEpochPersistence pins the fencing state's durability: a
// primary starts at epoch 1, a fencing observation persists, and both
// survive a restart.
func TestNodeEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	n, err := NewNode(dir, api.RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Epoch() != 1 || n.Fenced() {
		t.Fatalf("fresh primary: epoch=%d fenced=%v", n.Epoch(), n.Fenced())
	}
	if _, err := os.Stat(filepath.Join(dir, EpochFileName)); err != nil {
		t.Fatalf("fresh primary did not persist its epoch: %v", err)
	}

	// Lower and equal epochs are no-ops; a higher one fences.
	if n.Observe(1) || n.Observe(0) {
		t.Fatal("observing a non-higher epoch fenced the node")
	}
	if !n.Observe(5) {
		t.Fatal("observing a higher epoch did not fence the primary")
	}
	if n.Epoch() != 5 || !n.Fenced() {
		t.Fatalf("after Observe(5): epoch=%d fenced=%v", n.Epoch(), n.Fenced())
	}
	// Re-observing the same epoch does not re-fence.
	if n.Observe(5) {
		t.Fatal("re-observing the adopted epoch fenced again")
	}

	// A fenced primary stays fenced across restart — it must not come
	// back up accepting writes just because it rebooted.
	n2, err := NewNode(dir, api.RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Epoch() != 5 || !n2.Fenced() {
		t.Fatalf("reloaded node: epoch=%d fenced=%v, want 5/fenced", n2.Epoch(), n2.Fenced())
	}

	// A dir-less node works in memory.
	m, err := NewNode("", api.RolePrimary, nil)
	if err != nil || m.Epoch() != 1 {
		t.Fatalf("memory node: %v, epoch=%d", err, m.Epoch())
	}

	// Promoting a non-follower is a conflict, surfaced as a RemoteError
	// so the HTTP layer keeps the status without importing this package.
	if _, err := n2.Promote(context.Background()); err != ErrNotFollower {
		t.Fatalf("promote primary = %v, want ErrNotFollower", err)
	}
}

// TestPromotionCutover drives the full failover sequence over HTTP: a
// replicating pair, promote the follower, old primary fenced, writes
// move, and a fresh follower replicates from the new primary.
func TestPromotionCutover(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	ps, err := store.OpenFileStoreWith(pdir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	nodeA, err := NewNode(pdir, api.RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	srvA := serveFailover(t, ps, nodeA, nil)

	for i := 0; i < 25; i++ {
		if err := ps.PutRunLog(mkRun(fmt.Sprintf("run-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}

	f, err := Open(Options{Dir: fdir, Primary: srvA.URL, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := NewNode(fdir, api.RoleFollower, f)
	if err != nil {
		t.Fatal(err)
	}
	srvB := serveFailover(t, f.Store(), nodeB, f)
	f.Start()
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// Pre-cutover: B is read-only, A accepts writes (the malformed body
	// reaches validation, proving it passed the replica guard).
	if code, ec := postWrite(t, srvB.URL); code != http.StatusForbidden || ec != api.CodeReadOnlyReplica {
		t.Fatalf("follower write = %d/%s", code, ec)
	}
	if code, _ := postWrite(t, srvA.URL); code != http.StatusBadRequest {
		t.Fatalf("primary write = %d, want it past the replica guard", code)
	}

	// Promote over the API — the provctl path.
	cb := api.NewClient(srvB.URL, nil)
	pr, err := cb.Promote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Role != api.RolePrimary || pr.Epoch != 2 || pr.DrainErr != "" {
		t.Fatalf("promote = %+v", pr)
	}
	if !pr.OldPrimaryFenced || pr.FenceErr != "" {
		t.Fatalf("old primary not fenced at cutover: %+v", pr)
	}
	if nodeB.Role() != api.RolePrimary || nodeB.Epoch() != 2 || nodeB.Fenced() {
		t.Fatalf("nodeB after promote: role=%s epoch=%d fenced=%v", nodeB.Role(), nodeB.Epoch(), nodeB.Fenced())
	}
	if !nodeA.Fenced() || nodeA.Epoch() != 2 {
		t.Fatalf("nodeA after promote: epoch=%d fenced=%v", nodeA.Epoch(), nodeA.Fenced())
	}

	// Split-brain guard: the old primary bounces writes, the new one
	// accepts them, and a request still acting on epoch 1 is rejected.
	if code, ec := postWrite(t, srvA.URL); code != http.StatusForbidden || ec != api.CodeFenced {
		t.Fatalf("fenced primary write = %d/%s", code, ec)
	}
	if code, _ := postWrite(t, srvB.URL); code != http.StatusBadRequest {
		t.Fatalf("new primary write = %d, want it past the replica guard", code)
	}
	req, err := http.NewRequest(http.MethodGet, srvB.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderReplicationEpoch, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env api.Error
	_ = readJSON(resp, &env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || env.Code != api.CodeStaleEpoch {
		t.Fatalf("stale-epoch read on new primary = %d/%s", resp.StatusCode, env.Code)
	}

	// The promoted node writes to its own store and ships its own log: a
	// fresh follower off srvB converges byte-identically, at epoch 2.
	if err := f.Store().PutRunLog(mkRun("post-cutover", "run-003-art")); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(Options{Dir: t.TempDir(), Primary: srvB.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.CatchUp(); err != nil {
		t.Fatal(err)
	}
	assertSameStore(t, f.Store(), f2.Store(), []string{"run-003-art", "post-cutover-art"})
	if e := f2.Client().Epoch(); e != 2 {
		t.Fatalf("new follower's observed epoch = %d, want 2", e)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPartitionsAndPromotion is the fault-injection property test:
// a replicating pair under a deterministic schedule of injected errors,
// latency, truncated responses and full partitions, with concurrent
// primary writes — after healing, the follower must converge to a
// byte-identical log; after a mid-partition promotion, the fleet must
// end with exactly one writable primary and the shipped prefix intact.
func TestChaosPartitionsAndPromotion(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { chaosScenario(t, seed) })
	}
}

func chaosScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pdir, fdir := t.TempDir(), t.TempDir()
	ps, err := store.OpenFileStoreWith(pdir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	nodeA, err := NewNode(pdir, api.RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	srvA := serveFailover(t, ps, nodeA, nil)

	var arts []string
	put := func(st store.Store, id string) {
		var inputs []string
		if len(arts) > 0 && rng.Intn(3) > 0 {
			inputs = append(inputs, arts[rng.Intn(len(arts))])
		}
		if err := st.PutRunLog(mkRun(id, inputs...)); err != nil {
			t.Fatal(err)
		}
		arts = append(arts, id+"-art")
	}
	for i := 0; i < 20; i++ {
		put(ps, fmt.Sprintf("seed-%03d", i))
	}

	ft := faultinject.New(http.DefaultTransport, faultinject.Options{
		Seed:         seed,
		ErrorRate:    0.15,
		LatencyRate:  0.3,
		Latency:      500 * time.Microsecond,
		TruncateRate: 0.1,
	})
	// Error injection can fail any exchange, including the ones Open
	// needs; a real operator retries, so does the test. A partially
	// bootstrapped log resumes where it stopped.
	var f *Follower
	for attempt := 0; ; attempt++ {
		f, err = Open(Options{
			Dir: fdir, Primary: srvA.URL, Client: ft.Client(),
			Poll: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
			RequestTimeout: 2 * time.Second, BackoffSeed: seed,
			MaxBatchBytes: 2048,
		})
		if err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("follower never opened under injection: %v", err)
		}
	}
	nodeB, err := NewNode(fdir, api.RoleFollower, f)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()

	// Concurrent load: the primary ingests while the link flaps through
	// full partitions, injected errors, latency and truncated bodies.
	var wg sync.WaitGroup
	wg.Add(1)
	stopChaos := make(chan struct{})
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(seed + 1))
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(2+r.Intn(8)) * time.Millisecond):
			}
			ft.Partition()
			select {
			case <-stopChaos:
				ft.Heal()
				return
			case <-time.After(time.Duration(2+r.Intn(8)) * time.Millisecond):
			}
			ft.Heal()
		}
	}()
	for i := 0; i < 80; i++ {
		put(ps, fmt.Sprintf("chaos-%03d", i))
		if i%16 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	close(stopChaos)
	wg.Wait()

	// Healed: the follower must converge despite injection staying on.
	var caught bool
	for attempt := 0; attempt < 300; attempt++ {
		if err := f.CatchUp(); err == nil {
			if _, behind := f.Lag(); behind == 0 {
				caught = true
				break
			}
		}
	}
	if !caught {
		t.Fatal("follower never converged after healing")
	}
	pbytes, err := os.ReadFile(filepath.Join(pdir, store.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	fbytes, err := os.ReadFile(filepath.Join(fdir, store.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if string(pbytes) != string(fbytes) {
		t.Fatalf("healed follower log diverged: primary %d bytes, follower %d bytes", len(pbytes), len(fbytes))
	}
	probes := []string{arts[rng.Intn(len(arts))], arts[rng.Intn(len(arts))], arts[0]}
	assertSameStore(t, ps, f.Store(), probes)
	st := ft.Stats()
	if st.Errors == 0 || st.Truncations == 0 || st.Partitioned == 0 {
		t.Fatalf("chaos schedule was degenerate: %+v", st)
	}

	// Partition for good and write on the primary: bytes past the
	// replication boundary, lost by design (no quorum commit — the log
	// records which, so nothing is silently wrong).
	ft.Partition()
	for i := 0; i < 3; i++ {
		put(ps, fmt.Sprintf("stranded-%03d", i))
	}

	// Promote the unreachable follower: the drain cannot complete, the
	// cutover must anyway.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	pr, err := nodeB.Promote(ctx)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Role != api.RolePrimary || pr.Epoch != 2 {
		t.Fatalf("partitioned promote = %+v", pr)
	}
	if pr.DrainErr == "" || pr.FenceErr == "" {
		t.Fatalf("partitioned promote should record drain and fence failures: %+v", pr)
	}
	// The shipped prefix is intact: everything B applied is a byte-exact
	// primary prefix — no acked-and-replicated write was lost or mangled.
	fb2, err := os.ReadFile(filepath.Join(fdir, store.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if pr.AppliedBytes > int64(len(fb2)) {
		t.Fatalf("applied=%d exceeds follower log %d", pr.AppliedBytes, len(fb2))
	}
	pb2, err := os.ReadFile(filepath.Join(pdir, store.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if string(fb2[:pr.AppliedBytes]) != string(pb2[:pr.AppliedBytes]) {
		t.Fatalf("follower log is not a primary prefix at the promotion boundary %d", pr.AppliedBytes)
	}

	// The new primary accepts writes immediately.
	put(f.Store(), "after-cutover")

	// Heal: the first epoch-stamped exchange that reaches the old
	// primary fences it. No split-brain: exactly one node takes writes.
	ft.Heal()
	var fenced bool
	for attempt := 0; attempt < 300; attempt++ {
		rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
		rs, err := f.Client().ReplicationStatusContext(rctx)
		rcancel()
		if err == nil && rs.Fenced {
			fenced = true
			break
		}
	}
	if !fenced {
		t.Fatal("old primary never fenced after healing")
	}
	if !nodeA.Fenced() || nodeA.Epoch() != 2 {
		t.Fatalf("old primary state: epoch=%d fenced=%v", nodeA.Epoch(), nodeA.Fenced())
	}
	if code, ec := postWrite(t, srvA.URL); code != http.StatusForbidden || ec != api.CodeFenced {
		t.Fatalf("old primary write after heal = %d/%s", code, ec)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
