package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/collab/api"
	"repro/internal/obs"
)

// EpochFileName is the per-node fencing state file, kept next to the
// store's log in the node's data directory.
const EpochFileName = "replication-epoch.json"

var (
	mPromotions = obs.Default().Counter("prov_failover_promotions_total", "Follower→primary promotions performed by this process.")
	mFencings   = obs.Default().Counter("prov_failover_fences_total", "Times this node fenced itself read-only after observing a higher epoch.")
)

// ErrNotFollower rejects promotion of a node that is not currently a
// follower (already primary, or standalone). Typed as *api.RemoteError
// so the HTTP layer can surface the conflict status without importing
// this package (which would cycle through its tests).
var ErrNotFollower = &api.RemoteError{
	HTTPStatus: http.StatusConflict, Code: api.CodeConflict,
	Message: "replica: promote: node is not a follower",
}

// ErrPromoting rejects a promotion that races an in-flight one.
var ErrPromoting = &api.RemoteError{
	HTTPStatus: http.StatusConflict, Code: api.CodeConflict,
	Message: "replica: promotion already in progress",
}

// epochState is the on-disk shape of EpochFileName.
type epochState struct {
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced"`
}

// Node is a provd's failover coordinator: the fencing epoch, the
// current role (which promotion changes at runtime), and the fenced
// flag. It implements the per-request decisions the HTTP layer consults
// — "what epoch am I", "did this request teach me a higher one", "am I
// still allowed to accept writes" — and the promotion state machine.
//
// Epoch and fenced survive restarts via EpochFileName in the node's
// data directory, so a primary that was fenced while partitioned stays
// fenced when it comes back.
type Node struct {
	dir string

	mu        sync.Mutex
	role      string
	epoch     uint64
	fenced    bool
	follower  *Follower
	promoting bool
}

// NewNode loads (or initializes) the fencing state for a node serving
// role out of dir (empty dir: state is held in memory only). Primaries
// start at epoch ≥ 1 so "no epoch yet" (0) is never a live primary's
// epoch; followers start at whatever they last persisted and adopt the
// primary's epoch from the first response they observe. f is the
// node's follower (nil unless role is follower) — promotion drains and
// stops it.
func NewNode(dir, role string, f *Follower) (*Node, error) {
	n := &Node{dir: dir, role: role, follower: f}
	if dir != "" {
		data, err := os.ReadFile(filepath.Join(dir, EpochFileName))
		switch {
		case err == nil:
			var st epochState
			if err := json.Unmarshal(data, &st); err != nil {
				return nil, fmt.Errorf("replica: parse %s: %w", EpochFileName, err)
			}
			n.epoch, n.fenced = st.Epoch, st.Fenced
		case !os.IsNotExist(err):
			return nil, fmt.Errorf("replica: read %s: %w", EpochFileName, err)
		}
	}
	if role == api.RolePrimary && n.epoch == 0 {
		n.epoch = 1
		if err := n.persist(); err != nil {
			return nil, err
		}
	}
	obs.Default().GaugeFunc("prov_failover_epoch",
		"The node's current fencing epoch.",
		func() float64 { return float64(n.Epoch()) })
	obs.Default().GaugeFunc("prov_failover_fenced",
		"1 when the node fenced itself read-only after observing a higher epoch.",
		func() float64 {
			if n.Fenced() {
				return 1
			}
			return 0
		})
	return n, nil
}

// persist writes the fencing state atomically (write-temp + rename);
// callers may hold mu — persist only reads its arguments' snapshot
// under its own lock acquisition discipline (it takes mu itself).
func (n *Node) persist() error {
	if n.dir == "" {
		return nil
	}
	n.mu.Lock()
	st := epochState{Epoch: n.epoch, Fenced: n.fenced}
	n.mu.Unlock()
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	path := filepath.Join(n.dir, EpochFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("replica: persist epoch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("replica: persist epoch: %w", err)
	}
	return nil
}

// Role returns the node's current replication role; promotion switches
// a follower to primary at runtime.
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the node's fencing epoch: the highest it has persisted,
// adopted from a request, or (on a follower) observed on a primary
// response.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	e, role, f := n.epoch, n.role, n.follower
	n.mu.Unlock()
	if role == api.RoleFollower && f != nil {
		if ce := f.Client().Epoch(); ce > e {
			e = ce
		}
	}
	return e
}

// Fenced reports whether the node demoted itself read-only after
// observing a higher epoch.
func (n *Node) Fenced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fenced
}

// Observe teaches the node an epoch seen on an incoming request (or a
// peer's response). A higher epoch is adopted; an unfenced primary
// additionally fences itself read-only — a newer primary exists, so
// accepting further writes would split-brain the fleet. Returns true
// when this call fenced the node.
func (n *Node) Observe(remote uint64) bool {
	n.mu.Lock()
	if remote <= n.epoch {
		n.mu.Unlock()
		return false
	}
	n.epoch = remote
	fencedNow := false
	if n.role == api.RolePrimary && !n.fenced {
		n.fenced = true
		fencedNow = true
	}
	n.mu.Unlock()
	if fencedNow {
		mFencings.Add(1)
	}
	_ = n.persist()
	return fencedNow
}

// Promote turns a follower into the primary: best-effort drain of the
// upstream log bounded by ctx (an unreachable primary records DrainErr
// instead of stalling cutover), stop the shipper, bump the epoch past
// everything this node has seen, persist, and best-effort fence the old
// primary by showing it the new epoch. The caller (provd) flips its
// serving state off the node's Role/Fenced on return.
func (n *Node) Promote(ctx context.Context) (*api.PromoteResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n.mu.Lock()
	if n.role != api.RoleFollower || n.follower == nil {
		n.mu.Unlock()
		return nil, ErrNotFollower
	}
	if n.promoting {
		n.mu.Unlock()
		return nil, ErrPromoting
	}
	n.promoting = true
	f := n.follower
	n.mu.Unlock()

	pr := &api.PromoteResponse{}
	if err := f.CatchUpContext(ctx); err != nil {
		pr.DrainErr = err.Error()
	}
	f.Stop()

	n.mu.Lock()
	epoch := n.epoch
	if ce := f.Client().Epoch(); ce > epoch {
		epoch = ce
	}
	epoch++
	n.epoch = epoch
	n.role = api.RolePrimary
	n.fenced = false
	n.promoting = false
	n.mu.Unlock()
	if err := n.persist(); err != nil {
		return nil, err
	}
	mPromotions.Add(1)

	pr.Role = api.RolePrimary
	pr.Epoch = epoch
	applied, _ := f.Lag()
	pr.AppliedBytes = applied

	// Show the old primary the new epoch so it fences now rather than on
	// the first post-heal request. Failure is recorded, not fatal: a
	// partitioned old primary fences itself the moment any epoch-stamped
	// request reaches it (provctl fence forces the issue).
	f.Client().SetEpoch(epoch)
	fctx, cancel := context.WithTimeout(ctx, f.opt.RequestTimeout)
	rs, err := f.Client().ReplicationStatusContext(fctx)
	cancel()
	if err != nil {
		pr.FenceErr = err.Error()
	} else {
		pr.OldPrimaryFenced = rs.Fenced
	}
	return pr, nil
}

// Health assembles the node's /v1/health body. maxLag is the
// follower's configured staleness bound in bytes (0: none); ok=false
// means the node should answer 503 (out of a load balancer's rotation):
// a disconnected follower, or one beyond its staleness bound.
func (n *Node) Health(maxLag int64) (h api.HealthResponse, ok bool) {
	n.mu.Lock()
	role, f, fenced := n.role, n.follower, n.fenced
	n.mu.Unlock()
	h = api.HealthResponse{Status: "ok", Role: role, Epoch: n.Epoch(), Fenced: fenced}
	ok = true
	if role == api.RoleFollower && f != nil {
		rh := f.Health()
		rh.MaxLagBytes = maxLag
		h.Replication = &rh
		if rh.State == api.HealthDisconnected {
			h.Status = api.HealthDisconnected
			ok = false
		}
		if maxLag > 0 && rh.LagBytes > maxLag {
			h.Status = api.CodeReplicaTooStale
			ok = false
		}
	}
	return h, ok
}

// LagWithin reports whether a follower's current lag is within max
// bytes (always true for max <= 0 or non-followers) — the per-read
// staleness gate behind -max-lag.
func (n *Node) LagWithin(max int64) bool {
	if max <= 0 {
		return true
	}
	n.mu.Lock()
	role, f := n.role, n.follower
	n.mu.Unlock()
	if role != api.RoleFollower || f == nil {
		return true
	}
	_, behind := f.Lag()
	return behind <= max
}

// RequestTimeoutOf exposes the follower's per-request timeout for
// callers composing their own deadlines around node operations.
func (n *Node) RequestTimeoutOf() time.Duration {
	n.mu.Lock()
	f := n.follower
	n.mu.Unlock()
	if f == nil {
		return 10 * time.Second
	}
	return f.opt.RequestTimeout
}
