// Package replica implements WAL log-shipping replication: a primary
// serves record-aligned chunks of each file store's committed append log
// (plus checkpoint snapshots) over provd's v1 HTTP API, and followers
// append those chunks byte-for-byte into local stores, folding each
// record through the same watermark machinery a local ingest uses.
//
// The design leans entirely on invariants the store stack already
// maintains:
//
//   - The fold watermark (FileStore.CommittedOffset) marks a stable,
//     record-aligned prefix — failed WAL batches only truncate bytes at
//     or above it — so a primary can serve [0, watermark) with plain
//     positional reads, concurrent with its own writers.
//   - A follower's log is at every moment an exact byte prefix of the
//     primary's, so its own committed size doubles as its replication
//     cursor: resuming after a crash is "stream from my local size", and
//     a torn tail from a mid-apply kill is healed by the ordinary reopen
//     truncation scan before the cursor is read.
//   - Checkpoints bound catch-up: a fresh follower installs the
//     primary's checkpoint snapshot before opening its store, so open
//     folds indexes from the snapshot and replays only the log suffix —
//     the same O(suffix) path a primary reopen takes.
//
// Sharded primaries replicate per shard: each shard's log ships as an
// independent stream, and the follower's router folds routing indexes
// from the shipped placements (both sides run the same routing hash, so
// placements agree).
package replica

import (
	"fmt"
	"os"

	"repro/internal/collab/api"
	"repro/internal/store"
	"repro/internal/store/shardedstore"
)

// Source adapts a primary's store to the replication read model:
// per-shard committed-log chunks, checkpoint snapshots and positions.
// It implements collab.ReplicationSource.
type Source struct {
	shards  []*store.FileStore
	sharded bool
}

// NewSource unwraps cache and trace layers down to the file-backed
// store (single FileStore or sharded router) and exposes it for
// shipping. Memory-backed stores are rejected: replication ships a
// durable log.
func NewSource(s store.Store) (*Source, error) {
	type underlier interface{ Underlying() store.Store }
	for {
		u, ok := s.(underlier)
		if !ok {
			break
		}
		s = u.Underlying()
	}
	switch st := s.(type) {
	case *store.FileStore:
		return &Source{shards: []*store.FileStore{st}}, nil
	case *shardedstore.Router:
		src := &Source{sharded: true}
		for i := 0; i < st.NumShards(); i++ {
			fs, err := st.FileShard(i)
			if err != nil {
				return nil, err
			}
			src.shards = append(src.shards, fs)
		}
		return src, nil
	}
	return nil, fmt.Errorf("replica: %s store has no file-backed log to ship (open it with a store directory)", s.Name())
}

// Sharded reports whether the source is a sharded router.
func (s *Source) Sharded() bool { return s.sharded }

// Shards returns the number of independent log streams.
func (s *Source) Shards() int { return len(s.shards) }

func (s *Source) shard(i int) (*store.FileStore, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("replica: shard %d outside [0,%d)", i, len(s.shards))
	}
	return s.shards[i], nil
}

// ReadLog implements collab.ReplicationSource.
func (s *Source) ReadLog(shard int, from int64, maxBytes int) ([]byte, int64, error) {
	fs, err := s.shard(shard)
	if err != nil {
		return nil, 0, err
	}
	return fs.ReadCommitted(from, maxBytes)
}

// CheckpointBytes implements collab.ReplicationSource, serving the
// shard's checkpoint file verbatim. SaveCheckpoint installs snapshots
// atomically (write-temp, fsync, rename), so a concurrent read observes
// either the previous or the new complete snapshot, never a torn one.
func (s *Source) CheckpointBytes(shard int) ([]byte, bool, error) {
	fs, err := s.shard(shard)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(store.CheckpointPath(fs.Dir()))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("replica: read shard %d checkpoint: %w", shard, err)
	}
	return data, true, nil
}

// Positions implements collab.ReplicationSource: the primary is its own
// log, so Applied equals Committed and Lag is zero.
func (s *Source) Positions() []api.ShardPosition {
	out := make([]api.ShardPosition, len(s.shards))
	for i, fs := range s.shards {
		committed := fs.CommittedOffset()
		ck := int64(-1)
		if off, ok := fs.LastCheckpoint(); ok {
			ck = off
		}
		out[i] = api.ShardPosition{Shard: i, Committed: committed, Applied: committed, Checkpoint: ck}
	}
	return out
}

// Status reports the primary-side replication status, probing each
// configured replica URL best-effort via probe (nil: no probing).
func (s *Source) Status(replicas []string, probe func(url string) (*api.ReplicationStatus, error)) api.ReplicationStatus {
	rs := api.ReplicationStatus{Role: api.RolePrimary, Sharded: s.sharded, Shards: s.Positions()}
	for _, u := range replicas {
		p := api.ReplicaProbe{URL: u}
		if probe != nil {
			if st, err := probe(u); err != nil {
				p.Error = err.Error()
			} else {
				p.Status = st
			}
		}
		rs.Replicas = append(rs.Replicas, p)
	}
	return rs
}
