package replica

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/collab/api"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/shardedstore"
)

// Follower observability: shipped volume and apply latency accumulate
// across catch-up and steady-state tailing alike (catch-up throughput is
// shipped bytes over the catch-up window). The lag and health gauges are
// registered per-Follower in Open and report the most recent instance.
var (
	mReplShippedBytes = obs.Default().Counter("prov_replica_shipped_bytes_total", "Log bytes shipped from the primary and applied.")
	mReplShippedRecs  = obs.Default().Counter("prov_replica_shipped_records_total", "Run-log records applied from shipped chunks.")
	mReplApplySecs    = obs.Default().Histogram("prov_replica_apply_seconds", "Per-chunk apply latency (decode, verify, fold).")
	mReplRetries      = obs.Default().Counter("prov_replica_retries_total", "Failed follower→primary exchanges retried under backoff.")
)

// Options configures a follower.
type Options struct {
	// Dir is the local store directory (bootstrapped from the primary
	// when empty, resumed when it already holds a replica).
	Dir string
	// Primary is the primary provd's base URL.
	Primary string
	// Client overrides the HTTP client (nil: the api package default —
	// per-request timeouts come from contexts, so streaming stays
	// unbounded there).
	Client *http.Client
	// Store configures the local store: the follower's own durability
	// and checkpoint policy, independent of the primary's (a replica
	// that can re-stream after a crash often runs DurabilityNone).
	Store store.FileOptions
	// Poll is the steady-state tail interval of the background shipper
	// (Start); default 200ms. After a failure the interval backs off
	// exponentially with jitter up to MaxBackoff, returning to Poll on
	// the first success.
	Poll time.Duration
	// MaxBackoff caps the jittered exponential backoff between failed
	// polls (0: 5s).
	MaxBackoff time.Duration
	// RequestTimeout bounds each individual follower→primary call
	// (0: 10s). A hung primary costs one timeout, not a stuck shipper.
	RequestTimeout time.Duration
	// DisconnectAfter is how long without a successful primary exchange
	// before Health reports disconnected instead of degraded
	// (0: 10×MaxBackoff).
	DisconnectAfter time.Duration
	// BackoffSeed seeds the backoff jitter; 0 draws from the global
	// source. Tests pin it for reproducible schedules.
	BackoffSeed int64
	// MaxBatchBytes caps one shipped chunk (0: 1 MiB).
	MaxBatchBytes int
	// OnApply, when set, observes every replicated run log after it
	// folds into the store — the closure-cache delta patch hook. Also
	// settable later via SetOnApply (the cache wraps the store only
	// after Open returns it).
	OnApply func(*provenance.RunLog)
}

// Follower is a read replica: a local store kept an exact prefix of the
// primary's log(s) by streaming committed WAL chunks over the v1 API.
// Reads go straight to Store(); writes belong on the primary.
type Follower struct {
	opt    Options
	client *api.Client

	sharded bool
	st      store.Store
	router  *shardedstore.Router
	shards  []*store.FileStore

	baseCtx    context.Context // cancelled by Stop; parent of every request ctx
	baseCancel context.CancelFunc

	mu               sync.Mutex
	onApply          func(*provenance.RunLog)
	primaryCommitted []int64 // last-seen primary committed size per shard
	lastErr          error   // most recent shipper failure (transient; retried)
	consecFails      int     // failed exchanges since the last success
	lastContact      time.Time
	rng              *rand.Rand // jitter source, guarded by mu

	shardMu []sync.Mutex // serializes appliers per shard (CatchUp vs tailer)

	started  bool
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Open connects to the primary, bootstraps any empty local shards from
// its checkpoints and logs, opens the local store, and returns a
// follower positioned at its local committed offset. It does not start
// the background shipper — call Start, or drive catch-up explicitly
// with CatchUp.
func Open(opt Options) (*Follower, error) {
	if opt.Dir == "" {
		return nil, errors.New("replica: follower needs a store directory")
	}
	if opt.Primary == "" {
		return nil, errors.New("replica: follower needs a primary URL")
	}
	if opt.Poll <= 0 {
		opt.Poll = 200 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 5 * time.Second
	}
	if opt.RequestTimeout <= 0 {
		opt.RequestTimeout = 10 * time.Second
	}
	if opt.DisconnectAfter <= 0 {
		opt.DisconnectAfter = 10 * opt.MaxBackoff
	}
	if opt.MaxBatchBytes <= 0 {
		opt.MaxBatchBytes = 1 << 20
	}
	seed := opt.BackoffSeed
	if seed == 0 {
		seed = rand.Int63()
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	client := api.NewClient(opt.Primary, opt.Client)
	ctx, cancel := context.WithTimeout(baseCtx, opt.RequestTimeout)
	rs, err := client.ReplicationStatusContext(ctx)
	cancel()
	if err != nil {
		baseCancel()
		return nil, fmt.Errorf("replica: primary %s status: %w", opt.Primary, err)
	}
	n := len(rs.Shards)
	if n == 0 {
		baseCancel()
		return nil, fmt.Errorf("replica: primary %s (role %s) reports no replicable shards", opt.Primary, rs.Role)
	}

	// Bootstrap fresh shard directories before opening the store:
	// checkpoint snapshot first (its LogOffset is <= any committed size
	// we stream afterwards), then the log bytes, so the subsequent open
	// restores indexes from the snapshot and replays only the suffix.
	for i := 0; i < n; i++ {
		dir := opt.Dir
		if rs.Sharded {
			dir = filepath.Join(opt.Dir, fmt.Sprintf("shard-%03d", i))
		}
		if err := bootstrapShard(baseCtx, client, i, dir, opt.MaxBatchBytes, opt.RequestTimeout); err != nil {
			baseCancel()
			return nil, err
		}
	}

	f := &Follower{
		opt:              opt,
		client:           client,
		sharded:          rs.Sharded,
		baseCtx:          baseCtx,
		baseCancel:       baseCancel,
		onApply:          opt.OnApply,
		primaryCommitted: make([]int64, n),
		lastContact:      time.Now(),
		rng:              rand.New(rand.NewSource(seed)),
		shardMu:          make([]sync.Mutex, n),
		stop:             make(chan struct{}),
	}
	for i, sp := range rs.Shards {
		f.primaryCommitted[i] = sp.Committed
	}
	if rs.Sharded {
		r, err := shardedstore.OpenWith(opt.Dir, n, opt.Store)
		if err != nil {
			baseCancel()
			return nil, fmt.Errorf("replica: open follower store: %w", err)
		}
		f.router, f.st = r, r
		for i := 0; i < n; i++ {
			fs, err := r.FileShard(i)
			if err != nil {
				r.Close()
				baseCancel()
				return nil, err
			}
			f.shards = append(f.shards, fs)
		}
	} else {
		fs, err := store.OpenFileStoreWith(opt.Dir, opt.Store)
		if err != nil {
			baseCancel()
			return nil, fmt.Errorf("replica: open follower store: %w", err)
		}
		f.st, f.shards = fs, []*store.FileStore{fs}
	}
	// GaugeFunc re-registration replaces the callback, so these series
	// always track the most recently opened follower in this process. Lag
	// and health read only in-memory positions, so scraping after Close
	// stays safe.
	obs.Default().GaugeFunc("prov_replica_apply_lag_bytes",
		"Bytes the follower trails the primary's committed position by.",
		func() float64 {
			_, behind := f.Lag()
			return float64(behind)
		})
	obs.Default().GaugeFunc("prov_replica_health",
		"Follower upstream health: 0 connected, 1 degraded, 2 disconnected.",
		func() float64 {
			switch f.Health().State {
			case api.HealthConnected:
				return 0
			case api.HealthDegraded:
				return 1
			default:
				return 2
			}
		})
	return f, nil
}

// bootstrapShard seeds an empty local shard directory with the
// primary's checkpoint snapshot and a bulk copy of its committed log.
// Directories that already hold log bytes are left alone: the store
// open heals any torn tail and the shipper resumes from the local
// committed size.
func bootstrapShard(baseCtx context.Context, c *api.Client, shard int, dir string, maxBatch int, reqTimeout time.Duration) error {
	logPath := filepath.Join(dir, store.LogFileName)
	if fi, err := os.Stat(logPath); err == nil && fi.Size() > 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("replica: bootstrap shard %d: %w", shard, err)
	}
	ctx, cancel := context.WithTimeout(baseCtx, reqTimeout)
	ck, ok, err := c.ShardCheckpointContext(ctx, shard)
	cancel()
	if err != nil {
		return fmt.Errorf("replica: bootstrap shard %d checkpoint: %w", shard, err)
	}
	if ok {
		if err := os.WriteFile(store.CheckpointPath(dir), ck, 0o644); err != nil {
			return fmt.Errorf("replica: bootstrap shard %d checkpoint: %w", shard, err)
		}
	}
	logFile, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("replica: bootstrap shard %d log: %w", shard, err)
	}
	defer logFile.Close()
	var at int64
	for {
		ctx, cancel := context.WithTimeout(baseCtx, reqTimeout)
		chunk, committed, err := c.StreamLogContext(ctx, shard, at, maxBatch)
		cancel()
		if err != nil {
			return fmt.Errorf("replica: bootstrap shard %d stream: %w", shard, err)
		}
		if len(chunk) == 0 {
			if at < committed {
				return fmt.Errorf("replica: bootstrap shard %d: empty chunk at %d below committed %d", shard, at, committed)
			}
			return nil
		}
		if _, err := logFile.Write(chunk); err != nil {
			return fmt.Errorf("replica: bootstrap shard %d log: %w", shard, err)
		}
		// Bootstrap bytes are shipped traffic too; the records they carry
		// are only counted once the store replays them on open, so the
		// record counter stays with the apply path.
		mReplShippedBytes.Add(uint64(len(chunk)))
		at += int64(len(chunk))
	}
}

// Store returns the follower's local store; queries against it see
// exactly the applied primary prefix.
func (f *Follower) Store() store.Store { return f.st }

// Sharded reports whether the replicated store is a sharded router.
func (f *Follower) Sharded() bool { return f.sharded }

// Client returns the follower's primary-facing API client — the epoch
// it has observed there is the fleet's, which promotion builds on.
func (f *Follower) Client() *api.Client { return f.client }

// SetOnApply installs (or replaces) the per-record apply hook — wired
// to closurecache.(*Cache).ApplyDelta when a cache layers the follower's
// store, so memoized closures patch live as replicated runs fold.
func (f *Follower) SetOnApply(fn func(*provenance.RunLog)) {
	f.mu.Lock()
	f.onApply = fn
	f.mu.Unlock()
}

// AddOnApply composes fn onto the existing apply hook (if any), so
// several consumers — the closure cache, standing-query subscriptions —
// can observe replicated runs without clobbering each other.
func (f *Follower) AddOnApply(fn func(*provenance.RunLog)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if prev := f.onApply; prev != nil {
		f.onApply = func(l *provenance.RunLog) {
			prev(l)
			fn(l)
		}
		return
	}
	f.onApply = fn
}

func (f *Follower) applyHook() func(*provenance.RunLog) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.onApply
}

// CatchUp streams and applies every shard to the primary's committed
// position as of this call, synchronously. Tests and E18 use it for
// deterministic convergence; production followers run Start instead.
func (f *Follower) CatchUp() error {
	return f.CatchUpContext(context.Background())
}

// CatchUpContext is CatchUp bounded by ctx — the promotion drain uses a
// deadline so an unreachable primary cannot stall cutover.
func (f *Follower) CatchUpContext(ctx context.Context) error {
	for i := range f.shards {
		if err := f.catchUpShard(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// catchUpShard applies one shard until it reaches the primary's
// committed position observed at loop entry (later appends belong to
// the next poll). The per-shard lock serializes concurrent appliers —
// a CatchUp racing the background tailer must not both apply the same
// offset.
func (f *Follower) catchUpShard(ctx context.Context, i int) error {
	f.shardMu[i].Lock()
	defer f.shardMu[i].Unlock()
	for {
		from := f.shards[i].CommittedOffset()
		reqCtx, cancel := context.WithTimeout(ctx, f.opt.RequestTimeout)
		data, committed, err := f.client.StreamLogContext(reqCtx, i, from, f.opt.MaxBatchBytes)
		cancel()
		if err != nil {
			f.noteErr(err)
			return err
		}
		f.mu.Lock()
		f.primaryCommitted[i] = committed
		f.mu.Unlock()
		if len(data) == 0 {
			if from < committed {
				err := fmt.Errorf("replica: shard %d: empty chunk at %d below committed %d", i, from, committed)
				f.noteErr(err)
				return err
			}
			f.noteErr(nil)
			return nil
		}
		var logs []*provenance.RunLog
		applyStart := obs.Now()
		if f.router != nil {
			logs, _, err = f.router.ApplyReplicated(i, data)
		} else {
			logs, _, err = f.shards[i].ApplyReplicated(data)
		}
		if err != nil {
			f.noteErr(err)
			return err
		}
		mReplApplySecs.ObserveSince(applyStart)
		mReplShippedBytes.Add(uint64(len(data)))
		mReplShippedRecs.Add(uint64(len(logs)))
		f.noteErr(nil)
		if hook := f.applyHook(); hook != nil {
			for _, l := range logs {
				hook(l)
			}
		}
	}
}

// noteErr records the outcome of one primary exchange: failures feed
// the retry counter and health state, successes reset both.
func (f *Follower) noteErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	if err != nil {
		f.consecFails++
	} else {
		f.consecFails = 0
		f.lastContact = time.Now()
	}
	f.mu.Unlock()
	if err != nil {
		mReplRetries.Add(1)
	}
}

// nextDelay computes the tail interval after an exchange: the steady
// poll on success; on failure, exponential backoff from the previous
// delay with ±25% jitter, capped at MaxBackoff. Jitter keeps a fleet of
// followers from stampeding a primary that just came back.
func (f *Follower) nextDelay(prev time.Duration, failed bool) time.Duration {
	if !failed {
		return f.opt.Poll
	}
	d := prev * 2
	if d < f.opt.Poll {
		d = f.opt.Poll
	}
	if d > f.opt.MaxBackoff {
		d = f.opt.MaxBackoff
	}
	f.mu.Lock()
	jitter := 1 + (f.rng.Float64()-0.5)/2
	f.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Start launches one background tailer per shard, each polling the
// primary at the configured interval and applying whatever committed.
// Transient failures are recorded (see Status, Health) and retried
// under jittered exponential backoff. Idempotent.
func (f *Follower) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	for i := range f.shards {
		f.wg.Add(1)
		go func(i int) {
			defer f.wg.Done()
			delay := f.opt.Poll
			t := time.NewTimer(delay)
			defer t.Stop()
			for {
				select {
				case <-f.stop:
					return
				case <-t.C:
				}
				err := f.catchUpShard(f.baseCtx, i)
				delay = f.nextDelay(delay, err != nil)
				t.Reset(delay)
			}
		}(i)
	}
}

// Lag returns the follower's total applied bytes across shards and how
// many last-seen primary committed bytes are still unapplied — the
// X-Replica-Applied / X-Replica-Lag read headers.
func (f *Follower) Lag() (applied, behind int64) {
	f.mu.Lock()
	committed := append([]int64(nil), f.primaryCommitted...)
	f.mu.Unlock()
	for i, fs := range f.shards {
		a := fs.CommittedOffset()
		applied += a
		if d := committed[i] - a; d > 0 {
			behind += d
		}
	}
	return applied, behind
}

// Health classifies the follower's upstream link: connected while the
// last exchange succeeded, degraded while failing and retrying under
// backoff, disconnected once no exchange has succeeded for
// DisconnectAfter.
func (f *Follower) Health() api.ReplicaHealth {
	f.mu.Lock()
	fails := f.consecFails
	lastErr := f.lastErr
	since := time.Since(f.lastContact)
	f.mu.Unlock()
	applied, behind := f.Lag()
	h := api.ReplicaHealth{
		State:               api.HealthConnected,
		ConsecutiveFailures: fails,
		SecondsSinceContact: since.Seconds(),
		AppliedBytes:        applied,
		LagBytes:            behind,
	}
	if lastErr != nil {
		h.LastError = lastErr.Error()
	}
	if fails > 0 {
		h.State = api.HealthDegraded
		if since > f.opt.DisconnectAfter {
			h.State = api.HealthDisconnected
		}
	}
	return h
}

// Status reports the follower's role and per-shard positions for
// /v1/replication/status.
func (f *Follower) Status() api.ReplicationStatus {
	f.mu.Lock()
	committed := append([]int64(nil), f.primaryCommitted...)
	lastErr := f.lastErr
	f.mu.Unlock()
	rs := api.ReplicationStatus{Role: api.RoleFollower, Sharded: f.sharded, Primary: f.opt.Primary}
	for i, fs := range f.shards {
		applied := fs.CommittedOffset()
		c := committed[i]
		if applied > c {
			c = applied
		}
		ck := int64(-1)
		if off, ok := fs.LastCheckpoint(); ok {
			ck = off
		}
		rs.Shards = append(rs.Shards, api.ShardPosition{
			Shard: i, Committed: c, Applied: applied, Lag: c - applied, Checkpoint: ck,
		})
	}
	if lastErr != nil {
		rs.Replicas = []api.ReplicaProbe{{URL: f.opt.Primary, Error: lastErr.Error()}}
	}
	return rs
}

// Stop halts the background shipper without closing the local store —
// for callers whose cache layer owns the store's close chain (and for
// promotion, which keeps serving from the store it just caught up).
// In-flight requests are cancelled. Idempotent.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.baseCancel()
	})
	f.wg.Wait()
}

// Close stops the shipper and closes the local store.
func (f *Follower) Close() error {
	f.Stop()
	return f.st.Close()
}
