package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/collab"
	"repro/internal/collab/api"
	"repro/internal/provenance"
	"repro/internal/query/pql"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/shardedstore"
)

// mkRun builds a run consuming the given artifacts and generating one
// fresh artifact named after the run.
func mkRun(id string, inputs ...string) *provenance.RunLog {
	exec := id + "-exec"
	out := id + "-art"
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: id, WorkflowID: "wf", Status: provenance.StatusOK}
	l.Executions = []*provenance.Execution{{ID: exec, RunID: id, ModuleID: "m", ModuleType: "T", Status: provenance.StatusOK}}
	l.Artifacts = []*provenance.Artifact{{ID: out, RunID: id, Type: "blob"}}
	var seq uint64
	seen := map[string]bool{}
	for _, in := range inputs {
		if seen[in] {
			continue
		}
		seen[in] = true
		l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: in, RunID: id, Type: "blob"})
		seq++
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: id, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in})
	}
	seq++
	l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: id, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out})
	return l
}

// servePrimary exposes a primary store over the v1 replication API.
func servePrimary(t *testing.T, st store.Store) *httptest.Server {
	t.Helper()
	src, err := NewSource(st)
	if err != nil {
		t.Fatal(err)
	}
	h := collab.NewHandlerWith(collab.NewRepository(st), collab.HandlerOptions{
		Source: src,
		Status: func() api.ReplicationStatus { return src.Status(nil, nil) },
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func sortedClone(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}

// assertSameStore checks follower query surfaces against the primary:
// run set, closures both ways from every artifact of a sample, expand
// frontiers, stats and a PQL join.
func assertSameStore(t *testing.T, primary, follower store.Store, probes []string) {
	t.Helper()
	pr, err := primary.Runs()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := follower.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedClone(pr), sortedClone(fr)) {
		t.Fatalf("run sets differ: primary %d runs, follower %d runs", len(pr), len(fr))
	}
	for _, id := range probes {
		for _, dir := range []store.Direction{store.Up, store.Down} {
			pc, perr := primary.Closure(id, dir)
			fc, ferr := follower.Closure(id, dir)
			if (perr == nil) != (ferr == nil) {
				t.Fatalf("closure(%s,%v) error mismatch: primary=%v follower=%v", id, dir, perr, ferr)
			}
			if perr != nil {
				continue
			}
			if !reflect.DeepEqual(sortedClone(pc), sortedClone(fc)) {
				t.Fatalf("closure(%s,%v) differs: primary %d nodes, follower %d nodes", id, dir, len(pc), len(fc))
			}
		}
		pe, _ := primary.Expand([]string{id}, store.Down)
		fe, _ := follower.Expand([]string{id}, store.Down)
		if !reflect.DeepEqual(pe, fe) {
			t.Fatalf("expand(%s) differs:\nprimary  %v\nfollower %v", id, pe, fe)
		}
	}
	ps, err := primary.Stats()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := follower.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Runs != fs.Runs || ps.Artifacts != fs.Artifacts || ps.Executions != fs.Executions || ps.Events != fs.Events {
		t.Fatalf("stats differ: primary %+v follower %+v", ps, fs)
	}
	const q = "SELECT exec, artifact FROM gens JOIN artifacts ON artifact = artifacts.id ORDER BY artifact"
	pq, err := pql.Run(primary, q)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := pql.Run(follower, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pq, fq) {
		t.Fatalf("PQL results differ: primary %d rows, follower %d rows", len(pq.Rows), len(fq.Rows))
	}
}

// TestFollowerBootstrapAndCatchUp is the basic single-store round trip:
// checkpointed history bootstraps a fresh follower, post-checkpoint and
// post-bootstrap ingests arrive via catch-up, and the follower's log is
// a byte-identical copy.
func TestFollowerBootstrapAndCatchUp(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	ps, err := store.OpenFileStoreWith(pdir, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	for i := 0; i < 20; i++ {
		if err := ps.PutRunLog(mkRun(fmt.Sprintf("pre-%03d", i), "pre-000-art")); err != nil && i > 0 {
			t.Fatal(err)
		}
	}
	if err := ps.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ps.PutRunLog(mkRun(fmt.Sprintf("post-%03d", i), "pre-005-art")); err != nil {
			t.Fatal(err)
		}
	}
	srv := servePrimary(t, ps)

	f, err := Open(Options{Dir: fdir, Primary: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The bootstrap installed the primary's checkpoint, so the follower
	// opened by restoring the snapshot, not by scanning history.
	if _, ok := f.shards[0].LastCheckpoint(); !ok {
		t.Fatal("fresh follower did not install the primary's checkpoint before opening")
	}
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	// More primary traffic after the follower exists.
	for i := 10; i < 25; i++ {
		if err := ps.PutRunLog(mkRun(fmt.Sprintf("post-%03d", i), fmt.Sprintf("post-%03d-art", i-10))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	assertSameStore(t, ps, f.Store(), []string{"pre-000-art", "pre-005-art", "post-000-art", "post-014-exec"})

	pbytes, err := os.ReadFile(filepath.Join(pdir, store.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	fbytes, err := os.ReadFile(filepath.Join(fdir, store.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if string(pbytes) != string(fbytes) {
		t.Fatalf("follower log is not a byte-identical copy: primary %d bytes, follower %d bytes", len(pbytes), len(fbytes))
	}
	if applied, behind := f.Lag(); behind != 0 || applied != int64(len(pbytes)) {
		t.Fatalf("lag after catch-up: applied=%d behind=%d, want applied=%d behind=0", applied, behind, len(pbytes))
	}
}

// TestFollowerCrashTruncationFuzz kills the follower mid-batch at random
// points: after each partial catch-up the follower's log gains a torn
// record tail (the bytes a crash mid-apply leaves), then the follower
// reopens and resumes. The reopened store must equal a replay of the
// exact committed prefix — the same contract the primary's own reopen
// holds — and finish byte-identical after final catch-up.
func TestFollowerCrashTruncationFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const iters = 6
	for iter := 0; iter < iters; iter++ {
		pdir, fdir := t.TempDir(), t.TempDir()
		ps, err := store.OpenFileStoreWith(pdir, store.FileOptions{Durability: store.DurabilityGroup})
		if err != nil {
			t.Fatal(err)
		}
		total := 30 + rng.Intn(40)
		arts := []string{}
		put := func(i int) {
			var inputs []string
			if len(arts) > 0 && rng.Intn(3) > 0 {
				inputs = append(inputs, arts[rng.Intn(len(arts))])
			}
			id := fmt.Sprintf("it%d-run-%03d", iter, i)
			if err := ps.PutRunLog(mkRun(id, inputs...)); err != nil {
				t.Fatal(err)
			}
			arts = append(arts, id+"-art")
		}
		half := total / 2
		for i := 0; i < half; i++ {
			put(i)
		}
		if rng.Intn(2) == 0 {
			if err := ps.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		for i := half; i < total; i++ {
			put(i)
		}
		srv := servePrimary(t, ps)

		f, err := Open(Options{Dir: fdir, Primary: srv.URL, MaxBatchBytes: 256 + rng.Intn(2048)})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.CatchUp(); err != nil {
			t.Fatal(err)
		}
		// Crash: close the follower, then simulate a torn in-flight batch
		// by appending a random-length prefix of undelivered primary bytes
		// (no trailing newline) to its log — what a kill mid-write leaves.
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		// Grow the primary past the follower's applied point so there are
		// undelivered bytes to tear.
		for i := total; i < total+8; i++ {
			put(i)
		}
		pbytes, err := os.ReadFile(filepath.Join(pdir, store.LogFileName))
		if err != nil {
			t.Fatal(err)
		}
		flog := filepath.Join(fdir, store.LogFileName)
		fbytes, err := os.ReadFile(flog)
		if err != nil {
			t.Fatal(err)
		}
		undelivered := pbytes[len(fbytes):]
		if len(undelivered) > 1 {
			cut := 1 + rng.Intn(len(undelivered)-1)
			if undelivered[cut-1] == '\n' {
				cut-- // keep the tear torn: no trailing record boundary
			}
			if cut > 0 {
				lf, err := os.OpenFile(flog, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := lf.Write(undelivered[:cut]); err != nil {
					t.Fatal(err)
				}
				lf.Close()
			}
		}
		// Reopen: the truncation scan must drop the torn tail, leaving the
		// exact committed prefix, and the resumed stream must complete it.
		f2, err := Open(Options{Dir: fdir, Primary: srv.URL, MaxBatchBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		fb2, err := os.ReadFile(flog)
		if err != nil {
			t.Fatal(err)
		}
		applied := f2.shards[0].CommittedOffset()
		if string(fb2[:applied]) != string(pbytes[:applied]) {
			t.Fatalf("iter %d: reopened follower log is not a primary prefix at applied=%d", iter, applied)
		}
		if err := f2.CatchUp(); err != nil {
			t.Fatal(err)
		}
		fb3, err := os.ReadFile(flog)
		if err != nil {
			t.Fatal(err)
		}
		if string(fb3) != string(pbytes) {
			t.Fatalf("iter %d: follower log diverged after resume: %d vs %d bytes", iter, len(fb3), len(pbytes))
		}
		probe := []string{arts[rng.Intn(len(arts))], arts[rng.Intn(len(arts))]}
		assertSameStore(t, ps, f2.Store(), probe)
		if err := f2.Close(); err != nil {
			t.Fatal(err)
		}
		srv.Close()
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFollowerPropertyShardedWithCache is the randomized equivalence
// property on a sharded primary: random DAG ingests with checkpoints at
// random boundaries, one follower attached early (tailing in the
// background), one bootstrapped late across checkpoint boundaries, the
// early follower's reads going through a closure cache patched by the
// replication apply hook. After catch-up, every query surface must be
// set-equal to the primary on both followers.
func TestFollowerPropertyShardedWithCache(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pdir := t.TempDir()
	const shards = 3
	pr, err := shardedstore.OpenWith(pdir, shards, store.FileOptions{Durability: store.DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	srv := servePrimary(t, pr)

	var arts []string
	put := func(i int) {
		var inputs []string
		for len(arts) > 0 && len(inputs) < 3 && rng.Intn(2) == 0 {
			inputs = append(inputs, arts[rng.Intn(len(arts))])
		}
		id := fmt.Sprintf("p-run-%04d", i)
		if err := pr.PutRunLog(mkRun(id, inputs...)); err != nil {
			t.Fatal(err)
		}
		arts = append(arts, id+"-art")
	}

	for i := 0; i < 40; i++ {
		put(i)
	}

	// Early follower: background tailer + closure cache patched via the
	// apply hook; queries warm the cache while replication keeps writing.
	f1, err := Open(Options{Dir: t.TempDir(), Primary: srv.URL, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	cache := closurecache.Wrap(f1.Store())
	f1.SetOnApply(cache.ApplyDelta)
	f1.Start()

	for i := 40; i < 140; i++ {
		put(i)
		if i%25 == 0 {
			if err := pr.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 0 {
			// Query through the cache mid-replication: results may lag the
			// primary (a just-published entity may not exist yet on the
			// follower — that is staleness, and legal) but must never fail
			// any other way or corrupt the cache.
			if _, err := cache.Closure(arts[rng.Intn(len(arts))], store.Up); err != nil && !errors.Is(err, store.ErrNotFound) {
				t.Fatal(err)
			}
		}
	}

	// Late follower bootstraps across the checkpoint boundaries above.
	f2, err := Open(Options{Dir: t.TempDir(), Primary: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if !f2.Sharded() {
		t.Fatal("follower of a sharded primary must open sharded")
	}

	for i := 140; i < 170; i++ {
		put(i)
	}
	if err := f1.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := f2.CatchUp(); err != nil {
		t.Fatal(err)
	}

	probes := make([]string, 0, 8)
	for len(probes) < 8 {
		probes = append(probes, arts[rng.Intn(len(arts))])
	}
	assertSameStore(t, pr, f1.Store(), probes)
	assertSameStore(t, pr, cache, probes)
	assertSameStore(t, pr, f2.Store(), probes)

	if m := cache.Metrics(); m.Ingests == 0 {
		t.Fatal("replication apply hook never patched the closure cache")
	}
	st := f2.Status()
	if st.Role != "follower" || len(st.Shards) != shards {
		t.Fatalf("follower status: %+v", st)
	}
	for _, sp := range st.Shards {
		if sp.Lag != 0 || sp.Applied != sp.Committed {
			t.Fatalf("shard %d not caught up: %+v", sp.Shard, sp)
		}
	}
}

// TestSourceRejectsMemStore pins the error contract: replication needs
// a file-backed log.
func TestSourceRejectsMemStore(t *testing.T) {
	if _, err := NewSource(store.NewMemStore()); err == nil {
		t.Fatal("NewSource accepted a memory store")
	}
}
