package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/store/wal"
)

// FileStore observability: per-operation latency across every instance in
// the process (one per shard under the router) plus ingest outcomes.
var (
	mStoreIngests       = obs.Default().Counter("prov_store_ingest_total", "Run logs accepted by file stores.")
	mStoreIngestErrors  = obs.Default().Counter("prov_store_ingest_errors_total", "Run-log ingests rejected (validation, duplicate, I/O).")
	mStoreIngestSeconds = obs.Default().Histogram("prov_store_ingest_seconds", "FileStore PutRunLog latency: validate, append, index fold.")
	mStoreClosureSecs   = obs.Default().Histogram("prov_store_closure_seconds", "FileStore transitive-closure latency on the resident adjacency index.")
	mStoreExpandSecs    = obs.Default().Histogram("prov_store_expand_seconds", "FileStore one-hop Expand latency.")
)

// FileStore persists run logs to an append-only JSON-lines file, the
// file-dialect storage approach (§2.2: "XML dialects that are stored as
// files"). An in-memory index maps run IDs to byte offsets and entity IDs
// to their runs, and a resident adjacency index — rebuilt at open/ingest
// time from the same records — serves graph navigation (GeneratorOf,
// ConsumersOf, Used, Generated, Expand, Closure) without re-reading the
// log, so closure queries perform zero disk reads after open. Full-entity
// and run-log retrieval still load the owning log from disk, which keeps
// this the most durable — and for record retrieval the slowest — backend.
//
// Appends go through a write-ahead group-commit writer (internal/store/
// wal): under DurabilityGroup, concurrent PutRunLog calls coalesce into
// batches sharing one fsync; under DurabilityFsync every append pays its
// own; under DurabilityNone nothing syncs. Reads take a shared lock, so
// concurrent closure sweeps never serialize against each other — only
// against the brief index fold of each accepted ingest.
//
// Reopening a store directory rebuilds the indexes by scanning the log,
// truncating any torn trailing record (crash recovery); a truncated record
// is never indexed, so the adjacency index stays consistent with the
// surviving bytes. When a checkpoint file is present (see Checkpoint), the
// scan starts at the checkpointed offset instead of zero: the snapshot
// restores the folded indexes and only the log suffix replays, making
// restarts O(suffix) instead of O(history). The pre-checkpoint prefix is
// never read at open — only index recovery is prefix-free; full-record
// retrieval (RunLog/Artifact/Execution) still reads the owning record's
// bytes, so archiving the prefix sacrifices retrieval of those runs while
// navigation and closures stay fully served.
type FileStore struct {
	mu  sync.RWMutex
	dir string
	f   *os.File
	opt FileOptions
	w   *wal.Writer

	offsets map[string]int64 // runID -> byte offset
	order   []string         // runIDs in log-offset order
	size    int64            // contiguous fold watermark: every record below is indexed

	// Fold coordination: WAL commits are in offset order, but writers
	// re-acquire the store lock in arbitrary order, so committed records
	// queue here and fold strictly at the watermark — the in-memory
	// index always equals a replay of the log prefix [0, size), which is
	// what recover() reproduces and what a checkpoint snapshots.
	pending   map[string]bool      // run IDs reserved by in-flight ingests
	foldQueue map[int64]*foldEntry // committed, not-yet-indexed records by offset
	foldCond  *sync.Cond           // watermark advance
	autoCkpt  *AutoCheckpoint
	lastCkpt  int64 // LogOffset of the last checkpoint written (-1: none)

	// Resident adjacency and entity-kind index: navigation never touches
	// disk. Owners are tracked per kind so an ID stored as an artifact by
	// one run and as an execution by another keeps both entities
	// addressable, with artifact classification winning for traversal
	// (matching the other backends).
	artOwner  map[string]string // artifact ID -> runID
	execOwner map[string]string // execution ID -> runID
	adj       adjacency

	// Resident counters so Stats does not re-read the log.
	nEvents int
	nAnns   int
}

// LogFileName is the append-only run-log file inside a FileStore
// directory; tools (and the sharded router's layout detection) key on it.
const LogFileName = "provlog.jsonl"

// checkpointFileName holds the FileStore's folded-state snapshot.
const checkpointFileName = "checkpoint.json"

// CheckpointPath returns the checkpoint file a FileStore rooted at dir
// writes; tools (and E15's cold-reopen measurement) remove it to force a
// full-scan reopen.
func CheckpointPath(dir string) string { return filepath.Join(dir, checkpointFileName) }

// OpenFileStore opens (or creates) a file store rooted at dir with no
// fsync on append — the historical default.
func OpenFileStore(dir string) (*FileStore, error) {
	return OpenFileStoreWith(dir, FileOptions{})
}

// OpenFileStoreDurable is OpenFileStore with per-append fsync: every
// PutRunLog syncs the log to stable storage before returning, so an
// accepted ingest survives power loss, at the cost of one commit latency
// per run. For concurrent writers, DurabilityGroup (OpenFileStoreWith)
// amortizes that latency across a whole batch.
func OpenFileStoreDurable(dir string) (*FileStore, error) {
	return OpenFileStoreWith(dir, FileOptions{Durability: DurabilityFsync})
}

// OpenFileStoreWith opens (or creates) a file store rooted at dir with
// explicit durability and checkpoint configuration, loading a checkpoint
// snapshot when one is present so only the log suffix replays.
func OpenFileStoreWith(dir string, opt FileOptions) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	path := filepath.Join(dir, LogFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s := &FileStore{
		dir:       dir,
		f:         f,
		opt:       opt,
		offsets:   map[string]int64{},
		pending:   map[string]bool{},
		foldQueue: map[int64]*foldEntry{},
		autoCkpt: NewAutoCheckpointPolicy(CheckpointPolicy{
			EveryRuns:  opt.CheckpointEvery,
			EveryBytes: opt.CheckpointBytes,
			Interval:   opt.CheckpointInterval,
		}),
		lastCkpt:  -1,
		artOwner:  map[string]string{},
		execOwner: map[string]string{},
		adj:       newAdjacency(),
	}
	s.foldCond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	policy := wal.SyncNone
	switch opt.Durability {
	case DurabilityFsync:
		policy = wal.SyncEachAppend
	case DurabilityGroup:
		policy = wal.SyncBatch
	}
	s.w = wal.NewWriter(f, s.size, wal.Options{
		Policy:        policy,
		FlushDelay:    opt.GroupFlushDelay,
		MaxBatchBytes: opt.MaxBatchBytes,
	})
	return s, nil
}

// fileCheckpoint is the on-disk snapshot of a FileStore's folded state:
// everything recover would rebuild by scanning the log up to LogOffset.
type fileCheckpoint struct {
	LogOffset int64               `json:"log_offset"`
	Order     []string            `json:"order"`
	Offsets   map[string]int64    `json:"offsets"`
	ArtOwner  map[string]string   `json:"art_owner"`
	ExecOwner map[string]string   `json:"exec_owner"`
	GenBy     map[string]string   `json:"gen_by"`
	Consumers map[string][]string `json:"consumers"`
	Used      map[string][]string `json:"used"`
	Generated map[string][]string `json:"generated"`
	Events    int                 `json:"events"`
	Anns      int                 `json:"annotations"`
}

// recover restores the indexes: from the checkpoint snapshot when a valid
// one exists (replaying only the log suffix past its offset), otherwise by
// scanning the whole log. A torn trailing record is truncated; only
// records surviving truncation reach index(), so the adjacency index never
// holds edges from torn bytes.
func (s *FileStore) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat log: %w", err)
	}
	logSize := fi.Size()

	var from int64
	var ck fileCheckpoint
	if ok, err := wal.LoadCheckpoint(filepath.Join(s.dir, checkpointFileName), &ck); err != nil {
		return err
	} else if ok && ck.LogOffset <= logSize && s.alignedOffset(ck.LogOffset) {
		// The snapshot is authoritative for the prefix: restore it and
		// replay only the suffix. The prefix bytes are never read here.
		s.offsets = ck.Offsets
		s.order = ck.Order
		s.artOwner = ck.ArtOwner
		s.execOwner = ck.ExecOwner
		s.adj = adjacency{genBy: ck.GenBy, consumers: ck.Consumers, used: ck.Used, generated: ck.Generated}
		ensureAdjacency(&s.adj)
		if s.offsets == nil {
			s.offsets = map[string]int64{}
		}
		if s.artOwner == nil {
			s.artOwner = map[string]string{}
		}
		if s.execOwner == nil {
			s.execOwner = map[string]string{}
		}
		s.nEvents = ck.Events
		s.nAnns = ck.Anns
		s.lastCkpt = ck.LogOffset
		from = ck.LogOffset
	}
	// A checkpoint claiming more log than exists, or an offset that does
	// not land on a record boundary, is stale (the log was replaced or
	// truncated by hand): fall back to the full scan with fresh state,
	// which the zero `from` above already encodes. Without the boundary
	// check a misaligned suffix scan would misparse its first line and
	// truncate valid records — the log is authoritative, so a suspect
	// checkpoint must never cost log bytes.

	r := bufio.NewReaderSize(io.NewSectionReader(s.f, from, logSize-from), 1<<20)
	offset := from
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// Torn write: truncate the partial record.
				if terr := s.f.Truncate(offset); terr != nil {
					return fmt.Errorf("store: truncate torn record: %w", terr)
				}
			}
			break
		}
		if err != nil {
			return fmt.Errorf("store: scan log: %w", err)
		}
		var l provenance.RunLog
		if uerr := json.Unmarshal(line, &l); uerr != nil || l.Run.ID == "" {
			// Corrupt record mid-file: stop indexing here and truncate the
			// remainder (append-only logs are valid up to the first tear).
			if terr := s.f.Truncate(offset); terr != nil {
				return fmt.Errorf("store: truncate corrupt record: %w", terr)
			}
			break
		}
		s.index(&l, offset)
		offset += int64(len(line))
	}
	s.size = offset
	return nil
}

// alignedOffset reports whether a checkpoint offset sits on a record
// boundary of the current log: zero, or immediately after a newline.
func (s *FileStore) alignedOffset(off int64) bool {
	if off == 0 {
		return true
	}
	var b [1]byte
	if _, err := s.f.ReadAt(b[:], off-1); err != nil {
		return false
	}
	return b[0] == '\n'
}

// ensureAdjacency replaces nil maps from a decoded checkpoint (empty maps
// marshal to null) with empty ones.
func ensureAdjacency(a *adjacency) {
	if a.genBy == nil {
		a.genBy = map[string]string{}
	}
	if a.consumers == nil {
		a.consumers = map[string][]string{}
	}
	if a.used == nil {
		a.used = map[string][]string{}
	}
	if a.generated == nil {
		a.generated = map[string][]string{}
	}
}

// index records a run log's offset and folds its entities and events into
// the resident adjacency index. Called from PutRunLog and recover only,
// with complete (non-torn) records.
func (s *FileStore) index(l *provenance.RunLog, offset int64) {
	s.offsets[l.Run.ID] = offset
	s.order = append(s.order, l.Run.ID)
	for _, a := range l.Artifacts {
		s.artOwner[a.ID] = l.Run.ID
	}
	for _, e := range l.Executions {
		s.execOwner[e.ID] = l.Run.ID
	}
	s.adj.fold(l.Events)
	s.nEvents += len(l.Events)
	s.nAnns += len(l.Annotations)
}

var _ Store = (*FileStore)(nil)
var _ Checkpointer = (*FileStore)(nil)
var _ LocalCloser = (*FileStore)(nil)

// Name implements Store.
func (s *FileStore) Name() string { return "file" }

// Durability reports the store's append commit guarantee.
func (s *FileStore) Durability() Durability { return s.opt.Durability }

// WALMetrics snapshots the append log's counters — appends, batches and
// fsyncs — the observable behind E15's fsync-reduction claim.
func (s *FileStore) WALMetrics() wal.Metrics { return s.w.Metrics() }

// foldEntry is one WAL-committed record waiting for its turn at the fold
// watermark.
type foldEntry struct {
	l   *provenance.RunLog
	end int64
}

// PutRunLog implements Store. Validation and encoding run outside the
// store lock; the append itself goes through the group-commit writer, so
// concurrent writers coalesce into shared batches (one fsync per batch
// under DurabilityGroup) instead of serializing their commits. The store
// lock covers only the duplicate-ID reservation and, after the WAL
// acknowledges the batch, the index fold — performed in strict log-offset
// order via the watermark queue, so the live index, a checkpoint snapshot
// and a reopen replay all agree on last-write-wins tie-breaks and Runs()
// order even when writers re-acquire the lock out of commit order.
func (s *FileStore) PutRunLog(l *provenance.RunLog) error {
	start := obs.Now()
	if err := s.putRunLog(l); err != nil {
		mStoreIngestErrors.Inc()
		return err
	}
	mStoreIngests.Inc()
	mStoreIngestSeconds.ObserveSince(start)
	return nil
}

func (s *FileStore) putRunLog(l *provenance.RunLog) error {
	if err := l.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("store: encode run %s: %w", l.Run.ID, err)
	}
	data = append(data, '\n')

	// Reserve the run ID so concurrent duplicates cannot both commit.
	s.mu.Lock()
	if s.pending[l.Run.ID] {
		s.mu.Unlock()
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	if _, dup := s.offsets[l.Run.ID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	s.pending[l.Run.ID] = true
	s.mu.Unlock()

	off, werr := s.w.Append(data)

	s.mu.Lock()
	if werr != nil {
		delete(s.pending, l.Run.ID)
		s.mu.Unlock()
		return fmt.Errorf("store: append run %s: %w", l.Run.ID, werr)
	}
	end := off + int64(len(data))
	s.foldQueue[off] = &foldEntry{l: l, end: end}
	// Fold everything contiguous at the watermark. A successful append at
	// offset X implies every lower offset's append also succeeded (WAL
	// batches commit in order and a failure poisons all successors), and
	// each of those writers is past its Append return, so any gap below
	// us is filled by a writer that is about to take this lock: waiting
	// for our own record to fold always terminates.
	advanced := false
	for {
		fe, ok := s.foldQueue[s.size]
		if !ok {
			break
		}
		delete(s.foldQueue, s.size)
		s.index(fe.l, s.size)
		s.size = fe.end
		advanced = true
	}
	if advanced {
		s.foldCond.Broadcast()
	}
	for s.size < end {
		s.foldCond.Wait()
	}
	// Release the duplicate reservation only now, in the same lock hold
	// that saw our record folded: offsets[runID] is set, so the dup guard
	// hands off from pending to offsets with no window in between. While
	// we waited at the watermark the record was committed but not yet in
	// offsets — dropping pending back then would let a concurrent retry of
	// the same run ID pass both guards and commit the run twice.
	delete(s.pending, l.Run.ID)
	s.mu.Unlock()
	s.autoCkpt.Tick(int64(len(data)), s.Checkpoint)
	return nil
}

// Checkpoint implements Checkpointer. The watermark invariant makes any
// instant a consistent snapshot point — every record below s.size is
// folded — so the snapshot copies the state under a read lock (readers
// proceed, writers wait only for the copy), then the log is fsynced up to
// the snapshot and the checkpoint file atomically installed, all outside
// any lock.
func (s *FileStore) Checkpoint() error {
	s.mu.RLock()
	ck := s.snapshotLocked()
	s.mu.RUnlock()

	// The snapshot covers only bytes written before their Append returned,
	// which happened before the snapshot was taken: syncing now makes the
	// whole covered prefix durable before the checkpoint claims it.
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: checkpoint sync: %w", err)
	}
	if err := wal.SaveCheckpoint(filepath.Join(s.dir, checkpointFileName), ck); err != nil {
		return err
	}
	s.mu.Lock()
	if ck.LogOffset > s.lastCkpt {
		s.lastCkpt = ck.LogOffset
	}
	s.mu.Unlock()
	return nil
}

// LastCheckpoint reports the log offset covered by the most recent
// checkpoint (loaded or written), ok=false when none exists.
func (s *FileStore) LastCheckpoint() (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastCkpt, s.lastCkpt >= 0
}

// snapshotLocked deep-copies the folded state; the caller holds at least
// a read lock, and the watermark invariant guarantees every record below
// s.size is indexed.
func (s *FileStore) snapshotLocked() *fileCheckpoint {
	return &fileCheckpoint{
		LogOffset: s.size,
		Order:     append([]string(nil), s.order...),
		Offsets:   maps.Clone(s.offsets),
		ArtOwner:  maps.Clone(s.artOwner),
		ExecOwner: maps.Clone(s.execOwner),
		GenBy:     maps.Clone(s.adj.genBy),
		Consumers: copyListMap(s.adj.consumers),
		Used:      copyListMap(s.adj.used),
		Generated: copyListMap(s.adj.generated),
		Events:    s.nEvents,
		Anns:      s.nAnns,
	}
}

func copyListMap(m map[string][]string) map[string][]string {
	out := make(map[string][]string, len(m))
	for k, v := range m {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// load reads the log owning a run ID from disk; the caller holds at least
// a read lock. The read is positional (ReadAt), so it never races the WAL
// writer's appends past s.size.
func (s *FileStore) load(runID string) (*provenance.RunLog, error) {
	off, ok := s.offsets[runID]
	if !ok {
		return nil, fmt.Errorf("%w: run %q", ErrNotFound, runID)
	}
	r := io.NewSectionReader(s.f, off, s.size-off)
	line, err := bufio.NewReaderSize(r, 1<<20).ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: read run %s: %w", runID, err)
	}
	var l provenance.RunLog
	if err := json.Unmarshal(line, &l); err != nil {
		return nil, fmt.Errorf("store: decode run %s: %w", runID, err)
	}
	return &l, nil
}

// RunLog implements Store.
func (s *FileStore) RunLog(runID string) (*provenance.RunLog, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.load(runID)
}

// Runs implements Store.
func (s *FileStore) Runs() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...), nil
}

// Artifact implements Store. Full entity records live only in the log, so
// this loads the owning run from disk.
func (s *FileStore) Artifact(id string) (*provenance.Artifact, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	runID, ok := s.artOwner[id]
	if !ok {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	l, err := s.load(runID)
	if err != nil {
		return nil, err
	}
	a := l.Artifact(id)
	if a == nil {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	return a, nil
}

// Execution implements Store.
func (s *FileStore) Execution(id string) (*provenance.Execution, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	runID, ok := s.execOwner[id]
	if !ok {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	l, err := s.load(runID)
	if err != nil {
		return nil, err
	}
	e := l.Execution(id)
	if e == nil {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	return e, nil
}

// known reports whether an ID names any stored entity; the caller holds
// at least a read lock.
func (s *FileStore) known(id string) bool {
	_, isArt := s.artOwner[id]
	_, isExec := s.execOwner[id]
	return isArt || isExec
}

// GeneratorOf implements Store, answered from the resident adjacency
// index without touching disk.
func (s *FileStore) GeneratorOf(artifactID string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.known(artifactID) {
		return "", fmt.Errorf("%w: entity %q", ErrNotFound, artifactID)
	}
	g, ok := s.adj.genBy[artifactID]
	if !ok {
		return "", fmt.Errorf("%w: generator of %q", ErrNotFound, artifactID)
	}
	return g, nil
}

// ConsumersOf implements Store, answered from the resident index.
func (s *FileStore) ConsumersOf(artifactID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.known(artifactID) {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, artifactID)
	}
	return sortedUnique(s.adj.consumers[artifactID]), nil
}

// Used implements Store, answered from the resident index.
func (s *FileStore) Used(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.known(execID) {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, execID)
	}
	return sortedUnique(s.adj.used[execID]), nil
}

// Generated implements Store, answered from the resident index.
func (s *FileStore) Generated(execID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.known(execID) {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, execID)
	}
	return sortedUnique(s.adj.generated[execID]), nil
}

// kindLocked classifies an ID for traversal; the caller holds at least a
// read lock. Artifact classification wins for an ID stored as both kinds,
// matching the other backends.
func (s *FileStore) kindLocked(id string) entityKind {
	if _, isArt := s.artOwner[id]; isArt {
		return kindArtifact
	}
	if _, isExec := s.execOwner[id]; isExec {
		return kindExecution
	}
	return kindUnknown
}

// neighborsLocked resolves one entity's frontier neighbors from the shared
// adjacency core over the resident index; the caller holds at least a read
// lock.
func (s *FileStore) neighborsLocked(id string, dir Direction) ([]string, bool) {
	return s.adj.neighbors(id, dir, s.kindLocked(id))
}

// Expand implements Store: the whole frontier is served from the resident
// index under one shared-lock acquisition, zero disk reads.
func (s *FileStore) Expand(ids []string, dir Direction) (map[string][]string, error) {
	start := obs.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]string, len(ids))
	for _, id := range ids {
		if ns, ok := s.neighborsLocked(id, dir); ok {
			out[id] = ns
		}
	}
	mStoreExpandSecs.ObserveSince(start)
	return out, nil
}

// Closure implements Store: the full BFS runs on the resident adjacency
// index under a shared lock — zero disk reads after open, and concurrent
// closure sweeps proceed in parallel instead of queueing on one mutex.
func (s *FileStore) Closure(seed string, dir Direction) ([]string, error) {
	start := obs.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, err := bfsClosure(seed, dir, s.neighborsLocked)
	if err == nil {
		mStoreClosureSecs.ObserveSince(start)
	}
	return out, err
}

// CloseLocal implements LocalCloser: the local fixpoint runs on the
// resident adjacency index under one shared-lock acquisition, zero disk
// reads (the sharded router's closure-pushdown primitive).
func (s *FileStore) CloseLocal(seeds []string, dir Direction, skip func(string) bool, buf []LocalNeighbors) ([]LocalNeighbors, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return localCloseBFS(seeds, dir, skip, s.neighborsLocked, buf), nil
}

// Stats implements Store, answered from resident counters.
func (s *FileStore) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Runs:        len(s.order),
		Executions:  len(s.execOwner),
		Artifacts:   len(s.artOwner),
		Events:      s.nEvents,
		Annotations: s.nAnns,
		Bytes:       s.size,
	}, nil
}

// Close implements Store, draining any in-flight auto-checkpoint and the
// append pipeline before closing the log file.
func (s *FileStore) Close() error {
	s.autoCkpt.Drain()
	_ = s.w.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
