package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/provenance"
)

// FileStore persists run logs to an append-only JSON-lines file, the
// file-dialect storage approach (§2.2: "XML dialects that are stored as
// files"). An in-memory index maps run IDs to byte offsets and entity IDs
// to their runs; single-entity and navigation queries load the owning log
// from disk, which makes this the slowest — and most durable — backend.
// Reopening a store directory rebuilds the index by scanning the log,
// truncating any torn trailing record (crash recovery).
type FileStore struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	offsets map[string]int64  // runID -> byte offset
	order   []string          // runIDs in append order
	owner   map[string]string // artifact/execution ID -> runID
	size    int64
}

const logFileName = "provlog.jsonl"

// OpenFileStore opens (or creates) a file store rooted at dir, scanning any
// existing log to rebuild the index.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	path := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s := &FileStore{
		dir:     dir,
		f:       f,
		offsets: map[string]int64{},
		owner:   map[string]string{},
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the log, indexing complete records and truncating a torn
// trailing record if present.
func (s *FileStore) recover() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(s.f, 1<<20)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// Torn write: truncate the partial record.
				if terr := s.f.Truncate(offset); terr != nil {
					return fmt.Errorf("store: truncate torn record: %w", terr)
				}
			}
			break
		}
		if err != nil {
			return fmt.Errorf("store: scan log: %w", err)
		}
		var l provenance.RunLog
		if uerr := json.Unmarshal(line, &l); uerr != nil || l.Run.ID == "" {
			// Corrupt record mid-file: stop indexing here and truncate the
			// remainder (append-only logs are valid up to the first tear).
			if terr := s.f.Truncate(offset); terr != nil {
				return fmt.Errorf("store: truncate corrupt record: %w", terr)
			}
			break
		}
		s.index(&l, offset)
		offset += int64(len(line))
	}
	s.size = offset
	_, err := s.f.Seek(offset, io.SeekStart)
	return err
}

func (s *FileStore) index(l *provenance.RunLog, offset int64) {
	s.offsets[l.Run.ID] = offset
	s.order = append(s.order, l.Run.ID)
	for _, a := range l.Artifacts {
		s.owner[a.ID] = l.Run.ID
	}
	for _, e := range l.Executions {
		s.owner[e.ID] = l.Run.ID
	}
}

var _ Store = (*FileStore)(nil)

// Name implements Store.
func (s *FileStore) Name() string { return "file" }

// PutRunLog implements Store.
func (s *FileStore) PutRunLog(l *provenance.RunLog) error {
	if err := l.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.offsets[l.Run.ID]; dup {
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("store: encode run %s: %w", l.Run.ID, err)
	}
	data = append(data, '\n')
	if _, err := s.f.Write(data); err != nil {
		return fmt.Errorf("store: append run %s: %w", l.Run.ID, err)
	}
	s.index(l, s.size)
	s.size += int64(len(data))
	return nil
}

// load reads the log owning a run ID from disk.
func (s *FileStore) load(runID string) (*provenance.RunLog, error) {
	off, ok := s.offsets[runID]
	if !ok {
		return nil, fmt.Errorf("%w: run %q", ErrNotFound, runID)
	}
	r := io.NewSectionReader(s.f, off, s.size-off)
	line, err := bufio.NewReaderSize(r, 1<<20).ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: read run %s: %w", runID, err)
	}
	var l provenance.RunLog
	if err := json.Unmarshal(line, &l); err != nil {
		return nil, fmt.Errorf("store: decode run %s: %w", runID, err)
	}
	return &l, nil
}

// RunLog implements Store.
func (s *FileStore) RunLog(runID string) (*provenance.RunLog, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load(runID)
}

// Runs implements Store.
func (s *FileStore) Runs() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...), nil
}

func (s *FileStore) loadOwner(entityID string) (*provenance.RunLog, error) {
	runID, ok := s.owner[entityID]
	if !ok {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, entityID)
	}
	return s.load(runID)
}

// Artifact implements Store.
func (s *FileStore) Artifact(id string) (*provenance.Artifact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.loadOwner(id)
	if err != nil {
		return nil, err
	}
	a := l.Artifact(id)
	if a == nil {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	return a, nil
}

// Execution implements Store.
func (s *FileStore) Execution(id string) (*provenance.Execution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.loadOwner(id)
	if err != nil {
		return nil, err
	}
	e := l.Execution(id)
	if e == nil {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	return e, nil
}

// GeneratorOf implements Store.
func (s *FileStore) GeneratorOf(artifactID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.loadOwner(artifactID)
	if err != nil {
		return "", err
	}
	gen := l.GeneratorOf(artifactID)
	if gen == nil {
		return "", fmt.Errorf("%w: generator of %q", ErrNotFound, artifactID)
	}
	return gen.ID, nil
}

// ConsumersOf implements Store.
func (s *FileStore) ConsumersOf(artifactID string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.loadOwner(artifactID)
	if err != nil {
		return nil, err
	}
	execs := l.ConsumersOf(artifactID)
	out := make([]string, len(execs))
	for i, e := range execs {
		out[i] = e.ID
	}
	return out, nil
}

// Used implements Store.
func (s *FileStore) Used(execID string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.loadOwner(execID)
	if err != nil {
		return nil, err
	}
	arts := l.ArtifactsUsedBy(execID)
	out := make([]string, len(arts))
	for i, a := range arts {
		out[i] = a.ID
	}
	return out, nil
}

// Generated implements Store.
func (s *FileStore) Generated(execID string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.loadOwner(execID)
	if err != nil {
		return nil, err
	}
	arts := l.ArtifactsGeneratedBy(execID)
	out := make([]string, len(arts))
	for i, a := range arts {
		out[i] = a.ID
	}
	return out, nil
}

// Stats implements Store.
func (s *FileStore) Stats() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Runs: len(s.order), Bytes: s.size}
	for _, runID := range s.order {
		l, err := s.load(runID)
		if err != nil {
			return st, err
		}
		st.Executions += len(l.Executions)
		st.Artifacts += len(l.Artifacts)
		st.Events += len(l.Events)
		st.Annotations += len(l.Annotations)
	}
	return st, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
