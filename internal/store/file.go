package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/provenance"
)

// FileStore persists run logs to an append-only JSON-lines file, the
// file-dialect storage approach (§2.2: "XML dialects that are stored as
// files"). An in-memory index maps run IDs to byte offsets and entity IDs
// to their runs, and a resident adjacency index — rebuilt at open/ingest
// time from the same records — serves graph navigation (GeneratorOf,
// ConsumersOf, Used, Generated, Expand, Closure) without re-reading the
// log, so closure queries perform zero disk reads after open. Full-entity
// and run-log retrieval still load the owning log from disk, which keeps
// this the most durable — and for record retrieval the slowest — backend.
// Reopening a store directory rebuilds both indexes by scanning the log,
// truncating any torn trailing record (crash recovery); a truncated record
// is never indexed, so the adjacency index stays consistent with the
// surviving bytes.
type FileStore struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	durable bool
	offsets map[string]int64 // runID -> byte offset
	order   []string         // runIDs in append order
	size    int64

	// Resident adjacency and entity-kind index: navigation never touches
	// disk. Owners are tracked per kind so an ID stored as an artifact by
	// one run and as an execution by another keeps both entities
	// addressable, with artifact classification winning for traversal
	// (matching the other backends).
	artOwner  map[string]string // artifact ID -> runID
	execOwner map[string]string // execution ID -> runID
	adj       adjacency

	// Resident counters so Stats does not re-read the log.
	nEvents int
	nAnns   int
}

const logFileName = "provlog.jsonl"

// OpenFileStore opens (or creates) a file store rooted at dir, scanning any
// existing log to rebuild the offset and adjacency indexes.
func OpenFileStore(dir string) (*FileStore, error) {
	return openFileStore(dir, false)
}

// OpenFileStoreDurable is OpenFileStore with per-append fsync: every
// PutRunLog syncs the log to stable storage before returning, so an
// accepted ingest survives power loss, at the cost of one commit latency
// per run. The sharded router overlaps these commits across shards, which
// is what its multi-shard ingest-throughput win (experiment E14) measures.
func OpenFileStoreDurable(dir string) (*FileStore, error) {
	return openFileStore(dir, true)
}

func openFileStore(dir string, durable bool) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	path := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s := &FileStore{
		dir:       dir,
		f:         f,
		durable:   durable,
		offsets:   map[string]int64{},
		artOwner:  map[string]string{},
		execOwner: map[string]string{},
		adj:       newAdjacency(),
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the log, indexing complete records and truncating a torn
// trailing record if present. Only records surviving truncation reach
// index(), so the adjacency index never holds edges from torn bytes.
func (s *FileStore) recover() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(s.f, 1<<20)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// Torn write: truncate the partial record.
				if terr := s.f.Truncate(offset); terr != nil {
					return fmt.Errorf("store: truncate torn record: %w", terr)
				}
			}
			break
		}
		if err != nil {
			return fmt.Errorf("store: scan log: %w", err)
		}
		var l provenance.RunLog
		if uerr := json.Unmarshal(line, &l); uerr != nil || l.Run.ID == "" {
			// Corrupt record mid-file: stop indexing here and truncate the
			// remainder (append-only logs are valid up to the first tear).
			if terr := s.f.Truncate(offset); terr != nil {
				return fmt.Errorf("store: truncate corrupt record: %w", terr)
			}
			break
		}
		s.index(&l, offset)
		offset += int64(len(line))
	}
	s.size = offset
	_, err := s.f.Seek(offset, io.SeekStart)
	return err
}

// index records a run log's offset and folds its entities and events into
// the resident adjacency index. Called from PutRunLog and recover only,
// with complete (non-torn) records.
func (s *FileStore) index(l *provenance.RunLog, offset int64) {
	s.offsets[l.Run.ID] = offset
	s.order = append(s.order, l.Run.ID)
	for _, a := range l.Artifacts {
		s.artOwner[a.ID] = l.Run.ID
	}
	for _, e := range l.Executions {
		s.execOwner[e.ID] = l.Run.ID
	}
	s.adj.fold(l.Events)
	s.nEvents += len(l.Events)
	s.nAnns += len(l.Annotations)
}

var _ Store = (*FileStore)(nil)

// Name implements Store.
func (s *FileStore) Name() string { return "file" }

// PutRunLog implements Store. Validation and encoding run outside the
// store lock, so concurrent writers (to this store or to sibling shards
// behind a router) marshal while another append's commit is in flight; the
// lock covers only the append, the optional fsync and the index fold.
func (s *FileStore) PutRunLog(l *provenance.RunLog) error {
	if err := l.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("store: encode run %s: %w", l.Run.ID, err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.offsets[l.Run.ID]; dup {
		return fmt.Errorf("store: run %q already stored", l.Run.ID)
	}
	if _, err := s.f.Write(data); err != nil {
		s.discardTail()
		return fmt.Errorf("store: append run %s: %w", l.Run.ID, err)
	}
	if s.durable {
		if err := s.f.Sync(); err != nil {
			s.discardTail()
			return fmt.Errorf("store: sync run %s: %w", l.Run.ID, err)
		}
	}
	s.index(l, s.size)
	s.size += int64(len(data))
	return nil
}

// discardTail truncates the log back to the last indexed record after a
// failed append or sync, so the rejected run's bytes are neither counted
// against later runs' offsets nor resurrected by the next recover scan.
// The seek is unconditional: even if the truncate fails, the next append
// must land at s.size (overwriting the orphan) for the offset index to
// stay correct. Fully best-effort beyond that — if the device is gone, the
// orphan is at least never indexed in this process, and a torn tail is
// dropped by recover at next open; a fully written record whose sync,
// truncate and overwrite all failed can still resurface then.
func (s *FileStore) discardTail() {
	_ = s.f.Truncate(s.size)
	_, _ = s.f.Seek(s.size, io.SeekStart)
}

// load reads the log owning a run ID from disk.
func (s *FileStore) load(runID string) (*provenance.RunLog, error) {
	off, ok := s.offsets[runID]
	if !ok {
		return nil, fmt.Errorf("%w: run %q", ErrNotFound, runID)
	}
	r := io.NewSectionReader(s.f, off, s.size-off)
	line, err := bufio.NewReaderSize(r, 1<<20).ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: read run %s: %w", runID, err)
	}
	var l provenance.RunLog
	if err := json.Unmarshal(line, &l); err != nil {
		return nil, fmt.Errorf("store: decode run %s: %w", runID, err)
	}
	return &l, nil
}

// RunLog implements Store.
func (s *FileStore) RunLog(runID string) (*provenance.RunLog, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load(runID)
}

// Runs implements Store.
func (s *FileStore) Runs() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...), nil
}

// Artifact implements Store. Full entity records live only in the log, so
// this loads the owning run from disk.
func (s *FileStore) Artifact(id string) (*provenance.Artifact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	runID, ok := s.artOwner[id]
	if !ok {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	l, err := s.load(runID)
	if err != nil {
		return nil, err
	}
	a := l.Artifact(id)
	if a == nil {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, id)
	}
	return a, nil
}

// Execution implements Store.
func (s *FileStore) Execution(id string) (*provenance.Execution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	runID, ok := s.execOwner[id]
	if !ok {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	l, err := s.load(runID)
	if err != nil {
		return nil, err
	}
	e := l.Execution(id)
	if e == nil {
		return nil, fmt.Errorf("%w: execution %q", ErrNotFound, id)
	}
	return e, nil
}

// known reports whether an ID names any stored entity; the caller holds
// the store lock.
func (s *FileStore) known(id string) bool {
	_, isArt := s.artOwner[id]
	_, isExec := s.execOwner[id]
	return isArt || isExec
}

// GeneratorOf implements Store, answered from the resident adjacency
// index without touching disk.
func (s *FileStore) GeneratorOf(artifactID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.known(artifactID) {
		return "", fmt.Errorf("%w: entity %q", ErrNotFound, artifactID)
	}
	g, ok := s.adj.genBy[artifactID]
	if !ok {
		return "", fmt.Errorf("%w: generator of %q", ErrNotFound, artifactID)
	}
	return g, nil
}

// ConsumersOf implements Store, answered from the resident index.
func (s *FileStore) ConsumersOf(artifactID string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.known(artifactID) {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, artifactID)
	}
	return sortedUnique(s.adj.consumers[artifactID]), nil
}

// Used implements Store, answered from the resident index.
func (s *FileStore) Used(execID string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.known(execID) {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, execID)
	}
	return sortedUnique(s.adj.used[execID]), nil
}

// Generated implements Store, answered from the resident index.
func (s *FileStore) Generated(execID string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.known(execID) {
		return nil, fmt.Errorf("%w: entity %q", ErrNotFound, execID)
	}
	return sortedUnique(s.adj.generated[execID]), nil
}

// kindLocked classifies an ID for traversal; the caller holds the store
// lock. Artifact classification wins for an ID stored as both kinds,
// matching the other backends.
func (s *FileStore) kindLocked(id string) entityKind {
	if _, isArt := s.artOwner[id]; isArt {
		return kindArtifact
	}
	if _, isExec := s.execOwner[id]; isExec {
		return kindExecution
	}
	return kindUnknown
}

// neighborsLocked resolves one entity's frontier neighbors from the shared
// adjacency core over the resident index; the caller holds the store lock.
func (s *FileStore) neighborsLocked(id string, dir Direction) ([]string, bool) {
	return s.adj.neighbors(id, dir, s.kindLocked(id))
}

// Expand implements Store: the whole frontier is served from the resident
// index under one lock acquisition, zero disk reads.
func (s *FileStore) Expand(ids []string, dir Direction) (map[string][]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]string, len(ids))
	for _, id := range ids {
		if ns, ok := s.neighborsLocked(id, dir); ok {
			out[id] = ns
		}
	}
	return out, nil
}

// Closure implements Store: the full BFS runs on the resident adjacency
// index — zero disk reads after open, where the per-edge path re-read and
// re-decoded the owning run log once per visited node.
func (s *FileStore) Closure(seed string, dir Direction) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return bfsClosure(seed, dir, s.neighborsLocked)
}

// Stats implements Store, answered from resident counters.
func (s *FileStore) Stats() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Runs:        len(s.order),
		Executions:  len(s.execOwner),
		Artifacts:   len(s.artOwner),
		Events:      s.nEvents,
		Annotations: s.nAnns,
		Bytes:       s.size,
	}, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
