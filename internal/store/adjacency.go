package store

import "repro/internal/provenance"

// entityKind classifies an ID for traversal. Artifact classification wins
// when an ID is stored as both kinds — the shared rule of every backend.
type entityKind int

const (
	kindUnknown entityKind = iota
	kindArtifact
	kindExecution
)

// adjacency is the event-fold and neighbor-resolution core shared by
// MemStore and FileStore (and, through MergeNeighbors, the sharded
// router's gather step): the one place the traversal tie-break and dedup
// rules live. Generator edges are last-write-wins (a later run re-declaring
// an artifact's generator rewrites the Up edge); consumer/used/generated
// lists accumulate across runs and are served sorted and deduplicated.
type adjacency struct {
	genBy     map[string]string   // artifact -> execution
	consumers map[string][]string // artifact -> executions
	used      map[string][]string // execution -> artifacts
	generated map[string][]string // execution -> artifacts
}

func newAdjacency() adjacency {
	return adjacency{
		genBy:     map[string]string{},
		consumers: map[string][]string{},
		used:      map[string][]string{},
		generated: map[string][]string{},
	}
}

// fold indexes one run log's use/gen events. Callers pass complete,
// validated logs; fold is idempotent per event list, not per event.
func (a *adjacency) fold(events []provenance.Event) {
	for _, ev := range events {
		switch ev.Kind {
		case provenance.EventArtifactGen:
			a.genBy[ev.ArtifactID] = ev.ExecutionID
			a.generated[ev.ExecutionID] = append(a.generated[ev.ExecutionID], ev.ArtifactID)
		case provenance.EventArtifactUsed:
			a.consumers[ev.ArtifactID] = append(a.consumers[ev.ArtifactID], ev.ExecutionID)
			a.used[ev.ExecutionID] = append(a.used[ev.ExecutionID], ev.ArtifactID)
		}
	}
}

// neighbors resolves one entity's frontier neighbors given the kind the
// owning backend classified it as: the generating execution (or nothing)
// for an artifact going Up, consuming executions going Down; used artifacts
// for an execution going Up, generated artifacts going Down. ok=false for
// kindUnknown, mirroring the Expand contract's known/unknown distinction.
func (a *adjacency) neighbors(id string, dir Direction, kind entityKind) ([]string, bool) {
	switch kind {
	case kindArtifact:
		if dir == Up {
			if g, ok := a.genBy[id]; ok {
				return []string{g}, true
			}
			return nil, true
		}
		return sortedUnique(a.consumers[id]), true
	case kindExecution:
		if dir == Up {
			return sortedUnique(a.used[id]), true
		}
		return sortedUnique(a.generated[id]), true
	}
	return nil, false
}

// MergeNeighbors merges sorted-unique neighbor lists from multiple
// backends into one list preserving the Expand contract (sorted,
// deduplicated) — the sharded router's gather step, kept next to the
// adjacency fold so the dedup rules stay in one package.
func MergeNeighbors(lists ...[]string) []string {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]string(nil), lists[0]...)
	}
	var all []string
	for _, l := range lists {
		all = append(all, l...)
	}
	return sortedUnique(all)
}
