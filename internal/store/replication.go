package store

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/provenance"
)

// Log shipping primitives. A FileStore's append log is already a durable,
// prefix-consistent record stream: the fold watermark s.size marks a byte
// position below which every record is committed, indexed and stable
// (failed WAL batches only ever truncate bytes at or above the watermark).
// Replication ships that prefix verbatim: a primary serves record-aligned
// chunks of [0, size) with ReadCommitted, and a follower appends them
// byte-for-byte with ApplyReplicated, so the follower's log is at every
// moment an exact prefix of the primary's and its own size doubles as its
// replication position — resuming after a crash is just "stream from my
// local committed size", with torn tails healed by the ordinary reopen
// truncation scan.

// Dir returns the directory the store is rooted at, so replication
// tooling can address its sidecar files (checkpoint snapshot).
func (s *FileStore) Dir() string { return s.dir }

// CommittedOffset returns the fold watermark: the size of the committed,
// indexed log prefix. This is both the primary's shippable extent and a
// follower's applied position.
func (s *FileStore) CommittedOffset() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// ReadCommitted returns a record-aligned chunk of the committed log
// starting at from, at most maxBytes long (0: a 1 MiB default), along
// with the committed size at the time of the read. The returned bytes
// always end on a record boundary; when a single record exceeds maxBytes
// the cap grows until that record fits, so progress is guaranteed. The
// read is positional against the stable prefix, so it never races the
// writer and needs no lock beyond the watermark load.
func (s *FileStore) ReadCommitted(from int64, maxBytes int) ([]byte, int64, error) {
	s.mu.RLock()
	committed := s.size
	s.mu.RUnlock()
	if from < 0 || from > committed {
		return nil, committed, fmt.Errorf("store: read committed: offset %d outside [0,%d]", from, committed)
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	for {
		n := committed - from
		if n == 0 {
			return nil, committed, nil
		}
		if int64(maxBytes) < n {
			n = int64(maxBytes)
		}
		buf := make([]byte, n)
		if _, err := s.f.ReadAt(buf, from); err != nil {
			return nil, committed, fmt.Errorf("store: read committed: %w", err)
		}
		if n == committed-from {
			// Ends exactly at the watermark, which is always a record
			// boundary.
			return buf, committed, nil
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			return buf[:i+1], committed, nil
		}
		// The first record alone exceeds the cap: grow until it fits.
		maxBytes *= 2
	}
}

// ApplyReplicated appends a shipped batch of whole records (newline
// framed, exactly as ReadCommitted returned them) and folds each into
// the index through the same watermark queue as PutRunLog, so the
// follower's in-memory state equals a replay of its log — the invariant
// checkpoints and reopens rely on. It returns the decoded run logs (for
// cache delta patching and router indexing) and the new committed size.
//
// The batch must continue exactly at this store's committed offset; the
// caller (internal/store/replica) guarantees that by streaming from
// CommittedOffset. Duplicate-run guarding is not re-checked here: the
// primary's log cannot contain duplicates, and a replica store has no
// other writers.
func (s *FileStore) ApplyReplicated(data []byte) ([]*provenance.RunLog, int64, error) {
	if len(data) == 0 {
		return nil, s.CommittedOffset(), nil
	}
	if data[len(data)-1] != '\n' {
		return nil, 0, fmt.Errorf("store: apply replicated: torn batch (no trailing newline)")
	}
	// Decode outside the lock, keeping each record's framed length so the
	// batch folds at the same per-record offsets the primary committed.
	type rec struct {
		l     *provenance.RunLog
		frame int64
	}
	var recs []rec
	for rest := data; len(rest) > 0; {
		i := bytes.IndexByte(rest, '\n')
		line := rest[:i+1]
		rest = rest[i+1:]
		l := &provenance.RunLog{}
		if err := json.Unmarshal(line, l); err != nil {
			return nil, 0, fmt.Errorf("store: apply replicated: corrupt record: %w", err)
		}
		if l.Run.ID == "" {
			return nil, 0, fmt.Errorf("store: apply replicated: record without run ID")
		}
		recs = append(recs, rec{l: l, frame: int64(len(line))})
	}

	off, werr := s.w.Append(data)
	if werr != nil {
		return nil, 0, fmt.Errorf("store: apply replicated: %w", werr)
	}
	end := off + int64(len(data))

	s.mu.Lock()
	at := off
	for _, rc := range recs {
		s.foldQueue[at] = &foldEntry{l: rc.l, end: at + rc.frame}
		at += rc.frame
	}
	advanced := false
	for {
		fe, ok := s.foldQueue[s.size]
		if !ok {
			break
		}
		delete(s.foldQueue, s.size)
		s.index(fe.l, s.size)
		s.size = fe.end
		advanced = true
	}
	if advanced {
		s.foldCond.Broadcast()
	}
	for s.size < end {
		s.foldCond.Wait()
	}
	s.mu.Unlock()

	logs := make([]*provenance.RunLog, len(recs))
	for i, rc := range recs {
		logs[i] = rc.l
	}
	s.autoCkpt.Tick(int64(len(data)), s.Checkpoint)
	return logs, end, nil
}
