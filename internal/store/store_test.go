package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workloads"
)

// openAll returns one fresh store per backend.
func openAll(t *testing.T) []Store {
	t.Helper()
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return []Store{NewMemStore(), NewRelStore(), NewTripleStore(), fs}
}

// captureRun executes the Figure 1 workflow and returns its log plus the
// artifact ID of the rendered image and the run result.
func captureRun(t *testing.T) (*provenance.RunLog, string, *engine.Result) {
	t.Helper()
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
	res, err := e.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	log, err := col.Log(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	return log, res.Artifacts["render.image"], res
}

func TestConformance(t *testing.T) {
	log, imageArt, res := captureRun(t)
	for _, s := range openAll(t) {
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Close()
			if err := s.PutRunLog(log); err != nil {
				t.Fatal(err)
			}
			// Duplicate rejected.
			if err := s.PutRunLog(log); err == nil {
				t.Fatal("duplicate run accepted")
			}
			// Round trip.
			got, err := s.RunLog(log.Run.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.Run.ID != log.Run.ID || len(got.Executions) != len(log.Executions) {
				t.Fatalf("round trip mismatch: %+v", got.Run)
			}
			runs, err := s.Runs()
			if err != nil || len(runs) != 1 || runs[0] != log.Run.ID {
				t.Fatalf("Runs = %v, %v", runs, err)
			}
			// Entity lookups.
			a, err := s.Artifact(imageArt)
			if err != nil {
				t.Fatal(err)
			}
			if a.Type != workloads.TypeImage {
				t.Fatalf("artifact type = %q", a.Type)
			}
			renderExec := log.ExecutionForModule("render")
			e, err := s.Execution(renderExec.ID)
			if err != nil {
				t.Fatal(err)
			}
			if e.ModuleID != "render" {
				t.Fatalf("execution module = %q", e.ModuleID)
			}
			// Navigation.
			gen, err := s.GeneratorOf(imageArt)
			if err != nil {
				t.Fatal(err)
			}
			if gen != renderExec.ID {
				t.Fatalf("generator = %q, want %q", gen, renderExec.ID)
			}
			gridArt := res.Artifacts["reader.data"]
			consumers, err := s.ConsumersOf(gridArt)
			if err != nil {
				t.Fatal(err)
			}
			if len(consumers) != 2 {
				t.Fatalf("consumers = %v", consumers)
			}
			used, err := s.Used(renderExec.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(used) != 1 || used[0] != res.Artifacts["contour.surface"] {
				t.Fatalf("used = %v", used)
			}
			generated, err := s.Generated(renderExec.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(generated) != 1 || generated[0] != imageArt {
				t.Fatalf("generated = %v", generated)
			}
			// Not-found paths.
			if _, err := s.Artifact("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing artifact err = %v", err)
			}
			if _, err := s.Execution("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing execution err = %v", err)
			}
			if _, err := s.RunLog("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing run err = %v", err)
			}
			if _, err := s.GeneratorOf(gridArt); err != nil {
				t.Fatalf("grid has generator (reader): %v", err)
			}
			// Stats plausible.
			st, err := s.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Runs != 1 || st.Executions != 4 || st.Artifacts != 5 || st.Bytes <= 0 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestLineageAndDependentsAgreeAcrossBackends(t *testing.T) {
	log, imageArt, res := captureRun(t)
	var want []string
	for _, s := range openAll(t) {
		if err := s.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		lin, err := Lineage(s, imageArt)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if want == nil {
			want = lin
			// image <- render <- surface <- contour <- grid <- reader.
			if len(lin) != 5 {
				t.Fatalf("lineage size = %d (%v)", len(lin), lin)
			}
		} else if fmt.Sprint(lin) != fmt.Sprint(want) {
			t.Fatalf("%s lineage = %v, want %v", s.Name(), lin, want)
		}
		deps, err := Dependents(s, res.Artifacts["reader.data"])
		if err != nil {
			t.Fatal(err)
		}
		// grid -> {histogram, contour} -> {plot, hist, surface} -> render -> image: 7.
		if len(deps) != 7 {
			t.Fatalf("%s dependents = %v", s.Name(), deps)
		}
		s.Close()
	}
}

func TestLineageUnknownEntity(t *testing.T) {
	s := NewMemStore()
	if _, err := Lineage(s, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultipleRuns(t *testing.T) {
	logA, _, _ := captureRun(t)
	logB, _, _ := captureRun(t)
	for _, s := range openAll(t) {
		if err := s.PutRunLog(logA); err != nil {
			t.Fatal(err)
		}
		if err := s.PutRunLog(logB); err != nil {
			t.Fatal(err)
		}
		runs, _ := s.Runs()
		if len(runs) != 2 || runs[0] != logA.Run.ID || runs[1] != logB.Run.ID {
			t.Fatalf("%s runs = %v", s.Name(), runs)
		}
		st, _ := s.Stats()
		if st.Runs != 2 || st.Executions != 8 {
			t.Fatalf("%s stats = %+v", s.Name(), st)
		}
		s.Close()
	}
}

func TestFileStoreReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	log, imageArt, _ := captureRun(t)
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: index rebuilt from the log file.
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.RunLog(log.Run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(log.Events) {
		t.Fatal("events lost through reopen")
	}
	if _, err := s2.GeneratorOf(imageArt); err != nil {
		t.Fatalf("navigation after reopen: %v", err)
	}
}

func TestFileStoreTruncatesTornRecord(t *testing.T) {
	dir := t.TempDir()
	log, _, _ := captureRun(t)
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-append: write a partial record with no newline.
	path := filepath.Join(dir, LogFileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"run":{"id":"torn-run"`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	runs, _ := s2.Runs()
	if len(runs) != 1 || runs[0] != log.Run.ID {
		t.Fatalf("recovered runs = %v", runs)
	}
	// The torn bytes are gone: appending works again.
	log2, _, _ := captureRun(t)
	if err := s2.PutRunLog(log2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.Runs(); len(got) != 2 {
		t.Fatalf("runs after re-append = %v", got)
	}
}

func TestFileStoreCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogFileName)
	if err := os.WriteFile(path, []byte("this is not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("open over corrupt log: %v", err)
	}
	defer s.Close()
	runs, _ := s.Runs()
	if len(runs) != 0 {
		t.Fatalf("corrupt log yielded runs: %v", runs)
	}
}

func TestFileStoreReopenRebuildsAdjacencyIndex(t *testing.T) {
	dir := t.TempDir()
	log, imageArt, _ := captureRun(t)
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	wantLin, err := s.Closure(imageArt, Up)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reopen: the resident adjacency index is rebuilt from the log, so
	// batch traversal answers identically.
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	lin, err := s2.Closure(imageArt, Up)
	if err != nil {
		t.Fatalf("closure after reopen: %v", err)
	}
	if fmt.Sprint(lin) != fmt.Sprint(wantLin) {
		t.Fatalf("closure after reopen = %v, want %v", lin, wantLin)
	}
	adj, err := s2.Expand([]string{imageArt}, Up)
	if err != nil || len(adj[imageArt]) != 1 {
		t.Fatalf("expand after reopen = %v, %v", adj, err)
	}
}

func TestFileStoreTornRecordDroppedFromAdjacencyIndex(t *testing.T) {
	dir := t.TempDir()
	log, imageArt, _ := captureRun(t)
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	wantLin, err := s.Closure(imageArt, Up)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-append of a second run that mentions new
	// entities: crash recovery must truncate the torn bytes and keep them
	// out of the rebuilt adjacency index.
	path := filepath.Join(dir, LogFileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"run":{"id":"torn-run"},"artifacts":[{"id":"torn-art"}],` +
		`"executions":[{"id":"torn-exec"}],"events":[{"kind":"artifactGenerated","execution":"torn-exec","artifact":"torn-art"`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	// Surviving run's closure is intact.
	lin, err := s2.Closure(imageArt, Up)
	if err != nil || fmt.Sprint(lin) != fmt.Sprint(wantLin) {
		t.Fatalf("closure after recovery = %v, %v; want %v", lin, err, wantLin)
	}
	// Torn entities never reached the index.
	if _, err := s2.Closure("torn-art", Up); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn artifact in index: err = %v", err)
	}
	if adj, err := s2.Expand([]string{"torn-art", "torn-exec"}, Down); err != nil || len(adj) != 0 {
		t.Fatalf("torn entities expanded: %v, %v", adj, err)
	}
	if _, err := s2.GeneratorOf("torn-art"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn generator in index: err = %v", err)
	}
}

// TestExpandArtifactClassificationWins pins the conformance corner the
// randomized property test cannot generate: an ID stored as an artifact by
// one run and as an execution by another (per-run validation accepts
// both). Every backend must classify it artifact-first, like navNeighbors.
func TestExpandArtifactClassificationWins(t *testing.T) {
	logA := &provenance.RunLog{
		Run:       provenance.Run{ID: "ra"},
		Artifacts: []*provenance.Artifact{{ID: "X", RunID: "ra"}, {ID: "a2", RunID: "ra"}},
		Executions: []*provenance.Execution{
			{ID: "ea", RunID: "ra"},
		},
		Events: []provenance.Event{
			{Seq: 1, Kind: provenance.EventArtifactUsed, ExecutionID: "ea", ArtifactID: "X"},
			{Seq: 2, Kind: provenance.EventArtifactGen, ExecutionID: "ea", ArtifactID: "a2"},
		},
	}
	logB := &provenance.RunLog{
		Run:        provenance.Run{ID: "rb"},
		Artifacts:  []*provenance.Artifact{{ID: "b1", RunID: "rb"}},
		Executions: []*provenance.Execution{{ID: "X", RunID: "rb"}},
		Events: []provenance.Event{
			{Seq: 1, Kind: provenance.EventArtifactGen, ExecutionID: "X", ArtifactID: "b1"},
		},
	}
	for _, s := range openAll(t) {
		for _, l := range []*provenance.RunLog{logA, logB} {
			if err := s.PutRunLog(l); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
		}
		for _, dir := range []Direction{Up, Down} {
			want, err := ExpandViaNav(s, []string{"X"}, dir)
			if err != nil {
				t.Fatalf("%s %v: %v", s.Name(), dir, err)
			}
			got, err := s.Expand([]string{"X"}, dir)
			if err != nil {
				t.Fatalf("%s %v: %v", s.Name(), dir, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s %v: Expand = %v, navigation fallback = %v", s.Name(), dir, got, want)
			}
		}
		s.Close()
	}
}

func TestTripleStoreMatch(t *testing.T) {
	log, imageArt, res := captureRun(t)
	s := NewTripleStore()
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	// (exec, generated, image).
	renderExec := log.ExecutionForModule("render")
	ts := s.Match("", PredGenerated, imageArt)
	if len(ts) != 1 || ts[0].S != renderExec.ID {
		t.Fatalf("match = %v", ts)
	}
	// All uses of the grid artifact.
	uses := s.Match("", PredUsed, res.Artifacts["reader.data"])
	if len(uses) != 2 {
		t.Fatalf("grid uses = %v", uses)
	}
	// Wildcard subject+predicate.
	all := s.Match("", "", "")
	if len(all) != s.TripleCount() {
		t.Fatalf("full scan = %d, count = %d", len(all), s.TripleCount())
	}
	// Subject-only.
	sub := s.Match(renderExec.ID, "", "")
	if len(sub) < 4 {
		t.Fatalf("subject scan = %v", sub)
	}
}

func TestRelStoreTablesExposed(t *testing.T) {
	log, _, _ := captureRun(t)
	s := NewRelStore()
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	tables := s.Tables()
	for _, name := range []string{"runs", "executions", "artifacts", "uses", "gens", "annotations"} {
		if tables[name] == nil {
			t.Fatalf("table %q missing", name)
		}
	}
	if tables["executions"].Len() != 4 {
		t.Fatalf("executions table = %d rows", tables["executions"].Len())
	}
	// Reader has no inputs; histogram and contour use the grid, render uses
	// the surface: 3 use records.
	if tables["uses"].Len() != 3 {
		t.Fatalf("uses table = %d rows", tables["uses"].Len())
	}
}

func TestPutInvalidLogRejected(t *testing.T) {
	bad := &provenance.RunLog{Run: provenance.Run{ID: "r"}}
	bad.Executions = []*provenance.Execution{{ID: "e"}, {ID: "e"}}
	for _, s := range openAll(t) {
		if err := s.PutRunLog(bad); err == nil {
			t.Fatalf("%s accepted invalid log", s.Name())
		}
		s.Close()
	}
}
