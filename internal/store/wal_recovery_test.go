package store

// Crash-recovery and conformance properties of the WAL-backed FileStore:
// byte-level truncation fuzzing of the final batch, checkpointed reopens
// that never read the pre-checkpoint prefix, and a randomized equivalence
// check against MemStore across interleaved concurrent ingest, closure
// sweeps and reopen cycles (run under -race in CI).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/provenance"
)

// synthRun builds one run consuming the given inputs (re-declared, as
// content-addressed sharing does) and generating the given outputs.
func synthRun(id string, inputs, outputs []string) *provenance.RunLog {
	l := &provenance.RunLog{}
	l.Run = provenance.Run{ID: id, WorkflowID: "wf", Status: provenance.StatusOK}
	exec := id + "-exec"
	l.Executions = []*provenance.Execution{{ID: exec, RunID: id, ModuleID: "m", ModuleType: "T", Status: provenance.StatusOK}}
	var seq uint64
	for _, in := range inputs {
		l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: in, RunID: id, Type: "blob"})
		seq++
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: id, Kind: provenance.EventArtifactUsed, ExecutionID: exec, ArtifactID: in})
	}
	for _, out := range outputs {
		l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: out, RunID: id, Type: "blob"})
		seq++
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: id, Kind: provenance.EventArtifactGen, ExecutionID: exec, ArtifactID: out})
	}
	return l
}

// TestCrashRecoveryTruncateEveryByte is the torn-tail fuzz of the
// acceptance criteria: a store's log is truncated at every byte offset
// across its final records (the last group-commit batch), and every
// truncation must reopen to exactly the fully-committed prefix — never a
// partial record, never a lost complete one — in all durability modes,
// with and without a (now stale) checkpoint present.
func TestCrashRecoveryTruncateEveryByte(t *testing.T) {
	for _, mode := range []Durability{DurabilityNone, DurabilityFsync, DurabilityGroup} {
		for _, withStaleCkpt := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/staleCkpt=%v", mode, withStaleCkpt), func(t *testing.T) {
				dir := t.TempDir()
				s, err := OpenFileStoreWith(dir, FileOptions{Durability: mode})
				if err != nil {
					t.Fatal(err)
				}
				const nRuns = 6
				prev := "seed-art"
				for i := 0; i < nRuns; i++ {
					out := fmt.Sprintf("art-%02d", i)
					if err := s.PutRunLog(synthRun(fmt.Sprintf("run-%02d", i), []string{prev}, []string{out})); err != nil {
						t.Fatal(err)
					}
					prev = out
				}
				if withStaleCkpt {
					// A checkpoint covering the whole log: every truncation
					// below its offset must fall back to the full scan.
					if err := s.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				logPath := filepath.Join(dir, LogFileName)
				data, err := os.ReadFile(logPath)
				if err != nil {
					t.Fatal(err)
				}
				var ckpt []byte
				if withStaleCkpt {
					ckpt, err = os.ReadFile(filepath.Join(dir, checkpointFileName))
					if err != nil {
						t.Fatal(err)
					}
				}

				// Record boundaries: end offset of each complete line.
				var ends []int
				for i, b := range data {
					if b == '\n' {
						ends = append(ends, i+1)
					}
				}
				if len(ends) != nRuns {
					t.Fatalf("%d records in log, want %d", len(ends), nRuns)
				}
				// The "final batch": the last three records.
				tailStart := ends[nRuns-4]

				for cut := tailStart; cut <= len(data); cut++ {
					wantRuns := 0
					for _, e := range ends {
						if e <= cut {
							wantRuns++
						}
					}
					cdir := t.TempDir()
					if err := os.WriteFile(filepath.Join(cdir, LogFileName), data[:cut], 0o644); err != nil {
						t.Fatal(err)
					}
					if withStaleCkpt {
						if err := os.WriteFile(filepath.Join(cdir, checkpointFileName), ckpt, 0o644); err != nil {
							t.Fatal(err)
						}
					}
					r, err := OpenFileStoreWith(cdir, FileOptions{Durability: mode})
					if err != nil {
						t.Fatalf("cut=%d: reopen: %v", cut, err)
					}
					runs, err := r.Runs()
					if err != nil {
						t.Fatalf("cut=%d: %v", cut, err)
					}
					if len(runs) != wantRuns {
						t.Fatalf("cut=%d: recovered %d runs %v, want %d", cut, len(runs), runs, wantRuns)
					}
					for i, id := range runs {
						if id != fmt.Sprintf("run-%02d", i) {
							t.Fatalf("cut=%d: run[%d] = %s", cut, i, id)
						}
					}
					// The surviving graph must be the exact prefix chain.
					if wantRuns > 0 {
						lin, err := r.Closure(fmt.Sprintf("art-%02d", wantRuns-1), Up)
						if err != nil {
							t.Fatalf("cut=%d: closure: %v", cut, err)
						}
						// Chain: art-i <- exec-i <- art-(i-1) ... <- seed-art.
						if want := 2 * wantRuns; len(lin) != want {
							t.Fatalf("cut=%d: closure has %d nodes, want %d", cut, len(lin), want)
						}
					}
					if err := r.Close(); err != nil {
						t.Fatalf("cut=%d: close: %v", cut, err)
					}
				}
			})
		}
	}
}

// TestCheckpointReopenSkipsPrefix proves a checkpointed reopen replays
// only the log suffix: the pre-checkpoint prefix is corrupted in place,
// yet the reopen restores every run — and the control reopen without the
// checkpoint (forced full scan) visibly loses the corrupted history.
func TestCheckpointReopenSkipsPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreWith(dir, FileOptions{Durability: DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewMemStore()
	put := func(st Store, l *provenance.RunLog) {
		t.Helper()
		if err := st.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
	}
	prev := "seed-art"
	for i := 0; i < 10; i++ {
		out := fmt.Sprintf("art-%02d", i)
		l := synthRun(fmt.Sprintf("run-%02d", i), []string{prev}, []string{out})
		put(s, l)
		put(ref, l)
		prev = out
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckptOff, ok := s.LastCheckpoint()
	if !ok || ckptOff <= 0 {
		t.Fatalf("LastCheckpoint = %d, %v", ckptOff, ok)
	}
	for i := 10; i < 13; i++ {
		out := fmt.Sprintf("art-%02d", i)
		l := synthRun(fmt.Sprintf("run-%02d", i), []string{prev}, []string{out})
		put(s, l)
		put(ref, l)
		prev = out
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the pre-checkpoint prefix in place (same length, garbage
	// bytes): a full scan would stop dead at offset 8.
	logPath := filepath.Join(dir, LogFileName)
	f, err := os.OpenFile(logPath, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, ckptOff-16)
	for i := range garbage {
		garbage[i] = 'X'
	}
	if _, err := f.WriteAt(garbage, 8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenFileStoreWith(dir, FileOptions{Durability: DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := r.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 13 {
		t.Fatalf("checkpointed reopen recovered %d runs, want 13 (prefix was read?)", len(runs))
	}
	wantLin, err := NaiveClosure(ref, "art-12", Up)
	if err != nil {
		t.Fatal(err)
	}
	gotLin, err := r.Closure("art-12", Up)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(wantLin)
	sort.Strings(gotLin)
	if !reflect.DeepEqual(gotLin, wantLin) {
		t.Fatalf("closure after prefix corruption diverged:\n got %v\nwant %v", gotLin, wantLin)
	}
	r.Close()

	// Control: without the checkpoint the full scan hits the corruption
	// and recovers nothing — proof the checkpointed path never read it.
	if err := os.Remove(filepath.Join(dir, checkpointFileName)); err != nil {
		t.Fatal(err)
	}
	cold, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldRuns, _ := cold.Runs()
	if len(coldRuns) >= 13 {
		t.Fatalf("control reopen saw %d runs through corrupted prefix", len(coldRuns))
	}
}

// TestConcurrentFoldMatchesLogOrder pins the watermark-fold guarantee:
// when concurrent writers race conflicting last-write-wins generator
// declarations into one group-commit store, the live index, a checkpoint
// taken afterwards, and a plain reopen must all agree on the winner and
// on Runs() order — the in-memory fold follows log-offset order, not
// lock-acquisition order.
func TestConcurrentFoldMatchesLogOrder(t *testing.T) {
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		s, err := OpenFileStoreWith(dir, FileOptions{Durability: DurabilityGroup})
		if err != nil {
			t.Fatal(err)
		}
		const writers = 8
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Every run re-declares the generator of the same artifact.
				l := synthRun(fmt.Sprintf("run-%d", w), nil, []string{"shared-art"})
				if err := s.PutRunLog(l); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		liveGen, err := s.GeneratorOf("shared-art")
		if err != nil {
			t.Fatal(err)
		}
		liveRuns, _ := s.Runs()
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Reopen from the checkpoint, then again from a pure log scan.
		for _, label := range []string{"from-checkpoint", "full-scan"} {
			if label == "full-scan" {
				if err := os.Remove(filepath.Join(dir, checkpointFileName)); err != nil {
					t.Fatal(err)
				}
			}
			r, err := OpenFileStoreWith(dir, FileOptions{Durability: DurabilityGroup})
			if err != nil {
				t.Fatal(err)
			}
			gen, err := r.GeneratorOf("shared-art")
			if err != nil {
				t.Fatal(err)
			}
			if gen != liveGen {
				t.Fatalf("round %d %s: generator %q, live store said %q", round, label, gen, liveGen)
			}
			runs, _ := r.Runs()
			if !reflect.DeepEqual(runs, liveRuns) {
				t.Fatalf("round %d %s: runs %v, live store said %v", round, label, runs, liveRuns)
			}
			r.Close()
		}
	}
}

// TestGroupCommitStoreMatchesMemAcrossReopens is the randomized
// conformance property of the acceptance criteria: a WAL-backed store
// under concurrent group-commit ingest with interleaved closure sweeps,
// cycled through crash-flavored reopens (checkpoint present, deleted or
// corrupted), stays equivalent to the in-memory reference store.
func TestGroupCommitStoreMatchesMemAcrossReopens(t *testing.T) {
	dir := t.TempDir()
	ref := NewMemStore()
	rng := rand.New(rand.NewSource(1138))
	pool := []string{"root-art"}
	var entities []string
	runIdx := 0

	makeRun := func(withHazard bool) *provenance.RunLog {
		runIdx++
		id := fmt.Sprintf("run-%04d", runIdx)
		inputs := []string{pool[rng.Intn(len(pool))]}
		if rng.Intn(2) == 0 {
			inputs = append(inputs, pool[rng.Intn(len(pool))])
			if inputs[1] == inputs[0] {
				inputs = inputs[:1]
			}
		}
		var outputs []string
		for n := 1 + rng.Intn(2); n > 0; n-- {
			outputs = append(outputs, fmt.Sprintf("art-%04d-%d", runIdx, n))
		}
		l := synthRun(id, inputs, outputs)
		if withHazard && len(pool) > 1 {
			// Re-declare an existing artifact's generator (the
			// non-monotone case) — only on serial ingests, where the
			// last-write-wins order is deterministic.
			victim := pool[rng.Intn(len(pool))]
			redeclared := false
			for _, in := range inputs {
				if in == victim {
					redeclared = true
				}
			}
			if !redeclared {
				l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: victim, RunID: id, Type: "blob"})
				l.Events = append(l.Events, provenance.Event{
					Seq: uint64(len(l.Events) + 1), RunID: id, Kind: provenance.EventArtifactGen,
					ExecutionID: l.Executions[0].ID, ArtifactID: victim,
				})
			}
		}
		pool = append(pool, outputs...)
		entities = append(entities, outputs...)
		entities = append(entities, l.Executions[0].ID)
		return l
	}

	compare := func(fs *FileStore, label string) {
		t.Helper()
		refRuns, _ := ref.Runs()
		fsRuns, err := fs.Runs()
		if err != nil {
			t.Fatal(err)
		}
		if len(fsRuns) != len(refRuns) {
			t.Fatalf("%s: %d runs vs reference %d", label, len(fsRuns), len(refRuns))
		}
		sample := entities
		if len(sample) > 40 {
			sample = make([]string, 40)
			for i := range sample {
				sample[i] = entities[rng.Intn(len(entities))]
			}
		}
		for _, id := range sample {
			for _, dir := range []Direction{Up, Down} {
				want, werr := ref.Closure(id, dir)
				got, gerr := fs.Closure(id, dir)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: closure(%s,%s) err %v vs %v", label, id, dir, gerr, werr)
				}
				sort.Strings(want)
				sort.Strings(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: closure(%s,%s) diverged:\n got %v\nwant %v", label, id, dir, got, want)
				}
			}
			wantGen, werr := ref.GeneratorOf(id)
			gotGen, gerr := fs.GeneratorOf(id)
			if (werr == nil) != (gerr == nil) || wantGen != gotGen {
				t.Fatalf("%s: generator(%s) = %q,%v vs %q,%v", label, id, gotGen, gerr, wantGen, werr)
			}
		}
	}

	const cycles = 4
	for cycle := 0; cycle < cycles; cycle++ {
		fs, err := OpenFileStoreWith(dir, FileOptions{Durability: DurabilityGroup, CheckpointEvery: 9})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		compare(fs, fmt.Sprintf("cycle %d reopen", cycle))

		// Concurrent phase: 4 writers ingest disjoint runs while 2
		// readers sweep closures. The same logs go to the reference
		// serially first (order within the store is irrelevant to the
		// compared state: no cross-run generator conflicts here).
		var logs []*provenance.RunLog
		for i := 0; i < 12; i++ {
			l := makeRun(false)
			if err := ref.PutRunLog(l); err != nil {
				t.Fatal(err)
			}
			logs = append(logs, l)
		}
		work := make(chan *provenance.RunLog, len(logs))
		for _, l := range logs {
			work <- l
		}
		close(work)
		var writers sync.WaitGroup
		for w := 0; w < 4; w++ {
			writers.Add(1)
			go func() {
				defer writers.Done()
				for l := range work {
					if err := fs.PutRunLog(l); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		stop := make(chan struct{})
		var readers sync.WaitGroup
		readPool := append([]string(nil), pool...) // race-free snapshot
		for rdr := 0; rdr < 2; rdr++ {
			readers.Add(1)
			go func(seed int64) {
				defer readers.Done()
				rr := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					id := readPool[rr.Intn(len(readPool))]
					dir := Direction(rr.Intn(2))
					if _, err := fs.Closure(id, dir); err != nil && !errors.Is(err, ErrNotFound) {
						t.Error(err)
						return
					}
				}
			}(int64(cycle*10 + rdr))
		}
		writers.Wait()
		close(stop)
		readers.Wait()

		// Serial hazard ingest: deterministic last-write-wins order.
		l := makeRun(true)
		if err := ref.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
		if err := fs.PutRunLog(l); err != nil {
			t.Fatal(err)
		}
		compare(fs, fmt.Sprintf("cycle %d post-ingest", cycle))
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash-flavored transition: keep, drop or corrupt the checkpoint
		// before the next reopen — recovery must not care.
		switch cycle % 3 {
		case 1:
			os.Remove(filepath.Join(dir, checkpointFileName))
		case 2:
			path := filepath.Join(dir, checkpointFileName)
			if data, err := os.ReadFile(path); err == nil && len(data) > 4 {
				data[len(data)/2] ^= 0xff
				os.WriteFile(path, data, 0o644)
			}
		}
	}
	// Final reopen after the last mutation.
	fs, err := OpenFileStoreWith(dir, FileOptions{Durability: DurabilityGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	compare(fs, "final reopen")
}
