package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Durability selects what an accepted file-store ingest guarantees:
//
//   - DurabilityNone: the record reached the OS; a power loss may drop it.
//   - DurabilityFsync: one fsync per append — an accepted ingest survives
//     power loss, at one commit latency per run.
//   - DurabilityGroup: group commit — concurrent appends coalesce into
//     batches committed with a single buffered write + one fsync each
//     (internal/store/wal), so an accepted ingest still survives power
//     loss but N concurrent writers share ~one fsync instead of paying N.
type Durability int

// Durability modes, ordered by increasing write-path cost per append.
const (
	DurabilityNone Durability = iota
	DurabilityFsync
	DurabilityGroup
)

// String implements fmt.Stringer with the wire form used by CLI flags.
func (d Durability) String() string {
	switch d {
	case DurabilityNone:
		return "none"
	case DurabilityFsync:
		return "fsync"
	case DurabilityGroup:
		return "group"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// ParseDurability maps the CLI flag form ("none", "fsync", "group") to a
// Durability.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "none":
		return DurabilityNone, nil
	case "fsync":
		return DurabilityFsync, nil
	case "group":
		return DurabilityGroup, nil
	}
	return 0, fmt.Errorf("store: unknown durability %q (want none, fsync or group)", s)
}

// FileOptions configures a file-backed store's durability and checkpoint
// behavior. The zero value is the historical OpenFileStore behavior: no
// fsync, no automatic checkpoints.
type FileOptions struct {
	// Durability selects the append commit guarantee.
	Durability Durability
	// CheckpointEvery, when positive, writes a checkpoint automatically
	// after every N accepted ingests, bounding reopen replay to the last
	// N runs' log suffix.
	CheckpointEvery int
	// GroupFlushDelay, when positive, lets a group-commit leader whose
	// batch holds a single record wait this long for joiners — useful on
	// media whose fsync is too fast for commit-latency overlap to batch.
	// 0 (default) batches purely by overlapping the in-flight commit.
	GroupFlushDelay time.Duration
	// MaxBatchBytes caps a group-commit batch (default 1 MiB).
	MaxBatchBytes int
}

// Checkpointer is implemented by stores that can snapshot their folded
// state next to their log so a reopen replays only the log suffix: the
// file store, the sharded router (per-shard checkpoints plus a manifest
// record), and the closure cache (which also persists its entries).
type Checkpointer interface {
	// Checkpoint writes a consistent snapshot to stable storage. It is
	// safe to call concurrently with reads and ingests; ingests admitted
	// after the snapshot point are simply replayed at the next reopen.
	Checkpoint() error
}

// AutoCheckpoint triggers a background best-effort checkpoint every N
// accepted ingests, at most one in flight: the shared every-N /
// single-flight discipline of FileStore, the sharded router and the
// closure cache. The in-flight goroutine is tracked, and owners call
// Drain from their Close paths so a background checkpoint never fsyncs
// or writes against files the owner has already closed. The zero value
// (or every <= 0) never fires.
type AutoCheckpoint struct {
	every uint64
	count atomic.Uint64

	mu     sync.Mutex
	busy   bool
	closed bool
	wg     sync.WaitGroup
}

// NewAutoCheckpoint returns a trigger firing every N ingests (n <= 0:
// never).
func NewAutoCheckpoint(n int) *AutoCheckpoint {
	t := &AutoCheckpoint{}
	if n > 0 {
		t.every = uint64(n)
	}
	return t
}

// Tick counts one accepted ingest and, on every Nth, runs checkpoint in a
// background goroutine unless one is already in flight or the trigger has
// been drained. Failures are dropped: the log is authoritative, a skipped
// snapshot only costs reopen time.
func (t *AutoCheckpoint) Tick(checkpoint func() error) {
	if t == nil || t.every == 0 {
		return
	}
	if t.count.Add(1)%t.every != 0 {
		return
	}
	t.mu.Lock()
	if t.closed || t.busy {
		t.mu.Unlock()
		return
	}
	t.busy = true
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		_ = checkpoint()
		t.mu.Lock()
		t.busy = false
		t.mu.Unlock()
	}()
}

// Drain stops future automatic checkpoints and waits for any in-flight
// one, so the owner can close the files a checkpoint touches. Safe on a
// nil trigger and idempotent.
func (t *AutoCheckpoint) Drain() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
}
