package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Durability selects what an accepted file-store ingest guarantees:
//
//   - DurabilityNone: the record reached the OS; a power loss may drop it.
//   - DurabilityFsync: one fsync per append — an accepted ingest survives
//     power loss, at one commit latency per run.
//   - DurabilityGroup: group commit — concurrent appends coalesce into
//     batches committed with a single buffered write + one fsync each
//     (internal/store/wal), so an accepted ingest still survives power
//     loss but N concurrent writers share ~one fsync instead of paying N.
type Durability int

// Durability modes, ordered by increasing write-path cost per append.
const (
	DurabilityNone Durability = iota
	DurabilityFsync
	DurabilityGroup
)

// String implements fmt.Stringer with the wire form used by CLI flags.
func (d Durability) String() string {
	switch d {
	case DurabilityNone:
		return "none"
	case DurabilityFsync:
		return "fsync"
	case DurabilityGroup:
		return "group"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// ParseDurability maps the CLI flag form ("none", "fsync", "group") to a
// Durability.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "none":
		return DurabilityNone, nil
	case "fsync":
		return DurabilityFsync, nil
	case "group":
		return DurabilityGroup, nil
	}
	return 0, fmt.Errorf("store: unknown durability %q (want none, fsync or group)", s)
}

// FileOptions configures a file-backed store's durability and checkpoint
// behavior. The zero value is the historical OpenFileStore behavior: no
// fsync, no automatic checkpoints.
type FileOptions struct {
	// Durability selects the append commit guarantee.
	Durability Durability
	// CheckpointEvery, when positive, writes a checkpoint automatically
	// after every N accepted ingests, bounding reopen replay to the last
	// N runs' log suffix.
	CheckpointEvery int
	// CheckpointInterval, when positive, also checkpoints at most once
	// per interval whenever ingests arrived since the last snapshot, so
	// a slow-but-steady writer still bounds reopen replay (and follower
	// catch-up) by time, not only by run count.
	CheckpointInterval time.Duration
	// CheckpointBytes, when positive, also checkpoints after that many
	// appended log bytes, bounding replay by log volume when records are
	// large. Applies to single file stores, which know their append
	// sizes; the sharded router's router-wide trigger counts runs and
	// time only.
	CheckpointBytes int64
	// GroupFlushDelay, when positive, lets a group-commit leader whose
	// batch holds a single record wait this long for joiners — useful on
	// media whose fsync is too fast for commit-latency overlap to batch.
	// 0 (default) batches purely by overlapping the in-flight commit.
	GroupFlushDelay time.Duration
	// MaxBatchBytes caps a group-commit batch (default 1 MiB).
	MaxBatchBytes int
}

// Checkpointer is implemented by stores that can snapshot their folded
// state next to their log so a reopen replays only the log suffix: the
// file store, the sharded router (per-shard checkpoints plus a manifest
// record), and the closure cache (which also persists its entries).
type Checkpointer interface {
	// Checkpoint writes a consistent snapshot to stable storage. It is
	// safe to call concurrently with reads and ingests; ingests admitted
	// after the snapshot point are simply replayed at the next reopen.
	Checkpoint() error
}

// CheckpointPolicy says when an AutoCheckpoint fires. Any combination of
// triggers may be set; each fires independently and a single background
// snapshot satisfies all of them. The zero policy never fires.
type CheckpointPolicy struct {
	// EveryRuns fires after every N accepted ingests (<= 0: off).
	EveryRuns int
	// EveryBytes fires after that many appended log bytes (<= 0: off).
	EveryBytes int64
	// Interval fires at most once per interval, and only when ingests
	// arrived since the last snapshot (<= 0: off).
	Interval time.Duration
}

func (p CheckpointPolicy) enabled() bool {
	return p.EveryRuns > 0 || p.EveryBytes > 0 || p.Interval > 0
}

// AutoCheckpoint triggers a background best-effort checkpoint on a
// runs/bytes/interval policy, at most one in flight: the shared
// single-flight discipline of FileStore, the sharded router and the
// closure cache. The in-flight goroutine is tracked, and owners call
// Drain from their Close paths so a background checkpoint never fsyncs
// or writes against files the owner has already closed. The zero value
// (or an empty policy) never fires.
type AutoCheckpoint struct {
	policy CheckpointPolicy
	count  atomic.Uint64
	bytes  atomic.Int64

	mu     sync.Mutex
	busy   bool
	closed bool
	timer  *time.Timer
	wg     sync.WaitGroup
}

// NewAutoCheckpoint returns a trigger firing every N ingests (n <= 0:
// never).
func NewAutoCheckpoint(n int) *AutoCheckpoint {
	return NewAutoCheckpointPolicy(CheckpointPolicy{EveryRuns: n})
}

// NewAutoCheckpointPolicy returns a trigger with the full policy.
func NewAutoCheckpointPolicy(p CheckpointPolicy) *AutoCheckpoint {
	return &AutoCheckpoint{policy: p}
}

// Tick counts one accepted ingest of the given appended size and, when a
// policy trigger trips, runs checkpoint in a background goroutine unless
// one is already in flight or the trigger has been drained. The interval
// trigger arms a timer on the first ingest after a snapshot, so an idle
// store never checkpoints on a clock. Failures are dropped: the log is
// authoritative, a skipped snapshot only costs reopen time.
func (t *AutoCheckpoint) Tick(bytes int64, checkpoint func() error) {
	if t == nil || !t.policy.enabled() {
		return
	}
	fire := false
	if n := t.policy.EveryRuns; n > 0 && t.count.Add(1)%uint64(n) == 0 {
		fire = true
	}
	if max := t.policy.EveryBytes; max > 0 && bytes > 0 {
		if n := t.bytes.Add(bytes); n >= max {
			// Concurrent adders may each see the threshold; the busy
			// guard collapses them into one snapshot, and a lost count
			// only delays the next byte trigger by one record.
			t.bytes.Add(-n)
			fire = true
		}
	}
	if fire {
		t.launch(checkpoint)
		return
	}
	if t.policy.Interval > 0 {
		t.arm(checkpoint)
	}
}

// launch starts one background checkpoint unless one is in flight or the
// trigger is drained.
func (t *AutoCheckpoint) launch(checkpoint func() error) {
	t.mu.Lock()
	if t.closed || t.busy {
		t.mu.Unlock()
		return
	}
	t.busy = true
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		_ = checkpoint()
		t.mu.Lock()
		t.busy = false
		t.mu.Unlock()
	}()
}

// arm schedules an interval checkpoint if none is pending: dirty-state
// tracking falls out of the arming discipline itself (a timer exists iff
// an ingest arrived since it last fired).
func (t *AutoCheckpoint) arm(checkpoint func() error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.timer != nil {
		return
	}
	t.timer = time.AfterFunc(t.policy.Interval, func() {
		t.mu.Lock()
		t.timer = nil
		t.mu.Unlock()
		t.launch(checkpoint)
	})
}

// Drain stops future automatic checkpoints (including a pending interval
// timer) and waits for any in-flight one, so the owner can close the
// files a checkpoint touches. Safe on a nil trigger and idempotent.
func (t *AutoCheckpoint) Drain() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.closed = true
	if t.timer != nil {
		t.timer.Stop()
		t.timer = nil
	}
	t.mu.Unlock()
	t.wg.Wait()
}
