package mining

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func corpus() []*workflow.Workflow {
	return []*workflow.Workflow{
		workloads.MedicalImaging(),
		workloads.SmoothedImaging(),
		workloads.DownloadAndRender(),
		workloads.DownloadAndRenderSmoothed(),
		workloads.Genomics("s1"),
		workloads.Genomics("s2"),
		workloads.Forecasting("st1"),
	}
}

func TestFrequentPaths(t *testing.T) {
	paths := FrequentPaths(corpus(), 2, 2)
	if len(paths) == 0 {
		t.Fatal("no frequent paths")
	}
	// Contour→Render appears in medimg and dl-render (support 2);
	// Contour→Smooth→Render in the two smoothed variants (support 2).
	found := map[string]int{}
	for _, p := range paths {
		found[strings.Join(p.Path, "→")] = p.Support
	}
	if found["Contour→Render"] < 2 {
		t.Fatalf("Contour→Render support = %d (%v)", found["Contour→Render"], found)
	}
	if found["Contour→Smooth→Render"] < 2 {
		t.Fatalf("smooth path support = %d", found["Contour→Smooth→Render"])
	}
	// Genomics chain supported by both genomics workflows.
	if found["Trim→Align"] < 2 {
		t.Fatalf("Trim→Align support = %d", found["Trim→Align"])
	}
	// Ordering: descending support.
	for i := 1; i < len(paths); i++ {
		if paths[i].Support > paths[i-1].Support {
			t.Fatal("paths not sorted by support")
		}
	}
}

func TestFrequentPathsMinSupportFilters(t *testing.T) {
	all := FrequentPaths(corpus(), 2, 1)
	some := FrequentPaths(corpus(), 2, 3)
	if len(some) >= len(all) {
		t.Fatalf("minSupport did not filter: %d vs %d", len(some), len(all))
	}
}

func TestCoOccurrence(t *testing.T) {
	co := CoOccurrence(corpus())
	// Contour and Render co-occur in 4 workflows.
	if co["Contour|Render"] != 4 {
		t.Fatalf("Contour|Render = %d", co["Contour|Render"])
	}
	// Histogram only appears with FileReader (medimg variants).
	if co["FileReader|Histogram"] != 2 {
		t.Fatalf("FileReader|Histogram = %d", co["FileReader|Histogram"])
	}
	if co["Align|Render"] != 0 {
		t.Fatalf("unrelated pair = %d", co["Align|Render"])
	}
}

func TestSuggestNext(t *testing.T) {
	sug := SuggestNext(corpus(), "Contour", 5)
	if len(sug) == 0 {
		t.Fatal("no suggestions")
	}
	// After Contour: Render (2 of 4 workflows) and Smooth (2 of 4).
	conf := map[string]float64{}
	for _, s := range sug {
		conf[s.ModuleType] = s.Confidence
	}
	if conf["Render"] != 0.5 || conf["Smooth"] != 0.5 {
		t.Fatalf("confidences = %v", conf)
	}
	// After Trim: always Align.
	sug = SuggestNext(corpus(), "Trim", 5)
	if len(sug) != 1 || sug[0].ModuleType != "Align" || sug[0].Confidence != 1 {
		t.Fatalf("Trim suggestions = %+v", sug)
	}
	// Unknown type: nil.
	if SuggestNext(corpus(), "NoSuch", 5) != nil {
		t.Fatal("suggestions for unknown type")
	}
}

func TestSuggestNextTopK(t *testing.T) {
	sug := SuggestNext(corpus(), "Contour", 1)
	if len(sug) != 1 {
		t.Fatalf("topK ignored: %d", len(sug))
	}
}

// runLogs executes medimg twice (one run with an injected failure).
func runLogs(t *testing.T) []*provenance.RunLog {
	t.Helper()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	col := provenance.NewCollector()
	ok := engine.New(engine.Options{Registry: reg, Recorder: col})
	if _, err := ok.Run(context.Background(), workloads.MedicalImaging(), nil); err != nil {
		t.Fatal(err)
	}
	bad := engine.New(engine.Options{Registry: reg, Recorder: col,
		Faults: map[string]string{"contour": "simulated crash"}})
	if _, err := bad.Run(context.Background(), workloads.MedicalImaging(), nil); err != nil {
		t.Fatal(err)
	}
	return col.Logs()
}

func TestFailureCorrelation(t *testing.T) {
	stats := FailureCorrelation(runLogs(t))
	byType := map[string]FailureStats{}
	for _, s := range stats {
		byType[s.ModuleType] = s
	}
	if byType["Contour"].Failures != 1 || byType["Contour"].Runs != 2 {
		t.Fatalf("contour stats = %+v", byType["Contour"])
	}
	if byType["Contour"].Rate != 0.5 {
		t.Fatalf("contour rate = %v", byType["Contour"].Rate)
	}
	if byType["FileReader"].Failures != 0 {
		t.Fatalf("reader failures = %+v", byType["FileReader"])
	}
	// Sorted by rate descending: Contour (0.5) before FileReader (0).
	if stats[0].ModuleType != "Contour" && stats[0].ModuleType != "Render" {
		// Render is skipped, not failed.
		t.Fatalf("top = %+v", stats[0])
	}
}

func TestHotArtifacts(t *testing.T) {
	logs := runLogs(t)
	hot := HotArtifacts(logs, 3)
	if len(hot) == 0 {
		t.Fatal("no hot artifacts")
	}
	// The grid is consumed by histogram+contour in each of 2 runs.
	if hot[0].Uses < 3 || hot[0].Type != workloads.TypeGrid {
		t.Fatalf("hottest = %+v", hot[0])
	}
	if len(hot) > 3 {
		t.Fatal("topK ignored")
	}
}

func TestReport(t *testing.T) {
	text := Report(corpus(), runLogs(t))
	if !strings.Contains(text, "corpus: 7 workflows, 2 runs") {
		t.Fatalf("report:\n%s", text)
	}
	if !strings.Contains(text, "Contour") {
		t.Fatalf("report misses failure stats:\n%s", text)
	}
}
