// Package mining implements provenance analytics (§2.4 "Provenance
// analytics and visualization"): extracting knowledge from collections of
// workflows and run logs. It provides the primitives the paper says are
// "largely unexplored": frequent dataflow-path mining, module co-occurrence
// statistics, next-module suggestion for workflow design assistance [34],
// and failure correlation for debugging.
package mining

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/provenance"
	"repro/internal/workflow"
)

// PathCount is a module-type path with its support (number of workflows
// containing it).
type PathCount struct {
	Path    []string // module types, in dataflow order
	Support int
}

// FrequentPaths mines dataflow paths of length up to maxLen (edges) whose
// support reaches minSupport workflows. Paths are type-level: the concrete
// module IDs are abstracted away so patterns transfer across workflows.
func FrequentPaths(workflows []*workflow.Workflow, maxLen, minSupport int) []PathCount {
	if maxLen < 1 {
		maxLen = 1
	}
	support := map[string]map[string]bool{} // path key -> workflow IDs
	for _, wf := range workflows {
		for _, path := range typePaths(wf, maxLen) {
			key := strings.Join(path, "→")
			if support[key] == nil {
				support[key] = map[string]bool{}
			}
			support[key][wf.ID] = true
		}
	}
	var out []PathCount
	for key, wfs := range support {
		if len(wfs) >= minSupport {
			out = append(out, PathCount{Path: strings.Split(key, "→"), Support: len(wfs)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return strings.Join(out[i].Path, "→") < strings.Join(out[j].Path, "→")
	})
	return out
}

// typePaths enumerates all simple type-level paths with 1..maxLen edges.
func typePaths(wf *workflow.Workflow, maxLen int) [][]string {
	adj := map[string][]string{}
	for _, c := range wf.Connections {
		adj[c.SrcModule] = append(adj[c.SrcModule], c.DstModule)
	}
	typeOf := map[string]string{}
	for _, m := range wf.Modules {
		typeOf[m.ID] = m.Type
	}
	var out [][]string
	var walk func(at string, path []string)
	walk = func(at string, path []string) {
		if len(path) > 1 {
			cp := make([]string, len(path))
			copy(cp, path)
			out = append(out, cp)
		}
		if len(path) > maxLen {
			return
		}
		next := append([]string(nil), adj[at]...)
		sort.Strings(next)
		for _, n := range next {
			walk(n, append(path, typeOf[n]))
		}
	}
	ids := make([]string, 0, len(typeOf))
	for id := range typeOf {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		walk(id, []string{typeOf[id]})
	}
	return out
}

// CoOccurrence counts, for each pair of module types, in how many
// workflows they appear together. Keys are "A|B" with A < B.
func CoOccurrence(workflows []*workflow.Workflow) map[string]int {
	out := map[string]int{}
	for _, wf := range workflows {
		types := map[string]bool{}
		for _, m := range wf.Modules {
			types[m.Type] = true
		}
		list := make([]string, 0, len(types))
		for t := range types {
			list = append(list, t)
		}
		sort.Strings(list)
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				out[list[i]+"|"+list[j]]++
			}
		}
	}
	return out
}

// Suggestion is a recommended next module type with a confidence score.
type Suggestion struct {
	ModuleType string
	Confidence float64 // support(downstream|current) / support(current)
}

// SuggestNext recommends module types that historically follow the given
// type in the corpus: the design-assistance use of provenance mining
// ("useful knowledge is embedded in provenance which can be re-used to
// simplify the construction of workflows", §2.3).
func SuggestNext(workflows []*workflow.Workflow, moduleType string, topK int) []Suggestion {
	followCount := map[string]int{}
	baseCount := 0
	for _, wf := range workflows {
		typeOf := map[string]string{}
		for _, m := range wf.Modules {
			typeOf[m.ID] = m.Type
		}
		seenBase := false
		followed := map[string]bool{}
		for _, c := range wf.Connections {
			if typeOf[c.SrcModule] == moduleType {
				seenBase = true
				followed[typeOf[c.DstModule]] = true
			}
		}
		if seenBase {
			baseCount++
			for t := range followed {
				followCount[t]++
			}
		}
	}
	if baseCount == 0 {
		return nil
	}
	out := make([]Suggestion, 0, len(followCount))
	for t, n := range followCount {
		out = append(out, Suggestion{ModuleType: t, Confidence: float64(n) / float64(baseCount)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].ModuleType < out[j].ModuleType
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

// FailureStats correlates module types with failure rates across run logs:
// the debugging application of provenance analytics.
type FailureStats struct {
	ModuleType string
	Runs       int
	Failures   int
	Rate       float64
}

// FailureCorrelation computes per-module-type failure rates, sorted by
// descending rate then type.
func FailureCorrelation(logs []*provenance.RunLog) []FailureStats {
	runs := map[string]int{}
	fails := map[string]int{}
	for _, l := range logs {
		for _, e := range l.Executions {
			runs[e.ModuleType]++
			if e.Status == provenance.StatusFailed {
				fails[e.ModuleType]++
			}
		}
	}
	out := make([]FailureStats, 0, len(runs))
	for t, n := range runs {
		fs := FailureStats{ModuleType: t, Runs: n, Failures: fails[t]}
		fs.Rate = float64(fs.Failures) / float64(n)
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].ModuleType < out[j].ModuleType
	})
	return out
}

// HotArtifacts returns the artifacts most frequently consumed across runs
// (re-use analysis): content hashes with use counts, descending.
type HotArtifact struct {
	ContentHash string
	Uses        int
	Type        string
}

// HotArtifacts ranks artifacts by cross-run consumption.
func HotArtifacts(logs []*provenance.RunLog, topK int) []HotArtifact {
	uses := map[string]int{}
	types := map[string]string{}
	for _, l := range logs {
		hashOf := map[string]string{}
		for _, a := range l.Artifacts {
			hashOf[a.ID] = a.ContentHash
			types[a.ContentHash] = a.Type
		}
		for _, ev := range l.Events {
			if ev.Kind == provenance.EventArtifactUsed {
				uses[hashOf[ev.ArtifactID]]++
			}
		}
	}
	out := make([]HotArtifact, 0, len(uses))
	for h, n := range uses {
		out = append(out, HotArtifact{ContentHash: h, Uses: n, Type: types[h]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Uses != out[j].Uses {
			return out[i].Uses > out[j].Uses
		}
		return out[i].ContentHash < out[j].ContentHash
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

// Report renders a summary of a corpus: the "insightful visualization"
// text form.
func Report(workflows []*workflow.Workflow, logs []*provenance.RunLog) string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus: %d workflows, %d runs\n", len(workflows), len(logs))
	paths := FrequentPaths(workflows, 2, 2)
	fmt.Fprintf(&b, "frequent paths (support >= 2):\n")
	for i, p := range paths {
		if i == 10 {
			break
		}
		fmt.Fprintf(&b, "  %-40s %d\n", strings.Join(p.Path, " → "), p.Support)
	}
	fails := FailureCorrelation(logs)
	fmt.Fprintf(&b, "failure rates:\n")
	for _, f := range fails {
		if f.Failures == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-20s %d/%d (%.0f%%)\n", f.ModuleType, f.Failures, f.Runs, f.Rate*100)
	}
	return b.String()
}
