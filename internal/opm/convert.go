package opm

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"sort"

	"repro/internal/provenance"
)

// FromRunLog maps native retrospective provenance into OPM under the given
// account name: executions become processes, artifacts stay artifacts, the
// run's agent becomes an OPM agent controlling every process, and
// wasTriggeredBy edges are inferred from process dependencies.
func FromRunLog(l *provenance.RunLog, account string) (*Graph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	g := NewGraph()
	agentID := "agent:" + l.Run.Agent
	if err := g.AddNode(Node{ID: agentID, Kind: Agent, Value: l.Run.Agent}); err != nil {
		return nil, err
	}
	for _, a := range l.Artifacts {
		if err := g.AddNode(Node{ID: a.ID, Kind: Artifact, Value: a.Preview,
			Attrs: map[string]string{"type": a.Type, "hash": a.ContentHash}}); err != nil {
			return nil, err
		}
	}
	for _, e := range l.Executions {
		if err := g.AddNode(Node{ID: e.ID, Kind: Process, Value: e.ModuleID,
			Attrs: map[string]string{"moduleType": e.ModuleType, "status": string(e.Status)}}); err != nil {
			return nil, err
		}
		if err := g.AddEdge(Edge{Kind: WasControlledBy, Effect: e.ID, Cause: agentID, Account: account}); err != nil {
			return nil, err
		}
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventArtifactUsed:
			if err := g.AddEdge(Edge{Kind: Used, Effect: ev.ExecutionID, Cause: ev.ArtifactID,
				Role: ev.Port, Account: account}); err != nil {
				return nil, err
			}
		case provenance.EventArtifactGen:
			if err := g.AddEdge(Edge{Kind: WasGeneratedBy, Effect: ev.ArtifactID, Cause: ev.ExecutionID,
				Role: ev.Port, Account: account}); err != nil {
				return nil, err
			}
		}
	}
	// Infer wasTriggeredBy from data handoffs.
	cg, err := provenance.BuildCausalGraph(l)
	if err != nil {
		return nil, err
	}
	for _, pair := range cg.ProcessDependencies() {
		if err := g.AddEdge(Edge{Kind: WasTriggeredBy, Effect: pair[1], Cause: pair[0], Account: account}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// xmlDoc is the document model for OPM XML serialization.
type xmlDoc struct {
	XMLName  xml.Name  `xml:"opmGraph"`
	Nodes    []xmlNode `xml:"nodes>node"`
	Edges    []Edge    `xml:"edges>edge"`
	Accounts []string  `xml:"accounts>account"`
}

type xmlNode struct {
	ID    string   `xml:"id,attr"`
	Kind  NodeKind `xml:"kind,attr"`
	Value string   `xml:"value,attr,omitempty"`
	Attrs []xmlKV  `xml:"attr"`
}

type xmlKV struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// EncodeXML serializes the graph as a deterministic XML document.
func EncodeXML(g *Graph) ([]byte, error) {
	doc := xmlDoc{}
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := g.Nodes[id]
		xn := xmlNode{ID: n.ID, Kind: n.Kind, Value: n.Value}
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			xn.Attrs = append(xn.Attrs, xmlKV{Key: k, Value: n.Attrs[k]})
		}
		doc.Nodes = append(doc.Nodes, xn)
	}
	doc.Edges = append(doc.Edges, g.Edges...)
	for acc := range g.Accounts {
		doc.Accounts = append(doc.Accounts, acc)
	}
	sort.Strings(doc.Accounts)
	return xml.MarshalIndent(doc, "", "  ")
}

// DecodeXML parses an OPM graph from its XML form and validates it.
func DecodeXML(data []byte) (*Graph, error) {
	var doc xmlDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("opm: decode xml: %w", err)
	}
	g := NewGraph()
	for _, xn := range doc.Nodes {
		n := Node{ID: xn.ID, Kind: xn.Kind, Value: xn.Value}
		if len(xn.Attrs) > 0 {
			n.Attrs = map[string]string{}
			for _, kv := range xn.Attrs {
				n.Attrs[kv.Key] = kv.Value
			}
		}
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, e := range doc.Edges {
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	for _, acc := range doc.Accounts {
		g.Accounts[acc] = true
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// jsonDoc mirrors xmlDoc for JSON interchange.
type jsonDoc struct {
	Nodes    []Node   `json:"nodes"`
	Edges    []Edge   `json:"edges"`
	Accounts []string `json:"accounts,omitempty"`
}

// EncodeJSON serializes the graph as deterministic JSON.
func EncodeJSON(g *Graph) ([]byte, error) {
	doc := jsonDoc{}
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		doc.Nodes = append(doc.Nodes, *g.Nodes[id])
	}
	doc.Edges = append(doc.Edges, g.Edges...)
	for acc := range g.Accounts {
		doc.Accounts = append(doc.Accounts, acc)
	}
	sort.Strings(doc.Accounts)
	return json.MarshalIndent(doc, "", "  ")
}

// DecodeJSON parses an OPM graph from JSON and validates it.
func DecodeJSON(data []byte) (*Graph, error) {
	var doc jsonDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("opm: decode json: %w", err)
	}
	g := NewGraph()
	for _, n := range doc.Nodes {
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, e := range doc.Edges {
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	for _, acc := range doc.Accounts {
		g.Accounts[acc] = true
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
