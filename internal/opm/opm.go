// Package opm implements the Open Provenance Model (Moreau et al. [30]),
// the standard the paper's interoperability section points to: a system-
// independent representation into which each workflow system's native
// provenance can be mapped, so that provenance from multiple tools can be
// integrated (the goal of the Provenance Challenges [32, 33]).
//
// OPM graphs have three node kinds — Artifact, Process, Agent — and five
// causal edge kinds:
//
//	used(P, A, role)             process P consumed artifact A
//	wasGeneratedBy(A, P, role)   artifact A was produced by process P
//	wasControlledBy(P, Ag)       process P ran on behalf of agent Ag
//	wasTriggeredBy(P2, P1)       P2 could not start before P1
//	wasDerivedFrom(A2, A1)       artifact A2 depends on artifact A1
//
// Accounts name alternative descriptions of the same execution (here: the
// source system an assertion came from), which is what makes merged graphs
// auditable back to their origins.
package opm

import (
	"fmt"
	"sort"
)

// NodeKind enumerates OPM node types.
type NodeKind string

// OPM node kinds.
const (
	Artifact NodeKind = "artifact"
	Process  NodeKind = "process"
	Agent    NodeKind = "agent"
)

// EdgeKind enumerates OPM causal dependency types.
type EdgeKind string

// OPM edge kinds.
const (
	Used            EdgeKind = "used"
	WasGeneratedBy  EdgeKind = "wasGeneratedBy"
	WasControlledBy EdgeKind = "wasControlledBy"
	WasTriggeredBy  EdgeKind = "wasTriggeredBy"
	WasDerivedFrom  EdgeKind = "wasDerivedFrom"
)

// Node is an OPM artifact, process or agent. Value carries a short
// human-readable description (artifact preview, module name, user name).
type Node struct {
	ID    string            `json:"id" xml:"id,attr"`
	Kind  NodeKind          `json:"kind" xml:"kind,attr"`
	Value string            `json:"value,omitempty" xml:"value,attr,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty" xml:"-"`
}

// Edge is a causal dependency: Effect depends on Cause. For used edges the
// effect is the process; for wasGeneratedBy the effect is the artifact.
type Edge struct {
	Kind    EdgeKind `json:"kind" xml:"kind,attr"`
	Effect  string   `json:"effect" xml:"effect,attr"`
	Cause   string   `json:"cause" xml:"cause,attr"`
	Role    string   `json:"role,omitempty" xml:"role,attr,omitempty"`
	Account string   `json:"account,omitempty" xml:"account,attr,omitempty"`
}

// Graph is an OPM provenance graph.
type Graph struct {
	Nodes    map[string]*Node
	Edges    []Edge
	Accounts map[string]bool
}

// NewGraph returns an empty OPM graph.
func NewGraph() *Graph {
	return &Graph{Nodes: map[string]*Node{}, Accounts: map[string]bool{}}
}

// AddNode inserts or merges a node: re-adding an existing ID is legal when
// kinds agree (merging accounts), and attributes are unioned.
func (g *Graph) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("opm: node ID must be non-empty")
	}
	if have, ok := g.Nodes[n.ID]; ok {
		if have.Kind != n.Kind {
			return fmt.Errorf("opm: node %q is both %s and %s", n.ID, have.Kind, n.Kind)
		}
		if have.Value == "" {
			have.Value = n.Value
		}
		for k, v := range n.Attrs {
			if have.Attrs == nil {
				have.Attrs = map[string]string{}
			}
			if _, exists := have.Attrs[k]; !exists {
				have.Attrs[k] = v
			}
		}
		return nil
	}
	cp := n
	if n.Attrs != nil {
		cp.Attrs = map[string]string{}
		for k, v := range n.Attrs {
			cp.Attrs[k] = v
		}
	}
	g.Nodes[n.ID] = &cp
	return nil
}

var edgeShape = map[EdgeKind][2]NodeKind{
	Used:            {Process, Artifact},
	WasGeneratedBy:  {Artifact, Process},
	WasControlledBy: {Process, Agent},
	WasTriggeredBy:  {Process, Process},
	WasDerivedFrom:  {Artifact, Artifact},
}

// AddEdge inserts a causal edge after checking the endpoints exist and have
// the node kinds the edge kind requires.
func (g *Graph) AddEdge(e Edge) error {
	shape, ok := edgeShape[e.Kind]
	if !ok {
		return fmt.Errorf("opm: unknown edge kind %q", e.Kind)
	}
	eff, ok := g.Nodes[e.Effect]
	if !ok {
		return fmt.Errorf("opm: %s effect %q not found", e.Kind, e.Effect)
	}
	cause, ok := g.Nodes[e.Cause]
	if !ok {
		return fmt.Errorf("opm: %s cause %q not found", e.Kind, e.Cause)
	}
	if eff.Kind != shape[0] || cause.Kind != shape[1] {
		return fmt.Errorf("opm: %s requires %s->%s, got %s->%s",
			e.Kind, shape[0], shape[1], eff.Kind, cause.Kind)
	}
	if e.Account != "" {
		g.Accounts[e.Account] = true
	}
	g.Edges = append(g.Edges, e)
	return nil
}

// NodesOfKind returns node IDs of the given kind, sorted.
func (g *Graph) NodesOfKind(kind NodeKind) []string {
	var out []string
	for id, n := range g.Nodes {
		if n.Kind == kind {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// EdgesOfKind returns edges of the given kind in stable order.
func (g *Graph) EdgesOfKind(kind EdgeKind) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Effect != b.Effect {
			return a.Effect < b.Effect
		}
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		return a.Role < b.Role
	})
	return out
}

// HasEdge reports whether an exact (kind, effect, cause) edge exists in any
// account.
func (g *Graph) HasEdge(kind EdgeKind, effect, cause string) bool {
	for _, e := range g.Edges {
		if e.Kind == kind && e.Effect == effect && e.Cause == cause {
			return true
		}
	}
	return false
}

// Validate checks OPM legality: within each account an artifact is
// generated by at most one process, and the causal graph (effect depends on
// cause) is acyclic.
func (g *Graph) Validate() error {
	genBy := map[string]map[string]string{} // account -> artifact -> process
	for _, e := range g.Edges {
		if e.Kind != WasGeneratedBy {
			continue
		}
		acc := e.Account
		if genBy[acc] == nil {
			genBy[acc] = map[string]string{}
		}
		if prev, ok := genBy[acc][e.Effect]; ok && prev != e.Cause {
			return fmt.Errorf("opm: artifact %q generated by both %q and %q in account %q",
				e.Effect, prev, e.Cause, acc)
		}
		genBy[acc][e.Effect] = e.Cause
	}
	// Cycle check over cause -> effect direction.
	adj := map[string][]string{}
	for _, e := range g.Edges {
		adj[e.Cause] = append(adj[e.Cause], e.Effect)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(id string) error {
		color[id] = gray
		for _, next := range adj[id] {
			switch color[next] {
			case gray:
				return fmt.Errorf("opm: causal cycle through %q", next)
			case white:
				if err := visit(next); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for id := range g.Nodes {
		if color[id] == white {
			if err := visit(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Merge unions another OPM graph into this one (the Provenance-Challenge
// integration step): nodes merge by ID, edges are deduplicated by
// (kind, effect, cause, role, account).
func (g *Graph) Merge(other *Graph) error {
	ids := make([]string, 0, len(other.Nodes))
	for id := range other.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := g.AddNode(*other.Nodes[id]); err != nil {
			return err
		}
	}
	have := map[[5]string]bool{}
	for _, e := range g.Edges {
		have[[5]string{string(e.Kind), e.Effect, e.Cause, e.Role, e.Account}] = true
	}
	for _, e := range other.Edges {
		key := [5]string{string(e.Kind), e.Effect, e.Cause, e.Role, e.Account}
		if have[key] {
			continue
		}
		have[key] = true
		if err := g.AddEdge(e); err != nil {
			return err
		}
	}
	return nil
}

// CompleteDerivations applies the OPM inference rule
//
//	wasGeneratedBy(A2, P) ∧ used(P, A1)  ⇒  wasDerivedFrom*(A2, A1)
//
// and returns the full one-step derivation set (asserted plus inferred),
// deduplicated and sorted. It does not mutate the graph.
func (g *Graph) CompleteDerivations() []Edge {
	usedBy := map[string][]string{} // process -> artifacts used
	for _, e := range g.Edges {
		if e.Kind == Used {
			usedBy[e.Effect] = append(usedBy[e.Effect], e.Cause)
		}
	}
	seen := map[[2]string]bool{}
	var out []Edge
	add := func(effect, cause, account string) {
		key := [2]string{effect, cause}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Edge{Kind: WasDerivedFrom, Effect: effect, Cause: cause, Account: account})
	}
	for _, e := range g.Edges {
		if e.Kind == WasDerivedFrom {
			add(e.Effect, e.Cause, e.Account)
		}
	}
	for _, e := range g.Edges {
		if e.Kind != WasGeneratedBy {
			continue
		}
		for _, a1 := range usedBy[e.Cause] {
			add(e.Effect, a1, e.Account)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Effect != out[j].Effect {
			return out[i].Effect < out[j].Effect
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// TransitiveDerivations returns every (A, ancestor) pair in the transitive
// closure of the completed derivation relation.
func (g *Graph) TransitiveDerivations() map[string][]string {
	direct := map[string][]string{}
	for _, e := range g.CompleteDerivations() {
		direct[e.Effect] = append(direct[e.Effect], e.Cause)
	}
	memo := map[string][]string{}
	var visit func(string, map[string]bool) map[string]bool
	visit = func(id string, guard map[string]bool) map[string]bool {
		set := map[string]bool{}
		if guard[id] {
			return set
		}
		guard[id] = true
		for _, c := range direct[id] {
			set[c] = true
			for _, deep := range visitMemo(c, memo, visit, guard) {
				set[deep] = true
			}
		}
		delete(guard, id)
		return set
	}
	out := map[string][]string{}
	for id := range g.Nodes {
		if g.Nodes[id].Kind != Artifact {
			continue
		}
		set := visit(id, map[string]bool{})
		if len(set) == 0 {
			continue
		}
		list := make([]string, 0, len(set))
		for c := range set {
			list = append(list, c)
		}
		sort.Strings(list)
		out[id] = list
	}
	return out
}

func visitMemo(id string, memo map[string][]string, visit func(string, map[string]bool) map[string]bool, guard map[string]bool) []string {
	if have, ok := memo[id]; ok {
		return have
	}
	set := visit(id, guard)
	list := make([]string, 0, len(set))
	for c := range set {
		list = append(list, c)
	}
	sort.Strings(list)
	memo[id] = list
	return list
}

// FilterAccount returns the sub-graph asserted by one account: the audit
// view of a merged graph ("what did system X actually claim?"). Nodes are
// kept when incident to a retained edge; isolated nodes are dropped.
func (g *Graph) FilterAccount(account string) *Graph {
	out := NewGraph()
	keep := map[string]bool{}
	for _, e := range g.Edges {
		if e.Account == account {
			keep[e.Effect] = true
			keep[e.Cause] = true
		}
	}
	ids := make([]string, 0, len(keep))
	for id := range keep {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		_ = out.AddNode(*g.Nodes[id])
	}
	for _, e := range g.Edges {
		if e.Account == account {
			_ = out.AddEdge(e)
		}
	}
	if len(out.Edges) > 0 {
		out.Accounts[account] = true
	}
	return out
}

// Stats summarizes graph composition.
type Stats struct {
	Artifacts, Processes, Agents int
	EdgesByKind                  map[EdgeKind]int
	Accounts                     int
}

// Stat computes summary statistics.
func (g *Graph) Stat() Stats {
	s := Stats{EdgesByKind: map[EdgeKind]int{}, Accounts: len(g.Accounts)}
	for _, n := range g.Nodes {
		switch n.Kind {
		case Artifact:
			s.Artifacts++
		case Process:
			s.Processes++
		case Agent:
			s.Agents++
		}
	}
	for _, e := range g.Edges {
		s.EdgesByKind[e.Kind]++
	}
	return s
}
