package core

import (
	"fmt"

	"repro/internal/provenance"
	"repro/internal/query/scan"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/replica"
	"repro/internal/store/shardedstore"
)

// OpenPersistentStore assembles the file-backed storage stack provctl and
// provd share from Options: a single FileStore or a sharded router under
// StoreDir, with the configured durability (per-append fsync or
// group-commit WAL) and automatic checkpointing, optionally topped with a
// persistent closure cache whose snapshot lives next to the log. The
// returned cleanup closes the whole stack.
//
// Layout safety: a directory written sharded must be reopened with the
// same Shards value — a mismatch (including opening a sharded directory
// unsharded, or vice versa) is a loud error, never a silent misroute.
func OpenPersistentStore(opt Options) (store.Store, func() error, error) {
	if opt.StoreDir == "" {
		return nil, nil, fmt.Errorf("core: OpenPersistentStore needs Options.StoreDir")
	}
	fileOpt := store.FileOptions{
		Durability:         opt.Durability,
		CheckpointEvery:    opt.CheckpointEvery,
		CheckpointInterval: opt.CheckpointInterval,
		CheckpointBytes:    opt.CheckpointBytes,
	}
	if opt.EnableClosureCache {
		// The cache layer drives run-count and interval checkpoints for the
		// whole stack (its Checkpoint chains to the backing store), so the
		// backing layers must not double-checkpoint on those clocks. The
		// byte policy stays at the file layer — only it sees appended log
		// bytes — and its checkpoint snapshots the store alone; the cache
		// snapshot refreshes on its own cadence, and a restore replays any
		// gap through the delta path.
		fileOpt.CheckpointEvery = 0
		fileOpt.CheckpointInterval = 0
	}
	var backing store.Store
	if opt.Shards > 1 {
		r, err := shardedstore.OpenWith(opt.StoreDir, opt.Shards, fileOpt)
		if err != nil {
			return nil, nil, err
		}
		// WithTrace sits between the router and the closure cache, so a
		// cache miss that reaches the router still reports its rounds.
		backing = r.WithTrace(opt.TraceRounds)
	} else if n, unsharded := shardedstore.DetectShards(opt.StoreDir); n > 1 && !unsharded {
		return nil, nil, fmt.Errorf("core: %s was written with %d shards; reopen it with Shards/-shards %d", opt.StoreDir, n, n)
	} else if n == 1 && !unsharded {
		// A single-shard router layout (shard-000 + meta) is still a
		// router directory, not a plain FileStore one.
		r, err := shardedstore.OpenWith(opt.StoreDir, 1, fileOpt)
		if err != nil {
			return nil, nil, err
		}
		backing = r.WithTrace(opt.TraceRounds)
	} else {
		fs, err := store.OpenFileStoreWith(opt.StoreDir, fileOpt)
		if err != nil {
			return nil, nil, err
		}
		backing = fs
	}
	st := backing
	if opt.EnableClosureCache {
		st = closurecache.New(backing, closurecache.Options{
			SnapshotDir:        opt.StoreDir,
			CheckpointEvery:    opt.CheckpointEvery,
			CheckpointInterval: opt.CheckpointInterval,
		})
	}
	return st, st.Close, nil
}

// OpenFollowerStore assembles the read-replica storage stack provd's
// follower role serves from: a local store bootstrapped from — and kept
// a byte prefix of — the primary at Options.Primary (see
// internal/store/replica), optionally topped with a closure cache whose
// memoized closures patch live as replicated runs fold (the follower's
// apply hook feeds the cache's delta path). The background shipper is
// already started; the returned cleanup stops it and closes the stack.
func OpenFollowerStore(opt Options) (store.Store, *replica.Follower, func() error, error) {
	if opt.StoreDir == "" {
		return nil, nil, nil, fmt.Errorf("core: OpenFollowerStore needs Options.StoreDir")
	}
	if opt.Primary == "" {
		return nil, nil, nil, fmt.Errorf("core: OpenFollowerStore needs Options.Primary")
	}
	fileOpt := store.FileOptions{
		Durability:         opt.Durability,
		CheckpointEvery:    opt.CheckpointEvery,
		CheckpointInterval: opt.CheckpointInterval,
		CheckpointBytes:    opt.CheckpointBytes,
	}
	if opt.EnableClosureCache {
		fileOpt.CheckpointEvery = 0
		fileOpt.CheckpointInterval = 0
	}
	f, err := replica.Open(replica.Options{
		Dir:     opt.StoreDir,
		Primary: opt.Primary,
		Store:   fileOpt,
		Poll:    opt.ReplicaPoll,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	st := f.Store()
	cleanup := f.Close
	if opt.EnableClosureCache {
		c := closurecache.New(st, closurecache.Options{
			SnapshotDir:        opt.StoreDir,
			CheckpointEvery:    opt.CheckpointEvery,
			CheckpointInterval: opt.CheckpointInterval,
		})
		f.SetOnApply(c.ApplyDelta)
		st = c
		// The cache owns the close chain (its Close drains the auto
		// checkpointer and closes the backing store), so the follower only
		// stops its shipper — closing it too would double-close the store.
		cleanup = func() error {
			f.Stop()
			return c.Close()
		}
	}
	f.Start()
	return st, f, cleanup, nil
}

// NewPersistentSystem assembles a System over the persistent storage stack
// of OpenPersistentStore. The cleanup closes the store after the System is
// done. Opening an existing store seeds the process-wide entity ID counter
// past every persisted ID, so runs recorded by this process cannot collide
// with runs from earlier CLI invocations into the same directory.
func NewPersistentSystem(opt Options) (*System, func() error, error) {
	st, cleanup, err := OpenPersistentStore(opt)
	if err != nil {
		return nil, nil, err
	}
	if err := seedIDCounter(st); err != nil {
		_ = cleanup()
		return nil, nil, err
	}
	opt.Store = st
	return NewSystem(opt), cleanup, nil
}

// seedIDCounter scans the stored run logs (in parallel across shards) for
// the largest numeric ID suffix over runs, executions and artifacts —
// every kind the collector numbers from one shared counter — and raises
// the counter past it.
func seedIDCounter(st store.Store) error {
	var max uint64
	consider := func(id string) {
		if n, ok := provenance.IDSuffix(id); ok && n > max {
			max = n
		}
	}
	err := scan.Logs(st, func(l *provenance.RunLog) error {
		consider(l.Run.ID)
		for _, e := range l.Executions {
			consider(e.ID)
		}
		for _, a := range l.Artifacts {
			consider(a.ID)
		}
		return nil
	})
	if err != nil {
		return err
	}
	provenance.EnsureIDsAtLeast(max)
	return nil
}

// Checkpoint snapshots the system's store (and closure cache, when one is
// layered) to stable storage so the next open replays only the log suffix
// and serves warm closures immediately. A no-op on stores with nothing to
// checkpoint (pure in-memory systems).
func (s *System) Checkpoint() error {
	if ck, ok := s.Store.(store.Checkpointer); ok {
		return ck.Checkpoint()
	}
	return nil
}
