// Package core is the library facade: a provenance-enabled workflow system
// assembled from the substrates — execution engine, capture, storage, and
// the query engines — with the high-level operations the paper motivates:
// run with provenance, trace lineage, invalidate results, verify
// reproducibility, and export to the Open Provenance Model.
//
// Typical use:
//
//	sys := core.NewSystem(core.Options{Agent: "juliana"})
//	workloads.RegisterAll(sys.Registry)
//	res, log, err := sys.Run(ctx, wf, nil)
//	lineage, err := sys.Lineage(res.Artifacts["render.image"])
//	table, err := sys.Query("SELECT module FROM executions WHERE status = 'ok'")
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/opm"
	"repro/internal/provenance"
	"repro/internal/query/datalog"
	"repro/internal/query/pql"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/shardedstore"
	"repro/internal/workflow"
)

// Options configures a System.
type Options struct {
	// Store persists run logs; nil means a fresh in-memory store (sharded
	// across Shards hash-routed partitions when Shards > 1).
	Store store.Store
	// Shards partitions a nil-Store system across this many in-memory
	// shards behind internal/store/shardedstore: runs hash-route to a home
	// shard, ingests of different runs proceed under per-shard locking, and
	// traversals scatter/gather one frontier per hop. 0 or 1 keeps a single
	// unsharded store. File-backed sharding follows the same idiom as the
	// single FileStore: assemble it with shardedstore.Open and pass it as
	// Store (provctl and provd do exactly that behind their -shards flags).
	Shards int
	// Workers bounds parallel module executions (0: GOMAXPROCS).
	Workers int
	// EnableCache memoizes module executions across runs.
	EnableCache bool
	// EnableClosureCache wraps the store in an incrementally maintained
	// closure cache (internal/store/closurecache): lineage, dependents, PQL
	// and pushed-down Datalog closures memoize per (root, direction), and
	// each Run's ingest patches the affected cached closures in place.
	EnableClosureCache bool
	// StoreDir roots a persistent file-backed store; used by
	// OpenPersistentStore / NewPersistentSystem, which assemble the
	// FileStore or sharded router (plus persistent closure cache) there.
	StoreDir string
	// Durability selects what an accepted persistent ingest guarantees:
	// DurabilityNone (default), DurabilityFsync (one fsync per append) or
	// DurabilityGroup (write-ahead group commit — concurrent appends
	// share one fsync per batch; see internal/store/wal).
	Durability store.Durability
	// CheckpointEvery, when positive, snapshots the persistent store's
	// folded state — and the closure cache's entries, when enabled —
	// every N accepted ingests, so a reopen replays only the log suffix
	// and serves warm closures immediately (see System.Checkpoint for the
	// explicit form, and `provctl checkpoint` for the offline one).
	CheckpointEvery int
	// CheckpointInterval, when positive, also snapshots at most this long
	// after an ingest dirties the store — a wall-clock bound on replay
	// work for trickle-ingest daemons whose run counter may take hours to
	// reach CheckpointEvery.
	CheckpointInterval time.Duration
	// CheckpointBytes, when positive, also snapshots every time roughly
	// this many log bytes accumulate — a bound keyed to replay cost
	// rather than run count. On a sharded store the byte counter is
	// per-shard (each shard owns its own log).
	CheckpointBytes int64
	// Primary, when set, opens the store as a log-shipping read replica of
	// the provd at this base URL instead of an independent primary (see
	// OpenFollowerStore and internal/store/replica).
	Primary string
	// ReplicaPoll is the follower's tail interval (0: replica default).
	ReplicaPoll time.Duration
	// TraceRounds, when set on a sharded persistent store, receives the
	// round trace of every pushdown Closure the router executes (rounds,
	// per-round frontier probe counts, cross-shard crossings) — the
	// observability hook behind provctl's and provd's -trace-rounds
	// flags. Cache hits and unsharded stores execute no rounds and emit
	// nothing.
	TraceRounds func(shardedstore.ClosureTrace)
	// Agent names the user; Environment is recorded on every run.
	Agent       string
	Environment map[string]string
	// Faults injects per-module failures (testing/debugging).
	Faults map[string]string
}

// ValidatePersistence rejects option combinations that would silently
// drop a requested durability guarantee: Durability or CheckpointEvery
// without a store to persist (no StoreDir and no caller-assembled Store)
// would configure an in-memory system that persists nothing. Both CLIs
// call this after flag parsing; NewSystem does not, because the zero
// Options legitimately describe the plain in-memory system.
func (o Options) ValidatePersistence() error {
	if o.StoreDir != "" || o.Store != nil {
		return nil
	}
	if o.Durability != store.DurabilityNone {
		return fmt.Errorf("core: durability %s requires a store directory (-store DIR): an in-memory store persists nothing", o.Durability)
	}
	if o.CheckpointEvery > 0 || o.CheckpointInterval > 0 || o.CheckpointBytes > 0 {
		return fmt.Errorf("core: checkpoint policies require a store directory (-store DIR): an in-memory store has nothing to snapshot")
	}
	return nil
}

// System is a provenance-enabled workflow system.
type System struct {
	Registry  *engine.Registry
	Collector *provenance.Collector
	Store     store.Store
	Cache     *engine.Cache

	engine    *engine.Engine
	workflows map[string]*workflow.Workflow // run ID -> executed workflow
}

// NewSystem assembles a system.
func NewSystem(opt Options) *System {
	s := &System{
		Registry:  engine.NewRegistry(),
		Collector: provenance.NewCollector(),
		Store:     opt.Store,
		workflows: map[string]*workflow.Workflow{},
	}
	if s.Store == nil {
		if opt.Shards > 1 {
			s.Store = shardedstore.NewMem(opt.Shards)
		} else {
			s.Store = store.NewMemStore()
		}
	}
	if opt.EnableClosureCache {
		// The cache wraps any Store, so it layers above the sharded router
		// unchanged: memoized closures stay warm across sharded ingests.
		// A store assembled by OpenPersistentStore arrives already wrapped
		// (with its snapshot directory configured); don't stack a second
		// cold cache on top of it.
		if _, wrapped := s.Store.(*closurecache.Cache); !wrapped {
			s.Store = closurecache.Wrap(s.Store)
		}
	}
	if opt.EnableCache {
		s.Cache = engine.NewCache()
	}
	s.engine = engine.New(engine.Options{
		Registry:    s.Registry,
		Recorder:    s.Collector,
		Workers:     opt.Workers,
		Cache:       s.Cache,
		Agent:       opt.Agent,
		Environment: opt.Environment,
		Faults:      opt.Faults,
	})
	return s
}

// Run executes a workflow, capturing retrospective provenance and
// persisting the run log to the store. It returns the engine result and
// the stored log.
func (s *System) Run(ctx context.Context, wf *workflow.Workflow, inputs map[string]engine.Value) (*engine.Result, *provenance.RunLog, error) {
	res, err := s.engine.Run(ctx, wf, inputs)
	if err != nil {
		return nil, nil, err
	}
	log, err := s.Collector.Log(res.RunID)
	if err != nil {
		return nil, nil, err
	}
	if err := s.Store.PutRunLog(log); err != nil {
		return nil, nil, err
	}
	s.workflows[res.RunID] = wf.Clone()
	return res, log, nil
}

// WorkflowOf returns the workflow executed by a run.
func (s *System) WorkflowOf(runID string) (*workflow.Workflow, error) {
	wf, ok := s.workflows[runID]
	if !ok {
		return nil, fmt.Errorf("core: no workflow recorded for run %q", runID)
	}
	return wf, nil
}

// Lineage returns the upstream closure of an entity across all stored
// runs, pushed down into the backend's batch traversal API.
func (s *System) Lineage(entityID string) ([]string, error) {
	return s.Store.Closure(entityID, store.Up)
}

// Dependents returns the downstream closure of an entity.
func (s *System) Dependents(entityID string) ([]string, error) {
	return s.Store.Closure(entityID, store.Down)
}

// InvalidatedArtifacts lists the artifacts that must be recalled when an
// entity (e.g. a raw input from a defective instrument) is invalidated.
func (s *System) InvalidatedArtifacts(entityID string) ([]string, error) {
	deps, err := s.Dependents(entityID)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, id := range deps {
		if _, err := s.Store.Artifact(id); err == nil {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Query runs a PQL query (SELECT / LINEAGE OF / DEPENDENTS OF) against the
// store.
func (s *System) Query(q string) (*pql.Result, error) {
	return pql.Run(s.Store, q)
}

// DatalogQuery evaluates a query atom against the standard provenance
// Datalog program (see query/datalog.ProvenanceRules) loaded with the
// store's facts. Closure-shaped atoms (ancestor with one bound argument)
// are pushed down to the store's batch traversal API and skip fact
// loading and fixpoint materialization entirely.
func (s *System) DatalogQuery(queryAtom string) (*datalog.QueryResult, error) {
	atom, err := datalog.ParseAtom(queryAtom)
	if err != nil {
		return nil, err
	}
	if res, pushed, err := datalog.AncestorQueryViaStore(s.Store, atom); pushed {
		return res, err
	}
	p, err := datalog.NewProvenanceProgram(s.Store)
	if err != nil {
		return nil, err
	}
	return p.Query(atom)
}

// CausalGraph builds the causal graph of a stored run.
func (s *System) CausalGraph(runID string) (*provenance.CausalGraph, error) {
	l, err := s.Store.RunLog(runID)
	if err != nil {
		return nil, err
	}
	return provenance.BuildCausalGraph(l)
}

// ExportOPM converts a stored run to an OPM graph under the given account.
func (s *System) ExportOPM(runID, account string) (*opm.Graph, error) {
	l, err := s.Store.RunLog(runID)
	if err != nil {
		return nil, err
	}
	return opm.FromRunLog(l, account)
}

// ReplayReport compares a re-execution against the original run.
type ReplayReport struct {
	OriginalRun string
	ReplayRun   string
	Reproduced  bool
	Diff        *provenance.RunDiff
}

// VerifyReproducibility re-executes the workflow of a stored run and
// checks that every module produced outputs with identical content hashes:
// the paper's core reproducibility claim (§2.3), made checkable.
func (s *System) VerifyReproducibility(ctx context.Context, runID string) (*ReplayReport, error) {
	wf, err := s.WorkflowOf(runID)
	if err != nil {
		return nil, err
	}
	orig, err := s.Store.RunLog(runID)
	if err != nil {
		return nil, err
	}
	res, replay, err := s.Run(ctx, wf, nil)
	if err != nil {
		return nil, err
	}
	d := provenance.DiffRuns(orig, replay)
	return &ReplayReport{
		OriginalRun: runID,
		ReplayRun:   res.RunID,
		Reproduced:  d.SameWorkflow && len(d.OutputChanges) == 0 && len(d.OnlyInA) == 0 && len(d.OnlyInB) == 0,
		Diff:        d,
	}, nil
}

// ReproductionRecipe returns the minimal plan (modules in causal order plus
// required raw inputs) for regenerating an artifact of a stored run.
func (s *System) ReproductionRecipe(runID, artifactID string) (*provenance.Recipe, error) {
	cg, err := s.CausalGraph(runID)
	if err != nil {
		return nil, err
	}
	return cg.ReproductionRecipe(artifactID)
}

// Annotate attaches user-defined provenance to an entity of the current
// session (it reaches the collector; logs already persisted to the store
// are immutable).
func (s *System) Annotate(subject string, kind provenance.EntityKind, key, value string) {
	s.Collector.Annotate(subject, kind, key, value, "")
}
