package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workloads"
)

func newSystem(t *testing.T, opt Options) *System {
	t.Helper()
	s := NewSystem(opt)
	workloads.RegisterAll(s.Registry)
	return s
}

func TestRunPersistsLog(t *testing.T) {
	s := newSystem(t, Options{Agent: "juliana"})
	res, log, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("status = %s", res.Status)
	}
	stored, err := s.Store.RunLog(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored.Events) != len(log.Events) {
		t.Fatal("stored log differs")
	}
	if _, err := s.WorkflowOf(res.RunID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WorkflowOf("ghost"); err == nil {
		t.Fatal("unknown run resolved")
	}
}

func TestLineageAndInvalidation(t *testing.T) {
	s := newSystem(t, Options{})
	res, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := s.Lineage(res.Artifacts["render.image"])
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 5 {
		t.Fatalf("lineage = %v", lin)
	}
	inv, err := s.InvalidatedArtifacts(res.Artifacts["reader.data"])
	if err != nil {
		t.Fatal(err)
	}
	// plot, hist, surface, image.
	if len(inv) != 4 {
		t.Fatalf("invalidated = %v", inv)
	}
}

func TestQueryFacades(t *testing.T) {
	s := newSystem(t, Options{})
	res, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	table, err := s.Query("SELECT module FROM executions WHERE moduleType = 'Render'")
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || table.Rows[0][0] != "render" {
		t.Fatalf("pql rows = %v", table.Rows)
	}
	dres, err := s.DatalogQuery("ancestor('" + res.Artifacts["render.image"] + "', X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Rows) != 5 {
		t.Fatalf("datalog rows = %v", dres.Rows)
	}
	if _, err := s.DatalogQuery("not an atom"); err == nil {
		t.Fatal("bad atom accepted")
	}
}

func TestVerifyReproducibility(t *testing.T) {
	s := newSystem(t, Options{Workers: 1})
	res, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyReproducibility(context.Background(), res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced {
		t.Fatalf("not reproduced: %+v", rep.Diff)
	}
	if rep.ReplayRun == rep.OriginalRun {
		t.Fatal("replay did not create a new run")
	}
}

func TestReproductionRecipe(t *testing.T) {
	s := newSystem(t, Options{Workers: 1})
	res, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.ReproductionRecipe(res.RunID, res.Artifacts["render.image"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.ModuleIDs, ",") != "reader,contour,render" {
		t.Fatalf("recipe = %v", r.ModuleIDs)
	}
}

func TestExportOPM(t *testing.T) {
	s := newSystem(t, Options{Agent: "susan"})
	res, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.ExportOPM(res.RunID, "native")
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stat()
	if st.Processes != 4 || st.Agents != 1 {
		t.Fatalf("opm stats = %+v", st)
	}
}

func TestCacheAcrossRuns(t *testing.T) {
	s := newSystem(t, Options{EnableCache: true})
	wf := workloads.MedicalImaging()
	if _, _, err := s.Run(context.Background(), wf, nil); err != nil {
		t.Fatal(err)
	}
	res2, _, err := s.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Cached) != 4 {
		t.Fatalf("cached = %v", res2.Cached)
	}
}

func TestFaultInjectionThroughSystem(t *testing.T) {
	s := newSystem(t, Options{Faults: map[string]string{"contour": "injected"}})
	res, log, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusFailed {
		t.Fatal("fault not injected")
	}
	if log.ExecutionForModule("contour").Error != "injected" {
		t.Fatal("error message lost")
	}
}

func TestCustomStore(t *testing.T) {
	ts := store.NewTripleStore()
	s := newSystem(t, Options{Store: ts})
	if _, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil); err != nil {
		t.Fatal(err)
	}
	if ts.TripleCount() == 0 {
		t.Fatal("triple store not populated")
	}
}

func TestShardedSystem(t *testing.T) {
	s := newSystem(t, Options{Shards: 4, EnableClosureCache: true})
	res, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	single := newSystem(t, Options{})
	res2, _, err := single.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Lineage through the cache-wrapped sharded router has the same shape
	// as the unsharded system's on the same workflow (entity IDs are
	// per-collector, so compare sizes, not names).
	lin, err := s.Lineage(res.Artifacts["render.image"])
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Lineage(res2.Artifacts["render.image"])
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) == 0 || len(lin) != len(want) {
		t.Fatalf("sharded lineage has %d entities, want %d", len(lin), len(want))
	}
	// The cache serves the repeat query; answers must agree.
	again, err := s.Lineage(res.Artifacts["render.image"])
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(lin) {
		t.Fatalf("cached sharded lineage has %d entities, want %d", len(again), len(lin))
	}
}

func TestAnnotateReachesCollector(t *testing.T) {
	s := newSystem(t, Options{})
	res, _, err := s.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Annotate(res.Artifacts["render.image"], provenance.KindArtifact, "note", "good result")
	log, _ := s.Collector.Log(res.RunID)
	found := false
	for _, a := range log.Annotations {
		if a.Key == "note" {
			found = true
		}
	}
	if !found {
		t.Fatal("annotation lost")
	}
}
