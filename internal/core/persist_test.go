package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workloads"
)

// TestRunIDsSeededFromStore pins the cross-invocation run-ID fix: a fresh
// process (simulated by a store already holding IDs far beyond this
// process's counter) must not re-issue persisted IDs — the second
// `provctl run` used to be rejected as a duplicate run.
func TestRunIDsSeededFromStore(t *testing.T) {
	dir := t.TempDir()

	// Simulate an earlier CLI invocation whose counter was way ahead.
	const prior = 5_000_000
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	log := &provenance.RunLog{
		Run: provenance.Run{ID: fmt.Sprintf("run-%06d", prior), WorkflowID: "w", Status: provenance.StatusOK},
		Artifacts: []*provenance.Artifact{
			{ID: fmt.Sprintf("art-%06d", prior+2), RunID: fmt.Sprintf("run-%06d", prior)},
		},
	}
	if err := fs.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	sys, cleanup, err := NewPersistentSystem(Options{StoreDir: dir, Agent: "seed-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	workloads.RegisterAll(sys.Registry)

	res, _, err := sys.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatalf("run after reopen: %v", err)
	}
	n, ok := provenance.IDSuffix(res.RunID)
	if !ok || n <= prior+2 {
		t.Fatalf("run ID %q not seeded past stored max %d", res.RunID, prior+2)
	}
	runs, err := sys.Store.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %v", runs)
	}
}
