package params

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workloads"
)

func sweepEngine(rec provenance.Recorder, cache *engine.Cache) *engine.Engine {
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	return engine.New(engine.Options{Registry: reg, Recorder: rec, Cache: cache})
}

func isoSweep() *Sweep {
	return &Sweep{
		Base: workloads.MedicalImaging(),
		Axes: []Axis{
			{ModuleID: "contour", Param: "isovalue", Values: []string{"40", "57", "110"}},
			{ModuleID: "histogram", Param: "bins", Values: []string{"8", "16"}},
		},
	}
}

func TestPointsEnumeration(t *testing.T) {
	s := isoSweep()
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 || s.Size() != 6 {
		t.Fatalf("points = %d, size = %d", len(pts), s.Size())
	}
	// Deterministic order and all distinct.
	seen := map[string]bool{}
	for _, p := range pts {
		k := p.key()
		if seen[k] {
			t.Fatalf("duplicate point %q", k)
		}
		seen[k] = true
	}
	pts2, _ := s.Points()
	for i := range pts {
		if pts[i].key() != pts2[i].key() {
			t.Fatal("enumeration order unstable")
		}
	}
}

func TestPointsValidation(t *testing.T) {
	s := &Sweep{Base: workloads.MedicalImaging(),
		Axes: []Axis{{ModuleID: "ghost", Param: "x", Values: []string{"1"}}}}
	if _, err := s.Points(); err == nil {
		t.Fatal("unknown module accepted")
	}
	s = &Sweep{Base: workloads.MedicalImaging(),
		Axes: []Axis{{ModuleID: "contour", Param: "isovalue"}}}
	if _, err := s.Points(); err == nil {
		t.Fatal("empty axis accepted")
	}
}

func TestRunSweep(t *testing.T) {
	e := sweepEngine(nil, nil)
	outcomes, err := Run(context.Background(), e, isoSweep(), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 6 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for i, oc := range outcomes {
		if oc == nil || oc.Err != nil {
			t.Fatalf("outcome %d: %+v", i, oc)
		}
		if oc.Result.Status != provenance.StatusOK {
			t.Fatalf("outcome %d failed: %v", i, oc.Result.Failed)
		}
	}
}

func TestCompareGroupsByHash(t *testing.T) {
	e := sweepEngine(nil, nil)
	outcomes, err := Run(context.Background(), e, isoSweep(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The contour surface depends only on isovalue, not bins: 3 groups of 2.
	groups := Compare(outcomes, "contour.surface")
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	for h, pts := range groups {
		if len(pts) != 2 {
			t.Fatalf("group %s has %d points", h[:8], len(pts))
		}
	}
	// The histogram depends only on bins: 2 groups of 3.
	hgroups := Compare(outcomes, "histogram.plot")
	if len(hgroups) != 2 {
		t.Fatalf("histogram groups = %d", len(hgroups))
	}
}

func TestSweepWithCacheSkipsSharedWork(t *testing.T) {
	cache := engine.NewCache()
	e := sweepEngine(nil, cache)
	if _, err := Run(context.Background(), e, isoSweep(), Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	// The reader executes identically in all 6 points: 5 of 6 are hits.
	// Contour has 3 distinct settings (3 miss + 3 hit), histogram 2
	// distinct... overall hits must be substantial.
	if hits == 0 {
		t.Fatalf("no cache hits (misses=%d)", misses)
	}
	if hits < 5 {
		t.Fatalf("hits = %d, want >= 5", hits)
	}
}

func TestCollectFiltersOutputs(t *testing.T) {
	e := sweepEngine(nil, nil)
	outcomes, err := Run(context.Background(), e, isoSweep(),
		Options{Collect: []string{"render.image"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range outcomes {
		if len(oc.Result.Outputs) != 1 {
			t.Fatalf("outputs = %v", len(oc.Result.Outputs))
		}
		if _, ok := oc.Result.Outputs["render.image"]; !ok {
			t.Fatal("collected output missing")
		}
	}
}

func TestFrontier(t *testing.T) {
	e := sweepEngine(nil, nil)
	outcomes, err := Run(context.Background(), e, isoSweep(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Score: number of non-space characters in the rendered image
	// (a proxy for surface size; low isovalues produce denser surfaces).
	best, score, err := Frontier(outcomes, "render.image", func(v engine.Value) float64 {
		s := v.Data.(string)
		return float64(len(s) - strings.Count(s, " "))
	})
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatalf("score = %v", score)
	}
	if best.Point["contour.isovalue"] == "" {
		t.Fatalf("best point = %v", best.Point)
	}
	if _, _, err := Frontier(outcomes, "nope.out", nil); err == nil {
		t.Fatal("missing output accepted")
	}
}

func TestSweepCapturesProvenancePerPoint(t *testing.T) {
	col := provenance.NewCollector()
	e := sweepEngine(col, nil)
	outcomes, err := Run(context.Background(), e, isoSweep(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	runs := col.Runs()
	if len(runs) != len(outcomes) {
		t.Fatalf("runs = %d, outcomes = %d", len(runs), len(outcomes))
	}
	// Each point's run references a distinct workflow hash unless points
	// coincide (they don't here).
	hashes := map[string]bool{}
	for _, id := range runs {
		l, err := col.Log(id)
		if err != nil {
			t.Fatal(err)
		}
		hashes[l.Run.WorkflowHash] = true
	}
	if len(hashes) != 6 {
		t.Fatalf("distinct workflow hashes = %d", len(hashes))
	}
}
