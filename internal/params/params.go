// Package params implements provenance-backed parameter-space exploration
// (§2.3: "scalable exploration of large parameter spaces" and comparison of
// the resulting data products). A sweep is the cartesian product of
// per-parameter value lists; each point is executed as an ordinary run —
// capturing full provenance — and the results are collected for comparison.
// Combined with the engine cache, only the modules downstream of a changed
// parameter re-execute.
package params

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/workflow"
)

// Axis is one swept parameter.
type Axis struct {
	ModuleID string
	Param    string
	Values   []string
}

// Sweep is a parameter space over a base workflow.
type Sweep struct {
	Base *workflow.Workflow
	Axes []Axis
}

// Point is one assignment of all axes.
type Point map[string]string // "module.param" -> value

// key renders the point deterministically.
func (p Point) key() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "=" + p[k] + ";"
	}
	return out
}

// Points enumerates the cartesian product in deterministic order.
func (s *Sweep) Points() ([]Point, error) {
	for _, ax := range s.Axes {
		if s.Base.Module(ax.ModuleID) == nil {
			return nil, fmt.Errorf("params: sweep axis references unknown module %q", ax.ModuleID)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("params: axis %s.%s has no values", ax.ModuleID, ax.Param)
		}
	}
	points := []Point{{}}
	for _, ax := range s.Axes {
		var next []Point
		for _, base := range points {
			for _, v := range ax.Values {
				p := Point{}
				for k, val := range base {
					p[k] = val
				}
				p[ax.ModuleID+"."+ax.Param] = v
				next = append(next, p)
			}
		}
		points = next
	}
	return points, nil
}

// Size returns the number of points without materializing them.
func (s *Sweep) Size() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax.Values)
	}
	return n
}

// Outcome is the result of one sweep point.
type Outcome struct {
	Point  Point
	RunID  string
	Result *engine.Result
	Err    error
}

// Options tunes sweep execution.
type Options struct {
	// Workers bounds concurrently executing points (<=0: 4).
	Workers int
	// Collect names the outputs ("module.port") to retain per point; nil
	// retains all.
	Collect []string
}

// Run executes every point of the sweep on the engine. Each point clones
// the base workflow, applies its assignment, and runs. Outcomes are in
// point-enumeration order.
func Run(ctx context.Context, e *engine.Engine, s *Sweep, opt Options) ([]*Outcome, error) {
	points, err := s.Points()
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 4
	}
	out := make([]*Outcome, len(points))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, p := range points {
		wg.Add(1)
		go func(i int, p Point) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			oc := &Outcome{Point: p}
			defer func() { out[i] = oc }()
			wf := s.Base.Clone()
			wf.ID = fmt.Sprintf("%s#%s", s.Base.ID, p.key())
			for key, v := range p {
				d := lastDot(key)
				if d < 0 {
					oc.Err = fmt.Errorf("params: malformed point key %q", key)
					return
				}
				if err := wf.SetParam(key[:d], key[d+1:], v); err != nil {
					oc.Err = err
					return
				}
			}
			res, err := e.Run(ctx, wf, nil)
			oc.Err = err
			oc.Result = res
			if res != nil {
				oc.RunID = res.RunID
				if opt.Collect != nil {
					kept := map[string]engine.Value{}
					for _, k := range opt.Collect {
						if v, ok := res.Outputs[k]; ok {
							kept[k] = v
						}
					}
					res.Outputs = kept
				}
			}
		}(i, p)
	}
	wg.Wait()
	return out, nil
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// Compare groups outcomes by the content hash of a chosen output, answering
// "which parameter settings produce identical data products?". Keys are
// hashes; values are the points (in order) that produced them.
func Compare(outcomes []*Outcome, output string) map[string][]Point {
	groups := map[string][]Point{}
	for _, oc := range outcomes {
		if oc.Err != nil || oc.Result == nil {
			continue
		}
		v, ok := oc.Result.Outputs[output]
		if !ok {
			continue
		}
		h := v.Hash()
		groups[h] = append(groups[h], oc.Point)
	}
	return groups
}

// Frontier returns, for a numeric summary function over an output, the
// point with the maximum value — the "best setting" query of exploratory
// workflows.
func Frontier(outcomes []*Outcome, output string, score func(engine.Value) float64) (*Outcome, float64, error) {
	var best *Outcome
	bestScore := 0.0
	for _, oc := range outcomes {
		if oc.Err != nil || oc.Result == nil {
			continue
		}
		v, ok := oc.Result.Outputs[output]
		if !ok {
			continue
		}
		sc := score(v)
		if best == nil || sc > bestScore {
			best = oc
			bestScore = sc
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("params: no successful outcome produced %q", output)
	}
	return best, bestScore, nil
}
