// Package interop reproduces the paper's interoperability story (§2.4, the
// First and Second Provenance Challenges [32, 33]): several workflow
// systems execute parts of the same experiment, each records provenance in
// its own native format, and the formats are mapped into the Open
// Provenance Model and integrated so that cross-system lineage queries
// become answerable.
//
// The challenge workload is the First Provenance Challenge's fMRI brain-
// atlas pipeline: four anatomy images are aligned (align_warp), resliced,
// averaged into an atlas (softmean), sliced along three axes (slicer) and
// converted to graphics (convert). We simulate the multi-system setting by
// splitting the pipeline into three stages executed by miniature stand-ins
// for Kepler (event logs), Taverna (RDF triples) and VisTrails (XML logs).
package interop

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workflow"
)

// Data type tags for the fMRI pipeline.
const (
	TypeAnatomyImage = "anatomyImage"
	TypeWarp         = "warpParams"
	TypeResliced     = "reslicedImage"
	TypeAtlas        = "atlasImage"
	TypeSlice        = "atlasSlice"
	TypeGraphic      = "atlasGraphic"
)

// NewFMRIRegistry registers the challenge pipeline's module types.
func NewFMRIRegistry() *engine.Registry {
	r := engine.NewRegistry()
	// AlignWarp computes warp parameters for one anatomy image against the
	// reference. The "-m" model parameter is the subject of challenge
	// query Q4.
	r.Register("AlignWarp", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		img, err := ec.Input("image")
		if err != nil {
			return nil, err
		}
		ref, err := ec.Input("reference")
		if err != nil {
			return nil, err
		}
		m := ec.Param("m", "12")
		warp := fmt.Sprintf("warp(m=%s, img=%s, ref=%s)", m, img.Hash()[:8], ref.Hash()[:8])
		return map[string]engine.Value{"warp": {Type: TypeWarp, Data: warp}}, nil
	})
	// Reslice applies warp parameters to produce a resliced image.
	r.Register("Reslice", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		warp, err := ec.Input("warp")
		if err != nil {
			return nil, err
		}
		img, err := ec.Input("image")
		if err != nil {
			return nil, err
		}
		out := fmt.Sprintf("resliced(%s, %s)", warp.Hash()[:8], img.Hash()[:8])
		return map[string]engine.Value{"resliced": {Type: TypeResliced, Data: out}}, nil
	})
	// Softmean averages all resliced images into the atlas.
	r.Register("Softmean", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		var parts []string
		for i := 0; ; i++ {
			v, ok := ec.Inputs[fmt.Sprintf("in%d", i)]
			if !ok {
				break
			}
			parts = append(parts, v.Hash()[:8])
		}
		if len(parts) == 0 {
			return nil, fmt.Errorf("Softmean: no inputs")
		}
		return map[string]engine.Value{"atlas": {Type: TypeAtlas, Data: "atlas(" + strings.Join(parts, "+") + ")"}}, nil
	})
	// Slicer extracts a 2-D slice along an axis.
	r.Register("Slicer", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		atlas, err := ec.Input("atlas")
		if err != nil {
			return nil, err
		}
		axis := ec.Param("axis", "x")
		return map[string]engine.Value{"slice": {Type: TypeSlice,
			Data: fmt.Sprintf("slice-%s(%s)", axis, atlas.Hash()[:8])}}, nil
	})
	// Convert renders a slice as a graphic.
	r.Register("Convert", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		slice, err := ec.Input("slice")
		if err != nil {
			return nil, err
		}
		return map[string]engine.Value{"graphic": {Type: TypeGraphic,
			Data: "graphic(" + slice.Hash()[:8] + ")"}}, nil
	})
	return r
}

// Stage identifies which portion of the pipeline a system executed.
type Stage int

// Pipeline stages, split as in the Second Provenance Challenge setting.
const (
	StageAlignReslice Stage = iota // align_warp + reslice (x4)
	StageSoftmean                  // softmean
	StageSliceConvert              // slicer + convert (x3)
)

// BuildStage builds the workflow for one stage. nSubjects anatomy images
// flow through; axes are the three slicer axes.
func BuildStage(stage Stage, nSubjects int) (*workflow.Workflow, error) {
	switch stage {
	case StageAlignReslice:
		b := workflow.NewBuilder("fmri-stage1", "align+reslice")
		for i := 0; i < nSubjects; i++ {
			alignID := fmt.Sprintf("align%d", i)
			resliceID := fmt.Sprintf("reslice%d", i)
			b.Module(alignID, "AlignWarp",
				workflow.In("image", TypeAnatomyImage),
				workflow.In("reference", TypeAnatomyImage),
				workflow.Out("warp", TypeWarp))
			b.Param(alignID, "m", "12")
			b.Module(resliceID, "Reslice",
				workflow.In("warp", TypeWarp),
				workflow.In("image", TypeAnatomyImage),
				workflow.Out("resliced", TypeResliced))
			b.Connect(alignID, "warp", resliceID, "warp")
		}
		return b.Build()
	case StageSoftmean:
		b := workflow.NewBuilder("fmri-stage2", "softmean")
		var ports []workflow.PortSpec
		for i := 0; i < nSubjects; i++ {
			ports = append(ports, workflow.In(fmt.Sprintf("in%d", i), TypeResliced))
		}
		ports = append(ports, workflow.Out("atlas", TypeAtlas))
		b.Module("softmean", "Softmean", ports...)
		return b.Build()
	case StageSliceConvert:
		b := workflow.NewBuilder("fmri-stage3", "slice+convert")
		for i, axis := range []string{"x", "y", "z"} {
			slicerID := fmt.Sprintf("slicer_%s", axis)
			convertID := fmt.Sprintf("convert_%s", axis)
			b.Module(slicerID, "Slicer",
				workflow.In("atlas", TypeAtlas),
				workflow.Out("slice", TypeSlice))
			b.Param(slicerID, "axis", axis)
			b.Module(convertID, "Convert",
				workflow.In("slice", TypeSlice),
				workflow.Out("graphic", TypeGraphic))
			b.Connect(slicerID, "slice", convertID, "slice")
			_ = i
		}
		return b.Build()
	}
	return nil, fmt.Errorf("interop: unknown stage %d", stage)
}

// anatomyImage synthesizes a deterministic anatomy image value.
func anatomyImage(subject int) engine.Value {
	return engine.Value{Type: TypeAnatomyImage,
		Data: "anatomy-" + strconv.Itoa(subject) + "-header(max=4096)"}
}

// referenceImage is the shared alignment reference.
func referenceImage() engine.Value {
	return engine.Value{Type: TypeAnatomyImage, Data: "reference-brain-header(max=4095)"}
}

// StageRun holds a stage's run log together with the values it produced,
// so the next stage can consume them (hand-off between systems).
type StageRun struct {
	System  string
	Log     *provenance.RunLog
	Outputs map[string]engine.Value
}

// RunPipeline executes the three stages with separate collectors, handing
// artifacts across stage boundaries by value (so content hashes agree
// across systems, which is what integration keys on). Each stage is
// attributed to a different "system" account.
func RunPipeline(nSubjects int) ([]*StageRun, error) {
	reg := NewFMRIRegistry()
	systems := []string{"kepler-sim", "taverna-sim", "vistrails-sim"}
	var runs []*StageRun

	// Stage 1: align + reslice.
	wf1, err := BuildStage(StageAlignReslice, nSubjects)
	if err != nil {
		return nil, err
	}
	col1 := provenance.NewCollector()
	e1 := engine.New(engine.Options{Registry: reg, Recorder: col1, Agent: "challenge-team-1", Workers: 1})
	in1 := map[string]engine.Value{}
	for i := 0; i < nSubjects; i++ {
		in1[fmt.Sprintf("align%d.image", i)] = anatomyImage(i)
		in1[fmt.Sprintf("align%d.reference", i)] = referenceImage()
		in1[fmt.Sprintf("reslice%d.image", i)] = anatomyImage(i)
	}
	res1, err := e1.Run(context.Background(), wf1, in1)
	if err != nil {
		return nil, err
	}
	log1, err := col1.Log(res1.RunID)
	if err != nil {
		return nil, err
	}
	runs = append(runs, &StageRun{System: systems[0], Log: log1, Outputs: res1.Outputs})

	// Stage 2: softmean over the resliced images.
	wf2, err := BuildStage(StageSoftmean, nSubjects)
	if err != nil {
		return nil, err
	}
	col2 := provenance.NewCollector()
	e2 := engine.New(engine.Options{Registry: reg, Recorder: col2, Agent: "challenge-team-2", Workers: 1})
	in2 := map[string]engine.Value{}
	for i := 0; i < nSubjects; i++ {
		in2[fmt.Sprintf("softmean.in%d", i)] = res1.Outputs[fmt.Sprintf("reslice%d.resliced", i)]
	}
	res2, err := e2.Run(context.Background(), wf2, in2)
	if err != nil {
		return nil, err
	}
	log2, err := col2.Log(res2.RunID)
	if err != nil {
		return nil, err
	}
	runs = append(runs, &StageRun{System: systems[1], Log: log2, Outputs: res2.Outputs})

	// Stage 3: slicer + convert over the atlas.
	wf3, err := BuildStage(StageSliceConvert, nSubjects)
	if err != nil {
		return nil, err
	}
	col3 := provenance.NewCollector()
	e3 := engine.New(engine.Options{Registry: reg, Recorder: col3, Agent: "challenge-team-3", Workers: 1})
	in3 := map[string]engine.Value{}
	for _, axis := range []string{"x", "y", "z"} {
		in3["slicer_"+axis+".atlas"] = res2.Outputs["softmean.atlas"]
	}
	res3, err := e3.Run(context.Background(), wf3, in3)
	if err != nil {
		return nil, err
	}
	log3, err := col3.Log(res3.RunID)
	if err != nil {
		return nil, err
	}
	runs = append(runs, &StageRun{System: systems[2], Log: log3, Outputs: res3.Outputs})
	return runs, nil
}
