package interop

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"repro/internal/opm"
	"repro/internal/provenance"
)

// Each simulated system exports its native provenance format from a run
// log, and each format has an importer into OPM. The formats deliberately
// differ in structure and vocabulary — that gap is what the Provenance
// Challenge measured, and what FromX → OPM adapters bridge.

// --- Kepler-style event log -----------------------------------------------

// KeplerEvent mimics Kepler's actor-oriented provenance events [2]: actors
// fire and read/write tokens on ports.
type KeplerEvent struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"` // fireStart, fireEnd, tokenRead, tokenWrite
	Actor  string `json:"actor,omitempty"`
	FireID string `json:"fireId,omitempty"`
	Token  string `json:"token,omitempty"`
	Port   string `json:"port,omitempty"`
	Hash   string `json:"hash,omitempty"`
}

// KeplerLog is a complete actor event log.
type KeplerLog struct {
	WorkflowName string
	User         string
	Events       []KeplerEvent
}

// ExportKepler converts a run log into the Kepler-style event log.
func ExportKepler(l *provenance.RunLog) *KeplerLog {
	out := &KeplerLog{WorkflowName: l.Run.WorkflowID, User: l.Run.Agent}
	hashOf := map[string]string{}
	for _, a := range l.Artifacts {
		hashOf[a.ID] = a.ContentHash
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventExecutionStarted:
			exec := l.Execution(ev.ExecutionID)
			out.Events = append(out.Events, KeplerEvent{Seq: ev.Seq, Kind: "fireStart",
				Actor: exec.ModuleID, FireID: "fire:" + ev.ExecutionID})
		case provenance.EventExecutionEnded:
			exec := l.Execution(ev.ExecutionID)
			out.Events = append(out.Events, KeplerEvent{Seq: ev.Seq, Kind: "fireEnd",
				Actor: exec.ModuleID, FireID: "fire:" + ev.ExecutionID})
		case provenance.EventArtifactUsed:
			out.Events = append(out.Events, KeplerEvent{Seq: ev.Seq, Kind: "tokenRead",
				FireID: "fire:" + ev.ExecutionID, Token: "tok:" + ev.ArtifactID,
				Port: ev.Port, Hash: hashOf[ev.ArtifactID]})
		case provenance.EventArtifactGen:
			out.Events = append(out.Events, KeplerEvent{Seq: ev.Seq, Kind: "tokenWrite",
				FireID: "fire:" + ev.ExecutionID, Token: "tok:" + ev.ArtifactID,
				Port: ev.Port, Hash: hashOf[ev.ArtifactID]})
		}
	}
	return out
}

// KeplerToOPM maps an actor event log into OPM under the given account.
func KeplerToOPM(k *KeplerLog, account string) (*opm.Graph, error) {
	g := opm.NewGraph()
	agent := "agent:" + k.User
	if err := g.AddNode(opm.Node{ID: agent, Kind: opm.Agent, Value: k.User}); err != nil {
		return nil, err
	}
	for _, ev := range k.Events {
		switch ev.Kind {
		case "fireStart":
			if err := g.AddNode(opm.Node{ID: account + "/" + ev.FireID, Kind: opm.Process, Value: ev.Actor}); err != nil {
				return nil, err
			}
			if err := g.AddEdge(opm.Edge{Kind: opm.WasControlledBy,
				Effect: account + "/" + ev.FireID, Cause: agent, Account: account}); err != nil {
				return nil, err
			}
		case "tokenRead", "tokenWrite":
			art := account + "/" + ev.Token
			if err := g.AddNode(opm.Node{ID: art, Kind: opm.Artifact,
				Attrs: map[string]string{"hash": ev.Hash}}); err != nil {
				return nil, err
			}
			proc := account + "/" + ev.FireID
			if !gHasNode(g, proc) {
				return nil, fmt.Errorf("interop: kepler token event before fireStart of %s", ev.FireID)
			}
			var e opm.Edge
			if ev.Kind == "tokenRead" {
				e = opm.Edge{Kind: opm.Used, Effect: proc, Cause: art, Role: ev.Port, Account: account}
			} else {
				e = opm.Edge{Kind: opm.WasGeneratedBy, Effect: art, Cause: proc, Role: ev.Port, Account: account}
			}
			if err := g.AddEdge(e); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func gHasNode(g *opm.Graph, id string) bool {
	_, ok := g.Nodes[id]
	return ok
}

// --- Taverna-style RDF ------------------------------------------------------

// TavernaTriple mimics Taverna's Semantic-Web provenance [46]: triples over
// process runs and data items.
type TavernaTriple struct {
	S, P, O string
}

// TavernaRDF is a triple dump plus the content-hash map needed to identify
// data items across systems.
type TavernaRDF struct {
	Triples []TavernaTriple
}

// Taverna vocabulary.
const (
	tavProcessRun = "tav:processRun"
	tavRunsTask   = "tav:runsTask"
	tavHasInput   = "tav:hasInput"
	tavHasOutput  = "tav:hasOutput"
	tavDataItem   = "tav:dataItem"
	tavHash       = "tav:contentHash"
	tavRunBy      = "tav:runBy"
)

// ExportTaverna converts a run log into Taverna-style triples.
func ExportTaverna(l *provenance.RunLog) *TavernaRDF {
	out := &TavernaRDF{}
	add := func(s, p, o string) { out.Triples = append(out.Triples, TavernaTriple{s, p, o}) }
	for _, e := range l.Executions {
		pr := "pr:" + e.ID
		add(pr, "rdf:type", tavProcessRun)
		add(pr, tavRunsTask, e.ModuleID)
		add(pr, tavRunBy, l.Run.Agent)
	}
	for _, a := range l.Artifacts {
		di := "data:" + a.ID
		add(di, "rdf:type", tavDataItem)
		add(di, tavHash, a.ContentHash)
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventArtifactUsed:
			add("pr:"+ev.ExecutionID, tavHasInput, "data:"+ev.ArtifactID)
		case provenance.EventArtifactGen:
			add("pr:"+ev.ExecutionID, tavHasOutput, "data:"+ev.ArtifactID)
		}
	}
	return out
}

// TavernaToOPM maps Taverna triples into OPM under the given account.
func TavernaToOPM(t *TavernaRDF, account string) (*opm.Graph, error) {
	g := opm.NewGraph()
	hashes := map[string]string{}
	agents := map[string]string{} // process -> agent
	tasks := map[string]string{}
	var processes, dataItems []string
	for _, tr := range t.Triples {
		switch tr.P {
		case "rdf:type":
			if tr.O == tavProcessRun {
				processes = append(processes, tr.S)
			} else if tr.O == tavDataItem {
				dataItems = append(dataItems, tr.S)
			}
		case tavHash:
			hashes[tr.S] = tr.O
		case tavRunBy:
			agents[tr.S] = tr.O
		case tavRunsTask:
			tasks[tr.S] = tr.O
		}
	}
	sort.Strings(processes)
	sort.Strings(dataItems)
	for _, p := range processes {
		if err := g.AddNode(opm.Node{ID: account + "/" + p, Kind: opm.Process, Value: tasks[p]}); err != nil {
			return nil, err
		}
		if ag := agents[p]; ag != "" {
			agentID := "agent:" + ag
			if err := g.AddNode(opm.Node{ID: agentID, Kind: opm.Agent, Value: ag}); err != nil {
				return nil, err
			}
			if err := g.AddEdge(opm.Edge{Kind: opm.WasControlledBy,
				Effect: account + "/" + p, Cause: agentID, Account: account}); err != nil {
				return nil, err
			}
		}
	}
	for _, d := range dataItems {
		if err := g.AddNode(opm.Node{ID: account + "/" + d, Kind: opm.Artifact,
			Attrs: map[string]string{"hash": hashes[d]}}); err != nil {
			return nil, err
		}
	}
	for _, tr := range t.Triples {
		switch tr.P {
		case tavHasInput:
			if err := g.AddEdge(opm.Edge{Kind: opm.Used,
				Effect: account + "/" + tr.S, Cause: account + "/" + tr.O, Account: account}); err != nil {
				return nil, err
			}
		case tavHasOutput:
			if err := g.AddEdge(opm.Edge{Kind: opm.WasGeneratedBy,
				Effect: account + "/" + tr.O, Cause: account + "/" + tr.S, Account: account}); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// --- VisTrails-style XML log -------------------------------------------------

// VisTrailsLog mimics VisTrails' XML execution log [45]: module executions
// nested under a workflow execution, each with inputs and outputs.
type VisTrailsLog struct {
	XMLName   xml.Name        `xml:"workflowExec"`
	Workflow  string          `xml:"workflow,attr"`
	User      string          `xml:"user,attr"`
	ModExecs  []VisTrailsExec `xml:"moduleExec"`
	DataItems []VisTrailsData `xml:"dataItem"`
}

// VisTrailsExec is one module execution record.
type VisTrailsExec struct {
	ID      string   `xml:"id,attr"`
	Module  string   `xml:"module,attr"`
	Inputs  []string `xml:"input"`
	Outputs []string `xml:"output"`
}

// VisTrailsData declares a data item and its content hash.
type VisTrailsData struct {
	ID   string `xml:"id,attr"`
	Hash string `xml:"hash,attr"`
}

// ExportVisTrails converts a run log into the VisTrails-style XML model.
func ExportVisTrails(l *provenance.RunLog) *VisTrailsLog {
	out := &VisTrailsLog{Workflow: l.Run.WorkflowID, User: l.Run.Agent}
	for _, a := range l.Artifacts {
		out.DataItems = append(out.DataItems, VisTrailsData{ID: "d" + a.ID, Hash: a.ContentHash})
	}
	for _, e := range l.Executions {
		me := VisTrailsExec{ID: "x" + e.ID, Module: e.ModuleID}
		for _, a := range l.ArtifactsUsedBy(e.ID) {
			me.Inputs = append(me.Inputs, "d"+a.ID)
		}
		for _, a := range l.ArtifactsGeneratedBy(e.ID) {
			me.Outputs = append(me.Outputs, "d"+a.ID)
		}
		out.ModExecs = append(out.ModExecs, me)
	}
	return out
}

// MarshalVisTrailsXML renders the log as XML (the on-disk dialect).
func MarshalVisTrailsXML(v *VisTrailsLog) ([]byte, error) {
	return xml.MarshalIndent(v, "", "  ")
}

// UnmarshalVisTrailsXML parses the XML dialect.
func UnmarshalVisTrailsXML(data []byte) (*VisTrailsLog, error) {
	var v VisTrailsLog
	if err := xml.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("interop: vistrails xml: %w", err)
	}
	return &v, nil
}

// VisTrailsToOPM maps the XML log into OPM under the given account.
func VisTrailsToOPM(v *VisTrailsLog, account string) (*opm.Graph, error) {
	g := opm.NewGraph()
	agent := "agent:" + v.User
	if err := g.AddNode(opm.Node{ID: agent, Kind: opm.Agent, Value: v.User}); err != nil {
		return nil, err
	}
	for _, d := range v.DataItems {
		if err := g.AddNode(opm.Node{ID: account + "/" + d.ID, Kind: opm.Artifact,
			Attrs: map[string]string{"hash": d.Hash}}); err != nil {
			return nil, err
		}
	}
	for _, me := range v.ModExecs {
		pid := account + "/" + me.ID
		if err := g.AddNode(opm.Node{ID: pid, Kind: opm.Process, Value: me.Module}); err != nil {
			return nil, err
		}
		if err := g.AddEdge(opm.Edge{Kind: opm.WasControlledBy, Effect: pid, Cause: agent, Account: account}); err != nil {
			return nil, err
		}
		for _, in := range me.Inputs {
			if err := g.AddEdge(opm.Edge{Kind: opm.Used, Effect: pid,
				Cause: account + "/" + in, Account: account}); err != nil {
				return nil, err
			}
		}
		for _, out := range me.Outputs {
			if err := g.AddEdge(opm.Edge{Kind: opm.WasGeneratedBy,
				Effect: account + "/" + out, Cause: pid, Account: account}); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// --- Integration --------------------------------------------------------------

// Integrate merges per-system OPM graphs into one, unifying artifacts by
// content hash: artifacts asserted by different systems with equal hashes
// become one node ("hash:<prefix>"), which is exactly how challenge teams
// joined their traces (file checksums). Processes and agents stay
// per-system.
func Integrate(graphs ...*opm.Graph) (*opm.Graph, error) {
	out := opm.NewGraph()
	rename := func(g *opm.Graph, id string) string {
		n := g.Nodes[id]
		if n != nil && n.Kind == opm.Artifact && n.Attrs["hash"] != "" {
			return "hash:" + n.Attrs["hash"]
		}
		return id
	}
	for _, g := range graphs {
		ids := make([]string, 0, len(g.Nodes))
		for id := range g.Nodes {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			n := *g.Nodes[id]
			n.ID = rename(g, id)
			if err := out.AddNode(n); err != nil {
				return nil, err
			}
		}
		for _, e := range g.Edges {
			me := e
			me.Effect = rename(g, e.Effect)
			me.Cause = rename(g, e.Cause)
			if out.HasEdge(me.Kind, me.Effect, me.Cause) {
				continue
			}
			if err := out.AddEdge(me); err != nil {
				return nil, err
			}
		}
		for acc := range g.Accounts {
			out.Accounts[acc] = true
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("interop: integrated graph invalid: %w", err)
	}
	return out, nil
}

// SystemGraphs exports each stage run through its system's native format
// and converts to OPM: the full pipeline native → OPM per system.
func SystemGraphs(runs []*StageRun) ([]*opm.Graph, error) {
	if len(runs) != 3 {
		return nil, fmt.Errorf("interop: want 3 stage runs, got %d", len(runs))
	}
	k := ExportKepler(runs[0].Log)
	gk, err := KeplerToOPM(k, runs[0].System)
	if err != nil {
		return nil, err
	}
	tv := ExportTaverna(runs[1].Log)
	gt, err := TavernaToOPM(tv, runs[1].System)
	if err != nil {
		return nil, err
	}
	vtXML, err := MarshalVisTrailsXML(ExportVisTrails(runs[2].Log))
	if err != nil {
		return nil, err
	}
	vt, err := UnmarshalVisTrailsXML(vtXML)
	if err != nil {
		return nil, err
	}
	gv, err := VisTrailsToOPM(vt, runs[2].System)
	if err != nil {
		return nil, err
	}
	return []*opm.Graph{gk, gt, gv}, nil
}

// moduleOfProcess extracts the module name recorded on an OPM process node.
func moduleOfProcess(g *opm.Graph, id string) string {
	n := g.Nodes[id]
	if n == nil {
		return ""
	}
	return strings.TrimSpace(n.Value)
}
