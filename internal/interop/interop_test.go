package interop

import (
	"strings"
	"testing"

	"repro/internal/opm"
)

func pipelineRuns(t *testing.T) []*StageRun {
	t.Helper()
	runs, err := RunPipeline(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("stage runs = %d", len(runs))
	}
	return runs
}

func TestPipelineStagesRun(t *testing.T) {
	runs := pipelineRuns(t)
	// Stage 1: 4 aligns + 4 reslices.
	if len(runs[0].Log.Executions) != 8 {
		t.Fatalf("stage1 executions = %d", len(runs[0].Log.Executions))
	}
	// Stage 2: softmean only.
	if len(runs[1].Log.Executions) != 1 {
		t.Fatalf("stage2 executions = %d", len(runs[1].Log.Executions))
	}
	// Stage 3: 3 slicers + 3 converts.
	if len(runs[2].Log.Executions) != 6 {
		t.Fatalf("stage3 executions = %d", len(runs[2].Log.Executions))
	}
	// Hand-off: stage2's input hashes equal stage1's resliced outputs.
	resliced := map[string]bool{}
	for _, a := range runs[0].Log.Artifacts {
		if a.Type == TypeResliced {
			resliced[a.ContentHash] = true
		}
	}
	crossed := 0
	for _, a := range runs[1].Log.Artifacts {
		if resliced[a.ContentHash] {
			crossed++
		}
	}
	if crossed != 4 {
		t.Fatalf("hand-off artifacts = %d, want 4", crossed)
	}
}

func TestKeplerExportImport(t *testing.T) {
	runs := pipelineRuns(t)
	k := ExportKepler(runs[0].Log)
	if len(k.Events) == 0 || k.User != "challenge-team-1" {
		t.Fatalf("kepler log = %d events, user %q", len(k.Events), k.User)
	}
	g, err := KeplerToOPM(k, "kepler-sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stat()
	if st.Processes != 8 {
		t.Fatalf("processes = %d", st.Processes)
	}
	// 12 raw inputs (4 image + 4 reference + 4 reslice-image) + 4 warps +
	// 4 resliced = but raw inputs shared? anatomy image used twice has one
	// artifact per RecordInput call; just require >= 12.
	if st.Artifacts < 12 {
		t.Fatalf("artifacts = %d", st.Artifacts)
	}
}

func TestTavernaExportImport(t *testing.T) {
	runs := pipelineRuns(t)
	tv := ExportTaverna(runs[1].Log)
	if len(tv.Triples) == 0 {
		t.Fatal("no triples")
	}
	g, err := TavernaToOPM(tv, "taverna-sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stat()
	if st.Processes != 1 || st.EdgesByKind[opm.Used] != 4 || st.EdgesByKind[opm.WasGeneratedBy] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVisTrailsXMLRoundTrip(t *testing.T) {
	runs := pipelineRuns(t)
	v := ExportVisTrails(runs[2].Log)
	data, err := MarshalVisTrailsXML(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalVisTrailsXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ModExecs) != 6 || len(back.DataItems) != len(v.DataItems) {
		t.Fatalf("round trip: %d execs %d data", len(back.ModExecs), len(back.DataItems))
	}
	g, err := VisTrailsToOPM(back, "vistrails-sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Stat().Processes != 6 {
		t.Fatalf("processes = %d", g.Stat().Processes)
	}
}

func TestIntegrationUnifiesByHash(t *testing.T) {
	runs := pipelineRuns(t)
	graphs, err := SystemGraphs(runs)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Integrate(graphs...)
	if err != nil {
		t.Fatal(err)
	}
	// Every artifact node in the merged graph is hash-keyed.
	for id, n := range merged.Nodes {
		if n.Kind == opm.Artifact && !strings.HasPrefix(id, "hash:") {
			t.Fatalf("artifact %q not unified", id)
		}
	}
	// The resliced images appear once each, although two systems assert
	// them: total artifacts < sum of per-system artifacts.
	sum := 0
	for _, g := range graphs {
		sum += g.Stat().Artifacts
	}
	if merged.Stat().Artifacts >= sum {
		t.Fatalf("no unification: %d vs %d", merged.Stat().Artifacts, sum)
	}
	// All three accounts survive.
	if len(merged.Accounts) != 3 {
		t.Fatalf("accounts = %v", merged.Accounts)
	}
}

func TestCrossSystemLineage(t *testing.T) {
	runs := pipelineRuns(t)
	graphs, err := SystemGraphs(runs)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Integrate(graphs...)
	if err != nil {
		t.Fatal(err)
	}
	// A graphic's derivation ancestry must cross all three systems back to
	// the anatomy inputs.
	gfx := finalGraphics(merged)
	if len(gfx) != 3 {
		t.Fatalf("graphics = %v", gfx)
	}
	anc := derivationAncestors(merged, gfx[0])
	// slice + atlas + 4 resliced + 4 warps + raw inputs.
	if len(anc) < 10 {
		t.Fatalf("integrated ancestry = %d nodes (%v)", len(anc), anc)
	}
	// Single-system ancestry stops at the stage boundary.
	ancSingle := derivationAncestors(graphs[2], "")
	_ = ancSingle
	gfxSingle := finalGraphics(graphs[2])
	ancS := derivationAncestors(graphs[2], gfxSingle[0])
	if len(ancS) >= len(anc) {
		t.Fatalf("single-system ancestry (%d) not smaller than integrated (%d)", len(ancS), len(anc))
	}
}

func TestChallengeSuiteShape(t *testing.T) {
	runs := pipelineRuns(t)
	graphs, err := SystemGraphs(runs)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Integrate(graphs...)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"kepler-sim", "taverna-sim", "vistrails-sim"}
	singleBest := 0
	for i, g := range graphs {
		r := RunSuite(names[i], g)
		if r.Answered > singleBest {
			singleBest = r.Answered
		}
		if r.Answered == r.Total {
			t.Fatalf("%s alone answers everything (%d/%d)", names[i], r.Answered, r.Total)
		}
	}
	rm := RunSuite("integrated", merged)
	// The integration claim: strictly more queries answerable.
	if rm.Answered <= singleBest {
		t.Fatalf("integrated answers %d, best single %d", rm.Answered, singleBest)
	}
	if rm.Answered != rm.Total {
		t.Logf("integrated answerable: %+v", rm.Answerable)
		t.Fatalf("integrated answers %d/%d", rm.Answered, rm.Total)
	}
}

func TestBuildStageErrors(t *testing.T) {
	if _, err := BuildStage(Stage(99), 4); err == nil {
		t.Fatal("unknown stage accepted")
	}
}

func TestStagesDeterministic(t *testing.T) {
	a := pipelineRuns(t)
	b := pipelineRuns(t)
	// Final graphics hashes agree across pipeline executions.
	ha := a[2].Outputs["convert_x.graphic"].Hash()
	hb := b[2].Outputs["convert_x.graphic"].Hash()
	if ha != hb {
		t.Fatal("pipeline not deterministic")
	}
}

func TestIntegratedGraphAuditableByAccount(t *testing.T) {
	runs := pipelineRuns(t)
	graphs, err := SystemGraphs(runs)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Integrate(graphs...)
	if err != nil {
		t.Fatal(err)
	}
	// Each system's account view of the merged graph asserts exactly the
	// same number of use/generate edges as its standalone graph.
	names := []string{"kepler-sim", "taverna-sim", "vistrails-sim"}
	for i, name := range names {
		view := merged.FilterAccount(name)
		want := graphs[i].Stat()
		got := view.Stat()
		if got.EdgesByKind[opm.Used] != want.EdgesByKind[opm.Used] ||
			got.EdgesByKind[opm.WasGeneratedBy] != want.EdgesByKind[opm.WasGeneratedBy] {
			t.Fatalf("%s audit view: %+v vs %+v", name, got.EdgesByKind, want.EdgesByKind)
		}
	}
}
