package relalg

import (
	"strings"
	"testing"
	"testing/quick"
)

// genes: (gene, organism, score)
func genes(t *testing.T) *Relation {
	t.Helper()
	r, err := NewRelation("genes", []string{"gene", "organism", "score"}, [][]Val{
		{"brca1", "human", int64(90)},
		{"brca2", "human", int64(85)},
		{"tp53", "human", int64(99)},
		{"tp53", "mouse", int64(80)},
		{"sonic", "mouse", int64(70)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// studies: (gene, study)
func studies(t *testing.T) *Relation {
	t.Helper()
	r, err := NewRelation("studies", []string{"g", "study"}, [][]Val{
		{"brca1", "S1"},
		{"tp53", "S1"},
		{"tp53", "S2"},
		{"unknown", "S3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("r", []string{"a", "a"}, nil); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewRelation("r", []string{""}, nil); err == nil {
		t.Fatal("empty column accepted")
	}
	if _, err := NewRelation("r", []string{"a"}, [][]Val{{int64(1), int64(2)}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestBaseProvenance(t *testing.T) {
	r := genes(t)
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	for i, tup := range r.Tuples {
		if len(tup.Prov) != 1 || len(tup.Prov[0]) != 1 {
			t.Fatalf("tuple %d prov = %v", i, tup.Prov)
		}
	}
	if string(r.Tuples[0].Prov[0][0]) != "genes:0" {
		t.Fatalf("base ID = %s", r.Tuples[0].Prov[0][0])
	}
}

func TestSelectKeepsWitnesses(t *testing.T) {
	r := genes(t)
	pred, err := Eq(r, "organism", "mouse")
	if err != nil {
		t.Fatal(err)
	}
	s := Select(r, pred)
	if s.Len() != 2 {
		t.Fatalf("selected %d", s.Len())
	}
	for _, tup := range s.Tuples {
		ids := AllBaseTuples(tup.Prov)
		if len(ids) != 1 || !strings.HasPrefix(string(ids[0]), "genes:") {
			t.Fatalf("prov = %v", tup.Prov)
		}
	}
}

func TestSemijoinFiltersByKeySet(t *testing.T) {
	r := genes(t)
	s, err := Semijoin(r, "organism", map[Val]bool{"mouse": true, "yeti": true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("semijoined %d", s.Len())
	}
	for _, tup := range s.Tuples {
		if tup.Values[1] != "mouse" {
			t.Fatalf("tuple %v escaped the key set", tup.Values)
		}
		if ids := AllBaseTuples(tup.Prov); len(ids) != 1 || !strings.HasPrefix(string(ids[0]), "genes:") {
			t.Fatalf("prov = %v", tup.Prov)
		}
	}
	if _, err := Semijoin(r, "nope", nil); err == nil {
		t.Fatal("unknown column accepted")
	}
	// Empty key set: empty result, same schema.
	empty, err := Semijoin(r, "organism", nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty semijoin = %v, %v", empty, err)
	}
}

func TestProjectMergesDuplicateWitnesses(t *testing.T) {
	r := genes(t)
	p, err := Project(r, "gene")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 { // brca1, brca2, tp53, sonic
		t.Fatalf("projected %d, want 4", p.Len())
	}
	ws, err := WhyProvenance(p, "gene", "tp53")
	if err != nil {
		t.Fatal(err)
	}
	// tp53 appears in rows 2 and 3: two alternative witnesses.
	if len(ws) != 2 {
		t.Fatalf("tp53 witnesses = %v", ws)
	}
	ids := AllBaseTuples(ws)
	if len(ids) != 2 || ids[0] != "genes:2" || ids[1] != "genes:3" {
		t.Fatalf("tp53 base tuples = %v", ids)
	}
}

func TestJoinCrossesWitnesses(t *testing.T) {
	g := genes(t)
	s := studies(t)
	j, err := Join(g, s, "gene", "g")
	if err != nil {
		t.Fatal(err)
	}
	// brca1×S1, tp53(human)×S1, tp53(human)×S2, tp53(mouse)×S1, tp53(mouse)×S2.
	if j.Len() != 5 {
		t.Fatalf("join size = %d, want 5", j.Len())
	}
	// Every joined tuple's witness includes one genes and one studies tuple.
	for _, tup := range j.Tuples {
		if len(tup.Prov) != 1 || len(tup.Prov[0]) != 2 {
			t.Fatalf("join prov = %v", tup.Prov)
		}
		hasG, hasS := false, false
		for _, id := range tup.Prov[0] {
			if strings.HasPrefix(string(id), "genes:") {
				hasG = true
			}
			if strings.HasPrefix(string(id), "studies:") {
				hasS = true
			}
		}
		if !hasG || !hasS {
			t.Fatalf("witness missing a side: %v", tup.Prov)
		}
	}
	if len(j.Schema) != 5 {
		t.Fatalf("join schema = %v", j.Schema)
	}
}

func TestJoinThenProjectWhyProvenance(t *testing.T) {
	g := genes(t)
	s := studies(t)
	j, err := Join(g, s, "gene", "g")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Project(j, "study")
	if err != nil {
		t.Fatal(err)
	}
	// Study S1 is justified by brca1×S1-row, tp53h×S1-row, tp53m×S1-row.
	ws, err := WhyProvenance(p, "study", "S1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("S1 witnesses = %d, want 3 (%v)", len(ws), ws)
	}
	for _, w := range ws {
		if len(w) != 2 {
			t.Fatalf("witness size = %v", w)
		}
	}
}

func TestUnionMergesAlternatives(t *testing.T) {
	a, _ := NewRelation("a", []string{"x"}, [][]Val{{"k"}})
	b, _ := NewRelation("b", []string{"x"}, [][]Val{{"k"}, {"other"}})
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Fatalf("union size = %d", u.Len())
	}
	ws, _ := WhyProvenance(u, "x", "k")
	if len(ws) != 2 { // a:0 and b:0 are each sufficient
		t.Fatalf("k witnesses = %v", ws)
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	a, _ := NewRelation("a", []string{"x"}, nil)
	b, _ := NewRelation("b", []string{"y"}, nil)
	if _, err := Union(a, b); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestDifference(t *testing.T) {
	a, _ := NewRelation("a", []string{"x"}, [][]Val{{"p"}, {"q"}, {"q"}})
	b, _ := NewRelation("b", []string{"x"}, [][]Val{{"q"}})
	d, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Tuples[0].Values[0] != "p" {
		t.Fatalf("difference = %v", d)
	}
}

func TestGroupByAggregates(t *testing.T) {
	r := genes(t)
	for _, tc := range []struct {
		agg  AggFunc
		col  string
		want map[string]float64
	}{
		{AggCount, "", map[string]float64{"human": 3, "mouse": 2}},
		{AggSum, "score", map[string]float64{"human": 274, "mouse": 150}},
		{AggMin, "score", map[string]float64{"human": 85, "mouse": 70}},
		{AggMax, "score", map[string]float64{"human": 99, "mouse": 80}},
		{AggAvg, "score", map[string]float64{"human": 274.0 / 3, "mouse": 75}},
	} {
		g, err := GroupBy(r, "organism", tc.agg, tc.col)
		if err != nil {
			t.Fatalf("%s: %v", tc.agg, err)
		}
		if g.Len() != 2 {
			t.Fatalf("%s: groups = %d", tc.agg, g.Len())
		}
		for _, tup := range g.Tuples {
			key := tup.Values[0].(string)
			got, err := toFloat(tup.Values[1])
			if err != nil {
				t.Fatal(err)
			}
			if diff := got - tc.want[key]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s[%s] = %v, want %v", tc.agg, key, got, tc.want[key])
			}
		}
	}
}

func TestGroupByProvenanceCoversGroup(t *testing.T) {
	r := genes(t)
	g, err := GroupBy(r, "organism", AggCount, "")
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := WhyProvenance(g, "organism", "human")
	ids := AllBaseTuples(ws)
	if len(ids) != 3 {
		t.Fatalf("human group witnesses cover %d base tuples, want 3", len(ids))
	}
}

func TestGroupByNonNumeric(t *testing.T) {
	r := genes(t)
	if _, err := GroupBy(r, "organism", AggSum, "gene"); err == nil {
		t.Fatal("sum over string column accepted")
	}
}

func TestRename(t *testing.T) {
	r := genes(t)
	rn, err := Rename(r, "gene", "symbol")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rn.Col("symbol"); err != nil {
		t.Fatal("renamed column missing")
	}
	if _, err := rn.Col("gene"); err == nil {
		t.Fatal("old column still present")
	}
	if _, err := Rename(r, "nope", "x"); err == nil {
		t.Fatal("rename of missing column accepted")
	}
}

func TestSortStable(t *testing.T) {
	r := genes(t)
	s, err := Sort(r, "score")
	if err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for _, tup := range s.Tuples {
		v := tup.Values[2].(int64)
		if v < last {
			t.Fatalf("not sorted: %v after %v", v, last)
		}
		last = v
	}
	// Original unchanged.
	if r.Tuples[0].Values[0] != "brca1" {
		t.Fatal("Sort mutated input")
	}
}

func TestOperatorsDoNotMutateInputs(t *testing.T) {
	r := genes(t)
	before := r.String()
	pred, _ := Eq(r, "organism", "human")
	_ = Select(r, pred)
	_, _ = Project(r, "gene")
	_, _ = GroupBy(r, "organism", AggCount, "")
	s := studies(t)
	_, _ = Join(r, s, "gene", "g")
	if r.String() != before {
		t.Fatal("operators mutated input relation")
	}
}

func TestWitnessNormalization(t *testing.T) {
	w := Witness{"b", "a", "b"}.normalize()
	if len(w) != 2 || w[0] != "a" || w[1] != "b" {
		t.Fatalf("normalized = %v", w)
	}
}

// Property: selection then projection commutes with projection then
// selection when the predicate only touches projected columns.
func TestQuickSelectProjectCommute(t *testing.T) {
	f := func(rows []uint8) bool {
		vals := make([][]Val, 0, len(rows))
		for i, b := range rows {
			vals = append(vals, []Val{int64(b % 4), int64(i)})
		}
		r, err := NewRelation("r", []string{"k", "v"}, vals)
		if err != nil {
			return false
		}
		pred := func(vs []Val) bool { return vs[0].(int64) == 1 }
		p1, err := Project(Select(r, pred), "k")
		if err != nil {
			return false
		}
		p2pre, err := Project(r, "k")
		if err != nil {
			return false
		}
		p2 := Select(p2pre, pred)
		if p1.Len() != p2.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every witness of a join output references at least one base
// tuple from each input relation.
func TestQuickJoinWitnessStructure(t *testing.T) {
	f := func(av, bv []uint8) bool {
		avals := make([][]Val, 0, len(av))
		for i, b := range av {
			avals = append(avals, []Val{int64(b % 3), int64(i)})
		}
		bvals := make([][]Val, 0, len(bv))
		for i, b := range bv {
			bvals = append(bvals, []Val{int64(b % 3), int64(100 + i)})
		}
		a, err := NewRelation("a", []string{"k", "x"}, avals)
		if err != nil {
			return false
		}
		bb, err := NewRelation("b", []string{"k", "y"}, bvals)
		if err != nil {
			return false
		}
		j, err := Join(a, bb, "k", "k")
		if err != nil {
			return false
		}
		for _, tup := range j.Tuples {
			for _, w := range tup.Prov {
				hasA, hasB := false, false
				for _, id := range w {
					if strings.HasPrefix(string(id), "a:") {
						hasA = true
					}
					if strings.HasPrefix(string(id), "b:") {
						hasB = true
					}
				}
				if !hasA || !hasB {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	r := genes(t)
	s := r.String()
	if !strings.Contains(s, "genes(gene, organism, score)") || !strings.Contains(s, "why=") {
		t.Fatalf("rendering:\n%s", s)
	}
}
