package relalg

import (
	"fmt"
	"sort"
)

// Pred is a selection predicate over a tuple's values (indexed by the
// relation's schema).
type Pred func(vals []Val) bool

// Select returns the tuples satisfying pred. Witnesses pass through
// unchanged: selection does not combine tuples.
func Select(r *Relation, pred Pred) *Relation {
	out := derived("σ("+r.Name+")", r.Schema)
	for _, t := range r.Tuples {
		if pred(t.Values) {
			out.Tuples = append(out.Tuples, Tuple{
				Values: append([]Val(nil), t.Values...),
				Prov:   cloneWitnesses(t.Prov),
			})
		}
	}
	return out
}

// Eq builds a predicate comparing a column against a constant.
func Eq(r *Relation, col string, want Val) (Pred, error) {
	i, err := r.Col(col)
	if err != nil {
		return nil, err
	}
	return func(vals []Val) bool { return compareVals(vals[i], want) == 0 }, nil
}

// Project keeps the named columns, eliminating duplicate rows set-style;
// the witnesses of merged duplicates are unioned (alternative
// justifications).
func Project(r *Relation, cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	for j, c := range cols {
		i, err := r.Col(c)
		if err != nil {
			return nil, err
		}
		idx[j] = i
	}
	out := derived("π("+r.Name+")", cols)
	byKey := map[string]int{}
	for _, t := range r.Tuples {
		vals := make([]Val, len(idx))
		for j, i := range idx {
			vals[j] = t.Values[i]
		}
		k := valueKey(vals)
		if at, ok := byKey[k]; ok {
			out.Tuples[at].Prov = unionWitnessSets(out.Tuples[at].Prov, t.Prov)
			continue
		}
		byKey[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, Tuple{Values: vals, Prov: cloneWitnesses(t.Prov)})
	}
	return out, nil
}

// Semijoin returns the tuples of r whose col value is a member of keys
// (r ⋉ keys): one scan answers membership for an entire key set, where
// repeated Select/Eq calls would scan once per key. Witnesses pass
// through unchanged, as in Select. This is the algebra-level form of the
// plan the provenance store runs for frontier expansion; the store's hot
// path (store.RelStore.Expand) evaluates the same semijoin inline over
// its base rows to avoid materializing tuples and witness sets per hop.
func Semijoin(r *Relation, col string, keys map[Val]bool) (*Relation, error) {
	i, err := r.Col(col)
	if err != nil {
		return nil, err
	}
	out := derived("("+r.Name+"⋉)", r.Schema)
	for _, t := range r.Tuples {
		if keys[t.Values[i]] {
			out.Tuples = append(out.Tuples, Tuple{
				Values: append([]Val(nil), t.Values...),
				Prov:   cloneWitnesses(t.Prov),
			})
		}
	}
	return out, nil
}

// Rename returns a copy of the relation with a column renamed.
func Rename(r *Relation, from, to string) (*Relation, error) {
	if _, err := r.Col(from); err != nil {
		return nil, err
	}
	schema := append([]string(nil), r.Schema...)
	for i, c := range schema {
		if c == from {
			schema[i] = to
		}
	}
	out := &Relation{Name: r.Name, Schema: schema}
	if err := out.buildIndex(); err != nil {
		return nil, err
	}
	for _, t := range r.Tuples {
		out.Tuples = append(out.Tuples, Tuple{
			Values: append([]Val(nil), t.Values...),
			Prov:   cloneWitnesses(t.Prov),
		})
	}
	return out, nil
}

// Join computes the natural equijoin on leftCol = rightCol. The output
// schema is left's columns followed by right's (right's join column
// prefixed with the relation name on collision). Witness sets of joined
// tuples are cross-merged: a joined tuple is justified by one witness from
// each side.
func Join(l, r *Relation, leftCol, rightCol string) (*Relation, error) {
	li, err := l.Col(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := r.Col(rightCol)
	if err != nil {
		return nil, err
	}
	schema := append([]string(nil), l.Schema...)
	used := map[string]bool{}
	for _, c := range schema {
		used[c] = true
	}
	rightMap := make([]string, len(r.Schema))
	for i, c := range r.Schema {
		name := c
		if used[name] {
			name = r.Name + "." + c
		}
		if used[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		used[name] = true
		rightMap[i] = name
	}
	schema = append(schema, rightMap...)
	out := derived("("+l.Name+"⋈"+r.Name+")", schema)

	// Hash join on the right side.
	index := map[string][]int{}
	for i, t := range r.Tuples {
		k := valueKey([]Val{t.Values[ri]})
		index[k] = append(index[k], i)
	}
	for _, lt := range l.Tuples {
		k := valueKey([]Val{lt.Values[li]})
		for _, i := range index[k] {
			rt := r.Tuples[i]
			vals := make([]Val, 0, len(lt.Values)+len(rt.Values))
			vals = append(vals, lt.Values...)
			vals = append(vals, rt.Values...)
			out.Tuples = append(out.Tuples, Tuple{
				Values: vals,
				Prov:   mergeWitnessSets(lt.Prov, rt.Prov),
			})
		}
	}
	return out, nil
}

// Union computes set union of two relations with identical schemas,
// unioning witness sets of value-equal tuples.
func Union(a, b *Relation) (*Relation, error) {
	if err := schemasEqual(a, b); err != nil {
		return nil, err
	}
	out := derived("("+a.Name+"∪"+b.Name+")", a.Schema)
	byKey := map[string]int{}
	add := func(t Tuple) {
		k := valueKey(t.Values)
		if at, ok := byKey[k]; ok {
			out.Tuples[at].Prov = unionWitnessSets(out.Tuples[at].Prov, t.Prov)
			return
		}
		byKey[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, Tuple{
			Values: append([]Val(nil), t.Values...),
			Prov:   cloneWitnesses(t.Prov),
		})
	}
	for _, t := range a.Tuples {
		add(t)
	}
	for _, t := range b.Tuples {
		add(t)
	}
	return out, nil
}

// Difference computes a − b (set semantics). Witnesses of surviving tuples
// pass through from a; why-provenance of absent tuples is not modeled.
func Difference(a, b *Relation) (*Relation, error) {
	if err := schemasEqual(a, b); err != nil {
		return nil, err
	}
	drop := map[string]bool{}
	for _, t := range b.Tuples {
		drop[valueKey(t.Values)] = true
	}
	out := derived("("+a.Name+"−"+b.Name+")", a.Schema)
	seen := map[string]bool{}
	for _, t := range a.Tuples {
		k := valueKey(t.Values)
		if drop[k] || seen[k] {
			continue
		}
		seen[k] = true
		out.Tuples = append(out.Tuples, Tuple{
			Values: append([]Val(nil), t.Values...),
			Prov:   cloneWitnesses(t.Prov),
		})
	}
	return out, nil
}

func schemasEqual(a, b *Relation) error {
	if len(a.Schema) != len(b.Schema) {
		return fmt.Errorf("relalg: schema arity mismatch %v vs %v", a.Schema, b.Schema)
	}
	for i := range a.Schema {
		if a.Schema[i] != b.Schema[i] {
			return fmt.Errorf("relalg: schema mismatch at %d: %q vs %q", i, a.Schema[i], b.Schema[i])
		}
	}
	return nil
}

// AggFunc names an aggregate.
type AggFunc string

// Supported aggregates.
const (
	AggCount AggFunc = "count"
	AggSum   AggFunc = "sum"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
	AggAvg   AggFunc = "avg"
)

// GroupBy groups by a key column and aggregates another. The output schema
// is [key, agg(col)]; each group's provenance is the union of its members'
// witnesses (every contributing tuple is part of why).
func GroupBy(r *Relation, keyCol string, agg AggFunc, aggCol string) (*Relation, error) {
	ki, err := r.Col(keyCol)
	if err != nil {
		return nil, err
	}
	ai := -1
	if agg != AggCount {
		ai, err = r.Col(aggCol)
		if err != nil {
			return nil, err
		}
	}
	type group struct {
		key    Val
		count  int64
		sum    float64
		min    float64
		max    float64
		first  bool
		prov   []Witness
		keyStr string
	}
	groups := map[string]*group{}
	var order []string
	for _, t := range r.Tuples {
		k := valueKey([]Val{t.Values[ki]})
		g, ok := groups[k]
		if !ok {
			g = &group{key: t.Values[ki], first: true, keyStr: k}
			groups[k] = g
			order = append(order, k)
		}
		g.count++
		if ai >= 0 {
			f, err := toFloat(t.Values[ai])
			if err != nil {
				return nil, fmt.Errorf("relalg: groupby %s: %w", agg, err)
			}
			g.sum += f
			if g.first || f < g.min {
				g.min = f
			}
			if g.first || f > g.max {
				g.max = f
			}
			g.first = false
		}
		g.prov = unionWitnessSets(g.prov, t.Prov)
	}
	sort.Strings(order)
	outCol := string(agg)
	if aggCol != "" {
		outCol = string(agg) + "_" + aggCol
	}
	out := derived("γ("+r.Name+")", []string{keyCol, outCol})
	for _, k := range order {
		g := groups[k]
		var v Val
		switch agg {
		case AggCount:
			v = g.count
		case AggSum:
			v = g.sum
		case AggMin:
			v = g.min
		case AggMax:
			v = g.max
		case AggAvg:
			v = g.sum / float64(g.count)
		default:
			return nil, fmt.Errorf("relalg: unknown aggregate %q", agg)
		}
		out.Tuples = append(out.Tuples, Tuple{Values: []Val{g.key, v}, Prov: g.prov})
	}
	return out, nil
}

func toFloat(v Val) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	}
	return 0, fmt.Errorf("value %v (%T) is not numeric", v, v)
}

// Sort returns a copy ordered by the named column ascending.
func Sort(r *Relation, col string) (*Relation, error) {
	i, err := r.Col(col)
	if err != nil {
		return nil, err
	}
	out := derived(r.Name, r.Schema)
	out.Name = r.Name
	out.Tuples = make([]Tuple, len(r.Tuples))
	for j, t := range r.Tuples {
		out.Tuples[j] = Tuple{Values: append([]Val(nil), t.Values...), Prov: cloneWitnesses(t.Prov)}
	}
	sort.SliceStable(out.Tuples, func(a, b int) bool {
		return compareVals(out.Tuples[a].Values[i], out.Tuples[b].Values[i]) < 0
	})
	return out, nil
}

// WhyProvenance returns the why-provenance of the first tuple whose values
// under col equal want, or nil if no tuple matches.
func WhyProvenance(r *Relation, col string, want Val) ([]Witness, error) {
	i, err := r.Col(col)
	if err != nil {
		return nil, err
	}
	for _, t := range r.Tuples {
		if compareVals(t.Values[i], want) == 0 {
			return cloneWitnesses(t.Prov), nil
		}
	}
	return nil, nil
}

// AllBaseTuples flattens a witness set into the sorted set of base tuple
// IDs mentioned anywhere in it: the "lineage" (in the Cui/Widom sense) of
// the output tuple.
func AllBaseTuples(ws []Witness) []TupleID {
	seen := map[TupleID]bool{}
	var out []TupleID
	for _, w := range ws {
		for _, id := range w {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
