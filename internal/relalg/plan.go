package relalg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Executor observability: compiled plans, with rows counted centrally in
// Drain (iter.go) — the funnel every streaming execution exits through,
// whether compiled here or assembled directly by the PQL front-end.
// Per-operator row counts (scan/join/project) are folded in after a drain
// when the plan was built with Instrument — the label set is bounded by
// operator kind, never by query content.
var mExecPlans = obs.Default().Counter("prov_exec_plans_total", "Conjunctive query plans compiled.")

// This file is the shared conjunctive-query planner the query front-ends
// compile into. A Datalog rule body and a PQL FROM/JOIN clause have the
// same shape — a conjunction of leaf relations whose columns are bound to
// variables or constants — so one planner serves both: it pushes constant
// and repeated-variable selections into each leaf scan, orders the joins
// greedily without statistics (most-selective leaf first, then prefer
// leaves sharing already-bound variables, smallest first), and chains
// streaming natural hash joins over the iterator layer in iter.go.

// PlanTerm is one argument position of a leaf atom: either a variable
// (Var non-empty) or a constant value.
type PlanTerm struct {
	Var   string
	Const Val
}

// V makes a variable term; C makes a constant term.
func V(name string) PlanTerm { return PlanTerm{Var: name} }
func C(v Val) PlanTerm       { return PlanTerm{Const: v} }

// Leaf is one atom of a conjunctive query: a named base relation given as
// raw tuples (positional; Terms[i] binds column i). Tuples may carry
// why-provenance, which flows through the plan's joins.
type Leaf struct {
	Name   string
	Terms  []PlanTerm
	Tuples []Tuple
}

// vars returns the leaf's distinct variable names in first-occurrence
// order.
func (l *Leaf) vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range l.Terms {
		if t.Var != "" && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

func (l *Leaf) hasConst() bool {
	for _, t := range l.Terms {
		if t.Var == "" {
			return true
		}
	}
	return false
}

// Plan is a compiled conjunctive query: a streaming iterator tree plus the
// explain surface (chosen join order, per-operator row counters).
type Plan struct {
	root   Iterator
	Order  []string // leaf names in chosen join order
	Stats  []*OpStat
	Output []string

	statsFolded bool // per-operator rows already folded into the registry
}

// PlanOptions tunes plan construction.
type PlanOptions struct {
	// Instrument wraps every operator with a row counter, populating
	// Plan.Stats (costs one wrapper per operator per tuple).
	Instrument bool
}

// PlanConj compiles a conjunctive query over leaves, projecting the output
// variables (bag semantics — callers dedup if they need sets). Every
// output variable must occur in some leaf.
func PlanConj(leaves []Leaf, output []string, opts PlanOptions) (*Plan, error) {
	pc, err := PrepareConj(leaves, output)
	if err != nil {
		return nil, err
	}
	tuples := make([][]Tuple, len(leaves))
	for i := range leaves {
		tuples[i] = leaves[i].Tuples
	}
	return pc.Bind(tuples, opts)
}

// PreparedConj is a conjunctive plan with the statistics-free compilation
// work — per-leaf selection pushdown and the greedy join order — done once
// and the base tuples left unbound. Callers that execute the same query
// shape repeatedly over changing relations (the Datalog engine's
// (rule, focus) pairs across semi-naive rounds, standing-query delta
// re-evaluation per ingest) prepare once and Bind fresh tuple slices per
// execution, skipping recompilation entirely. A PreparedConj is immutable
// after PrepareConj and safe for concurrent Bind calls.
type PreparedConj struct {
	output []string
	order  []int
	leaves []preparedLeaf
}

// constSel / eqSel are one pushed-down selection each: column i equals a
// constant, or column i equals column j (a repeated variable).
type constSel struct {
	i int
	v Val
}
type eqSel struct{ i, j int }

// preparedLeaf is the compiled shape of one atom: everything compileLeaf
// derives from the terms, minus the tuples.
type preparedLeaf struct {
	name   string
	schema []string
	consts []constSel
	eqs    []eqSel
	idx    []int    // term position of each bound variable's first occurrence
	vars   []string // distinct variable names, first-occurrence order
}

// PrepareConj compiles leaves and output into a rebindable plan. The join
// order is chosen by the usual greedy heuristic using whatever tuple
// counts the leaves carry at prepare time (callers may pass empty Tuples;
// tie-breaks then fall back to leaf index) and is fixed for the lifetime
// of the PreparedConj — the heuristic's primary keys (shared bound
// variables, constant-bearing leaves) are statistics-free, which is what
// makes the cache sound.
func PrepareConj(leaves []Leaf, output []string) (*PreparedConj, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("relalg: plan: no leaves")
	}
	pc := &PreparedConj{output: append([]string(nil), output...)}

	bound := map[string]bool{}
	leafVars := make([][]string, len(leaves))
	for i := range leaves {
		pc.leaves = append(pc.leaves, prepareLeaf(&leaves[i]))
		leafVars[i] = pc.leaves[i].vars
		for _, v := range leafVars[i] {
			bound[v] = true
		}
	}
	for _, v := range output {
		if !bound[v] {
			return nil, fmt.Errorf("relalg: plan: output variable %q not bound by any leaf", v)
		}
	}
	pc.order = greedyOrder(leaves, leafVars)
	return pc, nil
}

// Bind attaches base tuples (one slice per leaf, in the original leaf
// order) to the prepared shape and returns a runnable Plan.
func (pc *PreparedConj) Bind(tuples [][]Tuple, opts PlanOptions) (*Plan, error) {
	if len(tuples) != len(pc.leaves) {
		return nil, fmt.Errorf("relalg: bind: %d tuple slices for %d leaves", len(tuples), len(pc.leaves))
	}
	p := &Plan{Output: append([]string(nil), pc.output...)}

	wrap := func(it Iterator, label string) Iterator {
		if !opts.Instrument {
			return it
		}
		st := &OpStat{Label: label}
		p.Stats = append(p.Stats, st)
		return Instrument(it, st)
	}

	compiled := make([]Iterator, len(pc.leaves))
	for i := range pc.leaves {
		l := &pc.leaves[i]
		compiled[i] = wrap(l.bind(tuples[i]), fmt.Sprintf("scan(%s)", l.name))
	}

	root := compiled[pc.order[0]]
	p.Order = append(p.Order, pc.leaves[pc.order[0]].name)
	for _, i := range pc.order[1:] {
		root = wrap(StreamNaturalJoin(root, compiled[i]),
			fmt.Sprintf("join(⋈%s)", pc.leaves[i].name))
		p.Order = append(p.Order, pc.leaves[i].name)
	}
	proj, err := StreamProjectBag(root, pc.output...)
	if err != nil {
		return nil, err
	}
	p.root = wrap(proj, "project("+strings.Join(pc.output, ",")+")")
	mExecPlans.Inc()
	return p, nil
}

// prepareLeaf derives scan schema, pushed-down selections and variable
// bind positions for one atom. The selection for constants and repeated
// variables runs against the raw scan, below every join.
func prepareLeaf(l *Leaf) preparedLeaf {
	pl := preparedLeaf{name: l.Name}
	pl.schema = make([]string, len(l.Terms))
	for i := range l.Terms {
		pl.schema[i] = fmt.Sprintf("$%d", i)
	}
	firstAt := map[string]int{}
	for i, t := range l.Terms {
		if t.Var == "" {
			pl.consts = append(pl.consts, constSel{i, t.Const})
			continue
		}
		if j, seen := firstAt[t.Var]; seen {
			pl.eqs = append(pl.eqs, eqSel{j, i})
		} else {
			firstAt[t.Var] = i
		}
	}
	pl.vars = l.vars()
	pl.idx = make([]int, len(pl.vars))
	for j, v := range pl.vars {
		pl.idx[j] = firstAt[v]
	}
	return pl
}

// bind builds scan → selection → bind for one prepared atom over fresh
// tuples.
func (pl *preparedLeaf) bind(tuples []Tuple) Iterator {
	var it Iterator = NewSliceScan(pl.name, pl.schema, tuples)
	if len(pl.consts) > 0 || len(pl.eqs) > 0 {
		consts, eqs := pl.consts, pl.eqs
		it = StreamSelect(it, func(vals []Val) bool {
			for _, c := range consts {
				if compareVals(vals[c.i], c.v) != 0 {
					return false
				}
			}
			for _, e := range eqs {
				if compareVals(vals[e.i], vals[e.j]) != 0 {
					return false
				}
			}
			return true
		})
	}
	return StreamBind(it, pl.idx, pl.vars)
}

// greedyOrder picks the join order without statistics: start from the most
// selective leaf (constant-bearing first, then fewest base tuples), then
// repeatedly pick the leaf sharing the most already-bound variables —
// breaking ties by constant-bearing then size — so hash joins stay keyed
// rather than degrading to cross products. Leaves sharing no variables are
// deferred until nothing connected remains.
func greedyOrder(leaves []Leaf, leafVars [][]string) []int {
	n := len(leaves)
	remaining := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		remaining[i] = true
	}

	// better reports whether leaf a beats leaf b under (shared bound vars
	// desc, has-const desc, size asc, index asc).
	better := func(a, b int, sharedA, sharedB int) bool {
		if sharedA != sharedB {
			return sharedA > sharedB
		}
		ca, cb := leaves[a].hasConst(), leaves[b].hasConst()
		if ca != cb {
			return ca
		}
		la, lb := len(leaves[a].Tuples), len(leaves[b].Tuples)
		if la != lb {
			return la < lb
		}
		return a < b
	}

	bound := map[string]bool{}
	shared := func(i int) int {
		s := 0
		for _, v := range leafVars[i] {
			if bound[v] {
				s++
			}
		}
		return s
	}

	var order []int
	for len(remaining) > 0 {
		cand := make([]int, 0, len(remaining))
		for i := range remaining {
			cand = append(cand, i)
		}
		sort.Ints(cand)
		best := cand[0]
		for _, i := range cand[1:] {
			if better(i, best, shared(i), shared(best)) {
				best = i
			}
		}
		order = append(order, best)
		delete(remaining, best)
		for _, v := range leafVars[best] {
			bound[v] = true
		}
	}
	return order
}

// Schema returns the plan's output columns.
func (p *Plan) Schema() []string { return p.Output }

// Run drains the plan, invoking emit for each output row. The row slice is
// only valid during the call.
func (p *Plan) Run(emit func(vals []Val, prov []Witness) error) error {
	err := Drain(p.root, func(t *Tuple) error { return emit(t.Values, t.Prov) })
	if err == nil && len(p.Stats) > 0 && !p.statsFolded {
		// One counter per operator kind (the label's "scan(...)" prefix), so
		// the metric cardinality never tracks query content.
		p.statsFolded = true
		for _, st := range p.Stats {
			kind := st.Label
			if i := strings.IndexByte(kind, '('); i >= 0 {
				kind = kind[:i]
			}
			if st.Rows > 0 {
				mExecOperatorRows(kind).Add(uint64(st.Rows))
			}
		}
	}
	return err
}

// mExecOperatorRows returns the per-operator-kind row counter; the lookup
// is idempotent and runs once per drained instrumented plan, not per row.
func mExecOperatorRows(kind string) *obs.Counter {
	return obs.Default().Counter("prov_exec_operator_rows_total",
		"Rows emitted per operator kind in instrumented plans.", obs.L("op", kind))
}

// MaterializePlan runs the plan into a relation (mostly for tests).
func (p *Plan) MaterializePlan(name string) (*Relation, error) {
	return Materialize(p.root, name)
}

// ExplainString renders the chosen join order and per-operator row counts
// (populated only when the plan was built with Instrument).
func (p *Plan) ExplainString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "join order: %s\n", strings.Join(p.Order, " ⋈ "))
	for _, st := range p.Stats {
		fmt.Fprintf(&b, "  %-40s rows=%d\n", st.Label, st.Rows)
	}
	return b.String()
}
