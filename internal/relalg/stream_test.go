package relalg

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// randomRelation builds a relation over small value domains so joins,
// duplicate rows and witness-set merges actually happen.
func randomRelation(rng *rand.Rand, name string, ncols int) *Relation {
	schema := make([]string, ncols)
	for i := range schema {
		schema[i] = fmt.Sprintf("%s_c%d", name, i)
	}
	nrows := rng.Intn(12)
	rows := make([][]Val, nrows)
	for r := range rows {
		row := make([]Val, ncols)
		for c := range row {
			switch rng.Intn(3) {
			case 0:
				row[c] = fmt.Sprintf("v%d", rng.Intn(4))
			case 1:
				row[c] = int64(rng.Intn(4))
			default:
				row[c] = float64(rng.Intn(3))
			}
		}
		rows[r] = row
	}
	rel, err := NewRelation(name, schema, rows)
	if err != nil {
		panic(err)
	}
	return rel
}

// mustEqual fails unless the streaming result matches the eager reference
// on schema, tuple values in order, AND why-provenance witness sets.
func mustEqual(t *testing.T, op string, eager *Relation, it Iterator) {
	t.Helper()
	got, err := Materialize(it, "stream")
	if err != nil {
		t.Fatalf("%s: materialize: %v", op, err)
	}
	if len(got.Schema) != len(eager.Schema) {
		t.Fatalf("%s: schema %v vs %v", op, got.Schema, eager.Schema)
	}
	for i := range got.Schema {
		if got.Schema[i] != eager.Schema[i] {
			t.Fatalf("%s: schema %v vs %v", op, got.Schema, eager.Schema)
		}
	}
	if len(got.Tuples) != len(eager.Tuples) {
		t.Fatalf("%s: %d tuples vs %d", op, len(got.Tuples), len(eager.Tuples))
	}
	for i := range got.Tuples {
		if valueKey(got.Tuples[i].Values) != valueKey(eager.Tuples[i].Values) {
			t.Fatalf("%s: tuple %d: %v vs %v", op, i, got.Tuples[i].Values, eager.Tuples[i].Values)
		}
		if wk := witnessSetKey(got.Tuples[i].Prov); wk != witnessSetKey(eager.Tuples[i].Prov) {
			t.Fatalf("%s: tuple %d provenance: %q vs %q", op, i,
				wk, witnessSetKey(eager.Tuples[i].Prov))
		}
	}
}

// witnessSetKey canonicalizes a witness set (order-independent).
func witnessSetKey(ws []Witness) string {
	keys := make([]string, len(ws))
	for i, w := range ws {
		keys[i] = w.normalize().key()
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// TestStreamingMatchesEagerOps is the randomized property test pinning
// every streaming operator to its eager reference.
func TestStreamingMatchesEagerOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a := randomRelation(rng, "a", 2+rng.Intn(2))
		b := randomRelation(rng, "b", 2+rng.Intn(2))

		// Select on a random column against a random constant.
		ci := rng.Intn(len(a.Schema))
		want := Val(fmt.Sprintf("v%d", rng.Intn(4)))
		pred := func(vals []Val) bool { return compareVals(vals[ci], want) == 0 }
		mustEqual(t, "select", Select(a, pred), StreamSelect(NewScan(a), pred))

		// Project onto a random non-empty column subset (dups merge,
		// witnesses union).
		var cols []string
		for _, c := range a.Schema {
			if rng.Intn(2) == 0 {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			cols = []string{a.Schema[0]}
		}
		ep, err := Project(a, cols...)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := StreamProject(NewScan(a), cols...)
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "project", ep, sp)

		// Rename.
		er, err := Rename(a, a.Schema[0], "renamed")
		if err != nil {
			t.Fatal(err)
		}
		sr, err := StreamRename(NewScan(a), a.Schema[0], "renamed")
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "rename", er, sr)

		// Join on random columns (witness sets cross-merge).
		lj, rj := rng.Intn(len(a.Schema)), rng.Intn(len(b.Schema))
		ej, err := Join(a, b, a.Schema[lj], b.Schema[rj])
		if err != nil {
			t.Fatal(err)
		}
		sj, err := StreamJoin(NewScan(a), NewScan(b), a.Schema[lj], b.Schema[rj], b.Name)
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "join", ej, sj)

		// Union over two same-schema relations (value-equal tuples union
		// their witness sets).
		a2 := randomRelation(rng, "a", len(a.Schema))
		a2.Schema = append([]string(nil), a.Schema...)
		if err := a2.buildIndex(); err != nil {
			t.Fatal(err)
		}
		eu, err := Union(a, a2)
		if err != nil {
			t.Fatal(err)
		}
		su, err := StreamUnion(NewScan(a), NewScan(a2))
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "union", eu, su)

		// Semijoin against a random key set.
		keys := map[Val]bool{}
		for i := 0; i < 3; i++ {
			keys[fmt.Sprintf("v%d", rng.Intn(4))] = true
			keys[int64(rng.Intn(4))] = true
		}
		es, err := Semijoin(a, a.Schema[ci], keys)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := StreamSemijoin(NewScan(a), a.Schema[ci], keys)
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "semijoin", es, ss)

		// Sort (stable, same comparator).
		eso, err := Sort(a, a.Schema[ci])
		if err != nil {
			t.Fatal(err)
		}
		sso, err := StreamSort(NewScan(a), a.Schema[ci])
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "sort", eso, sso)

		// GroupBy count (always defined) on a random key column.
		eg, err := GroupBy(a, a.Schema[ci], AggCount, "")
		if err != nil {
			t.Fatal(err)
		}
		sg, err := StreamGroupBy(NewScan(a), a.Schema[ci], AggCount, "")
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "groupby", eg, sg)
	}
}

// TestGroupByNumericAggregates covers the numeric folds separately, over
// all-numeric columns (sum/min/max/avg error on strings, as eager does).
func TestGroupByNumericAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		rows := make([][]Val, 1+rng.Intn(10))
		for i := range rows {
			rows[i] = []Val{fmt.Sprintf("k%d", rng.Intn(3)), int64(rng.Intn(10)), float64(rng.Intn(5))}
		}
		rel, err := NewRelation("m", []string{"k", "n", "f"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range []AggFunc{AggSum, AggMin, AggMax, AggAvg} {
			for _, col := range []string{"n", "f"} {
				eg, err := GroupBy(rel, "k", agg, col)
				if err != nil {
					t.Fatal(err)
				}
				sg, err := StreamGroupBy(NewScan(rel), "k", agg, col)
				if err != nil {
					t.Fatal(err)
				}
				mustEqual(t, string(agg)+"_"+col, eg, sg)
			}
		}
	}
}

// naiveConj enumerates a conjunctive query's answers by nested-loop
// binding, the planner's semantics oracle.
func naiveConj(leaves []Leaf, output []string) [][]Val {
	var out [][]Val
	var step func(i int, bind map[string]Val)
	step = func(i int, bind map[string]Val) {
		if i == len(leaves) {
			row := make([]Val, len(output))
			for j, v := range output {
				row[j] = bind[v]
			}
			out = append(out, row)
			return
		}
		l := leaves[i]
	tuples:
		for _, t := range l.Tuples {
			nb := make(map[string]Val, len(bind))
			for k, v := range bind {
				nb[k] = v
			}
			for j, term := range l.Terms {
				if term.Var == "" {
					if compareVals(t.Values[j], term.Const) != 0 {
						continue tuples
					}
					continue
				}
				if have, ok := nb[term.Var]; ok {
					if compareVals(have, t.Values[j]) != 0 {
						continue tuples
					}
					continue
				}
				nb[term.Var] = t.Values[j]
			}
			step(i+1, nb)
		}
	}
	step(0, map[string]Val{})
	return out
}

// TestPlannerMatchesNaiveConj pins the greedy-ordered streaming plan to
// nested-loop enumeration on randomized conjunctive queries: same answer
// bag regardless of the join order chosen.
func TestPlannerMatchesNaiveConj(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	varPool := []string{"X", "Y", "Z", "W"}
	for iter := 0; iter < 300; iter++ {
		nleaves := 1 + rng.Intn(3)
		leaves := make([]Leaf, nleaves)
		used := map[string]bool{}
		for i := range leaves {
			arity := 1 + rng.Intn(3)
			terms := make([]PlanTerm, arity)
			for j := range terms {
				if rng.Intn(4) == 0 {
					terms[j] = C(Val(fmt.Sprintf("v%d", rng.Intn(4))))
				} else {
					v := varPool[rng.Intn(len(varPool))]
					terms[j] = V(v)
					used[v] = true
				}
			}
			rel := randomRelation(rng, fmt.Sprintf("l%d", i), arity)
			leaves[i] = Leaf{Name: rel.Name, Terms: terms, Tuples: rel.Tuples}
		}
		var output []string
		for _, v := range varPool {
			if used[v] && rng.Intn(2) == 0 {
				output = append(output, v)
			}
		}
		if len(output) == 0 {
			for _, v := range varPool {
				if used[v] {
					output = append(output, v)
					break
				}
			}
		}
		if len(output) == 0 {
			continue // all-constant query; planner requires bound outputs
		}

		want := naiveConj(leaves, output)
		plan, err := PlanConj(leaves, output, PlanOptions{})
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		var got [][]Val
		err = plan.Run(func(vals []Val, _ []Witness) error {
			got = append(got, append([]Val(nil), vals...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		wk := make([]string, len(want))
		for i, r := range want {
			wk[i] = valueKey(r)
		}
		gk := make([]string, len(got))
		for i, r := range got {
			gk[i] = valueKey(r)
		}
		sort.Strings(wk)
		sort.Strings(gk)
		if len(wk) != len(gk) {
			t.Fatalf("iter %d: %d rows vs %d (plan order %v)", iter, len(gk), len(wk), plan.Order)
		}
		for i := range wk {
			if wk[i] != gk[i] {
				t.Fatalf("iter %d: row %d differs: %q vs %q", iter, i, gk[i], wk[i])
			}
		}
	}
}
