// Package relalg is a miniature relational algebra engine with built-in
// why-provenance. It serves two roles in the reproduction:
//
//  1. It is the storage engine behind the relational provenance store
//     (§2.2 surveys systems that keep provenance "as tuples stored in
//     relational database tables").
//  2. It is the database half of §2.4's open problem "connecting database
//     and workflow provenance": every operator tracks, for each output
//     tuple, the set of input tuple IDs that witness it (why-provenance in
//     the Buneman/Tan sense), so package dbprov can join tuple-level and
//     workflow-level lineage into one graph.
//
// Relations are immutable values: operators return new relations and never
// mutate inputs.
package relalg

import (
	"fmt"
	"sort"
	"strings"
)

// Val is a relational value: string, int64, float64 or bool.
type Val any

// compareVals orders values of the same dynamic type; mixed types order by
// type name so sorting is total.
func compareVals(a, b Val) int {
	switch x := a.(type) {
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	case int64:
		if y, ok := b.(int64); ok {
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	case float64:
		if y, ok := b.(float64); ok {
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case !x && y:
				return -1
			case x && !y:
				return 1
			}
			return 0
		}
	}
	return strings.Compare(fmt.Sprintf("%T", a), fmt.Sprintf("%T", b))
}

// TupleID identifies a base tuple for provenance. IDs are assigned by the
// relation that first materializes the tuple ("relname:row").
type TupleID string

// Witness is a why-provenance witness: one minimal set of base tuples that
// together justify an output tuple. A tuple's full why-provenance is a set
// of witnesses.
type Witness []TupleID

// normalize sorts and dedups a witness in place, returning it.
func (w Witness) normalize() Witness {
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	out := w[:0]
	var last TupleID
	for i, id := range w {
		if i == 0 || id != last {
			out = append(out, id)
		}
		last = id
	}
	return out
}

func (w Witness) key() string {
	parts := make([]string, len(w))
	for i, id := range w {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}

// mergeWitnessSets computes the cross-product union of two witness sets:
// the why-provenance of a joint (e.g. joined) tuple.
func mergeWitnessSets(a, b []Witness) []Witness {
	if len(a) == 0 {
		return cloneWitnesses(b)
	}
	if len(b) == 0 {
		return cloneWitnesses(a)
	}
	seen := map[string]bool{}
	var out []Witness
	for _, wa := range a {
		for _, wb := range b {
			merged := make(Witness, 0, len(wa)+len(wb))
			merged = append(merged, wa...)
			merged = append(merged, wb...)
			merged = merged.normalize()
			k := merged.key()
			if !seen[k] {
				seen[k] = true
				out = append(out, merged)
			}
		}
	}
	return out
}

// unionWitnessSets unions two witness sets (alternative justifications, as
// produced by duplicate elimination or set union).
func unionWitnessSets(a, b []Witness) []Witness {
	seen := map[string]bool{}
	var out []Witness
	for _, w := range a {
		k := w.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	for _, w := range b {
		k := w.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	return out
}

func cloneWitnesses(ws []Witness) []Witness {
	out := make([]Witness, len(ws))
	for i, w := range ws {
		out[i] = append(Witness(nil), w...)
	}
	return out
}

// Tuple is one row: values aligned with the relation's schema, plus its
// why-provenance.
type Tuple struct {
	Values []Val
	Prov   []Witness
}

// Relation is an immutable named relation with a flat schema.
type Relation struct {
	Name   string
	Schema []string
	Tuples []Tuple
	colIdx map[string]int
}

// NewRelation creates a base relation from rows. Each row is assigned a
// base tuple ID "name:i" as its own single witness.
func NewRelation(name string, schema []string, rows [][]Val) (*Relation, error) {
	r := &Relation{Name: name, Schema: append([]string(nil), schema...)}
	if err := r.buildIndex(); err != nil {
		return nil, err
	}
	for i, row := range rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("relalg: %s row %d has %d values, schema has %d", name, i, len(row), len(schema))
		}
		id := TupleID(fmt.Sprintf("%s:%d", name, i))
		r.Tuples = append(r.Tuples, Tuple{
			Values: append([]Val(nil), row...),
			Prov:   []Witness{{id}},
		})
	}
	return r, nil
}

func (r *Relation) buildIndex() error {
	r.colIdx = make(map[string]int, len(r.Schema))
	for i, c := range r.Schema {
		if c == "" {
			return fmt.Errorf("relalg: %s has empty column name", r.Name)
		}
		if _, dup := r.colIdx[c]; dup {
			return fmt.Errorf("relalg: %s duplicate column %q", r.Name, c)
		}
		r.colIdx[c] = i
	}
	return nil
}

// Col returns the index of a column.
func (r *Relation) Col(name string) (int, error) {
	i, ok := r.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("relalg: relation %s has no column %q", r.Name, name)
	}
	return i, nil
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.Tuples) }

// derived creates an empty relation sharing provenance conventions.
func derived(name string, schema []string) *Relation {
	r := &Relation{Name: name, Schema: append([]string(nil), schema...)}
	_ = r.buildIndex() // schemas of derived relations are built from valid inputs
	return r
}

// String renders the relation as an aligned table with provenance column.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)\n", r.Name, strings.Join(r.Schema, ", "))
	for _, t := range r.Tuples {
		parts := make([]string, len(t.Values))
		for i, v := range t.Values {
			parts[i] = fmt.Sprintf("%v", v)
		}
		provParts := make([]string, len(t.Prov))
		for i, w := range t.Prov {
			provParts[i] = "{" + w.key() + "}"
		}
		fmt.Fprintf(&b, "  (%s)  why=%s\n", strings.Join(parts, ", "), strings.Join(provParts, "+"))
	}
	return b.String()
}

// valueKey returns a canonical key of the tuple's values (for dedup and set
// operations).
func valueKey(vals []Val) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%T\x01%v", v, v)
	}
	return strings.Join(parts, "\x00")
}
