package relalg

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Iterator is the pull-based streaming form of a relation: a schema plus a
// sequence of tuples produced on demand. It is the executor-side dual of
// the eager operators in operators.go — every streaming operator produces
// the same tuples (values AND why-provenance witness sets) its eager
// counterpart materializes, but pipelined operators (select, rename, bag
// projection, the probe side of a join) hold no intermediate relation at
// all, and the blocking operators (set projection, union, group-by, sort)
// buffer only their own dedup or group state.
//
// Contract: Next returns the next tuple, or nil at end of stream; once nil
// or an error is returned the iterator stays exhausted. Returned tuples
// and their witness slices may alias the source relation's storage —
// consumers must treat them as read-only and must not retain Values slices
// across Next calls unless the operator documents otherwise (Materialize
// copies; the join output allocates fresh Values rows).
type Iterator interface {
	Schema() []string
	Next() (*Tuple, error)
	Close() error
}

// --- sources -----------------------------------------------------------------

type scanIter struct {
	name   string
	schema []string
	tuples []Tuple
	i      int
}

// NewScan streams an existing relation without copying tuples.
func NewScan(r *Relation) Iterator {
	return &scanIter{name: r.Name, schema: r.Schema, tuples: r.Tuples}
}

// NewSliceScan streams a raw tuple slice under a schema: the leaf form used
// by engines whose base data never passes through a *Relation (the Datalog
// delta sets, PQL's virtual tables).
func NewSliceScan(name string, schema []string, tuples []Tuple) Iterator {
	return &scanIter{name: name, schema: schema, tuples: tuples}
}

func (s *scanIter) Schema() []string { return s.schema }
func (s *scanIter) Close() error     { return nil }
func (s *scanIter) Next() (*Tuple, error) {
	if s.i >= len(s.tuples) {
		return nil, nil
	}
	t := &s.tuples[s.i]
	s.i++
	return t, nil
}

// funcIter adapts a generator function to an Iterator: the leaf form for
// lazily produced rows (PQL's run-log table scans pull one run log at a
// time through it).
type funcIter struct {
	schema []string
	next   func() (*Tuple, error)
	close  func() error
	done   bool
}

// NewFuncIter builds an iterator from a generator: next returns nil at end
// of stream; close may be nil.
func NewFuncIter(schema []string, next func() (*Tuple, error), close func() error) Iterator {
	return &funcIter{schema: schema, next: next, close: close}
}

func (f *funcIter) Schema() []string { return f.schema }
func (f *funcIter) Close() error {
	if f.close != nil {
		return f.close()
	}
	return nil
}
func (f *funcIter) Next() (*Tuple, error) {
	if f.done {
		return nil, nil
	}
	t, err := f.next()
	if t == nil || err != nil {
		f.done = true
	}
	return t, err
}

// --- pipelined operators -----------------------------------------------------

type selectIter struct {
	in   Iterator
	pred Pred
}

// StreamSelect filters tuples by pred without copying them (the streaming
// σ; witnesses pass through unchanged, as in Select).
func StreamSelect(in Iterator, pred Pred) Iterator {
	return &selectIter{in: in, pred: pred}
}

func (s *selectIter) Schema() []string { return s.in.Schema() }
func (s *selectIter) Close() error     { return s.in.Close() }
func (s *selectIter) Next() (*Tuple, error) {
	for {
		t, err := s.in.Next()
		if t == nil || err != nil {
			return nil, err
		}
		if s.pred(t.Values) {
			return t, nil
		}
	}
}

type renameIter struct {
	in     Iterator
	schema []string
}

// StreamRename renames a column; tuples flow through untouched.
func StreamRename(in Iterator, from, to string) (Iterator, error) {
	schema := append([]string(nil), in.Schema()...)
	found := false
	for i, c := range schema {
		if c == from {
			schema[i] = to
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("relalg: stream rename: no column %q", from)
	}
	return &renameIter{in: in, schema: schema}, nil
}

func (r *renameIter) Schema() []string      { return r.schema }
func (r *renameIter) Close() error          { return r.in.Close() }
func (r *renameIter) Next() (*Tuple, error) { return r.in.Next() }

// bindIter projects columns positionally WITHOUT deduplication (bag
// semantics) and may rename them: the cheap π used inside pipelines where
// set semantics are not wanted (PQL output columns, planner variable
// binding). Each output tuple allocates only its Values slice; witnesses
// pass through.
type bindIter struct {
	in     Iterator
	idx    []int
	schema []string
}

// StreamProjectBag keeps the named columns, preserving duplicates.
func StreamProjectBag(in Iterator, cols ...string) (Iterator, error) {
	idx, err := colIndexes(in.Schema(), cols)
	if err != nil {
		return nil, err
	}
	return &bindIter{in: in, idx: idx, schema: append([]string(nil), cols...)}, nil
}

// StreamBind projects the columns at idx under new names: the planner's
// variable-binding projection.
func StreamBind(in Iterator, idx []int, names []string) Iterator {
	return &bindIter{in: in, idx: idx, schema: names}
}

func (b *bindIter) Schema() []string { return b.schema }
func (b *bindIter) Close() error     { return b.in.Close() }
func (b *bindIter) Next() (*Tuple, error) {
	t, err := b.in.Next()
	if t == nil || err != nil {
		return nil, err
	}
	vals := make([]Val, len(b.idx))
	for j, i := range b.idx {
		vals[j] = t.Values[i]
	}
	return &Tuple{Values: vals, Prov: t.Prov}, nil
}

type semijoinIter struct {
	in   Iterator
	i    int
	keys map[Val]bool
}

// StreamSemijoin keeps the tuples whose col value is in keys (streaming ⋉).
func StreamSemijoin(in Iterator, col string, keys map[Val]bool) (Iterator, error) {
	i, err := colIndex(in.Schema(), col)
	if err != nil {
		return nil, err
	}
	return &semijoinIter{in: in, i: i, keys: keys}, nil
}

func (s *semijoinIter) Schema() []string { return s.in.Schema() }
func (s *semijoinIter) Close() error     { return s.in.Close() }
func (s *semijoinIter) Next() (*Tuple, error) {
	for {
		t, err := s.in.Next()
		if t == nil || err != nil {
			return nil, err
		}
		if s.keys[t.Values[s.i]] {
			return t, nil
		}
	}
}

type limitIter struct {
	in   Iterator
	left int
}

// StreamLimit passes through at most n tuples.
func StreamLimit(in Iterator, n int) Iterator {
	return &limitIter{in: in, left: n}
}

func (l *limitIter) Schema() []string { return l.in.Schema() }
func (l *limitIter) Close() error     { return l.in.Close() }
func (l *limitIter) Next() (*Tuple, error) {
	if l.left <= 0 {
		return nil, nil
	}
	t, err := l.in.Next()
	if t == nil || err != nil {
		return nil, err
	}
	l.left--
	return t, nil
}

// --- hash joins --------------------------------------------------------------

// joinIter is the shared streaming hash join: it drains and indexes the
// build side once, then probes with the (streaming) outer side, emitting
// combined tuples in outer-major order — exactly the order the eager Join
// produces, since eager Join also indexes its right input and iterates the
// left. Output Values rows are freshly allocated; witness sets are
// cross-merged as in Join.
type joinIter struct {
	outer     Iterator
	buildIdx  map[string][]int
	buildTups []Tuple
	probeIdx  []int // key columns in the outer schema
	buildKey  []int // key columns in the build schema
	buildKeep []int // build columns appended to output; nil = all (natural join drops shared keys)
	schema    []string

	cur     *Tuple // current outer tuple being expanded
	matches []int
	mi      int
	built   bool
	build   func() error
}

// StreamJoin hash-joins two iterators on leftCol = rightCol with the same
// output schema as the eager Join (right columns colliding with left ones
// are prefixed with rightName). The right side is materialized as the hash
// build side; the left streams through as the probe side.
func StreamJoin(l, r Iterator, leftCol, rightCol, rightName string) (Iterator, error) {
	li, err := colIndex(l.Schema(), leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := colIndex(r.Schema(), rightCol)
	if err != nil {
		return nil, err
	}
	schema := joinSchema(l.Schema(), r.Schema(), rightName)
	return newJoinIter(l, r, []int{li}, []int{ri}, schema), nil
}

// StreamNaturalJoin joins two iterators on every shared column name (the
// planner's binding join): the output schema is the left schema followed by
// the right's non-shared columns. With no shared columns it degrades to the
// cross product, which is what a conjunctive body with disconnected atoms
// means.
func StreamNaturalJoin(l, r Iterator) Iterator {
	ls, rs := l.Schema(), r.Schema()
	lpos := make(map[string]int, len(ls))
	for i, c := range ls {
		lpos[c] = i
	}
	var probeKey, buildKey []int
	// keep must stay non-nil even when every build column is a shared key:
	// nil means "append all build columns" inside the join.
	keep := []int{}
	schema := append([]string(nil), ls...)
	for i, c := range rs {
		if j, shared := lpos[c]; shared {
			probeKey = append(probeKey, j)
			buildKey = append(buildKey, i)
		} else {
			keep = append(keep, i)
			schema = append(schema, c)
		}
	}
	it := newJoinIter(l, r, probeKey, buildKey, schema)
	it.buildKeep = keep
	return it
}

func newJoinIter(outer, build Iterator, probeKey, buildKey []int, schema []string) *joinIter {
	j := &joinIter{outer: outer, probeIdx: probeKey, buildKey: buildKey, schema: schema}
	j.build = func() error {
		defer build.Close()
		j.buildIdx = map[string][]int{}
		var keyBuf []Val
		for {
			t, err := build.Next()
			if err != nil {
				return err
			}
			if t == nil {
				return nil
			}
			keyBuf = keyBuf[:0]
			for _, i := range j.buildKey {
				keyBuf = append(keyBuf, t.Values[i])
			}
			k := valueKey(keyBuf)
			j.buildIdx[k] = append(j.buildIdx[k], len(j.buildTups))
			j.buildTups = append(j.buildTups, *t)
		}
	}
	return j
}

func (j *joinIter) Schema() []string { return j.schema }

func (j *joinIter) Close() error { return j.outer.Close() }

func (j *joinIter) Next() (*Tuple, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
		j.built = true
	}
	var keyBuf []Val
	for {
		for j.cur != nil && j.mi < len(j.matches) {
			bt := &j.buildTups[j.matches[j.mi]]
			j.mi++
			keep := j.buildKeep
			n := len(bt.Values)
			if keep != nil {
				n = len(keep)
			}
			vals := make([]Val, 0, len(j.cur.Values)+n)
			vals = append(vals, j.cur.Values...)
			if keep == nil {
				vals = append(vals, bt.Values...)
			} else {
				for _, i := range keep {
					vals = append(vals, bt.Values[i])
				}
			}
			return &Tuple{Values: vals, Prov: mergeWitnessSets(j.cur.Prov, bt.Prov)}, nil
		}
		t, err := j.outer.Next()
		if t == nil || err != nil {
			return nil, err
		}
		keyBuf = keyBuf[:0]
		for _, i := range j.probeIdx {
			keyBuf = append(keyBuf, t.Values[i])
		}
		j.cur = t
		j.matches = j.buildIdx[valueKey(keyBuf)]
		j.mi = 0
	}
}

// --- blocking operators ------------------------------------------------------

// drainIter buffers a computed tuple list and streams it: the tail of
// every blocking operator.
type drainIter struct {
	schema []string
	tuples []Tuple
	i      int
	fill   func() ([]Tuple, error)
	filled bool
}

func (d *drainIter) Schema() []string { return d.schema }
func (d *drainIter) Close() error     { return nil }
func (d *drainIter) Next() (*Tuple, error) {
	if !d.filled {
		tups, err := d.fill()
		if err != nil {
			return nil, err
		}
		d.tuples, d.filled = tups, true
	}
	if d.i >= len(d.tuples) {
		return nil, nil
	}
	t := &d.tuples[d.i]
	d.i++
	return t, nil
}

// StreamProject keeps the named columns with set semantics: duplicate rows
// merge and their witness sets union, exactly as the eager Project. The
// operator consumes its input one tuple at a time and buffers only the
// deduplicated output (memory proportional to distinct rows, not input
// rows); output order is first-occurrence order, matching Project.
func StreamProject(in Iterator, cols ...string) (Iterator, error) {
	idx, err := colIndexes(in.Schema(), cols)
	if err != nil {
		return nil, err
	}
	schema := append([]string(nil), cols...)
	return &drainIter{
		schema: schema,
		fill: func() ([]Tuple, error) {
			defer in.Close()
			var out []Tuple
			byKey := map[string]int{}
			for {
				t, err := in.Next()
				if err != nil {
					return nil, err
				}
				if t == nil {
					return out, nil
				}
				vals := make([]Val, len(idx))
				for j, i := range idx {
					vals[j] = t.Values[i]
				}
				k := valueKey(vals)
				if at, ok := byKey[k]; ok {
					out[at].Prov = unionWitnessSets(out[at].Prov, t.Prov)
					continue
				}
				byKey[k] = len(out)
				out = append(out, Tuple{Values: vals, Prov: t.Prov})
			}
		},
	}, nil
}

// StreamUnion computes the set union of two same-schema streams, unioning
// witness sets of value-equal tuples like the eager Union. Buffers only
// the deduplicated output.
func StreamUnion(a, b Iterator) (Iterator, error) {
	if err := schemaNamesEqual(a.Schema(), b.Schema()); err != nil {
		return nil, err
	}
	schema := append([]string(nil), a.Schema()...)
	return &drainIter{
		schema: schema,
		fill: func() ([]Tuple, error) {
			defer a.Close()
			defer b.Close()
			var out []Tuple
			byKey := map[string]int{}
			add := func(t *Tuple) {
				k := valueKey(t.Values)
				if at, ok := byKey[k]; ok {
					out[at].Prov = unionWitnessSets(out[at].Prov, t.Prov)
					return
				}
				byKey[k] = len(out)
				out = append(out, Tuple{Values: t.Values, Prov: t.Prov})
			}
			for _, in := range []Iterator{a, b} {
				for {
					t, err := in.Next()
					if err != nil {
						return nil, err
					}
					if t == nil {
						break
					}
					add(t)
				}
			}
			return out, nil
		},
	}, nil
}

// StreamGroupBy folds the input stream into groups one tuple at a time
// (never materializing the input) and emits the same [key, agg] rows in
// the same sorted-key order as the eager GroupBy, with each group's
// witness sets unioned.
func StreamGroupBy(in Iterator, keyCol string, agg AggFunc, aggCol string) (Iterator, error) {
	ki, err := colIndex(in.Schema(), keyCol)
	if err != nil {
		return nil, err
	}
	ai := -1
	if agg != AggCount {
		ai, err = colIndex(in.Schema(), aggCol)
		if err != nil {
			return nil, err
		}
	}
	outCol := string(agg)
	if aggCol != "" {
		outCol = string(agg) + "_" + aggCol
	}
	schema := []string{keyCol, outCol}
	return &drainIter{
		schema: schema,
		fill: func() ([]Tuple, error) {
			defer in.Close()
			type group struct {
				key   Val
				count int64
				sum   float64
				min   float64
				max   float64
				first bool
				prov  []Witness
			}
			groups := map[string]*group{}
			var order []string
			for {
				t, err := in.Next()
				if err != nil {
					return nil, err
				}
				if t == nil {
					break
				}
				k := valueKey([]Val{t.Values[ki]})
				g, ok := groups[k]
				if !ok {
					g = &group{key: t.Values[ki], first: true}
					groups[k] = g
					order = append(order, k)
				}
				g.count++
				if ai >= 0 {
					f, err := toFloat(t.Values[ai])
					if err != nil {
						return nil, fmt.Errorf("relalg: stream groupby %s: %w", agg, err)
					}
					g.sum += f
					if g.first || f < g.min {
						g.min = f
					}
					if g.first || f > g.max {
						g.max = f
					}
					g.first = false
				}
				g.prov = unionWitnessSets(g.prov, t.Prov)
			}
			sort.Strings(order)
			out := make([]Tuple, 0, len(order))
			for _, k := range order {
				g := groups[k]
				var v Val
				switch agg {
				case AggCount:
					v = g.count
				case AggSum:
					v = g.sum
				case AggMin:
					v = g.min
				case AggMax:
					v = g.max
				case AggAvg:
					v = g.sum / float64(g.count)
				default:
					return nil, fmt.Errorf("relalg: unknown aggregate %q", agg)
				}
				out = append(out, Tuple{Values: []Val{g.key, v}, Prov: g.prov})
			}
			return out, nil
		},
	}, nil
}

// StreamSort drains the input and streams it back ordered by col ascending
// (stable, like the eager Sort). Sorting is inherently blocking; memory is
// one tuple header per input row (values are not copied).
func StreamSort(in Iterator, col string) (Iterator, error) {
	return streamSortBy(in, col, func(a, b Val) bool { return compareVals(a, b) < 0 })
}

// StreamSortBy drains and stable-sorts by an arbitrary comparator over the
// named column: PQL's ORDER BY (numeric-aware, optionally descending)
// plugs in here, carrying the sort key through the pipeline instead of
// re-deriving it after projection.
func StreamSortBy(in Iterator, col string, less func(a, b Val) bool) (Iterator, error) {
	return streamSortBy(in, col, less)
}

func streamSortBy(in Iterator, col string, less func(a, b Val) bool) (Iterator, error) {
	i, err := colIndex(in.Schema(), col)
	if err != nil {
		return nil, err
	}
	schema := append([]string(nil), in.Schema()...)
	return &drainIter{
		schema: schema,
		fill: func() ([]Tuple, error) {
			defer in.Close()
			var out []Tuple
			for {
				t, err := in.Next()
				if err != nil {
					return nil, err
				}
				if t == nil {
					break
				}
				out = append(out, *t)
			}
			sort.SliceStable(out, func(a, b int) bool {
				return less(out[a].Values[i], out[b].Values[i])
			})
			return out, nil
		},
	}, nil
}

// --- sinks -------------------------------------------------------------------

// Materialize drains an iterator into a named relation, copying values and
// cloning witness sets so the result is independent of the sources.
func Materialize(it Iterator, name string) (*Relation, error) {
	defer it.Close()
	out := derived(name, it.Schema())
	for {
		t, err := it.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out.Tuples = append(out.Tuples, Tuple{
			Values: append([]Val(nil), t.Values...),
			Prov:   cloneWitnesses(t.Prov),
		})
	}
}

// Drain consumes an iterator, invoking fn per tuple; the executor's
// callback sink (fn must not retain the tuple).
func Drain(it Iterator, fn func(*Tuple) error) error {
	defer it.Close()
	var rows uint64
	defer func() { mExecRows.Add(rows) }()
	for {
		t, err := it.Next()
		if err != nil {
			return err
		}
		if t == nil {
			return nil
		}
		rows++
		if err := fn(t); err != nil {
			return err
		}
	}
}

// mExecRows counts every tuple leaving a streaming execution through
// Drain — the shared exit funnel of compiled plans, the PQL executor and
// the Datalog evaluator alike.
var mExecRows = obs.Default().Counter("prov_exec_rows_total", "Rows emitted by streaming query executions.")

// --- instrumentation ---------------------------------------------------------

// OpStat is one operator's executed-plan counters: rows emitted downstream,
// exposed by the explain surfaces of the query CLIs.
type OpStat struct {
	Label string
	Rows  int64
}

type countIter struct {
	in   Iterator
	stat *OpStat
}

// Instrument wraps an iterator so every emitted tuple increments stat.Rows:
// the per-operator observability hook behind `provctl query -explain`.
func Instrument(in Iterator, stat *OpStat) Iterator {
	return &countIter{in: in, stat: stat}
}

func (c *countIter) Schema() []string { return c.in.Schema() }
func (c *countIter) Close() error     { return c.in.Close() }
func (c *countIter) Next() (*Tuple, error) {
	t, err := c.in.Next()
	if t != nil {
		c.stat.Rows++
	}
	return t, err
}

// --- helpers -----------------------------------------------------------------

func colIndex(schema []string, col string) (int, error) {
	for i, c := range schema {
		if c == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("relalg: stream schema %v has no column %q", schema, col)
}

func colIndexes(schema []string, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for j, c := range cols {
		i, err := colIndex(schema, c)
		if err != nil {
			return nil, err
		}
		idx[j] = i
	}
	return idx, nil
}

func schemaNamesEqual(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("relalg: schema arity mismatch %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("relalg: schema mismatch at %d: %q vs %q", i, a[i], b[i])
		}
	}
	return nil
}

// joinSchema reproduces the eager Join's output schema: left columns, then
// right columns with collisions prefixed by the right relation's name.
func joinSchema(ls, rs []string, rightName string) []string {
	schema := append([]string(nil), ls...)
	used := map[string]bool{}
	for _, c := range schema {
		used[c] = true
	}
	for i, c := range rs {
		name := c
		if used[name] {
			name = rightName + "." + c
		}
		if used[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		used[name] = true
		schema = append(schema, name)
	}
	return schema
}
