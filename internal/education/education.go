// Package education implements the paper's "killer application" of
// provenance-enabled workflow systems (§2.3): teaching. An instructor's
// in-class exploration is recorded as a Session — every workflow variant
// tried becomes a version in an evolution tree, every execution's
// provenance is kept, and every explanation is an annotated note — so that
// "after the class, all these results and their provenance can be made
// available to students." Students submit assignments the same way: the
// full derivation of their result, checkable by replay.
package education

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/provenance"
	"repro/internal/workflow"
)

// Step is one recorded classroom step: a version committed, a run
// executed, or a note taken, in chronological order.
type Step struct {
	Seq     int    `json:"seq"`
	Kind    string `json:"kind"` // "commit", "run", "note"
	Version int    `json:"version,omitempty"`
	RunID   string `json:"runId,omitempty"`
	Note    string `json:"note,omitempty"`
}

// Session records one class (or one assignment work session).
type Session struct {
	Course     string
	Instructor string
	Title      string

	sys     *core.System
	tree    *evolution.Tree
	head    int
	steps   []Step
	runVers map[string]int // run ID -> version executed
}

// NewSession starts a session around a base workflow, which becomes
// version 1 of the session's evolution tree.
func NewSession(sys *core.System, course, instructor, title string, base *workflow.Workflow) (*Session, error) {
	tree := evolution.NewTree(title)
	v1, err := tree.Commit(tree.Root(), instructor, "starting point", evolution.ImportWorkflow(base))
	if err != nil {
		return nil, err
	}
	s := &Session{
		Course: course, Instructor: instructor, Title: title,
		sys: sys, tree: tree, head: v1,
		runVers: map[string]int{},
	}
	s.record(Step{Kind: "commit", Version: v1})
	return s, nil
}

func (s *Session) record(st Step) {
	st.Seq = len(s.steps) + 1
	s.steps = append(s.steps, st)
}

// Head returns the current version ID.
func (s *Session) Head() int { return s.head }

// Tree exposes the session's evolution tree (read-only use).
func (s *Session) Tree() *evolution.Tree { return s.tree }

// Steps returns the chronological step log.
func (s *Session) Steps() []Step { return append([]Step(nil), s.steps...) }

// Edit commits actions on top of the current head ("let me change the
// isovalue and see what happens") and moves the head.
func (s *Session) Edit(note string, actions ...evolution.Action) (int, error) {
	v, err := s.tree.Commit(s.head, s.Instructor, note, actions)
	if err != nil {
		return 0, err
	}
	s.head = v
	s.record(Step{Kind: "commit", Version: v, Note: note})
	return v, nil
}

// Branch moves the head to an earlier version ("going back to what we had
// before the smoothing"). Subsequent edits branch the tree.
func (s *Session) Branch(version int) error {
	if _, err := s.tree.Version(version); err != nil {
		return err
	}
	s.head = version
	s.record(Step{Kind: "note", Note: fmt.Sprintf("rewound to version %d", version)})
	return nil
}

// Run executes the workflow at the current head with full provenance.
func (s *Session) Run(ctx context.Context) (string, error) {
	wf, err := s.tree.Materialize(s.head)
	if err != nil {
		return "", err
	}
	res, _, err := s.sys.Run(ctx, wf, nil)
	if err != nil {
		return "", err
	}
	s.runVers[res.RunID] = s.head
	s.record(Step{Kind: "run", Version: s.head, RunID: res.RunID})
	return res.RunID, nil
}

// Note records an explanation ("notice how the histogram shifts").
func (s *Session) Note(text string) {
	s.record(Step{Kind: "note", Note: text})
}

// VersionOfRun returns the version a recorded run executed.
func (s *Session) VersionOfRun(runID string) (int, error) {
	v, ok := s.runVers[runID]
	if !ok {
		return 0, fmt.Errorf("education: run %q not part of this session", runID)
	}
	return v, nil
}

// ExplainRuns answers the classic student question "why do these two runs
// differ?" with both levels: the version-tree diff of the workflows and
// the provenance diff of the executions.
func (s *Session) ExplainRuns(runA, runB string) (string, error) {
	va, err := s.VersionOfRun(runA)
	if err != nil {
		return "", err
	}
	vb, err := s.VersionOfRun(runB)
	if err != nil {
		return "", err
	}
	vd, err := s.tree.DiffVersions(va, vb)
	if err != nil {
		return "", err
	}
	la, err := s.sys.Store.RunLog(runA)
	if err != nil {
		return "", err
	}
	lb, err := s.sys.Store.RunLog(runB)
	if err != nil {
		return "", err
	}
	rd := provenance.DiffRuns(la, lb)
	var b strings.Builder
	fmt.Fprintf(&b, "runs %s (v%d) vs %s (v%d)\n", runA, va, runB, vb)
	if len(vd.ParamChanges) > 0 {
		keys := make([]string, 0, len(vd.ParamChanges))
		for k := range vd.ParamChanges {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ch := vd.ParamChanges[k]
			fmt.Fprintf(&b, "  parameter %s: %q -> %q\n", k, ch[0], ch[1])
		}
	}
	for _, m := range vd.AddedModules {
		fmt.Fprintf(&b, "  module added: %s\n", m)
	}
	for _, m := range vd.RemovedModules {
		fmt.Fprintf(&b, "  module removed: %s\n", m)
	}
	if len(rd.OutputChanges) > 0 {
		fmt.Fprintf(&b, "  outputs that changed: %s\n", strings.Join(rd.OutputChanges, ", "))
	} else {
		fmt.Fprintf(&b, "  outputs identical\n")
	}
	return b.String(), nil
}

// Handout is the distributable record of a session: what the paper says
// should be "made available to students" after class.
type Handout struct {
	Course     string          `json:"course"`
	Instructor string          `json:"instructor"`
	Title      string          `json:"title"`
	Steps      []Step          `json:"steps"`
	Tree       json.RawMessage `json:"versionTree"`
	Runs       map[string]int  `json:"runs"` // run ID -> version
}

// ExportHandout bundles the session for distribution.
func (s *Session) ExportHandout() (*Handout, error) {
	treeJSON, err := s.tree.EncodeJSON()
	if err != nil {
		return nil, err
	}
	return &Handout{
		Course:     s.Course,
		Instructor: s.Instructor,
		Title:      s.Title,
		Steps:      s.Steps(),
		Tree:       treeJSON,
		Runs:       copyRunVers(s.runVers),
	}, nil
}

func copyRunVers(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// GradeSubmission checks a student's assignment: given the handout-style
// session of the student, verify that (a) the claimed final run really
// executed the claimed version and (b) re-running that version reproduces
// the student's outputs. This is the paper's "students can turn in the
// detailed provenance of their work" made checkable.
func GradeSubmission(ctx context.Context, sys *core.System, student *Session, finalRun string) (bool, string, error) {
	version, err := student.VersionOfRun(finalRun)
	if err != nil {
		return false, "claimed run is not in the session", nil
	}
	orig, err := sys.Store.RunLog(finalRun)
	if err != nil {
		return false, "", err
	}
	wf, err := student.tree.Materialize(version)
	if err != nil {
		return false, "", err
	}
	if orig.Run.WorkflowHash != wf.ContentHash() {
		return false, "run log does not match the claimed workflow version", nil
	}
	res, replay, err := sys.Run(ctx, wf, nil)
	if err != nil {
		return false, "", err
	}
	_ = res
	d := provenance.DiffRuns(orig, replay)
	if len(d.OutputChanges) > 0 {
		return false, fmt.Sprintf("replay diverges on modules: %s", strings.Join(d.OutputChanges, ", ")), nil
	}
	return true, "reproduced", nil
}
