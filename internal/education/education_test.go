package education

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/workloads"
)

func newClass(t *testing.T) (*core.System, *Session) {
	t.Helper()
	sys := core.NewSystem(core.Options{Agent: "prof", Workers: 1})
	workloads.RegisterAll(sys.Registry)
	s, err := NewSession(sys, "CS6960 Visualization", "prof", "isosurfaces", workloads.MedicalImaging())
	if err != nil {
		t.Fatal(err)
	}
	return sys, s
}

func TestSessionRecordsSteps(t *testing.T) {
	_, s := newClass(t)
	ctx := context.Background()
	run1, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s.Note("baseline: isovalue 57 shows bone")
	v2, err := s.Edit("try soft tissue", evolution.SetParamAction("contour", "isovalue", "45"))
	if err != nil {
		t.Fatal(err)
	}
	run2, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	steps := s.Steps()
	// commit(v1), run, note, commit(v2), run.
	if len(steps) != 5 {
		t.Fatalf("steps = %d: %+v", len(steps), steps)
	}
	kinds := []string{}
	for _, st := range steps {
		kinds = append(kinds, st.Kind)
	}
	if strings.Join(kinds, ",") != "commit,run,note,commit,run" {
		t.Fatalf("kinds = %v", kinds)
	}
	if v, _ := s.VersionOfRun(run1); v == v2 {
		t.Fatal("run1 attributed to wrong version")
	}
	if v, _ := s.VersionOfRun(run2); v != v2 {
		t.Fatalf("run2 version = %d, want %d", v, v2)
	}
	if _, err := s.VersionOfRun("ghost"); err == nil {
		t.Fatal("unknown run resolved")
	}
}

func TestBranchingExploration(t *testing.T) {
	_, s := newClass(t)
	v1 := s.Head()
	if _, err := s.Edit("isovalue 45", evolution.SetParamAction("contour", "isovalue", "45")); err != nil {
		t.Fatal(err)
	}
	if err := s.Branch(v1); err != nil {
		t.Fatal(err)
	}
	vb, err := s.Edit("isovalue 110 instead", evolution.SetParamAction("contour", "isovalue", "110"))
	if err != nil {
		t.Fatal(err)
	}
	// Two children of v1: the exploratory branches are both retained.
	if kids := s.Tree().Children(v1); len(kids) != 2 {
		t.Fatalf("children = %v", kids)
	}
	wf, err := s.Tree().Materialize(vb)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Module("contour").Params["isovalue"] != "110" {
		t.Fatal("branch content wrong")
	}
	if err := s.Branch(999); err == nil {
		t.Fatal("branch to unknown version accepted")
	}
}

func TestExplainRuns(t *testing.T) {
	_, s := newClass(t)
	ctx := context.Background()
	run1, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Edit("different isovalue", evolution.SetParamAction("contour", "isovalue", "110")); err != nil {
		t.Fatal(err)
	}
	run2, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	expl, err := s.ExplainRuns(run1, run2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl, `contour.isovalue: "57" -> "110"`) {
		t.Fatalf("explanation:\n%s", expl)
	}
	if !strings.Contains(expl, "contour") || !strings.Contains(expl, "render") {
		t.Fatalf("changed outputs missing:\n%s", expl)
	}
	// Identical version runs: outputs identical.
	run3, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	expl, err = s.ExplainRuns(run2, run3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl, "outputs identical") {
		t.Fatalf("identical runs not detected:\n%s", expl)
	}
}

func TestExportHandout(t *testing.T) {
	_, s := newClass(t)
	ctx := context.Background()
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	s.Note("for the assignment, explore isovalues 40-120")
	h, err := s.ExportHandout()
	if err != nil {
		t.Fatal(err)
	}
	if h.Course != "CS6960 Visualization" || len(h.Steps) != 3 || len(h.Runs) != 1 {
		t.Fatalf("handout = %+v", h)
	}
	// The embedded tree round-trips.
	tree, err := evolution.DecodeJSON(h.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != s.Tree().Len() {
		t.Fatal("tree lost versions")
	}
}

func TestGradeSubmissionAccepts(t *testing.T) {
	sys, s := newClass(t)
	ctx := context.Background()
	if _, err := s.Edit("my solution", evolution.SetParamAction("contour", "isovalue", "80")); err != nil {
		t.Fatal(err)
	}
	finalRun, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ok, why, err := GradeSubmission(ctx, sys, s, finalRun)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("honest submission rejected: %s", why)
	}
}

func TestGradeSubmissionRejectsForgery(t *testing.T) {
	sys, s := newClass(t)
	ctx := context.Background()
	honestRun, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Forge: claim the run belongs to a different (edited) version.
	v2, err := s.Edit("late edit", evolution.SetParamAction("contour", "isovalue", "99"))
	if err != nil {
		t.Fatal(err)
	}
	s.runVers[honestRun] = v2 // tamper with the session record
	ok, why, err := GradeSubmission(ctx, sys, s, honestRun)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("forged attribution accepted")
	}
	if !strings.Contains(why, "does not match") {
		t.Fatalf("reason = %q", why)
	}
	// Unknown run.
	ok, why, err = GradeSubmission(ctx, sys, s, "run-bogus")
	if err != nil || ok {
		t.Fatalf("bogus run: ok=%v why=%q err=%v", ok, why, err)
	}
}
