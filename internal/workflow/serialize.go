package workflow

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"sort"
)

// The serialization formats mirror the storage spectrum the paper surveys
// (§2.2): XML dialects stored as files, and structured records. JSON is the
// native interchange format; XML round-trips through an explicit document
// model because maps (params, annotations) need stable element encoding.

// MarshalJSON-compatible form is the struct itself; these helpers add
// deterministic indentation and validation on decode.

// EncodeJSON serializes the workflow as canonical indented JSON.
func EncodeJSON(w *Workflow) ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// DecodeJSON parses and validates a workflow from JSON.
func DecodeJSON(data []byte) (*Workflow, error) {
	var w Workflow
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("workflow: decode json: %w", err)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// xmlKV encodes one map entry.
type xmlKV struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

type xmlModule struct {
	ID          string  `xml:"id,attr"`
	Name        string  `xml:"name,attr"`
	Type        string  `xml:"type,attr"`
	Inputs      []Port  `xml:"inputs>port"`
	Outputs     []Port  `xml:"outputs>port"`
	Params      []xmlKV `xml:"params>param"`
	Annotations []xmlKV `xml:"annotations>annotation"`
}

type xmlWorkflow struct {
	XMLName     xml.Name     `xml:"workflow"`
	ID          string       `xml:"id,attr"`
	Name        string       `xml:"name,attr"`
	Modules     []xmlModule  `xml:"modules>module"`
	Connections []Connection `xml:"connections>connection"`
	Annotations []xmlKV      `xml:"annotations>annotation"`
}

func mapToKVs(m map[string]string) []xmlKV {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]xmlKV, len(keys))
	for i, k := range keys {
		out[i] = xmlKV{Key: k, Value: m[k]}
	}
	return out
}

func kvsToMap(kvs []xmlKV) map[string]string {
	if len(kvs) == 0 {
		return nil
	}
	m := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		m[kv.Key] = kv.Value
	}
	return m
}

// EncodeXML serializes the workflow as an XML document, the file-dialect
// storage form.
func EncodeXML(w *Workflow) ([]byte, error) {
	doc := xmlWorkflow{
		ID:          w.ID,
		Name:        w.Name,
		Connections: w.Connections,
		Annotations: mapToKVs(w.Annotations),
	}
	for _, m := range w.Modules {
		doc.Modules = append(doc.Modules, xmlModule{
			ID:          m.ID,
			Name:        m.Name,
			Type:        m.Type,
			Inputs:      m.Inputs,
			Outputs:     m.Outputs,
			Params:      mapToKVs(m.Params),
			Annotations: mapToKVs(m.Annotations),
		})
	}
	return xml.MarshalIndent(doc, "", "  ")
}

// DecodeXML parses and validates a workflow from its XML document form.
func DecodeXML(data []byte) (*Workflow, error) {
	var doc xmlWorkflow
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("workflow: decode xml: %w", err)
	}
	w := &Workflow{
		ID:          doc.ID,
		Name:        doc.Name,
		Connections: doc.Connections,
		Annotations: kvsToMap(doc.Annotations),
	}
	for _, m := range doc.Modules {
		w.Modules = append(w.Modules, &Module{
			ID:          m.ID,
			Name:        m.Name,
			Type:        m.Type,
			Inputs:      m.Inputs,
			Outputs:     m.Outputs,
			Params:      kvsToMap(m.Params),
			Annotations: kvsToMap(m.Annotations),
		})
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
