package workflow_test

// Cross-package property tests: random layered workflows from the workload
// generator are pushed through serialization, cloning and hashing, checking
// the invariants the rest of the system leans on.

import (
	"testing"
	"testing/quick"

	"repro/internal/workflow"
	"repro/internal/workloads"
)

// Property: JSON and XML round trips preserve the content hash and
// validity for arbitrary generated workflows.
func TestQuickSerializationPreservesHash(t *testing.T) {
	f := func(seed int64, l, w, fan uint8) bool {
		wf := workloads.RandomLayered(seed, int(l%4)+2, int(w%4)+1, int(fan%3)+1)
		jsonData, err := workflow.EncodeJSON(wf)
		if err != nil {
			return false
		}
		fromJSON, err := workflow.DecodeJSON(jsonData)
		if err != nil {
			return false
		}
		xmlData, err := workflow.EncodeXML(wf)
		if err != nil {
			return false
		}
		fromXML, err := workflow.DecodeXML(xmlData)
		if err != nil {
			return false
		}
		h := wf.ContentHash()
		return fromJSON.ContentHash() == h && fromXML.ContentHash() == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone produces an equal-hash workflow whose mutation does not
// affect the original.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(seed int64, l, w uint8) bool {
		wf := workloads.RandomLayered(seed, int(l%4)+2, int(w%4)+1, 1)
		cp := wf.Clone()
		if cp.ContentHash() != wf.ContentHash() {
			return false
		}
		before := wf.ContentHash()
		if err := cp.SetParam(cp.Modules[0].ID, "mutated", "yes"); err != nil {
			return false
		}
		cp.RemoveModule(cp.Modules[len(cp.Modules)-1].ID)
		return wf.ContentHash() == before && wf.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: topological order respects every connection for arbitrary
// generated workflows.
func TestQuickTopoOrderRespectsConnections(t *testing.T) {
	f := func(seed int64, l, w, fan uint8) bool {
		wf := workloads.RandomLayered(seed, int(l%5)+2, int(w%5)+1, int(fan%3)+1)
		order, err := wf.TopoOrder()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, c := range wf.Connections {
			if pos[c.SrcModule] >= pos[c.DstModule] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Upstream and Downstream are converses.
func TestQuickUpstreamDownstreamConverse(t *testing.T) {
	f := func(seed int64) bool {
		wf := workloads.RandomLayered(seed, 4, 3, 2)
		for _, m := range wf.Modules {
			for _, up := range wf.Upstream(m.ID) {
				found := false
				for _, down := range wf.Downstream(up) {
					if down == m.ID {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
