package workflow

import (
	"strings"
	"testing"
)

// figure1 builds the workflow of the paper's Figure 1: a structured-grid
// dataset fans out to a histogram branch and an isosurface-visualization
// branch.
func figure1(t *testing.T) *Workflow {
	t.Helper()
	wf, err := NewBuilder("fig1", "medical-imaging").
		Module("reader", "FileReader", Out("data", "grid")).
		Module("histogram", "Histogram", In("data", "grid"), Out("plot", "image")).
		Module("contour", "Contour", In("data", "grid"), Out("surface", "mesh")).
		Module("render", "Render", In("surface", "mesh"), Out("image", "image")).
		Param("reader", "file", "head.120.vtk").
		Param("contour", "isovalue", "57").
		Connect("reader", "data", "histogram", "data").
		Connect("reader", "data", "contour", "data").
		Connect("contour", "surface", "render", "surface").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

func TestBuilderBuildsValidWorkflow(t *testing.T) {
	wf := figure1(t)
	if len(wf.Modules) != 4 || len(wf.Connections) != 3 {
		t.Fatalf("got %d modules %d connections", len(wf.Modules), len(wf.Connections))
	}
	if wf.Module("reader").Params["file"] != "head.120.vtk" {
		t.Fatal("param lost")
	}
}

func TestBuilderDuplicateModule(t *testing.T) {
	_, err := NewBuilder("w", "w").
		Module("a", "T").
		Module("a", "T").
		Build()
	if err == nil {
		t.Fatal("duplicate module accepted")
	}
}

func TestConnectTypeMismatch(t *testing.T) {
	_, err := NewBuilder("w", "w").
		Module("a", "T", Out("o", "grid")).
		Module("b", "T", In("i", "mesh")).
		Connect("a", "o", "b", "i").
		Build()
	if err == nil || !strings.Contains(err.Error(), "type mismatch") {
		t.Fatalf("err = %v, want type mismatch", err)
	}
}

func TestConnectWildcard(t *testing.T) {
	_, err := NewBuilder("w", "w").
		Module("a", "T", Out("o", "grid")).
		Module("b", "T", In("i", Wildcard)).
		Connect("a", "o", "b", "i").
		Build()
	if err != nil {
		t.Fatalf("wildcard connection rejected: %v", err)
	}
}

func TestConnectMissingPort(t *testing.T) {
	_, err := NewBuilder("w", "w").
		Module("a", "T", Out("o", "grid")).
		Module("b", "T", In("i", "grid")).
		Connect("a", "nope", "b", "i").
		Build()
	if err == nil {
		t.Fatal("missing port accepted")
	}
}

func TestConnectDoubleFeed(t *testing.T) {
	_, err := NewBuilder("w", "w").
		Module("a", "T", Out("o", "grid")).
		Module("b", "T", Out("o", "grid")).
		Module("c", "T", In("i", "grid")).
		Connect("a", "o", "c", "i").
		Connect("b", "o", "c", "i").
		Build()
	if err == nil {
		t.Fatal("double-fed input accepted")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	wf := New("w", "w")
	a := &Module{ID: "a", Type: "T", Inputs: []Port{{Name: "i", Type: "x"}}, Outputs: []Port{{Name: "o", Type: "x"}}}
	b := &Module{ID: "b", Type: "T", Inputs: []Port{{Name: "i", Type: "x"}}, Outputs: []Port{{Name: "o", Type: "x"}}}
	if err := wf.AddModule(a); err != nil {
		t.Fatal(err)
	}
	if err := wf.AddModule(b); err != nil {
		t.Fatal(err)
	}
	if err := wf.Connect("a", "o", "b", "i"); err != nil {
		t.Fatal(err)
	}
	if err := wf.Connect("b", "o", "a", "i"); err != nil {
		t.Fatal(err)
	}
	if err := wf.Validate(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("err = %v, want cyclic", err)
	}
}

func TestRemoveModuleDropsConnections(t *testing.T) {
	wf := figure1(t)
	if !wf.RemoveModule("contour") {
		t.Fatal("RemoveModule = false")
	}
	if len(wf.Connections) != 1 {
		t.Fatalf("connections = %d, want 1", len(wf.Connections))
	}
	if err := wf.Validate(); err != nil {
		t.Fatalf("invalid after removal: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	wf := figure1(t)
	order, err := wf.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["reader"] > pos["contour"] || pos["contour"] > pos["render"] {
		t.Fatalf("order = %v", order)
	}
}

func TestUpstreamDownstream(t *testing.T) {
	wf := figure1(t)
	up := wf.Upstream("render")
	if len(up) != 2 || up[0] != "contour" || up[1] != "reader" {
		t.Fatalf("Upstream(render) = %v", up)
	}
	down := wf.Downstream("reader")
	if len(down) != 3 {
		t.Fatalf("Downstream(reader) = %v", down)
	}
}

func TestContentHashStableUnderReordering(t *testing.T) {
	a := figure1(t)
	b := figure1(t)
	// Reorder modules and connections in b.
	b.Modules[0], b.Modules[3] = b.Modules[3], b.Modules[0]
	b.Connections[0], b.Connections[2] = b.Connections[2], b.Connections[0]
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("hash differs under reordering")
	}
}

func TestContentHashSensitiveToParams(t *testing.T) {
	a := figure1(t)
	b := figure1(t)
	if err := b.SetParam("contour", "isovalue", "99"); err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() == b.ContentHash() {
		t.Fatal("hash identical despite param change")
	}
}

func TestContentHashIgnoresAnnotations(t *testing.T) {
	a := figure1(t)
	b := figure1(t)
	b.Annotate("note", "checked by Susan")
	if err := b.AnnotateModule("reader", "note", "scanner recalled"); err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("annotations changed content hash")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := figure1(t)
	b := a.Clone()
	if err := b.SetParam("contour", "isovalue", "99"); err != nil {
		t.Fatal(err)
	}
	b.RemoveModule("histogram")
	if a.Module("contour").Params["isovalue"] != "57" {
		t.Fatal("clone shares params")
	}
	if a.Module("histogram") == nil {
		t.Fatal("clone shares module slice")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := figure1(t)
	a.Annotate("purpose", "figure 1 reproduction")
	data, err := EncodeJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("hash changed through JSON round trip")
	}
	if b.Annotations["purpose"] != "figure 1 reproduction" {
		t.Fatal("annotation lost")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	a := figure1(t)
	if err := a.AnnotateModule("reader", "source", "CT scanner #4"); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeXML(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("hash changed through XML round trip")
	}
	if b.Module("reader").Annotations["source"] != "CT scanner #4" {
		t.Fatal("module annotation lost")
	}
}

func TestDecodeJSONRejectsInvalid(t *testing.T) {
	bad := []byte(`{"id":"w","name":"w","modules":[{"id":"a","type":"T"},{"id":"a","type":"T"}]}`)
	if _, err := DecodeJSON(bad); err == nil {
		t.Fatal("invalid workflow decoded")
	}
	if _, err := DecodeJSON([]byte("{")); err == nil {
		t.Fatal("malformed json decoded")
	}
}

func TestStats(t *testing.T) {
	wf := figure1(t)
	wf.Annotate("a", "b")
	s := wf.Stat()
	if s.Modules != 4 || s.Connections != 3 || s.Params != 2 || s.Annotations != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Depth != 3 {
		t.Fatalf("depth = %d, want 3", s.Depth)
	}
}

func TestGraphConversion(t *testing.T) {
	wf := figure1(t)
	g := wf.Graph()
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("graph %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.Node("contour").Kind != "Contour" {
		t.Fatal("module type not mapped to node kind")
	}
}
