package workflow

import "fmt"

// Builder offers a fluent construction API for workflows. Errors are
// accumulated and reported once by Build, so call sites read like the
// dataflow they describe:
//
//	wf, err := workflow.NewBuilder("wf1", "demo").
//		Module("load", "FileReader", workflow.Out("data", "grid")).
//		Module("hist", "Histogram", workflow.In("data", "grid"), workflow.Out("plot", "image")).
//		Connect("load", "data", "hist", "data").
//		Build()
type Builder struct {
	wf   *Workflow
	errs []error
}

// NewBuilder starts building a workflow with the given identity.
func NewBuilder(id, name string) *Builder {
	return &Builder{wf: New(id, name)}
}

// PortSpec configures a port on a module being built.
type PortSpec struct {
	name    string
	typ     string
	isInput bool
}

// In declares an input port.
func In(name, typ string) PortSpec { return PortSpec{name: name, typ: typ, isInput: true} }

// Out declares an output port.
func Out(name, typ string) PortSpec { return PortSpec{name: name, typ: typ} }

// Module adds a module with the given ID and type; the display name defaults
// to the ID. Ports are declared inline.
func (b *Builder) Module(id, typ string, ports ...PortSpec) *Builder {
	m := &Module{ID: id, Name: id, Type: typ}
	for _, p := range ports {
		if p.isInput {
			m.Inputs = append(m.Inputs, Port{Name: p.name, Type: p.typ})
		} else {
			m.Outputs = append(m.Outputs, Port{Name: p.name, Type: p.typ})
		}
	}
	if err := b.wf.AddModule(m); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Param sets a parameter on a previously added module.
func (b *Builder) Param(moduleID, key, value string) *Builder {
	if err := b.wf.SetParam(moduleID, key, value); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Annotate attaches an annotation to a previously added module.
func (b *Builder) Annotate(moduleID, key, value string) *Builder {
	if err := b.wf.AnnotateModule(moduleID, key, value); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Connect wires an output port to an input port.
func (b *Builder) Connect(srcModule, srcPort, dstModule, dstPort string) *Builder {
	if err := b.wf.Connect(srcModule, srcPort, dstModule, dstPort); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Build validates and returns the workflow, or the first accumulated error.
func (b *Builder) Build() (*Workflow, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("workflow build: %w", b.errs[0])
	}
	if err := b.wf.Validate(); err != nil {
		return nil, err
	}
	return b.wf, nil
}

// MustBuild is Build for tests and examples with known-good specifications;
// it panics on error.
func (b *Builder) MustBuild() *Workflow {
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return wf
}
