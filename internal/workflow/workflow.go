// Package workflow defines the scientific-workflow specification model: the
// dataflow graphs of modules, typed ports and connections that constitute
// *prospective provenance* — the recipe that, together with inputs and
// parameters, derives a class of data products (Davidson & Freire, SIGMOD'08
// §2.2).
//
// A Workflow is a DAG whose nodes are Modules and whose edges are
// Connections between typed ports. The package provides validation,
// canonical content hashing, JSON and XML serialization, and conversion to
// the generic graph form used by matching, views and analogy.
package workflow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Port is a named, typed input or output of a module. Type is a free-form
// data-type tag (e.g. "vtkStructuredGrid", "table", "image/png"); two ports
// are compatible when types are equal or either side is the wildcard "any".
type Port struct {
	Name string `json:"name" xml:"name,attr"`
	Type string `json:"type" xml:"type,attr"`
}

// Wildcard is the port type compatible with every other type.
const Wildcard = "any"

// Compatible reports whether an output of type out may feed an input of
// type in.
func Compatible(out, in string) bool {
	return out == in || out == Wildcard || in == Wildcard
}

// Module is a computational step in a workflow: a process node in the
// dataflow graph. Type names the underlying operation (and is the key into
// the engine's module registry); Params are the bound parameter values that
// specialize it.
type Module struct {
	ID          string            `json:"id" xml:"id,attr"`
	Name        string            `json:"name" xml:"name,attr"`
	Type        string            `json:"type" xml:"type,attr"`
	Params      map[string]string `json:"params,omitempty" xml:"-"`
	Inputs      []Port            `json:"inputs,omitempty" xml:"inputs>port"`
	Outputs     []Port            `json:"outputs,omitempty" xml:"outputs>port"`
	Annotations map[string]string `json:"annotations,omitempty" xml:"-"`
}

// InputPort returns the named input port, or nil.
func (m *Module) InputPort(name string) *Port {
	for i := range m.Inputs {
		if m.Inputs[i].Name == name {
			return &m.Inputs[i]
		}
	}
	return nil
}

// OutputPort returns the named output port, or nil.
func (m *Module) OutputPort(name string) *Port {
	for i := range m.Outputs {
		if m.Outputs[i].Name == name {
			return &m.Outputs[i]
		}
	}
	return nil
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	cp := *m
	cp.Params = copyMap(m.Params)
	cp.Annotations = copyMap(m.Annotations)
	cp.Inputs = append([]Port(nil), m.Inputs...)
	cp.Outputs = append([]Port(nil), m.Outputs...)
	return &cp
}

func copyMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Connection routes the output port SrcPort of module SrcModule to the input
// port DstPort of module DstModule: a dataflow edge.
type Connection struct {
	SrcModule string `json:"srcModule" xml:"srcModule,attr"`
	SrcPort   string `json:"srcPort" xml:"srcPort,attr"`
	DstModule string `json:"dstModule" xml:"dstModule,attr"`
	DstPort   string `json:"dstPort" xml:"dstPort,attr"`
}

// Key returns a canonical string identity for the connection.
func (c Connection) Key() string {
	return c.SrcModule + "." + c.SrcPort + "->" + c.DstModule + "." + c.DstPort
}

// Workflow is a complete dataflow specification. It is the unit of
// prospective provenance: executing it (internal/engine) yields a run whose
// retrospective provenance references this specification by content hash.
type Workflow struct {
	ID          string            `json:"id" xml:"id,attr"`
	Name        string            `json:"name" xml:"name,attr"`
	Modules     []*Module         `json:"modules" xml:"modules>module"`
	Connections []Connection      `json:"connections" xml:"connections>connection"`
	Annotations map[string]string `json:"annotations,omitempty" xml:"-"`
}

// New returns an empty workflow with the given identity.
func New(id, name string) *Workflow {
	return &Workflow{ID: id, Name: name}
}

// Module returns the module with the given ID, or nil.
func (w *Workflow) Module(id string) *Module {
	for _, m := range w.Modules {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// AddModule appends a module, rejecting duplicate IDs.
func (w *Workflow) AddModule(m *Module) error {
	if m.ID == "" {
		return fmt.Errorf("workflow %s: module ID must be non-empty", w.ID)
	}
	if w.Module(m.ID) != nil {
		return fmt.Errorf("workflow %s: duplicate module %q", w.ID, m.ID)
	}
	w.Modules = append(w.Modules, m)
	return nil
}

// RemoveModule deletes a module and every connection touching it. It reports
// whether the module existed.
func (w *Workflow) RemoveModule(id string) bool {
	idx := -1
	for i, m := range w.Modules {
		if m.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	w.Modules = append(w.Modules[:idx], w.Modules[idx+1:]...)
	kept := w.Connections[:0]
	for _, c := range w.Connections {
		if c.SrcModule != id && c.DstModule != id {
			kept = append(kept, c)
		}
	}
	w.Connections = kept
	return true
}

// Connect adds a connection after checking that both endpoints and ports
// exist, the port types are compatible, and the destination port is not
// already fed (dataflow inputs are single-assignment).
func (w *Workflow) Connect(srcModule, srcPort, dstModule, dstPort string) error {
	src := w.Module(srcModule)
	if src == nil {
		return fmt.Errorf("workflow %s: source module %q not found", w.ID, srcModule)
	}
	dst := w.Module(dstModule)
	if dst == nil {
		return fmt.Errorf("workflow %s: destination module %q not found", w.ID, dstModule)
	}
	op := src.OutputPort(srcPort)
	if op == nil {
		return fmt.Errorf("workflow %s: module %q has no output port %q", w.ID, srcModule, srcPort)
	}
	ip := dst.InputPort(dstPort)
	if ip == nil {
		return fmt.Errorf("workflow %s: module %q has no input port %q", w.ID, dstModule, dstPort)
	}
	if !Compatible(op.Type, ip.Type) {
		return fmt.Errorf("workflow %s: type mismatch %s.%s(%s) -> %s.%s(%s)",
			w.ID, srcModule, srcPort, op.Type, dstModule, dstPort, ip.Type)
	}
	for _, c := range w.Connections {
		if c.DstModule == dstModule && c.DstPort == dstPort {
			return fmt.Errorf("workflow %s: input %s.%s already connected", w.ID, dstModule, dstPort)
		}
	}
	w.Connections = append(w.Connections, Connection{
		SrcModule: srcModule, SrcPort: srcPort,
		DstModule: dstModule, DstPort: dstPort,
	})
	return nil
}

// Disconnect removes a connection by its full endpoint description. It
// reports whether a connection was removed.
func (w *Workflow) Disconnect(c Connection) bool {
	for i, have := range w.Connections {
		if have == c {
			w.Connections = append(w.Connections[:i], w.Connections[i+1:]...)
			return true
		}
	}
	return false
}

// Validate checks structural well-formedness: modules exist for every
// connection endpoint, ports exist with compatible types, no input port is
// fed twice, and the module graph is acyclic.
func (w *Workflow) Validate() error {
	seen := map[string]bool{}
	for _, m := range w.Modules {
		if m.ID == "" {
			return fmt.Errorf("workflow %s: module with empty ID", w.ID)
		}
		if seen[m.ID] {
			return fmt.Errorf("workflow %s: duplicate module %q", w.ID, m.ID)
		}
		seen[m.ID] = true
		ports := map[string]bool{}
		for _, p := range m.Inputs {
			if ports["in/"+p.Name] {
				return fmt.Errorf("workflow %s: module %q duplicate input port %q", w.ID, m.ID, p.Name)
			}
			ports["in/"+p.Name] = true
		}
		for _, p := range m.Outputs {
			if ports["out/"+p.Name] {
				return fmt.Errorf("workflow %s: module %q duplicate output port %q", w.ID, m.ID, p.Name)
			}
			ports["out/"+p.Name] = true
		}
	}
	fed := map[string]bool{}
	for _, c := range w.Connections {
		src := w.Module(c.SrcModule)
		dst := w.Module(c.DstModule)
		if src == nil || dst == nil {
			return fmt.Errorf("workflow %s: dangling connection %s", w.ID, c.Key())
		}
		op := src.OutputPort(c.SrcPort)
		ip := dst.InputPort(c.DstPort)
		if op == nil || ip == nil {
			return fmt.Errorf("workflow %s: connection %s references missing port", w.ID, c.Key())
		}
		if !Compatible(op.Type, ip.Type) {
			return fmt.Errorf("workflow %s: connection %s type mismatch (%s vs %s)", w.ID, c.Key(), op.Type, ip.Type)
		}
		k := c.DstModule + "." + c.DstPort
		if fed[k] {
			return fmt.Errorf("workflow %s: input %s fed by multiple connections", w.ID, k)
		}
		fed[k] = true
	}
	if !w.Graph().IsDAG() {
		return fmt.Errorf("workflow %s: module graph is cyclic", w.ID)
	}
	return nil
}

// Graph converts the workflow into a generic directed graph: one node per
// module (Kind = module type) and one edge per connection (Label =
// "srcPort->dstPort").
func (w *Workflow) Graph() *graph.Graph {
	g := graph.New()
	for _, m := range w.Modules {
		_ = g.AddNode(graph.Node{
			ID:    graph.NodeID(m.ID),
			Label: m.Name,
			Kind:  m.Type,
		})
	}
	for _, c := range w.Connections {
		_ = g.AddEdge(graph.Edge{
			Src:   graph.NodeID(c.SrcModule),
			Dst:   graph.NodeID(c.DstModule),
			Label: c.SrcPort + "->" + c.DstPort,
		})
	}
	return g
}

// TopoOrder returns module IDs in deterministic topological order.
func (w *Workflow) TopoOrder() ([]string, error) {
	order, err := w.Graph().TopoSort()
	if err != nil {
		return nil, fmt.Errorf("workflow %s: %w", w.ID, err)
	}
	out := make([]string, len(order))
	for i, id := range order {
		out[i] = string(id)
	}
	return out, nil
}

// Upstream returns the IDs of all modules the given module transitively
// depends on, sorted.
func (w *Workflow) Upstream(moduleID string) []string {
	return sortedIDs(w.Graph().Ancestors(graph.NodeID(moduleID)))
}

// Downstream returns the IDs of all modules transitively depending on the
// given module, sorted.
func (w *Workflow) Downstream(moduleID string) []string {
	return sortedIDs(w.Graph().Reachable(graph.NodeID(moduleID)))
}

func sortedIDs(set map[graph.NodeID]bool) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, string(id))
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the workflow.
func (w *Workflow) Clone() *Workflow {
	cp := &Workflow{
		ID:          w.ID,
		Name:        w.Name,
		Connections: append([]Connection(nil), w.Connections...),
		Annotations: copyMap(w.Annotations),
	}
	cp.Modules = make([]*Module, len(w.Modules))
	for i, m := range w.Modules {
		cp.Modules[i] = m.Clone()
	}
	return cp
}

// Annotate attaches a user-defined annotation to the workflow itself.
// Annotations are the user-defined provenance of §2.2: information that
// cannot be captured automatically.
func (w *Workflow) Annotate(key, value string) {
	if w.Annotations == nil {
		w.Annotations = map[string]string{}
	}
	w.Annotations[key] = value
}

// AnnotateModule attaches an annotation to a module. It returns an error if
// the module does not exist.
func (w *Workflow) AnnotateModule(moduleID, key, value string) error {
	m := w.Module(moduleID)
	if m == nil {
		return fmt.Errorf("workflow %s: module %q not found", w.ID, moduleID)
	}
	if m.Annotations == nil {
		m.Annotations = map[string]string{}
	}
	m.Annotations[key] = value
	return nil
}

// ContentHash returns a hex SHA-256 digest of the canonical form of the
// workflow structure (modules, ports, params, connections — not annotations
// or display names). Two workflows with identical computational meaning hash
// identically; the hash is the workflow's identity in retrospective
// provenance records.
func (w *Workflow) ContentHash() string {
	var b strings.Builder
	mods := make([]*Module, len(w.Modules))
	copy(mods, w.Modules)
	sort.Slice(mods, func(i, j int) bool { return mods[i].ID < mods[j].ID })
	for _, m := range mods {
		fmt.Fprintf(&b, "module %s type=%s\n", m.ID, m.Type)
		for _, k := range sortedKeys(m.Params) {
			fmt.Fprintf(&b, "  param %s=%s\n", k, m.Params[k])
		}
		for _, p := range m.Inputs {
			fmt.Fprintf(&b, "  in %s:%s\n", p.Name, p.Type)
		}
		for _, p := range m.Outputs {
			fmt.Fprintf(&b, "  out %s:%s\n", p.Name, p.Type)
		}
	}
	conns := make([]Connection, len(w.Connections))
	copy(conns, w.Connections)
	sort.Slice(conns, func(i, j int) bool { return conns[i].Key() < conns[j].Key() })
	for _, c := range conns {
		fmt.Fprintf(&b, "conn %s\n", c.Key())
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetParam sets a parameter on a module, creating the map if needed.
func (w *Workflow) SetParam(moduleID, key, value string) error {
	m := w.Module(moduleID)
	if m == nil {
		return fmt.Errorf("workflow %s: module %q not found", w.ID, moduleID)
	}
	if m.Params == nil {
		m.Params = map[string]string{}
	}
	m.Params[key] = value
	return nil
}

// Stats summarizes the prospective provenance of a workflow: the numbers
// reported in experiment E1.
type Stats struct {
	Modules     int
	Connections int
	Params      int
	Annotations int
	Depth       int
}

// Stat computes summary statistics.
func (w *Workflow) Stat() Stats {
	s := Stats{Modules: len(w.Modules), Connections: len(w.Connections), Annotations: len(w.Annotations)}
	for _, m := range w.Modules {
		s.Params += len(m.Params)
		s.Annotations += len(m.Annotations)
	}
	if layers, err := w.Graph().Layers(); err == nil {
		s.Depth = len(layers)
	}
	return s
}
