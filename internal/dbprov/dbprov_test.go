package dbprov

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/relalg"
	"repro/internal/workflow"
)

// buildAnalysisWorkflow models §2.4's scenario: data selected from a
// database, joined with data from another database, aggregated, and used
// in an analysis. genes(gene, organism) ⋈ studies(g, study), filtered to
// human, grouped by study.
func buildAnalysisWorkflow(t *testing.T) *workflow.Workflow {
	t.Helper()
	genes, err := SourceModule("genesDB", Source{
		Name:   "genes",
		Schema: []string{"gene", "organism"},
		Rows: [][]relalg.Val{
			{"brca1", "human"},
			{"tp53", "human"},
			{"sonic", "mouse"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	studies, err := SourceModule("studiesDB", Source{
		Name:   "studies",
		Schema: []string{"g", "study"},
		Rows: [][]relalg.Val{
			{"brca1", "S1"},
			{"tp53", "S1"},
			{"tp53", "S2"},
			{"sonic", "S3"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wf := workflow.New("analysis", "db-analysis")
	for _, m := range []*workflow.Module{genes, studies} {
		if err := wf.AddModule(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []*workflow.Module{
		{
			ID: "selectHuman", Name: "selectHuman", Type: "RelSelect",
			Params:  map[string]string{"column": "organism", "equals": "human"},
			Inputs:  []workflow.Port{{Name: "in", Type: TypeRelation}},
			Outputs: []workflow.Port{{Name: "out", Type: TypeRelation}},
		},
		{
			ID: "joinStudies", Name: "joinStudies", Type: "RelJoin",
			Params:  map[string]string{"leftCol": "gene", "rightCol": "g"},
			Inputs:  []workflow.Port{{Name: "left", Type: TypeRelation}, {Name: "right", Type: TypeRelation}},
			Outputs: []workflow.Port{{Name: "out", Type: TypeRelation}},
		},
		{
			ID: "countPerStudy", Name: "countPerStudy", Type: "RelGroupBy",
			Params:  map[string]string{"key": "study", "agg": "count"},
			Inputs:  []workflow.Port{{Name: "in", Type: TypeRelation}},
			Outputs: []workflow.Port{{Name: "out", Type: TypeRelation}},
		},
	} {
		if err := wf.AddModule(m); err != nil {
			t.Fatal(err)
		}
	}
	mustConnect := func(sm, sp, dm, dp string) {
		t.Helper()
		if err := wf.Connect(sm, sp, dm, dp); err != nil {
			t.Fatal(err)
		}
	}
	mustConnect("genesDB", "out", "selectHuman", "in")
	mustConnect("selectHuman", "out", "joinStudies", "left")
	mustConnect("studiesDB", "out", "joinStudies", "right")
	mustConnect("joinStudies", "out", "countPerStudy", "in")
	if err := wf.Validate(); err != nil {
		t.Fatal(err)
	}
	return wf
}

func runAnalysis(t *testing.T) (*engine.Result, *provenance.RunLog, *workflow.Workflow) {
	t.Helper()
	reg := engine.NewRegistry()
	RegisterRelationalModules(reg)
	col := provenance.NewCollector()
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
	wf := buildAnalysisWorkflow(t)
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != provenance.StatusOK {
		t.Fatalf("run failed: %v", res.Failed)
	}
	log, _ := col.Log(res.RunID)
	return res, log, wf
}

func TestRelationalWorkflowComputes(t *testing.T) {
	res, _, _ := runAnalysis(t)
	v, err := res.Output("countPerStudy", "out")
	if err != nil {
		t.Fatal(err)
	}
	rel := v.Data.(*relalg.Relation)
	// Human genes: brca1, tp53. Joined: brca1×S1, tp53×S1, tp53×S2.
	// Counts: S1 -> 2, S2 -> 1.
	if rel.Len() != 2 {
		t.Fatalf("result:\n%s", rel)
	}
	counts := map[string]int64{}
	for _, tup := range rel.Tuples {
		counts[tup.Values[0].(string)] = tup.Values[1].(int64)
	}
	if counts["S1"] != 2 || counts["S2"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTupleLineageUnifiesLevels(t *testing.T) {
	res, log, wf := runAnalysis(t)
	u, err := TupleLineage(res, log, wf, "countPerStudy", "study", "S1")
	if err != nil {
		t.Fatal(err)
	}
	// Tuple level: S1's count of 2 is witnessed by brca1, tp53 gene rows
	// and the two S1 study rows.
	if len(u.BaseTuples) != 4 {
		t.Fatalf("base tuples = %v", u.BaseTuples)
	}
	baseStr := make([]string, len(u.BaseTuples))
	for i, id := range u.BaseTuples {
		baseStr[i] = string(id)
	}
	joined := strings.Join(baseStr, " ")
	if !strings.Contains(joined, "genes:0") || !strings.Contains(joined, "genes:1") {
		t.Fatalf("gene witnesses missing: %v", baseStr)
	}
	if strings.Contains(joined, "genes:2") {
		t.Fatal("mouse gene wrongly in lineage")
	}
	if !strings.Contains(joined, "studies:0") || !strings.Contains(joined, "studies:1") {
		t.Fatalf("study witnesses missing: %v", baseStr)
	}
	if strings.Contains(joined, "studies:3") {
		t.Fatal("S3 row wrongly in lineage")
	}
	// Workflow level: the module path covers sources through groupby.
	path := strings.Join(u.ModulePath, ",")
	if !strings.Contains(path, "genesDB") || !strings.Contains(path, "joinStudies") ||
		!strings.HasSuffix(path, "countPerStudy") {
		t.Fatalf("module path = %v", u.ModulePath)
	}
	// Both source DBs are relevant for S1.
	rel := u.RelevantSources()
	if len(rel) != 2 || rel[0] != "genesDB" || rel[1] != "studiesDB" {
		t.Fatalf("relevant sources = %v", rel)
	}
}

func TestTupleLineageS2NarrowerThanWorkflowLineage(t *testing.T) {
	res, log, wf := runAnalysis(t)
	u, err := TupleLineage(res, log, wf, "countPerStudy", "study", "S2")
	if err != nil {
		t.Fatal(err)
	}
	// S2 is witnessed only by tp53 and the S2 study row: 2 base tuples —
	// strictly narrower than the workflow-level lineage, which includes
	// both whole source relations.
	if len(u.BaseTuples) != 2 {
		t.Fatalf("S2 base tuples = %v", u.BaseTuples)
	}
	if len(u.ModulePath) != 5 { // 2 sources + select + join + groupby
		t.Fatalf("module path = %v", u.ModulePath)
	}
}

func TestTupleLineageMissingTuple(t *testing.T) {
	res, log, wf := runAnalysis(t)
	if _, err := TupleLineage(res, log, wf, "countPerStudy", "study", "S99"); err == nil {
		t.Fatal("missing tuple accepted")
	}
	if _, err := TupleLineage(res, log, wf, "ghostModule", "study", "S1"); err == nil {
		t.Fatal("missing module accepted")
	}
}

func TestSourceModuleValidation(t *testing.T) {
	if _, err := SourceModule("s", Source{Name: "r", Schema: []string{"a"},
		Rows: [][]relalg.Val{{int64(1), int64(2)}}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := SourceModule("s", Source{Name: "r", Schema: []string{"a"},
		Rows: [][]relalg.Val{{"x,y"}}}); err == nil {
		t.Fatal("separator in value accepted")
	}
}

func TestRelSourceParamErrors(t *testing.T) {
	reg := engine.NewRegistry()
	RegisterRelationalModules(reg)
	e := engine.New(engine.Options{Registry: reg})
	wf := workflow.New("bad", "bad")
	if err := wf.AddModule(&workflow.Module{
		ID: "src", Name: "src", Type: "RelSource",
		Outputs: []workflow.Port{{Name: "out", Type: TypeRelation}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 {
		t.Fatal("RelSource without params succeeded")
	}
}

func TestUnionModule(t *testing.T) {
	reg := engine.NewRegistry()
	RegisterRelationalModules(reg)
	e := engine.New(engine.Options{Registry: reg})
	a, err := SourceModule("a", Source{Name: "a", Schema: []string{"x"}, Rows: [][]relalg.Val{{"k"}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SourceModule("b", Source{Name: "b", Schema: []string{"x"}, Rows: [][]relalg.Val{{"k"}, {"m"}}})
	if err != nil {
		t.Fatal(err)
	}
	wf := workflow.New("u", "u")
	for _, m := range []*workflow.Module{a, b, {
		ID: "union", Name: "union", Type: "RelUnion",
		Inputs:  []workflow.Port{{Name: "left", Type: TypeRelation}, {Name: "right", Type: TypeRelation}},
		Outputs: []workflow.Port{{Name: "out", Type: TypeRelation}},
	}} {
		if err := wf.AddModule(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.Connect("a", "out", "union", "left"); err != nil {
		t.Fatal(err)
	}
	if err := wf.Connect("b", "out", "union", "right"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Output("union", "out")
	rel := v.Data.(*relalg.Relation)
	if rel.Len() != 2 {
		t.Fatalf("union:\n%s", rel)
	}
	// "k" has two alternative witnesses (a:0 or b:0).
	ws, _ := relalg.WhyProvenance(rel, "x", "k")
	if len(ws) != 2 {
		t.Fatalf("k witnesses = %v", ws)
	}
}

func TestParseVal(t *testing.T) {
	if v := parseVal("42"); v != int64(42) {
		t.Fatalf("int: %v (%T)", v, v)
	}
	if v := parseVal("3.5"); v != 3.5 {
		t.Fatalf("float: %v", v)
	}
	if v := parseVal("true"); v != true {
		t.Fatalf("bool: %v", v)
	}
	if v := parseVal("hello"); v != "hello" {
		t.Fatalf("string: %v", v)
	}
}
