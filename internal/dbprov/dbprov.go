// Package dbprov addresses the paper's final open problem (§2.4):
// connecting database and workflow provenance. "Data is selected from a
// database, potentially joined with data from other databases, reformatted,
// and used in an analysis" — to understand a result one must connect
// tuple-level provenance (why-provenance inside relational operators) with
// workflow-level provenance (which module executions produced which
// artifacts).
//
// The package treats relational operators as workflow modules (the
// "framework in which database operators and workflow modules can be
// treated uniformly"): relations flow along connections as ordinary data
// products, every operator preserves why-provenance witnesses
// (internal/relalg), and TupleLineage stitches both levels into one answer.
package dbprov

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/relalg"
	"repro/internal/workflow"
)

// TypeRelation is the dataflow type tag for relational values.
const TypeRelation = "relation"

// RegisterRelationalModules registers the relational-algebra module types:
//
//	RelSource:  params name, schema ("a,b,c"), rows ("1,x;2,y") — emits a
//	            base relation with why-provenance initialized
//	RelSelect:  input "in"; params column, equals
//	RelProject: input "in"; params columns ("a,b")
//	RelJoin:    inputs "left", "right"; params leftCol, rightCol
//	RelGroupBy: input "in"; params key, agg (count|sum|min|max|avg), aggCol
//	RelUnion:   inputs "left", "right"
//
// All emit output port "out" carrying *relalg.Relation.
func RegisterRelationalModules(r *engine.Registry) {
	r.Register("RelSource", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		name := ec.Param("name", "")
		if name == "" {
			return nil, fmt.Errorf("RelSource: name parameter required")
		}
		schema := splitList(ec.Param("schema", ""))
		if len(schema) == 0 {
			return nil, fmt.Errorf("RelSource: schema parameter required")
		}
		var rows [][]relalg.Val
		rowsSpec := ec.Param("rows", "")
		if rowsSpec != "" {
			for _, line := range strings.Split(rowsSpec, ";") {
				fields := strings.Split(line, ",")
				row := make([]relalg.Val, len(fields))
				for i, f := range fields {
					row[i] = parseVal(strings.TrimSpace(f))
				}
				rows = append(rows, row)
			}
		}
		rel, err := relalg.NewRelation(name, schema, rows)
		if err != nil {
			return nil, err
		}
		return relOut(rel), nil
	})

	r.Register("RelSelect", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		rel, err := relIn(ec, "in")
		if err != nil {
			return nil, err
		}
		pred, err := relalg.Eq(rel, ec.Param("column", ""), parseVal(ec.Param("equals", "")))
		if err != nil {
			return nil, err
		}
		return relOut(relalg.Select(rel, pred)), nil
	})

	r.Register("RelProject", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		rel, err := relIn(ec, "in")
		if err != nil {
			return nil, err
		}
		out, err := relalg.Project(rel, splitList(ec.Param("columns", ""))...)
		if err != nil {
			return nil, err
		}
		return relOut(out), nil
	})

	r.Register("RelJoin", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		l, err := relIn(ec, "left")
		if err != nil {
			return nil, err
		}
		rr, err := relIn(ec, "right")
		if err != nil {
			return nil, err
		}
		out, err := relalg.Join(l, rr, ec.Param("leftCol", ""), ec.Param("rightCol", ""))
		if err != nil {
			return nil, err
		}
		return relOut(out), nil
	})

	r.Register("RelGroupBy", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		rel, err := relIn(ec, "in")
		if err != nil {
			return nil, err
		}
		out, err := relalg.GroupBy(rel, ec.Param("key", ""),
			relalg.AggFunc(ec.Param("agg", "count")), ec.Param("aggCol", ""))
		if err != nil {
			return nil, err
		}
		return relOut(out), nil
	})

	r.Register("RelUnion", func(ec *engine.ExecContext) (map[string]engine.Value, error) {
		l, err := relIn(ec, "left")
		if err != nil {
			return nil, err
		}
		rr, err := relIn(ec, "right")
		if err != nil {
			return nil, err
		}
		out, err := relalg.Union(l, rr)
		if err != nil {
			return nil, err
		}
		return relOut(out), nil
	})
}

func relIn(ec *engine.ExecContext, port string) (*relalg.Relation, error) {
	v, err := ec.Input(port)
	if err != nil {
		return nil, err
	}
	rel, ok := v.Data.(*relalg.Relation)
	if !ok {
		return nil, fmt.Errorf("module %s: input %q is %T, want *relalg.Relation", ec.ModuleID, port, v.Data)
	}
	return rel, nil
}

func relOut(rel *relalg.Relation) map[string]engine.Value {
	return map[string]engine.Value{"out": {Type: TypeRelation, Data: rel}}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// parseVal interprets a literal as int64, float64, bool or string.
func parseVal(s string) relalg.Val {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return b
	}
	return s
}

// Source declares a base relation for SourceModule.
type Source struct {
	Name   string
	Schema []string
	Rows   [][]relalg.Val
}

// SourceModule builds a RelSource workflow module (and its params) for a
// base relation.
func SourceModule(id string, src Source) (*workflow.Module, error) {
	var rows []string
	for _, row := range src.Rows {
		if len(row) != len(src.Schema) {
			return nil, fmt.Errorf("dbprov: source %s row arity mismatch", src.Name)
		}
		fields := make([]string, len(row))
		for i, v := range row {
			s := fmt.Sprintf("%v", v)
			if strings.ContainsAny(s, ",;") {
				return nil, fmt.Errorf("dbprov: value %q contains a list separator", s)
			}
			fields[i] = s
		}
		rows = append(rows, strings.Join(fields, ","))
	}
	return &workflow.Module{
		ID: id, Name: id, Type: "RelSource",
		Params: map[string]string{
			"name":   src.Name,
			"schema": strings.Join(src.Schema, ","),
			"rows":   strings.Join(rows, ";"),
		},
		Outputs: []workflow.Port{{Name: "out", Type: TypeRelation}},
	}, nil
}

// UnifiedLineage is the answer to "where did this output tuple come from?",
// spanning both provenance levels (§2.4's goal).
type UnifiedLineage struct {
	// Tuple-level: the why-provenance witnesses of the tuple, and the flat
	// set of base tuple IDs they mention.
	Witnesses  []relalg.Witness
	BaseTuples []relalg.TupleID
	// SourceModules maps base relation names to the workflow module that
	// introduced them.
	SourceModules map[string]string
	// Workflow-level: module IDs on the causal path from the sources to
	// the queried artifact, in causal order.
	ModulePath []string
	// ArtifactID of the relation value holding the tuple.
	ArtifactID string
}

// TupleLineage computes the unified lineage of the first tuple in the
// output relation of `moduleID` (port "out") whose column `col` equals
// `val`. It needs the run's result (for values and artifact IDs) and log
// (for the causal graph).
func TupleLineage(res *engine.Result, log *provenance.RunLog, wf *workflow.Workflow,
	moduleID, col string, val relalg.Val) (*UnifiedLineage, error) {

	v, err := res.Output(moduleID, "out")
	if err != nil {
		return nil, err
	}
	rel, ok := v.Data.(*relalg.Relation)
	if !ok {
		return nil, fmt.Errorf("dbprov: output of %s is %T, want relation", moduleID, v.Data)
	}
	ws, err := relalg.WhyProvenance(rel, col, val)
	if err != nil {
		return nil, err
	}
	if ws == nil {
		return nil, fmt.Errorf("dbprov: no tuple with %s = %v in %s.out", col, val, moduleID)
	}
	u := &UnifiedLineage{
		Witnesses:     ws,
		BaseTuples:    relalg.AllBaseTuples(ws),
		SourceModules: map[string]string{},
		ArtifactID:    res.Artifacts[moduleID+".out"],
	}
	// Map base relation names to source modules.
	for _, m := range wf.Modules {
		if m.Type == "RelSource" {
			u.SourceModules[m.Params["name"]] = m.ID
		}
	}
	// Workflow-level path: causal lineage of the artifact, filtered to
	// executions, in causal order.
	cg, err := provenance.BuildCausalGraph(log)
	if err != nil {
		return nil, err
	}
	if u.ArtifactID != "" {
		recipe, err := cg.ReproductionRecipe(u.ArtifactID)
		if err != nil {
			return nil, err
		}
		u.ModulePath = recipe.ModuleIDs
	}
	return u, nil
}

// RelevantSources returns, for a unified lineage, only the source modules
// whose base tuples actually witness the output tuple — the tuple-level
// refinement of the workflow-level lineage (which necessarily includes
// every upstream module).
func (u *UnifiedLineage) RelevantSources() []string {
	names := map[string]bool{}
	for _, id := range u.BaseTuples {
		name := string(id)
		if i := strings.IndexByte(name, ':'); i > 0 {
			name = name[:i]
		}
		names[name] = true
	}
	var out []string
	for name := range names {
		if mod, ok := u.SourceModules[name]; ok {
			out = append(out, mod)
		}
	}
	sort.Strings(out)
	return out
}
