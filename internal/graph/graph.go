// Package graph provides the directed-graph substrate used throughout the
// provenance library: workflow specifications, causal provenance graphs,
// OPM graphs and version trees are all labeled directed graphs.
//
// The package favors deterministic iteration (sorted node and edge order) so
// that higher layers can produce stable serializations and tests can assert
// exact results.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are arbitrary non-empty
// strings chosen by the caller; the graph does not interpret them.
type NodeID string

// Node is a labeled graph vertex. Attrs carries arbitrary string metadata
// (e.g. module type, artifact hash); Label is a human-readable name.
type Node struct {
	ID    NodeID
	Label string
	Kind  string
	Attrs map[string]string
}

// Edge is a labeled directed edge from Src to Dst.
type Edge struct {
	Src   NodeID
	Dst   NodeID
	Label string
	Attrs map[string]string
}

// Graph is a mutable directed multigraph with labeled nodes and edges.
// The zero value is not usable; call New.
type Graph struct {
	nodes map[NodeID]*Node
	out   map[NodeID][]*Edge
	in    map[NodeID][]*Edge
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		out:   make(map[NodeID][]*Edge),
		in:    make(map[NodeID][]*Edge),
	}
}

// AddNode inserts a node. It returns an error if the ID is empty or already
// present.
func (g *Graph) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("graph: node ID must be non-empty")
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("graph: duplicate node %q", n.ID)
	}
	cp := n
	if n.Attrs != nil {
		cp.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			cp.Attrs[k] = v
		}
	}
	g.nodes[n.ID] = &cp
	return nil
}

// EnsureNode inserts the node if absent and returns whether it was added.
func (g *Graph) EnsureNode(n Node) bool {
	if _, ok := g.nodes[n.ID]; ok {
		return false
	}
	if err := g.AddNode(n); err != nil {
		return false
	}
	return true
}

// AddEdge inserts a directed edge. Both endpoints must exist.
func (g *Graph) AddEdge(e Edge) error {
	if _, ok := g.nodes[e.Src]; !ok {
		return fmt.Errorf("graph: edge source %q not found", e.Src)
	}
	if _, ok := g.nodes[e.Dst]; !ok {
		return fmt.Errorf("graph: edge destination %q not found", e.Dst)
	}
	cp := e
	if e.Attrs != nil {
		cp.Attrs = make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			cp.Attrs[k] = v
		}
	}
	g.out[e.Src] = append(g.out[e.Src], &cp)
	g.in[e.Dst] = append(g.in[e.Dst], &cp)
	g.edges++
	return nil
}

// RemoveNode deletes a node and all incident edges. It reports whether the
// node existed.
func (g *Graph) RemoveNode(id NodeID) bool {
	if _, ok := g.nodes[id]; !ok {
		return false
	}
	for _, e := range g.out[id] {
		g.in[e.Dst] = removeEdge(g.in[e.Dst], e)
		g.edges--
	}
	for _, e := range g.in[id] {
		g.out[e.Src] = removeEdge(g.out[e.Src], e)
		g.edges--
	}
	delete(g.out, id)
	delete(g.in, id)
	delete(g.nodes, id)
	return true
}

// RemoveEdge deletes the first edge matching src, dst and label. It reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(src, dst NodeID, label string) bool {
	for _, e := range g.out[src] {
		if e.Dst == dst && e.Label == label {
			g.out[src] = removeEdge(g.out[src], e)
			g.in[dst] = removeEdge(g.in[dst], e)
			g.edges--
			return true
		}
	}
	return false
}

func removeEdge(list []*Edge, target *Edge) []*Edge {
	for i, e := range list {
		if e == target {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id NodeID) bool { _, ok := g.nodes[id]; return ok }

// HasEdge reports whether at least one src→dst edge exists (any label).
func (g *Graph) HasEdge(src, dst NodeID) bool {
	for _, e := range g.out[src] {
		if e.Dst == dst {
			return true
		}
	}
	return false
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodeIDs returns all node IDs sorted.
func (g *Graph) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges sorted by (src, dst, label).
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, 0, g.edges)
	for _, list := range g.out {
		out = append(out, list...)
	}
	sortEdges(out)
	return out
}

func sortEdges(es []*Edge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Label < b.Label
	})
}

// Out returns outgoing edges of id sorted by (dst, label).
func (g *Graph) Out(id NodeID) []*Edge {
	out := make([]*Edge, len(g.out[id]))
	copy(out, g.out[id])
	sortEdges(out)
	return out
}

// In returns incoming edges of id sorted by (src, label).
func (g *Graph) In(id NodeID) []*Edge {
	in := make([]*Edge, len(g.in[id]))
	copy(in, g.in[id])
	sort.Slice(in, func(i, j int) bool {
		a, b := in[i], in[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Label < b.Label
	})
	return in
}

// Successors returns the distinct direct successors of id, sorted.
func (g *Graph) Successors(id NodeID) []NodeID {
	return distinctNeighbors(g.out[id], func(e *Edge) NodeID { return e.Dst })
}

// Predecessors returns the distinct direct predecessors of id, sorted.
func (g *Graph) Predecessors(id NodeID) []NodeID {
	return distinctNeighbors(g.in[id], func(e *Edge) NodeID { return e.Src })
}

func distinctNeighbors(es []*Edge, pick func(*Edge) NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(es))
	out := make([]NodeID, 0, len(es))
	for _, e := range es {
		id := pick(e)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InDegree returns the number of incoming edges.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// OutDegree returns the number of outgoing edges.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// Sources returns nodes with no incoming edges, sorted.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if len(g.in[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sinks returns nodes with no outgoing edges, sorted.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if len(g.out[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		_ = c.AddNode(*n)
	}
	for _, list := range g.out {
		for _, e := range list {
			_ = c.AddEdge(*e)
		}
	}
	return c
}

// Reverse returns a copy of the graph with all edges reversed.
func (g *Graph) Reverse() *Graph {
	r := New()
	for _, n := range g.nodes {
		_ = r.AddNode(*n)
	}
	for _, list := range g.out {
		for _, e := range list {
			rev := *e
			rev.Src, rev.Dst = e.Dst, e.Src
			_ = r.AddEdge(rev)
		}
	}
	return r
}

// Subgraph returns the induced subgraph on keep (nodes absent from g are
// ignored).
func (g *Graph) Subgraph(keep []NodeID) *Graph {
	set := make(map[NodeID]bool, len(keep))
	for _, id := range keep {
		set[id] = true
	}
	s := New()
	for id, n := range g.nodes {
		if set[id] {
			_ = s.AddNode(*n)
		}
	}
	for src, list := range g.out {
		if !set[src] {
			continue
		}
		for _, e := range list {
			if set[e.Dst] {
				_ = s.AddEdge(*e)
			}
		}
	}
	return s
}
