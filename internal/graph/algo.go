package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned by TopoSort when the graph contains a directed cycle.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns the nodes in a topological order. Ties are broken by node
// ID so the order is deterministic. It returns ErrCycle (wrapped with a
// witness node) if the graph is cyclic.
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.in[id])
	}
	// Min-heap behaviour via sorted frontier: fine at the scales we run.
	frontier := g.Sources()
	order := make([]NodeID, 0, len(g.nodes))
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		changed := false
		for _, e := range g.out[id] {
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				frontier = append(frontier, e.Dst)
				changed = true
			}
		}
		if changed {
			sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		}
	}
	if len(order) != len(g.nodes) {
		for id, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("%w (involving node %q)", ErrCycle, id)
			}
		}
		return nil, ErrCycle
	}
	return order, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Graph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Reachable returns the set of nodes reachable from start (excluding start
// itself unless it lies on a cycle through itself), following edges forward.
func (g *Graph) Reachable(start NodeID) map[NodeID]bool {
	return g.reach(start, g.out, func(e *Edge) NodeID { return e.Dst })
}

// Ancestors returns the set of nodes from which start is reachable.
func (g *Graph) Ancestors(start NodeID) map[NodeID]bool {
	return g.reach(start, g.in, func(e *Edge) NodeID { return e.Src })
}

func (g *Graph) reach(start NodeID, adj map[NodeID][]*Edge, pick func(*Edge) NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool)
	stack := []NodeID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[id] {
			n := pick(e)
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	delete(seen, start)
	return seen
}

// ReachableWithin returns nodes reachable from start in at most depth hops.
// depth < 0 means unbounded.
func (g *Graph) ReachableWithin(start NodeID, depth int) map[NodeID]bool {
	if depth < 0 {
		return g.Reachable(start)
	}
	seen := map[NodeID]bool{}
	frontier := []NodeID{start}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []NodeID
		for _, id := range frontier {
			for _, e := range g.out[id] {
				if e.Dst != start && !seen[e.Dst] {
					seen[e.Dst] = true
					next = append(next, e.Dst)
				}
			}
		}
		frontier = next
	}
	return seen
}

// Path returns one shortest directed path from src to dst (inclusive), or
// nil if none exists.
func (g *Graph) Path(src, dst NodeID) []NodeID {
	if src == dst {
		if g.HasNode(src) {
			return []NodeID{src}
		}
		return nil
	}
	prev := map[NodeID]NodeID{}
	seen := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, next := range g.Successors(id) {
			if seen[next] {
				continue
			}
			seen[next] = true
			prev[next] = id
			if next == dst {
				return rebuild(prev, src, dst)
			}
			queue = append(queue, next)
		}
	}
	return nil
}

func rebuild(prev map[NodeID]NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		at = prev[at]
	}
	out := make([]NodeID, len(rev))
	for i, id := range rev {
		out[len(rev)-1-i] = id
	}
	return out
}

// AllPaths returns every simple directed path from src to dst, each as a node
// sequence. limit bounds the number of paths returned (limit <= 0 means
// unbounded); use a limit on dense graphs.
func (g *Graph) AllPaths(src, dst NodeID, limit int) [][]NodeID {
	var out [][]NodeID
	onPath := map[NodeID]bool{}
	var path []NodeID
	var dfs func(NodeID) bool
	dfs = func(at NodeID) bool {
		path = append(path, at)
		onPath[at] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[at] = false
		}()
		if at == dst {
			cp := make([]NodeID, len(path))
			copy(cp, path)
			out = append(out, cp)
			return limit > 0 && len(out) >= limit
		}
		for _, next := range g.Successors(at) {
			if onPath[next] {
				continue
			}
			if dfs(next) {
				return true
			}
		}
		return false
	}
	dfs(src)
	return out
}

// TransitiveClosure returns, for every node, the set of nodes reachable from
// it. Computed in reverse topological order for DAGs; falls back to per-node
// DFS for cyclic graphs.
func (g *Graph) TransitiveClosure() map[NodeID]map[NodeID]bool {
	closure := make(map[NodeID]map[NodeID]bool, len(g.nodes))
	order, err := g.TopoSort()
	if err != nil {
		for id := range g.nodes {
			closure[id] = g.Reachable(id)
		}
		return closure
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		set := make(map[NodeID]bool)
		for _, succ := range g.Successors(id) {
			set[succ] = true
			for k := range closure[succ] {
				set[k] = true
			}
		}
		closure[id] = set
	}
	return closure
}

// TransitiveReduction returns a copy of a DAG with every edge (u,v) removed
// when an alternative u→…→v path exists. Useful for rendering dense
// derivation graphs. Returns an error on cyclic input.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if !g.IsDAG() {
		return nil, ErrCycle
	}
	closure := g.TransitiveClosure()
	r := New()
	for _, n := range g.nodes {
		_ = r.AddNode(*n)
	}
	for _, e := range g.Edges() {
		redundant := false
		for _, mid := range g.Successors(e.Src) {
			if mid != e.Dst && closure[mid][e.Dst] {
				redundant = true
				break
			}
		}
		if !redundant {
			_ = r.AddEdge(*e)
		}
	}
	return r, nil
}

// Layers partitions a DAG into levels: layer 0 holds sources and each node
// is placed one past its deepest predecessor. Returns an error on cycles.
func (g *Graph) Layers() ([][]NodeID, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	depth := make(map[NodeID]int, len(order))
	maxDepth := 0
	for _, id := range order {
		d := 0
		for _, p := range g.Predecessors(id) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	layers := make([][]NodeID, maxDepth+1)
	for _, id := range order {
		layers[depth[id]] = append(layers[depth[id]], id)
	}
	return layers, nil
}

// WeaklyConnectedComponents returns the node sets of each weakly connected
// component, each sorted, with components ordered by their smallest node ID.
func (g *Graph) WeaklyConnectedComponents() [][]NodeID {
	seen := map[NodeID]bool{}
	var comps [][]NodeID
	for _, id := range g.NodeIDs() {
		if seen[id] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{id}
		seen[id] = true
		for len(stack) > 0 {
			at := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, at)
			for _, n := range g.Successors(at) {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
			for _, n := range g.Predecessors(at) {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}
