package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNode(t *testing.T, g *Graph, id string) {
	t.Helper()
	if err := g.AddNode(Node{ID: NodeID(id), Kind: "k"}); err != nil {
		t.Fatalf("AddNode(%q): %v", id, err)
	}
}

func mustEdge(t *testing.T, g *Graph, src, dst string) {
	t.Helper()
	if err := g.AddEdge(Edge{Src: NodeID(src), Dst: NodeID(dst)}); err != nil {
		t.Fatalf("AddEdge(%q→%q): %v", src, dst, err)
	}
}

// diamond builds a→b, a→c, b→d, c→d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		mustNode(t, g, id)
	}
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "a", "c")
	mustEdge(t, g, "b", "d")
	mustEdge(t, g, "c", "d")
	return g
}

func TestAddNodeValidation(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{ID: ""}); err == nil {
		t.Fatal("empty ID accepted")
	}
	mustNode(t, g, "a")
	if err := g.AddNode(Node{ID: "a"}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestAddEdgeRequiresEndpoints(t *testing.T) {
	g := New()
	mustNode(t, g, "a")
	if err := g.AddEdge(Edge{Src: "a", Dst: "missing"}); err == nil {
		t.Fatal("edge to missing node accepted")
	}
	if err := g.AddEdge(Edge{Src: "missing", Dst: "a"}); err == nil {
		t.Fatal("edge from missing node accepted")
	}
}

func TestCountsAndNeighbors(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges, want 4/4", g.NumNodes(), g.NumEdges())
	}
	succ := g.Successors("a")
	if len(succ) != 2 || succ[0] != "b" || succ[1] != "c" {
		t.Fatalf("Successors(a) = %v", succ)
	}
	pred := g.Predecessors("d")
	if len(pred) != 2 || pred[0] != "b" || pred[1] != "c" {
		t.Fatalf("Predecessors(d) = %v", pred)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("Sinks = %v", got)
	}
}

func TestRemoveNodeCleansEdges(t *testing.T) {
	g := diamond(t)
	if !g.RemoveNode("b") {
		t.Fatal("RemoveNode(b) = false")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("after removal: %d nodes %d edges, want 3/2", g.NumNodes(), g.NumEdges())
	}
	if g.HasEdge("a", "b") || g.HasEdge("b", "d") {
		t.Fatal("edges incident to removed node survive")
	}
	if g.RemoveNode("b") {
		t.Fatal("second RemoveNode(b) = true")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := diamond(t)
	if !g.RemoveEdge("a", "b", "") {
		t.Fatal("RemoveEdge(a,b) = false")
	}
	if g.HasEdge("a", "b") {
		t.Fatal("edge still present")
	}
	if g.RemoveEdge("a", "b", "") {
		t.Fatal("RemoveEdge twice = true")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("order violates edge %s→%s: %v", e.Src, e.Dst, order)
		}
	}
	// Deterministic tie-break: b before c.
	if pos["b"] > pos["c"] {
		t.Fatalf("tie-break not by ID: %v", order)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	mustNode(t, g, "a")
	mustNode(t, g, "b")
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "a")
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if g.IsDAG() {
		t.Fatal("IsDAG on cycle = true")
	}
}

func TestReachableAndAncestors(t *testing.T) {
	g := diamond(t)
	r := g.Reachable("a")
	if len(r) != 3 || !r["b"] || !r["c"] || !r["d"] {
		t.Fatalf("Reachable(a) = %v", r)
	}
	an := g.Ancestors("d")
	if len(an) != 3 || !an["a"] || !an["b"] || !an["c"] {
		t.Fatalf("Ancestors(d) = %v", an)
	}
	if len(g.Reachable("d")) != 0 {
		t.Fatal("sink has successors")
	}
}

func TestReachableWithin(t *testing.T) {
	g := diamond(t)
	r := g.ReachableWithin("a", 1)
	if len(r) != 2 || !r["b"] || !r["c"] {
		t.Fatalf("depth-1 = %v", r)
	}
	r = g.ReachableWithin("a", 2)
	if len(r) != 3 {
		t.Fatalf("depth-2 = %v", r)
	}
	if got := g.ReachableWithin("a", -1); len(got) != 3 {
		t.Fatalf("unbounded = %v", got)
	}
}

func TestPath(t *testing.T) {
	g := diamond(t)
	p := g.Path("a", "d")
	if len(p) != 3 || p[0] != "a" || p[2] != "d" {
		t.Fatalf("Path(a,d) = %v", p)
	}
	if p := g.Path("d", "a"); p != nil {
		t.Fatalf("Path(d,a) = %v, want nil", p)
	}
	if p := g.Path("a", "a"); len(p) != 1 {
		t.Fatalf("Path(a,a) = %v", p)
	}
}

func TestAllPaths(t *testing.T) {
	g := diamond(t)
	paths := g.AllPaths("a", "d", 0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	limited := g.AllPaths("a", "d", 1)
	if len(limited) != 1 {
		t.Fatalf("limit ignored: %v", limited)
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := diamond(t)
	tc := g.TransitiveClosure()
	if !tc["a"]["d"] || !tc["b"]["d"] || len(tc["d"]) != 0 {
		t.Fatalf("closure wrong: %v", tc)
	}
	if tc["a"]["a"] {
		t.Fatal("node reaches itself in a DAG closure")
	}
}

func TestTransitiveReduction(t *testing.T) {
	g := diamond(t)
	mustEdge(t, g, "a", "d") // redundant shortcut
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.HasEdge("a", "d") {
		t.Fatal("redundant edge a→d survives reduction")
	}
	if r.NumEdges() != 4 {
		t.Fatalf("reduced edges = %d, want 4", r.NumEdges())
	}
}

func TestLayers(t *testing.T) {
	g := diamond(t)
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 3 {
		t.Fatalf("got %d layers, want 3", len(layers))
	}
	if layers[0][0] != "a" || layers[2][0] != "d" {
		t.Fatalf("layers = %v", layers)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := diamond(t)
	mustNode(t, g, "x")
	mustNode(t, g, "y")
	mustEdge(t, g, "x", "y")
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if len(comps[0]) != 4 || len(comps[1]) != 2 {
		t.Fatalf("component sizes %d/%d", len(comps[0]), len(comps[1]))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.RemoveNode("a")
	if !g.HasNode("a") || g.NumEdges() != 4 {
		t.Fatal("clone mutation affected original")
	}
}

func TestReverse(t *testing.T) {
	g := diamond(t)
	r := g.Reverse()
	if !r.HasEdge("b", "a") || r.HasEdge("a", "b") {
		t.Fatal("reverse edges wrong")
	}
	if got := r.Sources(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("reverse sources = %v", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := diamond(t)
	s := g.Subgraph([]NodeID{"a", "b", "d", "zz"})
	if s.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", s.NumNodes())
	}
	if !s.HasEdge("a", "b") || !s.HasEdge("b", "d") || s.HasEdge("a", "c") {
		t.Fatal("induced edges wrong")
	}
}

func TestAttrsAreCopied(t *testing.T) {
	g := New()
	attrs := map[string]string{"k": "v"}
	if err := g.AddNode(Node{ID: "a", Attrs: attrs}); err != nil {
		t.Fatal(err)
	}
	attrs["k"] = "mutated"
	if g.Node("a").Attrs["k"] != "v" {
		t.Fatal("node attrs alias caller map")
	}
}

func TestMatchDiamondInLarger(t *testing.T) {
	pat := New()
	for _, id := range []string{"p", "q"} {
		if err := pat.AddNode(Node{ID: NodeID(id), Kind: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pat.AddEdge(Edge{Src: "p", Dst: "q"}); err != nil {
		t.Fatal(err)
	}
	g := diamond(t)
	ms := Match(pat, g, MatchOptions{})
	if len(ms) != 4 {
		t.Fatalf("got %d embeddings, want 4 (one per edge): %v", len(ms), ms)
	}
	for _, m := range ms {
		if !g.HasEdge(m["p"], m["q"]) {
			t.Fatalf("embedding %v has no target edge", m)
		}
	}
}

func TestMatchRespectsKind(t *testing.T) {
	pat := New()
	if err := pat.AddNode(Node{ID: "p", Kind: "special"}); err != nil {
		t.Fatal(err)
	}
	g := diamond(t) // all kind "k"
	if ms := Match(pat, g, MatchOptions{}); ms != nil {
		t.Fatalf("kind mismatch matched: %v", ms)
	}
}

func TestMatchInjective(t *testing.T) {
	pat := New()
	for _, id := range []string{"p", "q"} {
		if err := pat.AddNode(Node{ID: NodeID(id), Kind: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	g := New()
	if err := g.AddNode(Node{ID: "only", Kind: "k"}); err != nil {
		t.Fatal(err)
	}
	if ms := Match(pat, g, MatchOptions{}); ms != nil {
		t.Fatalf("non-injective embedding returned: %v", ms)
	}
}

func TestMatchEdgeLabels(t *testing.T) {
	pat := New()
	_ = pat.AddNode(Node{ID: "p", Kind: "k"})
	_ = pat.AddNode(Node{ID: "q", Kind: "k"})
	_ = pat.AddEdge(Edge{Src: "p", Dst: "q", Label: "used"})
	g := New()
	_ = g.AddNode(Node{ID: "x", Kind: "k"})
	_ = g.AddNode(Node{ID: "y", Kind: "k"})
	_ = g.AddEdge(Edge{Src: "x", Dst: "y", Label: "generated"})
	if ms := Match(pat, g, MatchOptions{EdgeLabelsMustMatch: true}); ms != nil {
		t.Fatalf("label mismatch matched: %v", ms)
	}
	if ms := Match(pat, g, MatchOptions{}); len(ms) != 1 {
		t.Fatalf("label-insensitive match failed: %v", ms)
	}
}

func TestMatchLimit(t *testing.T) {
	pat := New()
	_ = pat.AddNode(Node{ID: "p", Kind: "k"})
	g := diamond(t)
	if ms := Match(pat, g, MatchOptions{Limit: 2}); len(ms) != 2 {
		t.Fatalf("limit 2 returned %d", len(ms))
	}
}

func TestSimilaritySelfIsOne(t *testing.T) {
	g := diamond(t)
	if s := Similarity(g, g); s != 1 {
		t.Fatalf("self-similarity = %v", s)
	}
}

func TestSimilarityDisjointKindsIsZero(t *testing.T) {
	a := New()
	_ = a.AddNode(Node{ID: "1", Kind: "x"})
	b := New()
	_ = b.AddNode(Node{ID: "1", Kind: "y"})
	if s := Similarity(a, b); s != 0 {
		t.Fatalf("similarity = %v, want 0", s)
	}
}

func randomDAG(r *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		_ = g.AddNode(Node{ID: NodeID(fmt.Sprintf("n%03d", i)), Kind: "k"})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(4) == 0 {
				_ = g.AddEdge(Edge{
					Src: NodeID(fmt.Sprintf("n%03d", i)),
					Dst: NodeID(fmt.Sprintf("n%03d", j)),
				})
			}
		}
	}
	return g
}

// Property: any graph whose edges only go from lower to higher index is a
// DAG and TopoSort respects every edge.
func TestQuickTopoSortProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[NodeID]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.Src] >= pos[e.Dst] {
				return false
			}
		}
		return len(order) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transitive reduction preserves reachability.
func TestQuickReductionPreservesReachability(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%15) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		r, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		want := g.TransitiveClosure()
		got := r.TransitiveClosure()
		for id, set := range want {
			if len(set) != len(got[id]) {
				return false
			}
			for k := range set {
				if !got[id][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ancestors in g equals Reachable in the reversed graph.
func TestQuickAncestorsMatchesReverseReachable(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		rev := g.Reverse()
		for _, id := range g.NodeIDs() {
			a := g.Ancestors(id)
			b := rev.Reachable(id)
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
