package graph

import "sort"

// MatchOptions controls subgraph matching.
type MatchOptions struct {
	// NodeMatches decides whether a pattern node may map to a target node.
	// nil means kinds must be equal.
	NodeMatches func(pattern, target *Node) bool
	// EdgeLabelsMustMatch requires edge labels to be equal.
	EdgeLabelsMustMatch bool
	// Limit bounds the number of embeddings returned (<= 0: unbounded).
	Limit int
}

// Match finds embeddings of pattern into target: injective node mappings
// under which every pattern edge has a corresponding target edge. It is a
// backtracking (VF2-style) matcher; patterns are expected to be small
// workflow fragments.
func Match(pattern, target *Graph, opt MatchOptions) []map[NodeID]NodeID {
	nodeOK := opt.NodeMatches
	if nodeOK == nil {
		nodeOK = func(p, t *Node) bool { return p.Kind == t.Kind }
	}
	pids := pattern.NodeIDs()
	if len(pids) == 0 {
		return nil
	}
	// Order pattern nodes so each (after the first) is adjacent to an
	// already-placed node when possible: cuts the search space hard.
	pids = connectivityOrder(pattern, pids)

	// Candidate lists per pattern node.
	cands := make(map[NodeID][]NodeID, len(pids))
	for _, pid := range pids {
		pn := pattern.Node(pid)
		var list []NodeID
		for _, tn := range target.Nodes() {
			if nodeOK(pn, tn) &&
				target.InDegree(tn.ID) >= pattern.InDegree(pid) &&
				target.OutDegree(tn.ID) >= pattern.OutDegree(pid) {
				list = append(list, tn.ID)
			}
		}
		if len(list) == 0 {
			return nil
		}
		cands[pid] = list
	}

	var results []map[NodeID]NodeID
	mapping := make(map[NodeID]NodeID, len(pids))
	used := make(map[NodeID]bool)

	edgeOK := func(psrc, pdst NodeID) bool {
		tsrc, okS := mapping[psrc]
		tdst, okD := mapping[pdst]
		if !okS || !okD {
			return true // endpoint not yet placed; defer the check
		}
		if !opt.EdgeLabelsMustMatch {
			return target.HasEdge(tsrc, tdst)
		}
		for _, pe := range pattern.Out(psrc) {
			if pe.Dst != pdst {
				continue
			}
			found := false
			for _, te := range target.Out(tsrc) {
				if te.Dst == tdst && te.Label == pe.Label {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}

	var place func(i int) bool
	place = func(i int) bool {
		if i == len(pids) {
			cp := make(map[NodeID]NodeID, len(mapping))
			for k, v := range mapping {
				cp[k] = v
			}
			results = append(results, cp)
			return opt.Limit > 0 && len(results) >= opt.Limit
		}
		pid := pids[i]
		for _, tid := range cands[pid] {
			if used[tid] {
				continue
			}
			mapping[pid] = tid
			used[tid] = true
			consistent := true
			for _, e := range pattern.Out(pid) {
				if !edgeOK(pid, e.Dst) {
					consistent = false
					break
				}
			}
			if consistent {
				for _, e := range pattern.In(pid) {
					if !edgeOK(e.Src, pid) {
						consistent = false
						break
					}
				}
			}
			if consistent && place(i+1) {
				return true
			}
			delete(mapping, pid)
			delete(used, tid)
		}
		return false
	}
	place(0)
	return results
}

func connectivityOrder(g *Graph, ids []NodeID) []NodeID {
	placed := map[NodeID]bool{}
	var order []NodeID
	remaining := append([]NodeID(nil), ids...)
	for len(remaining) > 0 {
		best := -1
		bestAdj := -1
		for i, id := range remaining {
			adj := 0
			for _, n := range g.Successors(id) {
				if placed[n] {
					adj++
				}
			}
			for _, n := range g.Predecessors(id) {
				if placed[n] {
					adj++
				}
			}
			// Prefer adjacency to placed nodes, then higher degree.
			deg := g.InDegree(id) + g.OutDegree(id)
			score := adj*1000 + deg
			if score > bestAdj {
				bestAdj = score
				best = i
			}
		}
		id := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		placed[id] = true
		order = append(order, id)
	}
	return order
}

// Similarity computes a structural similarity in [0,1] between two graphs
// based on shared node kinds and shared (srcKind, label, dstKind) edge
// signatures (Jaccard over multisets). It is the scoring primitive for
// analogy-based workflow refinement.
func Similarity(a, b *Graph) float64 {
	na := kindCounts(a)
	nb := kindCounts(b)
	ea := edgeSignatures(a)
	eb := edgeSignatures(b)
	nodeSim := multisetJaccard(na, nb)
	edgeSim := multisetJaccard(ea, eb)
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return nodeSim
	}
	return 0.5*nodeSim + 0.5*edgeSim
}

func kindCounts(g *Graph) map[string]int {
	m := map[string]int{}
	for _, n := range g.Nodes() {
		m[n.Kind]++
	}
	return m
}

func edgeSignatures(g *Graph) map[string]int {
	m := map[string]int{}
	for _, e := range g.Edges() {
		src, dst := g.Node(e.Src), g.Node(e.Dst)
		m[src.Kind+"|"+e.Label+"|"+dst.Kind]++
	}
	return m
}

func multisetJaccard(a, b map[string]int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	inter, union := 0, 0
	for k := range keys {
		x, y := a[k], b[k]
		if x < y {
			inter += x
			union += y
		} else {
			inter += y
			union += x
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// SortedKeys returns the keys of a string-keyed count map in sorted order.
// Exported for reuse by higher layers that report signature histograms.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
