package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("payload-", 64))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	srv := testServer(t)
	tr := New(nil, Options{Seed: 1})
	hc := tr.Client()

	if _, err := hc.Get(srv.URL); err != nil {
		t.Fatalf("pre-partition request failed: %v", err)
	}
	tr.Partition()
	if _, err := hc.Get(srv.URL); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned request: got %v, want ErrPartitioned", err)
	}
	tr.Heal()
	if _, err := hc.Get(srv.URL); err != nil {
		t.Fatalf("post-heal request failed: %v", err)
	}
	if st := tr.Stats(); st.Partitioned != 1 || st.Requests != 3 {
		t.Fatalf("stats = %+v, want 1 partitioned of 3 requests", st)
	}
}

func TestErrorInjection(t *testing.T) {
	srv := testServer(t)
	tr := New(nil, Options{Seed: 7, ErrorRate: 1})
	if _, err := tr.Client().Get(srv.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if st := tr.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 injected error", st)
	}
}

func TestTruncationYieldsUnexpectedEOF(t *testing.T) {
	srv := testServer(t)
	tr := New(nil, Options{Seed: 3, TruncateRate: 1})
	resp, err := tr.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("request failed: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("body read: got err %v, want io.ErrUnexpectedEOF", err)
	}
	full := len(strings.Repeat("payload-", 64))
	if len(data) == 0 || len(data) >= full {
		t.Fatalf("truncated body length %d, want a strict non-empty prefix of %d", len(data), full)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	srv := testServer(t)
	run := func() []bool {
		tr := New(nil, Options{Seed: 42, ErrorRate: 0.5})
		hc := tr.Client()
		var outcomes []bool
		for i := 0; i < 32; i++ {
			_, err := hc.Get(srv.URL)
			outcomes = append(outcomes, errors.Is(err, ErrInjected))
		}
		return outcomes
	}
	a, b := run(), run()
	var flips int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d with the same seed", i)
		}
		if a[i] {
			flips++
		}
	}
	if flips == 0 || flips == len(a) {
		t.Fatalf("error rate 0.5 injected %d/%d — schedule looks degenerate", flips, len(a))
	}
}
