// Package faultinject wraps an http.RoundTripper with deterministic,
// seed-scheduled fault injection: transport errors, added latency,
// truncated response bodies, and hard partitions. The chaos tests drive
// replication through it to prove the failover layer's claims — the
// same seed always yields the same fault schedule, so a failing run is
// reproducible by its seed alone.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the transport error injected with probability
// Options.ErrorRate; callers distinguish it from real failures with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected transport error")

// ErrPartitioned fails every request between Partition and Heal.
var ErrPartitioned = errors.New("faultinject: link partitioned")

// Options configures a Transport's fault schedule. Rates are
// probabilities in [0,1] drawn per request from the seeded source; a
// zero Options injects nothing.
type Options struct {
	// Seed fixes the fault schedule; the same seed and request sequence
	// produce the same faults.
	Seed int64
	// ErrorRate is the probability a request fails with ErrInjected
	// before reaching the base transport.
	ErrorRate float64
	// LatencyRate is the probability a request sleeps Latency first
	// (cancelled early if the request's context ends).
	LatencyRate float64
	// Latency is the injected delay (default 5ms when LatencyRate > 0).
	Latency time.Duration
	// TruncateRate is the probability a successful response body is cut
	// short: readers see a prefix then io.ErrUnexpectedEOF, the shape a
	// connection dropped mid-body produces.
	TruncateRate float64
}

// Stats counts what a Transport actually injected.
type Stats struct {
	Requests    uint64
	Errors      uint64
	Latencies   uint64
	Truncations uint64
	Partitioned uint64 // requests refused while partitioned
}

// Transport is the fault-injecting http.RoundTripper. Safe for
// concurrent use; the seeded schedule is serialized by an internal
// lock, so concurrency changes interleaving but not the per-request
// draw sequence semantics.
type Transport struct {
	base http.RoundTripper
	opt  Options

	mu  sync.Mutex
	rng *rand.Rand

	partitioned atomic.Bool

	requests    atomic.Uint64
	errorsN     atomic.Uint64
	latencies   atomic.Uint64
	truncations atomic.Uint64
	partRefused atomic.Uint64
}

// New wraps base (nil: http.DefaultTransport) with the fault schedule
// opt describes.
func New(base http.RoundTripper, opt Options) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if opt.Latency <= 0 {
		opt.Latency = 5 * time.Millisecond
	}
	return &Transport{base: base, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Client returns an http.Client using the transport, for handing to
// api.NewClient or replica.Options.Client.
func (t *Transport) Client() *http.Client { return &http.Client{Transport: t} }

// Partition makes every subsequent request fail with ErrPartitioned
// until Heal — the hard network split, as opposed to the probabilistic
// faults.
func (t *Transport) Partition() { t.partitioned.Store(true) }

// Heal ends a partition.
func (t *Transport) Heal() { t.partitioned.Store(false) }

// Partitioned reports whether the link is currently partitioned.
func (t *Transport) Partitioned() bool { return t.partitioned.Load() }

// Stats snapshots the injection counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:    t.requests.Load(),
		Errors:      t.errorsN.Load(),
		Latencies:   t.latencies.Load(),
		Truncations: t.truncations.Load(),
		Partitioned: t.partRefused.Load(),
	}
}

// draw returns the three per-request fault decisions in one locked
// pass, keeping the schedule a pure function of the seed and the
// request ordinal.
func (t *Transport) draw() (injErr, injLat, injTrunc bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	injErr = t.opt.ErrorRate > 0 && t.rng.Float64() < t.opt.ErrorRate
	injLat = t.opt.LatencyRate > 0 && t.rng.Float64() < t.opt.LatencyRate
	injTrunc = t.opt.TruncateRate > 0 && t.rng.Float64() < t.opt.TruncateRate
	return
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	if t.partitioned.Load() {
		t.partRefused.Add(1)
		return nil, fmt.Errorf("%w: %s %s", ErrPartitioned, req.Method, req.URL.Path)
	}
	injErr, injLat, injTrunc := t.draw()
	if injLat {
		t.latencies.Add(1)
		select {
		case <-time.After(t.opt.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if injErr {
		t.errorsN.Add(1)
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if injTrunc && resp.Body != nil && resp.StatusCode/100 == 2 {
		t.truncations.Add(1)
		resp.Body = truncateBody(resp.Body)
	}
	return resp, nil
}

// truncateBody reads the whole body, closes it, and replaces it with a
// reader that serves half the bytes then fails with unexpected EOF —
// what a peer that died mid-response looks like to the client.
func truncateBody(body io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(body)
	body.Close()
	return &truncatedReader{data: data[:len(data)/2]}
}

type truncatedReader struct {
	data []byte
	off  int
}

func (r *truncatedReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *truncatedReader) Close() error { return nil }
