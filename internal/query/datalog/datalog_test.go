package datalog

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/workloads"
)

func TestParseAtom(t *testing.T) {
	a, err := ParseAtom("dep(X, 'art-1')")
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred != "dep" || len(a.Args) != 2 {
		t.Fatalf("atom = %+v", a)
	}
	if !a.Args[0].IsVar || a.Args[0].Value != "X" {
		t.Fatalf("arg0 = %+v", a.Args[0])
	}
	if a.Args[1].IsVar || a.Args[1].Value != "art-1" {
		t.Fatalf("arg1 = %+v", a.Args[1])
	}
	if _, err := ParseAtom("no parens"); err == nil {
		t.Fatal("malformed atom parsed")
	}
	if _, err := ParseAtom("(x)"); err == nil {
		t.Fatal("empty predicate parsed")
	}
}

func TestParseTermForms(t *testing.T) {
	cases := []struct {
		in    string
		isVar bool
		val   string
	}{
		{"X", true, "X"},
		{"Xyz", true, "Xyz"},
		{"?x", true, "x"},
		{"_", true, "_"},
		{"abc", false, "abc"},
		{"'Quoted Const'", false, "Quoted Const"},
		{"42", false, "42"},
	}
	for _, c := range cases {
		got := parseTerm(c.in)
		if got.IsVar != c.isVar || got.Value != c.val {
			t.Fatalf("parseTerm(%q) = %+v", c.in, got)
		}
	}
}

func TestParseProgramFactsAndRules(t *testing.T) {
	p, err := ParseProgram(`
% genealogy
parent(alice, bob).
parent(bob, carol).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.FactCount("parent") != 2 {
		t.Fatalf("parent facts = %d", p.FactCount("parent"))
	}
	res, err := p.Query(mustAtom(t, "ancestor(alice, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "bob" || res.Rows[1][0] != "carol" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func mustAtom(t *testing.T, s string) Atom {
	t.Helper()
	a, err := ParseAtom(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRangeRestriction(t *testing.T) {
	p := NewProgram()
	r, err := ParseRule("bad(X, Y) :- parent(X, X)")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddRule(r); err == nil {
		t.Fatal("unbound head variable accepted")
	}
}

func TestArityChecking(t *testing.T) {
	p := NewProgram()
	if err := p.AddFact("f", "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFact("f", "a", "b"); err == nil {
		t.Fatal("arity drift accepted")
	}
}

func TestFactWithVariableRejected(t *testing.T) {
	if _, err := ParseProgram("f(X)."); err == nil {
		t.Fatal("fact with variable accepted")
	}
}

func TestTransitiveClosureChain(t *testing.T) {
	var src string
	n := 50
	for i := 0; i < n-1; i++ {
		src += fmt.Sprintf("edge(n%02d, n%02d).\n", i, i+1)
	}
	src += "reach(X, Y) :- edge(X, Y).\nreach(X, Z) :- edge(X, Y), reach(Y, Z).\n"
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query(mustAtom(t, "reach(n00, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n-1 {
		t.Fatalf("reachable = %d, want %d", len(res.Rows), n-1)
	}
}

func TestSharedVariableJoin(t *testing.T) {
	p, err := ParseProgram(`
uses(p1, a).
uses(p2, a).
uses(p3, b).
shares(X, Y) :- uses(X, A), uses(Y, A).
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query(mustAtom(t, "shares(p1, X)"))
	if err != nil {
		t.Fatal(err)
	}
	// p1 shares with p1 and p2 (both use a), not p3.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestConstantInQueryFilters(t *testing.T) {
	p, err := ParseProgram("f(a, one). f(b, two). f(a, three).")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query(mustAtom(t, "f(a, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRepeatedVariableInQuery(t *testing.T) {
	p, err := ParseProgram("e(x, x). e(x, y).")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query(mustAtom(t, "e(X, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// provenanceStore runs Figure 1 and stores the log.
func provenanceStore(t *testing.T) (store.Store, *engine.Result) {
	t.Helper()
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 1})
	res, err := e.Run(context.Background(), workloads.MedicalImaging(), nil)
	if err != nil {
		t.Fatal(err)
	}
	log, _ := col.Log(res.RunID)
	s := store.NewMemStore()
	if err := s.PutRunLog(log); err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestProvenanceProgramLineage(t *testing.T) {
	s, res := provenanceStore(t)
	p, err := NewProvenanceProgram(s)
	if err != nil {
		t.Fatal(err)
	}
	image := res.Artifacts["render.image"]
	q := mustAtom(t, fmt.Sprintf("ancestor('%s', X)", image))
	resq, err := p.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// image <- render <- surface <- contour <- grid <- reader: 5 ancestors.
	if len(resq.Rows) != 5 {
		t.Fatalf("ancestors = %v", resq.Rows)
	}
	// Cross-check against the store's native BFS.
	native, err := store.Lineage(s, image)
	if err != nil {
		t.Fatal(err)
	}
	if len(native) != len(resq.Rows) {
		t.Fatalf("datalog %d vs native %d", len(resq.Rows), len(native))
	}
}

func TestAncestorQueryViaStoreMatchesFixpoint(t *testing.T) {
	s, res := provenanceStore(t)
	p, err := NewProvenanceProgram(s)
	if err != nil {
		t.Fatal(err)
	}
	image := res.Artifacts["render.image"]
	grid := res.Artifacts["reader.data"]
	for _, q := range []string{
		fmt.Sprintf("ancestor('%s', X)", image), // upstream closure
		fmt.Sprintf("ancestor(X, '%s')", grid),  // downstream closure
		"ancestor('no-such-entity', X)",         // unknown constant: empty
	} {
		atom := mustAtom(t, q)
		want, err := p.Query(atom)
		if err != nil {
			t.Fatal(err)
		}
		got, pushed, err := AncestorQueryViaStore(s, atom)
		if err != nil || !pushed {
			t.Fatalf("%s: pushed=%v err=%v", q, pushed, err)
		}
		if fmt.Sprint(got.Vars) != fmt.Sprint(want.Vars) || fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Fatalf("%s:\npushed-down %v %v\nfixpoint    %v %v", q, got.Vars, got.Rows, want.Vars, want.Rows)
		}
	}
	// Non-closure shapes fall back to the fixpoint.
	for _, q := range []string{"ancestor(X, Y)", "used(E, A)", "ancestor(a, b)"} {
		if _, pushed, _ := AncestorQueryViaStore(s, mustAtom(t, q)); pushed {
			t.Fatalf("%s: unexpectedly pushed down", q)
		}
	}
}

func TestProvenanceProgramDerivedFrom(t *testing.T) {
	s, res := provenanceStore(t)
	p, err := NewProvenanceProgram(s)
	if err != nil {
		t.Fatal(err)
	}
	q := mustAtom(t, fmt.Sprintf("derivedFrom(X, '%s')", res.Artifacts["reader.data"]))
	resq, err := p.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// plot, hist and surface are one step from grid.
	if len(resq.Rows) != 3 {
		t.Fatalf("derivedFrom grid = %v", resq.Rows)
	}
}

func TestProvenanceProgramSameSource(t *testing.T) {
	s, res := provenanceStore(t)
	p, err := NewProvenanceProgram(s)
	if err != nil {
		t.Fatal(err)
	}
	q := mustAtom(t, fmt.Sprintf("sameSource('%s', X)",
		res.Artifacts["histogram.plot"]))
	resq, err := p.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// plot, hist and surface all derive from the grid in one step.
	want := map[string]bool{
		res.Artifacts["histogram.plot"]:  true,
		res.Artifacts["histogram.hist"]:  true,
		res.Artifacts["contour.surface"]: true,
	}
	if len(resq.Rows) != len(want) {
		t.Fatalf("sameSource = %v", resq.Rows)
	}
	for _, row := range resq.Rows {
		if !want[row[0]] {
			t.Fatalf("unexpected sameSource member %v", row)
		}
	}
}

func TestQueryArityMismatch(t *testing.T) {
	p, _ := ParseProgram("f(a, b).")
	if _, err := p.Query(mustAtom(t, "f(X)")); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestEvaluateIdempotent(t *testing.T) {
	p, _ := ParseProgram("e(a, b). e(b, c). r(X,Y) :- e(X,Y). r(X,Z) :- e(X,Y), r(Y,Z).")
	first := p.Evaluate()
	if first == 0 {
		t.Fatal("nothing derived")
	}
	if second := p.Evaluate(); second != 0 {
		t.Fatalf("second evaluation derived %d new facts", second)
	}
}
