package datalog

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/shardedstore"
	"repro/internal/workloads"
)

func equivStores(t *testing.T) []store.Store {
	t.Helper()
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 2, Agent: "equiv"})
	mem := store.NewMemStore()
	sharded := shardedstore.NewMem(4)
	for _, wf := range []func() (string, error){
		func() (string, error) {
			r, err := e.Run(context.Background(), workloads.MedicalImaging(), nil)
			if err != nil {
				return "", err
			}
			return r.RunID, nil
		},
		func() (string, error) {
			r, err := e.Run(context.Background(), workloads.Genomics("sample-1"), nil)
			if err != nil {
				return "", err
			}
			return r.RunID, nil
		},
		func() (string, error) {
			r, err := e.Run(context.Background(), workloads.Forecasting("station-A"), nil)
			if err != nil {
				return "", err
			}
			return r.RunID, nil
		},
	} {
		runID, err := wf()
		if err != nil {
			t.Fatal(err)
		}
		log, err := col.Log(runID)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		if err := sharded.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
	}
	return []store.Store{mem, sharded}
}

func queryRows(t *testing.T, p *Program, atom string) [][]string {
	t.Helper()
	a, err := ParseAtom(atom)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query(a)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

// TestStreamingFixpointMatchesReference pins the relalg-backed semi-naive
// evaluator to the reference evaluator over real provenance from both a
// MemStore and a 4-shard router: same derived-fact count at fixpoint and
// identical sorted answers for a battery of query atoms, including the
// recursive ancestor closure.
func TestStreamingFixpointMatchesReference(t *testing.T) {
	atoms := []string{
		"dep(X, Y)",
		"ancestor(X, Y)",
		"derivedFrom(A, B)",
		"sameSource(A, B)",
		"sameSource(A, A)",
		"ancestor(X, X)",
	}
	for si, s := range equivStores(t) {
		ref, err := NewProvenanceProgram(s)
		if err != nil {
			t.Fatal(err)
		}
		ref.ReferenceEval = true
		str, err := NewProvenanceProgram(s)
		if err != nil {
			t.Fatal(err)
		}
		nref := ref.Evaluate()
		nstr := str.Evaluate()
		if nref != nstr {
			t.Fatalf("store %d: derived %d (streaming) vs %d (reference)", si, nstr, nref)
		}
		for _, atom := range atoms {
			want := queryRows(t, ref, atom)
			got := queryRows(t, str, atom)
			if len(want) != len(got) {
				t.Fatalf("store %d %s: %d rows vs %d", si, atom, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if want[i][j] != got[i][j] {
						t.Fatalf("store %d %s: row %d: %v vs %v", si, atom, i, got[i], want[i])
					}
				}
			}
		}
		// Bound-argument ancestor queries agree too (and with the
		// store-pushdown path, which bypasses the fixpoint entirely).
		for _, row := range queryRows(t, ref, "generated(E, A)") {
			atom := fmt.Sprintf("ancestor('%s', Y)", row[1])
			want := queryRows(t, ref, atom)
			got := queryRows(t, str, atom)
			if len(want) != len(got) {
				t.Fatalf("store %d %s: %d rows vs %d", si, atom, len(got), len(want))
			}
			a, err := ParseAtom(atom)
			if err != nil {
				t.Fatal(err)
			}
			pushed, ok, err := AncestorQueryViaStore(s, a)
			if err != nil || !ok {
				t.Fatalf("store %d %s: pushdown ok=%v err=%v", si, atom, ok, err)
			}
			if len(pushed.Rows) != len(want) {
				t.Fatalf("store %d %s: pushdown %d rows vs %d", si, atom, len(pushed.Rows), len(want))
			}
			break // one bound probe per store keeps the test fast
		}
	}
}

// TestStreamingFixpointRandomGraphs cross-checks the two evaluators on
// randomized reachability programs, exercising recursion, constants in
// rule bodies and repeated head variables.
func TestStreamingFixpointRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rules := `
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- edge(X, Y), reach(Y, Z).
loop(X) :- reach(X, X).
from0(Y) :- reach(n0, Y).
pair(X, X) :- edge(X, X).
`
	for iter := 0; iter < 30; iter++ {
		nodes := 3 + rng.Intn(5)
		edges := make([][2]string, 0, nodes*2)
		for i := 0; i < nodes*2; i++ {
			edges = append(edges, [2]string{
				fmt.Sprintf("n%d", rng.Intn(nodes)),
				fmt.Sprintf("n%d", rng.Intn(nodes)),
			})
		}
		build := func(refMode bool) *Program {
			p, err := ParseProgram(rules)
			if err != nil {
				t.Fatal(err)
			}
			p.ReferenceEval = refMode
			for _, e := range edges {
				if err := p.AddFact("edge", e[0], e[1]); err != nil {
					t.Fatal(err)
				}
			}
			return p
		}
		ref, str := build(true), build(false)
		if nr, ns := ref.Evaluate(), str.Evaluate(); nr != ns {
			t.Fatalf("iter %d: derived %d (streaming) vs %d (reference)", iter, ns, nr)
		}
		for _, atom := range []string{"reach(X, Y)", "loop(X)", "from0(Y)", "pair(X, Y)", "reach(X, n1)"} {
			want := queryRows(t, ref, atom)
			got := queryRows(t, str, atom)
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("iter %d %s:\n got %v\nwant %v", iter, atom, got, want)
			}
		}
	}
}
