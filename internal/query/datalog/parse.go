package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseProgram parses newline- or period-separated rules and facts:
//
//	dep(a, b).
//	ancestor(X, Y) :- dep(X, Y).
//	ancestor(X, Z) :- dep(X, Y), ancestor(Y, Z).
//
// Comments start with '%' and run to end of line. Quoted constants
// ('art-0001') may contain any character except the quote.
func ParseProgram(src string) (*Program, error) {
	p := NewProgram()
	for _, clause := range splitClauses(src) {
		r, err := ParseRule(clause)
		if err != nil {
			return nil, err
		}
		if len(r.Body) == 0 {
			if err := addGroundFact(p, r.Head); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.AddRule(r); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func addGroundFact(p *Program, head Atom) error {
	vals := make([]string, len(head.Args))
	for i, t := range head.Args {
		if t.IsVar {
			return fmt.Errorf("datalog: fact %s contains variable %s", head, t.Value)
		}
		vals[i] = t.Value
	}
	return p.AddFact(head.Pred, vals...)
}

func splitClauses(src string) []string {
	var lines []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "%"); i >= 0 {
			line = line[:i]
		}
		lines = append(lines, line)
	}
	joined := strings.Join(lines, "\n")
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range joined {
		switch {
		case r == '\'':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == '.' && !inQuote:
			s := strings.TrimSpace(cur.String())
			if s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// ParseRule parses one clause without its trailing period.
func ParseRule(clause string) (Rule, error) {
	parts := strings.SplitN(clause, ":-", 2)
	head, err := ParseAtom(strings.TrimSpace(parts[0]))
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: head}
	if len(parts) == 2 {
		body, err := splitAtoms(parts[1])
		if err != nil {
			return Rule{}, err
		}
		for _, s := range body {
			a, err := ParseAtom(s)
			if err != nil {
				return Rule{}, err
			}
			r.Body = append(r.Body, a)
		}
	}
	return r, nil
}

// splitAtoms splits "a(X, Y), b(Y)" on top-level commas.
func splitAtoms(s string) ([]string, error) {
	var out []string
	depth := 0
	inQuote := false
	var cur strings.Builder
	for _, r := range s {
		switch {
		case r == '\'':
			inQuote = !inQuote
			cur.WriteRune(r)
		case inQuote:
			cur.WriteRune(r)
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("datalog: unbalanced parens in %q", s)
			}
			cur.WriteRune(r)
		case r == ',' && depth == 0:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if depth != 0 || inQuote {
		return nil, fmt.Errorf("datalog: unbalanced syntax in %q", s)
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out, nil
}

// ParseAtom parses predicate(arg, ...). A leading "?-" (query prompt) is
// tolerated and stripped.
func ParseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "?-"))
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("datalog: malformed atom %q", s)
	}
	pred := strings.TrimSpace(s[:open])
	if pred == "" {
		return Atom{}, fmt.Errorf("datalog: empty predicate in %q", s)
	}
	inner := s[open+1 : len(s)-1]
	args, err := splitAtoms(inner)
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: pred}
	for _, arg := range args {
		a.Args = append(a.Args, parseTerm(arg))
	}
	return a, nil
}

func parseTerm(s string) Term {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return Term{Value: s[1 : len(s)-1]}
	}
	if s == "" {
		return Term{Value: s}
	}
	first := rune(s[0])
	if first == '?' {
		return Term{Value: s[1:], IsVar: true}
	}
	if unicode.IsUpper(first) || first == '_' {
		return Term{Value: s, IsVar: true}
	}
	return Term{Value: s}
}
