package datalog

import (
	"repro/internal/relalg"
)

// This file is the streaming rule-body executor: semi-naive rounds compile
// each (rule, focus-atom) pair into a conjunctive plan over the relalg
// iterator layer — one leaf per body atom, the focus atom bound to the
// previous round's delta — and let the planner push constant/repeated-
// variable selections into the leaf scans and order the hash joins
// greedily (smallest relation first, bound-variable preference). The
// nested-loop joinBody evaluator in datalog.go stays as the conformance
// reference; both reach the same fixpoint and derived-fact count, since a
// fact is counted once no matter which round derives it.
//
// Each (rule, focus) pair's compiled shape — selections, bind positions,
// join order — is prepared once (relalg.PrepareConj) and cached on the
// Program, then rebound to the round's current relations per execution.
// Nothing invalidates the cache: plans carry no statistics, and rules are
// append-only.

// appendTuple mirrors a newly inserted fact into the planner's leaf
// relation for its predicate. Slices are append-only, so plans compiled
// earlier in a round keep their snapshot while later plans see the new
// facts — the same monotonic visibility the reference evaluator has.
func (p *Program) appendTuple(pred string, vals []string) {
	vs := make([]relalg.Val, len(vals))
	for i, v := range vals {
		vs[i] = v
	}
	p.rel[pred] = append(p.rel[pred], relalg.Tuple{Values: vs})
}

// evaluateStreaming is Evaluate's default engine.
func (p *Program) evaluateStreaming() int {
	derived := 0
	// delta holds the tuples new in the previous round, per predicate.
	delta := map[string][]relalg.Tuple{}
	for pred, tups := range p.rel {
		delta[pred] = tups
	}
	for {
		next := map[string][]relalg.Tuple{}
		for ri, r := range p.rules {
			for focus := range r.Body {
				if len(delta[r.Body[focus].Pred]) == 0 {
					continue
				}
				derived += p.runRule(ri, r, focus, delta, next)
			}
		}
		if len(next) == 0 {
			return derived
		}
		delta = next
	}
}

// planKey addresses one cached rule plan: rule index × focus-atom index.
type planKey struct {
	rule  int
	focus int
}

// rulePlan is one cached compilation: the rebindable plan plus the head
// projection derived from the rule. bad marks a shape PrepareConj
// rejected, so every round takes the joinBody fallback without retrying
// compilation.
type rulePlan struct {
	pc      *relalg.PreparedConj
	outVars []string
	varAt   map[string]int
	bad     bool
}

// preparedPlan returns the cached plan for (rule, focus), compiling on
// first use.
func (p *Program) preparedPlan(ri int, r Rule, focus int) *rulePlan {
	k := planKey{ri, focus}
	if rp, ok := p.plans[k]; ok {
		return rp
	}
	rp := &rulePlan{varAt: map[string]int{}}
	leaves := make([]relalg.Leaf, len(r.Body))
	for i, atom := range r.Body {
		terms := make([]relalg.PlanTerm, len(atom.Args))
		for j, t := range atom.Args {
			if t.IsVar {
				terms[j] = relalg.V(t.Value)
			} else {
				terms[j] = relalg.C(t.Value)
			}
		}
		// The focus leaf is compiled with the same shape as the rest; only
		// Bind distinguishes it, attaching the round's delta tuples. Tuple
		// counts at prepare time act solely as join-order tie-breaks.
		leaves[i] = relalg.Leaf{Name: atom.Pred, Terms: terms, Tuples: p.rel[atom.Pred]}
	}
	// Output: the distinct head variables, in head-argument order.
	for _, t := range r.Head.Args {
		if t.IsVar {
			if _, ok := rp.varAt[t.Value]; !ok {
				rp.varAt[t.Value] = len(rp.outVars)
				rp.outVars = append(rp.outVars, t.Value)
			}
		}
	}
	pc, err := relalg.PrepareConj(leaves, rp.outVars)
	if err != nil {
		// Compilation can only fail on malformed rules AddRule would have
		// rejected; fall back to the reference evaluator to be safe.
		rp.bad = true
	}
	rp.pc = pc
	if p.plans == nil {
		p.plans = map[planKey]*rulePlan{}
	}
	p.plans[k] = rp
	return rp
}

// runRule evaluates one rule with the focus atom bound to the delta,
// inserting novel head facts into the program and the next-round delta.
// Returns the number of new facts.
func (p *Program) runRule(ri int, r Rule, focus int, delta, next map[string][]relalg.Tuple) int {
	rp := p.preparedPlan(ri, r, focus)
	var plan *relalg.Plan
	if !rp.bad {
		tuples := make([][]relalg.Tuple, len(r.Body))
		for i, atom := range r.Body {
			if i == focus {
				tuples[i] = delta[atom.Pred]
			} else {
				tuples[i] = p.rel[atom.Pred]
			}
		}
		var err error
		plan, err = rp.pc.Bind(tuples, relalg.PlanOptions{})
		if err != nil {
			plan = nil
		}
	}
	if plan == nil {
		n := 0
		p.joinBody(r, focus, deltaKeys(delta), func(b binding) {
			vals := make([]string, len(r.Head.Args))
			for i, t := range r.Head.Args {
				if t.IsVar {
					vals[i] = b[t.Value]
				} else {
					vals[i] = t.Value
				}
			}
			n += p.insertDerived(r.Head.Pred, vals, next)
		})
		return n
	}
	n := 0
	_ = plan.Run(func(vals []relalg.Val, _ []relalg.Witness) error {
		out := make([]string, len(r.Head.Args))
		for i, t := range r.Head.Args {
			if t.IsVar {
				out[i] = vals[rp.varAt[t.Value]].(string)
			} else {
				out[i] = t.Value
			}
		}
		n += p.insertDerived(r.Head.Pred, out, next)
		return nil
	})
	return n
}

// insertDerived records a derived fact if novel, mirroring it into the
// planner relation and the next-round delta. Returns 1 on novelty.
func (p *Program) insertDerived(pred string, vals []string, next map[string][]relalg.Tuple) int {
	key := encodeTuple(vals)
	if p.facts[pred] == nil {
		p.facts[pred] = map[string]bool{}
	}
	if p.facts[pred][key] {
		return 0
	}
	p.facts[pred][key] = true
	p.appendTuple(pred, vals)
	tups := p.rel[pred]
	next[pred] = append(next[pred], tups[len(tups)-1])
	return 1
}

// deltaKeys re-encodes a tuple delta into the map form joinBody consumes.
func deltaKeys(delta map[string][]relalg.Tuple) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(delta))
	for pred, tups := range delta {
		m := make(map[string]bool, len(tups))
		for _, t := range tups {
			vals := make([]string, len(t.Values))
			for i, v := range t.Values {
				vals[i] = v.(string)
			}
			m[encodeTuple(vals)] = true
		}
		out[pred] = m
	}
	return out
}
