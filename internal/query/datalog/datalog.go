// Package datalog is a semi-naive Datalog engine: the Prolog-style
// declarative interface to provenance the paper cites ([8] queries
// collection-oriented provenance in Prolog). Recursive rules express
// lineage closure naturally:
//
//	ancestor(X, Y) :- dep(X, Y).
//	ancestor(X, Z) :- dep(X, Y), ancestor(Y, Z).
//
// Facts are loaded from provenance stores via LoadStore; rules and queries
// are parsed from text. Variables start with an uppercase letter or '?';
// everything else is a constant (quoting allows arbitrary strings).
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relalg"
)

// Term is a variable or constant inside an atom.
type Term struct {
	Value string
	IsVar bool
}

// Atom is predicate(t1, ..., tn).
type Atom struct {
	Pred string
	Args []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.Value
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Rule is head :- body. An empty body makes the rule a fact.
type Rule struct {
	Head Atom
	Body []Atom
}

// Program is a set of rules plus a base fact store.
type Program struct {
	rules []Rule
	facts map[string]map[string]bool // pred -> encoded tuple -> true
	arity map[string]int
	// rel mirrors facts as append-only tuple slices per predicate: the
	// planner's leaf relations (exec.go). Kept in lockstep with facts.
	rel map[string][]relalg.Tuple
	// plans caches each (rule, focus)'s prepared conjunctive plan across
	// semi-naive rounds and Evaluate calls (exec.go). Plans are
	// statistics-free — selection pushdown and join order depend only on
	// the rule's shape — so nothing ever invalidates an entry; rules are
	// append-only, keeping indexes stable.
	plans map[planKey]*rulePlan
	// ReferenceEval switches Evaluate to the original nested-loop
	// joinBody evaluator, kept as the conformance reference for the
	// streaming executor (see exec.go). Both reach the same fixpoint.
	ReferenceEval bool
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		facts: map[string]map[string]bool{},
		arity: map[string]int{},
		rel:   map[string][]relalg.Tuple{},
	}
}

const fieldSep = "\x00"

func encodeTuple(vals []string) string { return strings.Join(vals, fieldSep) }
func decodeTuple(s string) []string    { return strings.Split(s, fieldSep) }

// AddFact inserts a ground fact.
func (p *Program) AddFact(pred string, vals ...string) error {
	if err := p.checkArity(pred, len(vals)); err != nil {
		return err
	}
	m, ok := p.facts[pred]
	if !ok {
		m = map[string]bool{}
		p.facts[pred] = m
	}
	key := encodeTuple(vals)
	if !m[key] {
		m[key] = true
		p.appendTuple(pred, vals)
	}
	return nil
}

func (p *Program) checkArity(pred string, n int) error {
	if have, ok := p.arity[pred]; ok {
		if have != n {
			return fmt.Errorf("datalog: predicate %s used with arity %d and %d", pred, have, n)
		}
		return nil
	}
	p.arity[pred] = n
	return nil
}

// AddRule appends a rule after checking that every head variable is bound
// in the body (range restriction).
func (p *Program) AddRule(r Rule) error {
	if err := p.checkArity(r.Head.Pred, len(r.Head.Args)); err != nil {
		return err
	}
	bound := map[string]bool{}
	for _, b := range r.Body {
		if err := p.checkArity(b.Pred, len(b.Args)); err != nil {
			return err
		}
		for _, t := range b.Args {
			if t.IsVar {
				bound[t.Value] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.IsVar && !bound[t.Value] {
			return fmt.Errorf("datalog: head variable %s unbound in body of %s", t.Value, r.Head)
		}
	}
	p.rules = append(p.rules, r)
	return nil
}

// FactCount returns the number of stored facts for a predicate.
func (p *Program) FactCount(pred string) int { return len(p.facts[pred]) }

// binding maps variable names to constants.
type binding map[string]string

// Evaluate runs semi-naive bottom-up evaluation to fixpoint, materializing
// all derivable facts for rule-head predicates. It returns the total number
// of derived facts. By default each rule body is compiled into a streaming
// relational-algebra plan with greedy hash-join ordering (exec.go); set
// ReferenceEval for the original nested-loop evaluator.
func (p *Program) Evaluate() int {
	if !p.ReferenceEval {
		return p.evaluateStreaming()
	}
	return p.evaluateReference()
}

// evaluateReference is the original per-binding nested-loop semi-naive
// evaluator, retained as the conformance reference.
func (p *Program) evaluateReference() int {
	derived := 0
	// delta holds facts new in the previous iteration, per predicate.
	delta := map[string]map[string]bool{}
	for pred, m := range p.facts {
		delta[pred] = map[string]bool{}
		for k := range m {
			delta[pred][k] = true
		}
	}
	for {
		next := map[string]map[string]bool{}
		for _, r := range p.rules {
			// Semi-naive: for each body position, require that atom to match
			// the delta and the others the full store.
			for focus := range r.Body {
				if len(delta[r.Body[focus].Pred]) == 0 {
					continue
				}
				p.joinBody(r, focus, delta, func(b binding) {
					vals := make([]string, len(r.Head.Args))
					for i, t := range r.Head.Args {
						if t.IsVar {
							vals[i] = b[t.Value]
						} else {
							vals[i] = t.Value
						}
					}
					key := encodeTuple(vals)
					if p.facts[r.Head.Pred] == nil {
						p.facts[r.Head.Pred] = map[string]bool{}
					}
					if !p.facts[r.Head.Pred][key] {
						p.facts[r.Head.Pred][key] = true
						p.appendTuple(r.Head.Pred, vals)
						if next[r.Head.Pred] == nil {
							next[r.Head.Pred] = map[string]bool{}
						}
						next[r.Head.Pred][key] = true
						derived++
					}
				})
			}
		}
		if len(next) == 0 {
			return derived
		}
		delta = next
	}
}

// joinBody enumerates bindings satisfying the rule body, with the atom at
// index focus restricted to delta facts.
func (p *Program) joinBody(r Rule, focus int, delta map[string]map[string]bool, emit func(binding)) {
	var step func(i int, b binding)
	step = func(i int, b binding) {
		if i == len(r.Body) {
			emit(b)
			return
		}
		atom := r.Body[i]
		var source map[string]bool
		if i == focus {
			source = delta[atom.Pred]
		} else {
			source = p.facts[atom.Pred]
		}
		for key := range source {
			vals := decodeTuple(key)
			if len(vals) != len(atom.Args) {
				continue
			}
			nb, ok := unify(atom, vals, b)
			if !ok {
				continue
			}
			step(i+1, nb)
		}
	}
	step(0, binding{})
}

func unify(atom Atom, vals []string, b binding) (binding, bool) {
	nb := b
	copied := false
	for i, t := range atom.Args {
		if !t.IsVar {
			if t.Value != vals[i] {
				return nil, false
			}
			continue
		}
		if have, ok := nb[t.Value]; ok {
			if have != vals[i] {
				return nil, false
			}
			continue
		}
		if !copied {
			nb = make(binding, len(b)+1)
			for k, v := range b {
				nb[k] = v
			}
			copied = true
		}
		nb[t.Value] = vals[i]
	}
	return nb, true
}

// Query evaluates the program (if not already at fixpoint) and returns all
// bindings of the query atom's variables, as rows aligned with the order of
// first appearance of each variable; Vars lists that order.
type QueryResult struct {
	Vars []string
	Rows [][]string
}

// Query runs a query atom against the materialized program.
func (p *Program) Query(q Atom) (*QueryResult, error) {
	if have, ok := p.arity[q.Pred]; ok && have != len(q.Args) {
		return nil, fmt.Errorf("datalog: query arity mismatch for %s", q.Pred)
	}
	p.Evaluate()
	var vars []string
	seen := map[string]bool{}
	for _, t := range q.Args {
		if t.IsVar && !seen[t.Value] {
			seen[t.Value] = true
			vars = append(vars, t.Value)
		}
	}
	res := &QueryResult{Vars: vars}
	rowSet := map[string]bool{}
	for key := range p.facts[q.Pred] {
		vals := decodeTuple(key)
		if len(vals) != len(q.Args) {
			continue
		}
		b, ok := unify(q, vals, binding{})
		if !ok {
			continue
		}
		row := make([]string, len(vars))
		for i, v := range vars {
			row[i] = b[v]
		}
		k := encodeTuple(row)
		if !rowSet[k] {
			rowSet[k] = true
			res.Rows = append(res.Rows, row)
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return encodeTuple(res.Rows[i]) < encodeTuple(res.Rows[j])
	})
	return res, nil
}
