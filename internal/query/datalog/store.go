package datalog

import (
	"errors"
	"sort"

	"repro/internal/store"
)

// LoadStore loads base provenance facts from a store into a program,
// establishing the standard extensional schema the provenance rules
// (ProvenanceRules) are written against:
//
//	used(Exec, Artifact)        execution consumed artifact
//	generated(Exec, Artifact)   execution produced artifact
//	module(Exec, ModuleID)      execution instantiated module
//	moduleType(Exec, Type)      module type name
//	status(Exec, Status)        terminal status
//	artifact(Artifact, Type)    artifact with its data type
//	partOfRun(Entity, Run)      entity belongs to run
//	agent(Run, Agent)           run executed on behalf of agent
func LoadStore(p *Program, s store.Store) error {
	runs, err := s.Runs()
	if err != nil {
		return err
	}
	for _, runID := range runs {
		l, err := s.RunLog(runID)
		if err != nil {
			return err
		}
		if err := p.AddFact("agent", runID, l.Run.Agent); err != nil {
			return err
		}
		for _, e := range l.Executions {
			if err := p.AddFact("module", e.ID, e.ModuleID); err != nil {
				return err
			}
			if err := p.AddFact("moduleType", e.ID, e.ModuleType); err != nil {
				return err
			}
			if err := p.AddFact("status", e.ID, string(e.Status)); err != nil {
				return err
			}
			if err := p.AddFact("partOfRun", e.ID, runID); err != nil {
				return err
			}
		}
		for _, a := range l.Artifacts {
			if err := p.AddFact("artifact", a.ID, a.Type); err != nil {
				return err
			}
			if err := p.AddFact("partOfRun", a.ID, runID); err != nil {
				return err
			}
		}
		for _, ev := range l.Events {
			switch ev.Kind {
			case "artifactUsed":
				if err := p.AddFact("used", ev.ExecutionID, ev.ArtifactID); err != nil {
					return err
				}
			case "artifactGenerated":
				if err := p.AddFact("generated", ev.ExecutionID, ev.ArtifactID); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ProvenanceRules is the standard intensional schema: direct dependency and
// its transitive closure over the bipartite causal graph. dep(X, Y) reads
// "X causally depends on Y".
const ProvenanceRules = `
dep(E, A) :- used(E, A).
dep(A, E) :- generated(E, A).
ancestor(X, Y) :- dep(X, Y).
ancestor(X, Z) :- dep(X, Y), ancestor(Y, Z).
derivedFrom(A2, A1) :- generated(E, A2), used(E, A1).
sameSource(A, B) :- derivedFrom(A, S), derivedFrom(B, S).
`

// AncestorQueryViaStore answers ancestor/2 query atoms with exactly one
// bound argument by pushing the closure down to the store's batch
// traversal API instead of loading every fact and materializing the full
// Datalog fixpoint. Under ProvenanceRules, ancestor(c, Y) binds Y to the
// upstream closure of c and ancestor(X, c) binds X to the downstream
// closure, so one Store.Closure call — O(hops) backend operations — yields
// exactly the fixpoint's rows. The bool result reports whether the atom
// had a pushed-down shape; when false, callers fall back to the fixpoint.
func AncestorQueryViaStore(s store.Store, q Atom) (*QueryResult, bool, error) {
	if q.Pred != "ancestor" || len(q.Args) != 2 {
		return nil, false, nil
	}
	a, b := q.Args[0], q.Args[1]
	var seed string
	var dir store.Direction
	var v string
	switch {
	case !a.IsVar && b.IsVar:
		seed, dir, v = a.Value, store.Up, b.Value
	case a.IsVar && !b.IsVar:
		seed, dir, v = b.Value, store.Down, a.Value
	default:
		return nil, false, nil
	}
	res := &QueryResult{Vars: []string{v}}
	ids, err := s.Closure(seed, dir)
	if errors.Is(err, store.ErrNotFound) {
		// The fixpoint yields no rows for an unknown constant; so do we.
		return res, true, nil
	}
	if err != nil {
		return nil, true, err
	}
	sort.Strings(ids)
	for _, id := range ids {
		res.Rows = append(res.Rows, []string{id})
	}
	return res, true, nil
}

// NewProvenanceProgram builds a program with the provenance rules loaded
// and facts from the store.
func NewProvenanceProgram(s store.Store) (*Program, error) {
	p, err := ParseProgram(ProvenanceRules)
	if err != nil {
		return nil, err
	}
	if err := LoadStore(p, s); err != nil {
		return nil, err
	}
	return p, nil
}
