package datalog

import (
	"errors"
	"sort"

	"repro/internal/provenance"
	"repro/internal/store"
)

// LoadStore loads base provenance facts from a store into a program,
// establishing the standard extensional schema the provenance rules
// (ProvenanceRules) are written against:
//
//	used(Exec, Artifact)        execution consumed artifact
//	generated(Exec, Artifact)   execution produced artifact
//	module(Exec, ModuleID)      execution instantiated module
//	moduleType(Exec, Type)      module type name
//	status(Exec, Status)        terminal status
//	artifact(Artifact, Type)    artifact with its data type
//	partOfRun(Entity, Run)      entity belongs to run
//	agent(Run, Agent)           run executed on behalf of agent
func LoadStore(p *Program, s store.Store) error {
	runs, err := s.Runs()
	if err != nil {
		return err
	}
	for _, runID := range runs {
		l, err := s.RunLog(runID)
		if err != nil {
			return err
		}
		if err := LogFacts(l, p.AddFact); err != nil {
			return err
		}
	}
	return nil
}

// LogFacts flattens one run log into the extensional schema above,
// invoking emit once per fact. It is the single source of truth for that
// flattening: LoadStore folds whole stores through it, and the
// standing-query subsystem folds per-ingest deltas through it, so a
// subscription's incremental facts are exactly the ones a fresh LoadStore
// would produce.
func LogFacts(l *provenance.RunLog, emit func(pred string, vals ...string) error) error {
	runID := l.Run.ID
	if err := emit("agent", runID, l.Run.Agent); err != nil {
		return err
	}
	for _, e := range l.Executions {
		if err := emit("module", e.ID, e.ModuleID); err != nil {
			return err
		}
		if err := emit("moduleType", e.ID, e.ModuleType); err != nil {
			return err
		}
		if err := emit("status", e.ID, string(e.Status)); err != nil {
			return err
		}
		if err := emit("partOfRun", e.ID, runID); err != nil {
			return err
		}
	}
	for _, a := range l.Artifacts {
		if err := emit("artifact", a.ID, a.Type); err != nil {
			return err
		}
		if err := emit("partOfRun", a.ID, runID); err != nil {
			return err
		}
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventArtifactUsed:
			if err := emit("used", ev.ExecutionID, ev.ArtifactID); err != nil {
				return err
			}
		case provenance.EventArtifactGen:
			if err := emit("generated", ev.ExecutionID, ev.ArtifactID); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExtensionalArity maps the extensional predicates LoadStore/LogFacts emit
// to their arities — the schema conjunctive standing queries validate
// against.
func ExtensionalArity() map[string]int {
	return map[string]int{
		"used": 2, "generated": 2, "module": 2, "moduleType": 2,
		"status": 2, "artifact": 2, "partOfRun": 2, "agent": 2,
	}
}

// ProvenanceRules is the standard intensional schema: direct dependency and
// its transitive closure over the bipartite causal graph. dep(X, Y) reads
// "X causally depends on Y".
const ProvenanceRules = `
dep(E, A) :- used(E, A).
dep(A, E) :- generated(E, A).
ancestor(X, Y) :- dep(X, Y).
ancestor(X, Z) :- dep(X, Y), ancestor(Y, Z).
derivedFrom(A2, A1) :- generated(E, A2), used(E, A1).
sameSource(A, B) :- derivedFrom(A, S), derivedFrom(B, S).
`

// AncestorQueryViaStore answers ancestor/2 query atoms with exactly one
// bound argument by pushing the closure down to the store's batch
// traversal API instead of loading every fact and materializing the full
// Datalog fixpoint. Under ProvenanceRules, ancestor(c, Y) binds Y to the
// upstream closure of c and ancestor(X, c) binds X to the downstream
// closure, so one Store.Closure call — O(hops) backend operations — yields
// exactly the fixpoint's rows. The bool result reports whether the atom
// had a pushed-down shape; when false, callers fall back to the fixpoint.
func AncestorQueryViaStore(s store.Store, q Atom) (*QueryResult, bool, error) {
	if q.Pred != "ancestor" || len(q.Args) != 2 {
		return nil, false, nil
	}
	a, b := q.Args[0], q.Args[1]
	var seed string
	var dir store.Direction
	var v string
	switch {
	case !a.IsVar && b.IsVar:
		seed, dir, v = a.Value, store.Up, b.Value
	case a.IsVar && !b.IsVar:
		seed, dir, v = b.Value, store.Down, a.Value
	default:
		return nil, false, nil
	}
	res := &QueryResult{Vars: []string{v}}
	ids, err := s.Closure(seed, dir)
	if errors.Is(err, store.ErrNotFound) {
		// The fixpoint yields no rows for an unknown constant; so do we.
		return res, true, nil
	}
	if err != nil {
		return nil, true, err
	}
	sort.Strings(ids)
	for _, id := range ids {
		res.Rows = append(res.Rows, []string{id})
	}
	return res, true, nil
}

// NewProvenanceProgram builds a program with the provenance rules loaded
// and facts from the store.
func NewProvenanceProgram(s store.Store) (*Program, error) {
	p, err := ParseProgram(ProvenanceRules)
	if err != nil {
		return nil, err
	}
	if err := LoadStore(p, s); err != nil {
		return nil, err
	}
	return p, nil
}
