// Package scan streams run logs out of any provenance store for the query
// engines' leaf table scans. On a plain store it pulls logs lazily one run
// at a time; when the store (after unwrapping caches and tracing shims) is
// a sharded router, it scatters the log fetches across shards in parallel
// — each shard worker reads only its own runs, exploiting the per-shard
// locality the router's hash placement guarantees — then replays them in
// the router's global accepted order so results are deterministic and
// identical to the sequential scan.
package scan

import (
	"sync"

	"repro/internal/provenance"
	"repro/internal/store"
)

// sharded is the structural view of shardedstore.Router (matched without
// importing the package, so scan stays backend-agnostic and cache wrappers
// can forward it if they ever choose to).
type sharded interface {
	NumShards() int
	Shard(i int) store.Store
	Runs() ([]string, error)
}

// unwrapper is implemented by layering stores (closure cache, tracing
// shims) that delegate run-log storage to an inner store.
type unwrapper interface {
	Underlying() store.Store
}

// Unwrap peels layering wrappers off a store until it reaches one that
// stores run logs itself.
func Unwrap(s store.Store) store.Store {
	for {
		u, ok := s.(unwrapper)
		if !ok {
			return s
		}
		s = u.Underlying()
	}
}

// Logs invokes fn once per stored run log, in the store's global insertion
// order. fn must not retain the log. On a sharded router the per-shard
// fetches run concurrently (ParallelShards reports whether they did); the
// emit order is still the global one. Iteration stops at fn's first error.
func Logs(s store.Store, fn func(*provenance.RunLog) error) error {
	_, err := logs(s, fn)
	return err
}

// ShardedLogs is Logs plus a report of how many shards were scanned in
// parallel (0 for an unsharded store) — the explain surfaces print it.
func ShardedLogs(s store.Store, fn func(*provenance.RunLog) error) (shards int, err error) {
	return logs(s, fn)
}

func logs(s store.Store, fn func(*provenance.RunLog) error) (int, error) {
	base := Unwrap(s)
	if r, ok := base.(sharded); ok && r.NumShards() > 1 {
		return r.NumShards(), shardedScan(r, fn)
	}
	runs, err := base.Runs()
	if err != nil {
		return 0, err
	}
	for _, id := range runs {
		l, err := base.RunLog(id)
		if err != nil {
			return 0, err
		}
		if err := fn(l); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

// shardedScan fetches each shard's logs with one goroutine per shard, then
// emits them in the router's global order. Runs accepted by a shard but
// not yet visible in the router's global order (or vice versa, mid-ingest)
// are skipped: under quiescence — the only state queries are specified for
// — the two views agree and the scan is exact.
func shardedScan(r sharded, fn func(*provenance.RunLog) error) error {
	n := r.NumShards()
	type shardResult struct {
		logs map[string]*provenance.RunLog
		err  error
	}
	results := make([]shardResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := r.Shard(i)
			runs, err := sh.Runs()
			if err != nil {
				results[i].err = err
				return
			}
			logs := make(map[string]*provenance.RunLog, len(runs))
			for _, id := range runs {
				l, err := sh.RunLog(id)
				if err != nil {
					results[i].err = err
					return
				}
				logs[id] = l
			}
			results[i].logs = logs
		}(i)
	}
	wg.Wait()
	byRun := map[string]*provenance.RunLog{}
	for i := range results {
		if results[i].err != nil {
			return results[i].err
		}
		for id, l := range results[i].logs {
			byRun[id] = l
		}
	}
	// Global order is captured after the shard scans complete, so every
	// run it lists was already fetched above (stores are append-only).
	order, err := r.Runs()
	if err != nil {
		return err
	}
	for _, id := range order {
		if l, ok := byRun[id]; ok {
			if err := fn(l); err != nil {
				return err
			}
		}
	}
	return nil
}
