package scan

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/closurecache"
	"repro/internal/store/shardedstore"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// TestShardedOrderMatchesSequential checks the parallel sharded scan
// emits run logs in exactly the router's global order — the order a
// sequential MemStore scan of the same ingest sees — and that the shard
// fan-out is reported, including through an unwrapping cache layer.
func TestShardedOrderMatchesSequential(t *testing.T) {
	col := provenance.NewCollector()
	reg := engine.NewRegistry()
	workloads.RegisterAll(reg)
	e := engine.New(engine.Options{Registry: reg, Recorder: col, Workers: 2, Agent: "scan"})
	mem := store.NewMemStore()
	sharded := shardedstore.NewMem(4)
	for _, wf := range []*workflow.Workflow{
		workloads.MedicalImaging(),
		workloads.SmoothedImaging(),
		workloads.Genomics("g1"),
		workloads.Genomics("g2"),
		workloads.Forecasting("f1"),
		workloads.DownloadAndRender(),
	} {
		res, err := e.Run(context.Background(), wf, nil)
		if err != nil {
			t.Fatal(err)
		}
		log, err := col.Log(res.RunID)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
		if err := sharded.PutRunLog(log); err != nil {
			t.Fatal(err)
		}
	}

	order := func(s store.Store) (ids []string, shards int) {
		t.Helper()
		n, err := ShardedLogs(s, func(l *provenance.RunLog) error {
			ids = append(ids, l.Run.ID)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids, n
	}

	memIDs, memShards := order(mem)
	if memShards != 0 {
		t.Fatalf("mem shards = %d", memShards)
	}
	if len(memIDs) != 6 {
		t.Fatalf("mem runs = %v", memIDs)
	}
	shIDs, shShards := order(sharded)
	if shShards != 4 {
		t.Fatalf("sharded shards = %d", shShards)
	}
	if len(shIDs) != len(memIDs) {
		t.Fatalf("sharded runs = %v vs %v", shIDs, memIDs)
	}
	for i := range memIDs {
		if shIDs[i] != memIDs[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, shIDs, memIDs)
		}
	}

	// The cache wrapper unwraps to the router: same order, same fan-out.
	cached := closurecache.New(sharded, closurecache.Options{})
	cIDs, cShards := order(cached)
	if cShards != 4 {
		t.Fatalf("cached shards = %d", cShards)
	}
	for i := range memIDs {
		if cIDs[i] != memIDs[i] {
			t.Fatalf("cached order differs at %d: %v vs %v", i, cIDs, memIDs)
		}
	}
}
