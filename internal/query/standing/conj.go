package standing

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/provenance"
	"repro/internal/query/datalog"
	"repro/internal/query/scan"
	"repro/internal/relalg"
)

// Conjunctive subscriptions: the body is parsed with the Datalog parser,
// validated against the extensional schema LoadStore establishes, and
// compiled ONCE through the streaming planner (relalg.PrepareConj — the
// plan-caching machinery the Datalog engine itself uses). Per ingest the
// plan is rebound semi-naive style: for each body atom whose predicate
// gained facts, that leaf carries the delta and the others the full
// current relations; the union over focus positions is exactly the set of
// rows a full re-evaluation would add, because every new row must use at
// least one new fact in some position. Facts only accumulate (they are
// per-log, not per-edge), so conjunctive results are monotone — add
// events only.

// conjSub is the compiled form of one conjunctive subscription.
type conjSub struct {
	body []datalog.Atom
	pc   *relalg.PreparedConj
}

// preds returns the distinct body predicates, sorted.
func (cs *conjSub) preds() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range cs.body {
		if !seen[a.Pred] {
			seen[a.Pred] = true
			out = append(out, a.Pred)
		}
	}
	sort.Strings(out)
	return out
}

// compileConj parses and compiles a conjunctive spec. The query is the
// rule-body syntax the Datalog engine uses: comma-separated atoms,
// uppercase (or ?-prefixed) variables, 'quoted' constants, e.g.
//
//	used(E, A), generated(E, B)
//
// over the extensional schema of datalog.LoadStore. Output names the
// projected variables; empty means all, in first-occurrence order.
func compileConj(spec Spec) (*conjSub, error) {
	q := strings.TrimSpace(spec.Query)
	if q == "" {
		return nil, fmt.Errorf("standing: conjunctive subscription needs a query")
	}
	r, err := datalog.ParseRule("q() :- " + q)
	if err != nil {
		return nil, fmt.Errorf("standing: parse query: %w", err)
	}
	if len(r.Body) == 0 {
		return nil, fmt.Errorf("standing: conjunctive query %q has no atoms", q)
	}
	schema := datalog.ExtensionalArity()
	var allVars []string
	varSeen := map[string]bool{}
	leaves := make([]relalg.Leaf, len(r.Body))
	for i, atom := range r.Body {
		arity, ok := schema[atom.Pred]
		if !ok {
			return nil, fmt.Errorf("standing: unknown predicate %q (extensional schema: %s)",
				atom.Pred, strings.Join(sortedPreds(schema), ", "))
		}
		if len(atom.Args) != arity {
			return nil, fmt.Errorf("standing: predicate %s has arity %d, got %d args", atom.Pred, arity, len(atom.Args))
		}
		terms := make([]relalg.PlanTerm, len(atom.Args))
		for j, t := range atom.Args {
			if t.IsVar {
				terms[j] = relalg.V(t.Value)
				if !varSeen[t.Value] {
					varSeen[t.Value] = true
					allVars = append(allVars, t.Value)
				}
			} else {
				terms[j] = relalg.C(t.Value)
			}
		}
		leaves[i] = relalg.Leaf{Name: atom.Pred, Terms: terms}
	}
	output := spec.Output
	if len(output) == 0 {
		output = allVars
	}
	if len(output) == 0 {
		return nil, fmt.Errorf("standing: conjunctive query %q binds no variables", q)
	}
	for _, v := range output {
		if !varSeen[v] {
			return nil, fmt.Errorf("standing: output variable %q not bound in query", v)
		}
	}
	pc, err := relalg.PrepareConj(leaves, output)
	if err != nil {
		return nil, fmt.Errorf("standing: compile query: %w", err)
	}
	return &conjSub{body: r.Body, pc: pc}, nil
}

func sortedPreds(schema map[string]int) []string {
	out := make([]string, 0, len(schema))
	for p := range schema {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ensureBaseLocked loads the shared extensional relations from the store
// on the first conjunctive Subscribe. Thereafter ApplyDelta keeps them
// appended; re-delivery of a log already scanned here deduplicates to
// nothing.
func (m *Manager) ensureBaseLocked() error {
	if m.baseLoaded {
		return nil
	}
	err := scan.Logs(m.st, func(l *provenance.RunLog) error {
		m.appendLogFactsLocked(l, nil)
		return nil
	})
	if err != nil {
		return err
	}
	m.baseLoaded = true
	return nil
}

// appendLogFactsLocked folds one log's extensional facts into the shared
// relations, recording the novel tuples per predicate into delta (when
// non-nil).
func (m *Manager) appendLogFactsLocked(l *provenance.RunLog, delta map[string][]relalg.Tuple) {
	_ = datalog.LogFacts(l, func(pred string, vals ...string) error {
		key := strings.Join(vals, "\x00")
		set, ok := m.baseSet[pred]
		if !ok {
			set = map[string]struct{}{}
			m.baseSet[pred] = set
		}
		if _, have := set[key]; have {
			return nil
		}
		set[key] = struct{}{}
		vs := make([]relalg.Val, len(vals))
		for i, v := range vals {
			vs[i] = v
		}
		t := relalg.Tuple{Values: vs}
		m.base[pred] = append(m.base[pred], t)
		if delta != nil {
			delta[pred] = append(delta[pred], t)
		}
		return nil
	})
}

// conjSnapshotLocked evaluates a conjunctive subscription in full over
// the shared relations.
func (m *Manager) conjSnapshotLocked(s *sub) error {
	tuples := make([][]relalg.Tuple, len(s.conj.body))
	for i, atom := range s.conj.body {
		tuples[i] = m.base[atom.Pred]
	}
	return m.runConjLocked(s, tuples, func(item string) {
		s.set[item] = struct{}{}
	})
}

// applyConjLocked maintains conjunctive subscriptions for one ingest:
// novel facts per predicate become the delta, and each affected
// subscription rebinds its prepared plan once per delta-bearing body
// position.
func (m *Manager) applyConjLocked(l *provenance.RunLog) {
	if !m.baseLoaded {
		return
	}
	delta := map[string][]relalg.Tuple{}
	m.appendLogFactsLocked(l, delta)
	if len(delta) == 0 || len(m.conjIdx) == 0 {
		return
	}
	affected := map[*sub]struct{}{}
	for pred := range delta {
		for s := range m.conjIdx[pred] {
			affected[s] = struct{}{}
		}
	}
	// Identical queries share one delta evaluation: many clients watching
	// the same standing query is the common case, and the plan run is the
	// expensive part — each subscription then only filters the shared rows
	// against its own result set.
	groups := map[string][]*sub{}
	for s := range affected {
		key := s.spec.Query + "\x00" + strings.Join(s.spec.Output, "\x00")
		groups[key] = append(groups[key], s)
	}
	for _, subs := range groups {
		rep := subs[0]
		var rows []string
		rowSeen := map[string]struct{}{}
		for focus, atom := range rep.conj.body {
			dt := delta[atom.Pred]
			if len(dt) == 0 {
				continue
			}
			tuples := make([][]relalg.Tuple, len(rep.conj.body))
			for j, other := range rep.conj.body {
				if j == focus {
					tuples[j] = dt
				} else {
					tuples[j] = m.base[other.Pred]
				}
			}
			_ = m.runConjLocked(rep, tuples, func(item string) {
				if _, have := rowSeen[item]; !have {
					rowSeen[item] = struct{}{}
					rows = append(rows, item)
				}
			})
		}
		for _, s := range subs {
			var adds []string
			for _, item := range rows {
				if _, have := s.set[item]; !have {
					s.set[item] = struct{}{}
					adds = append(adds, item)
				}
			}
			if len(adds) > 0 {
				sort.Strings(adds)
				m.publishLocked(s, EventAdd, adds)
			}
		}
	}
}

// runConjLocked binds the subscription's prepared plan to the given
// per-leaf tuples and streams output rows as items.
func (m *Manager) runConjLocked(s *sub, tuples [][]relalg.Tuple, emit func(item string)) error {
	plan, err := s.conj.pc.Bind(tuples, relalg.PlanOptions{})
	if err != nil {
		return err
	}
	return plan.Run(func(vals []relalg.Val, _ []relalg.Witness) error {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i], _ = v.(string)
		}
		emit(rowItem(parts))
		return nil
	})
}
