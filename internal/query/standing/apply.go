package standing

import (
	"errors"
	"sort"

	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/query/scan"
	"repro/internal/store"
)

// ApplyDelta folds one accepted run log into every affected subscription.
// The Tap calls it after each local commit; a follower's replication-apply
// hook calls it for each shipped log. Cost is proportional to the
// subscriptions the delta touches (via the node/predicate indexes), never
// to the total registered — and never blocks on consumers: events land in
// bounded replay rings.
func (m *Manager) ApplyDelta(l *provenance.RunLog) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.subs) == 0 && !m.baseLoaded {
		return
	}
	start := obs.Now()
	defer mStandingPatch.ObserveSince(start)
	m.applyTriplesLocked(l)
	m.applyClosuresLocked(l)
	m.applyConjLocked(l)
}

// --- triple patterns ----------------------------------------------------------

// tripleSnapshotLocked computes a triple subscription's initial result by
// matching the pattern over every stored log's flattened triples.
func (m *Manager) tripleSnapshotLocked(s *sub) error {
	return scan.Logs(m.st, func(l *provenance.RunLog) error {
		for _, t := range store.TriplesOf(l) {
			if matchTriple(s.spec.Pattern, t) {
				s.set[TripleItem(t)] = struct{}{}
			}
		}
		return nil
	})
}

// applyTriplesLocked matches the ingest's triples against the
// predicate-bucketed subscription index. Triples are append-only (they
// flatten run logs, which only accumulate), so this path emits only adds.
func (m *Manager) applyTriplesLocked(l *provenance.RunLog) {
	if len(m.tripleIdx) == 0 {
		return
	}
	adds := map[*sub][]string{}
	for _, t := range store.TriplesOf(l) {
		for _, bucket := range [2]string{t.P, ""} {
			for s := range m.tripleIdx[bucket] {
				if !matchTriple(s.spec.Pattern, t) {
					continue
				}
				item := TripleItem(t)
				if _, have := s.set[item]; !have {
					s.set[item] = struct{}{}
					adds[s] = append(adds[s], item)
				}
			}
		}
	}
	for s, items := range adds {
		sort.Strings(items)
		m.publishLocked(s, EventAdd, items)
	}
}

func matchTriple(p, t store.Triple) bool {
	return (p.S == "" || p.S == t.S) && (p.P == "" || p.P == t.P) && (p.O == "" || p.O == t.O)
}

// --- closure membership -------------------------------------------------------

// applyClosuresLocked patches closure subscriptions: the non-monotone
// hazard (a generation event touching a resident entity — possibly a
// generator replacement rewriting edges) recomputes the subscription
// fresh and diffs; everything else extends from the delta's attachment
// points with a bounded BFS, exactly the closure cache's patching model.
func (m *Manager) applyClosuresLocked(l *provenance.RunLog) {
	if len(m.nodeIdx) == 0 {
		return
	}
	recomputed := map[*sub]bool{}
	for _, ev := range l.Events {
		if ev.Kind != provenance.EventArtifactGen {
			continue
		}
		// Conservative, like the cache's resident-regen rule: the
		// pre-ingest generator is unknowable here, so any gen event on a
		// resident artifact triggers a recompute-and-diff. Fresh artifacts
		// are not resident, so the common all-new ingest pays nothing.
		for s := range m.nodeIdx[ev.ArtifactID] {
			if !recomputed[s] {
				recomputed[s] = true
				m.recomputeClosureLocked(s)
			}
		}
	}

	delta := deltaEdges(l)
	for dir, edges := range delta {
		work := map[*sub][]string{}
		for src := range edges {
			for s := range m.nodeIdx[src] {
				if s.spec.Dir != dir || recomputed[s] {
					continue
				}
				work[s] = append(work[s], src)
			}
		}
		for s, sources := range work {
			m.extendClosureLocked(s, sources)
		}
	}
}

// deltaEdges is the adjacency a run log introduces, per direction —
// shared shape with closurecache.applyDeltaLocked.
func deltaEdges(l *provenance.RunLog) map[store.Direction]map[string][]string {
	delta := map[store.Direction]map[string][]string{
		store.Up:   {},
		store.Down: {},
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case provenance.EventArtifactGen:
			delta[store.Up][ev.ArtifactID] = append(delta[store.Up][ev.ArtifactID], ev.ExecutionID)
			delta[store.Down][ev.ExecutionID] = append(delta[store.Down][ev.ExecutionID], ev.ArtifactID)
		case provenance.EventArtifactUsed:
			delta[store.Up][ev.ExecutionID] = append(delta[store.Up][ev.ExecutionID], ev.ArtifactID)
			delta[store.Down][ev.ArtifactID] = append(delta[store.Down][ev.ArtifactID], ev.ExecutionID)
		}
	}
	return delta
}

// extendClosureLocked grows one closure subscription from the attachment
// points a delta touched: a BFS over the current graph that only walks
// past nodes the result has not seen. New nodes are published as one add
// event.
func (m *Manager) extendClosureLocked(s *sub, sources []string) {
	var adds []string
	frontier := sources
	for len(frontier) > 0 {
		adj, err := m.st.Expand(frontier, s.spec.Dir)
		if err != nil {
			// Transient backend failure: keep current state; the next
			// hazard or delta touching this subscription retries.
			return
		}
		var next []string
		for _, id := range frontier {
			for _, n := range adj[id] {
				if _, seen := s.set[n]; seen {
					continue
				}
				s.set[n] = struct{}{}
				m.indexNodeLocked(n, s)
				adds = append(adds, n)
				next = append(next, n)
			}
		}
		frontier = next
	}
	if len(adds) > 0 {
		sort.Strings(adds)
		m.publishLocked(s, EventAdd, adds)
	}
}

// recomputeClosureLocked re-runs the closure fresh and publishes the diff
// against the accumulated result — the non-monotone path.
func (m *Manager) recomputeClosureLocked(s *sub) {
	order, err := m.st.Closure(s.spec.Root, s.spec.Dir)
	if err != nil && !errors.Is(err, store.ErrNotFound) {
		return // keep current state on a transient backend failure
	}
	fresh := make(map[string]struct{}, len(order))
	for _, id := range order {
		fresh[id] = struct{}{}
	}
	var adds, removes []string
	for id := range fresh {
		if _, have := s.set[id]; !have {
			adds = append(adds, id)
			m.indexNodeLocked(id, s)
		}
	}
	for id := range s.set {
		if _, keep := fresh[id]; !keep {
			removes = append(removes, id)
			if id != s.spec.Root {
				m.unindexNodeLocked(id, s)
			}
		}
	}
	s.set = fresh
	if len(removes) > 0 {
		sort.Strings(removes)
		m.publishLocked(s, EventRemove, removes)
	}
	if len(adds) > 0 {
		sort.Strings(adds)
		m.publishLocked(s, EventAdd, adds)
	}
}
