// Package standing maintains live query subscriptions over the store
// stack: a client registers a query — a triple pattern, the closure
// membership of an entity (its lineage or dependents), or a conjunctive
// Datalog query over the extensional provenance schema — and receives an
// initial result snapshot plus a stream of add/remove deltas as ingest
// proceeds. This generalizes the one-shape incremental maintenance of
// internal/store/closurecache into the "millions of users watching
// lineage" serving layer the ROADMAP names, in the FO+MOD
// queries-under-updates direction (Berkholz et al.): each accepted run
// log is folded into every affected subscription at delta cost, never by
// re-running the query.
//
// # Maintenance per kind
//
//   - Triple-pattern subscriptions match the ingest's flattened triples
//     (store.TriplesOf, the same flattening the triple backend and the
//     closure cache use) against a predicate-bucketed index, so an ingest
//     touches only the subscriptions whose predicate it mentions.
//   - Closure subscriptions reuse the closure cache's delta-BFS
//     attachment-point patching: a reverse node index maps entities to the
//     subscriptions containing them, each new edge whose source lies
//     inside a result set extends it with a bounded BFS over the
//     post-ingest graph, and the one non-monotone case (a generation
//     event touching a resident entity, possibly a generator replacement)
//     recomputes that subscription fresh and emits the add/remove diff.
//   - Conjunctive subscriptions are compiled once through the streaming
//     planner (relalg.PrepareConj) and re-evaluated semi-naive style per
//     ingest: for each body atom whose predicate gained facts, the plan
//     is rebound with that leaf restricted to the delta and the others to
//     the full current relations — novel output rows become add events.
//     The extensional facts are exactly LoadStore's schema, shared via
//     datalog.LogFacts, so a subscription's incremental result always
//     equals a fresh re-query.
//
// # Delivery
//
// Every subscription carries a monotone sequence number and a bounded
// replay ring: EventsSince(id, after) returns the events a consumer
// missed, and a consumer that fell behind the ring (a stalled SSE client)
// receives an explicit gap event followed by a fresh snapshot at the
// current sequence — ingest never blocks on consumers, and a slow
// consumer costs one ring of memory, never correctness. provd serves this
// over GET /v1/subscriptions/{id}/events as SSE with Last-Event-ID
// resume (internal/collab).
package standing

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/relalg"
	"repro/internal/store"
)

// Subscription observability, surfaced via /v1/metrics.
var (
	mStandingActive  = obs.Default().Gauge("prov_standing_subscriptions_active", "Registered standing-query subscriptions.")
	mStandingDeltas  = obs.Default().Counter("prov_standing_deltas_total", "Add/remove delta events published to standing subscriptions.")
	mStandingPatch   = obs.Default().Histogram("prov_standing_patch_seconds", "Per-ingest standing-subscription maintenance latency.")
	mStandingDropped = obs.Default().Counter("prov_standing_dropped_total", "Replay-ring evictions delivered as gap events (slow consumers).")
)

// Kind selects a subscription's query shape.
type Kind string

const (
	// KindTriple watches a triple pattern (empty fields are wildcards).
	KindTriple Kind = "triple"
	// KindClosure watches the transitive closure of a root entity in one
	// direction — its lineage (Up) or dependents (Down).
	KindClosure Kind = "closure"
	// KindConjunctive watches a conjunctive Datalog query over the
	// extensional schema (datalog.LoadStore), e.g.
	// "used(E, A), generated(E, B)".
	KindConjunctive Kind = "conjunctive"
)

// Spec describes one subscription. Exactly the fields of its Kind matter.
type Spec struct {
	Kind Kind

	// Closure subscriptions.
	Root string
	Dir  store.Direction

	// Triple subscriptions.
	Pattern store.Triple

	// Conjunctive subscriptions: comma-separated body atoms and the output
	// variables (empty: every variable, first-occurrence order).
	Query  string
	Output []string
}

// Event is one element of a subscription's stream. Items are entity IDs
// (closure), "S P O" triples (triple), or space-joined output rows
// (conjunctive) — uniformly strings, so one delivery path serves all
// kinds.
type Event struct {
	Seq   uint64   `json:"seq"`
	Type  string   `json:"type"`
	Items []string `json:"items,omitempty"`
}

// Event types.
const (
	EventSnapshot = "snapshot" // full current result (initial, or after a gap)
	EventAdd      = "add"      // items entered the result
	EventRemove   = "remove"   // items left the result
	EventGap      = "gap"      // replay ring evicted events; a snapshot follows
)

// Snapshot is a subscription's full result at a sequence point; events
// with Seq > Seq continue from it.
type Snapshot struct {
	ID    string   `json:"id"`
	Seq   uint64   `json:"seq"`
	Items []string `json:"items"`
}

// Info describes a registered subscription.
type Info struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	Seq  uint64 `json:"seq"`
	Size int    `json:"size"` // current result cardinality
}

// Options tunes a Manager. The zero value picks sensible defaults.
type Options struct {
	// ReplayRing bounds each subscription's event replay buffer (default
	// 256 events). A consumer that falls behind it receives a gap event
	// and a fresh snapshot instead of the lost deltas.
	ReplayRing int
}

func (o Options) withDefaults() Options {
	if o.ReplayRing <= 0 {
		o.ReplayRing = 256
	}
	return o
}

// sub is one registered subscription: its accumulated result set, the
// reverse-indexed spec, and the bounded replay ring.
type sub struct {
	id   string
	spec Spec
	set  map[string]struct{}

	buf    []Event       // replay ring, seqs last-len+1 .. last
	last   uint64        // sequence of the newest published event
	notify chan struct{} // closed on publish (and unsubscribe), then replaced

	conj *conjSub // conjunctive compilation, nil otherwise
}

func (s *sub) items() []string {
	out := make([]string, 0, len(s.set))
	for it := range s.set {
		out = append(out, it)
	}
	sort.Strings(out)
	return out
}

// Manager owns the subscriptions and folds ingest deltas into them. Place
// it at the top of the store stack with NewTap (or feed a follower's
// replication-apply hook to ApplyDelta) so every accepted run log reaches
// it exactly once.
type Manager struct {
	st  store.Store
	opt Options

	mu     sync.Mutex
	subs   map[string]*sub
	nextID uint64

	// nodeIdx maps entities to the closure subscriptions whose result set
	// (or root) contains them — the attachment-point index, mirroring the
	// closure cache's reverse node index.
	nodeIdx map[string]map[*sub]struct{}
	// tripleIdx buckets triple subscriptions by pattern predicate (""
	// holds predicate wildcards), so an ingest's triples probe only the
	// subscriptions naming their predicate.
	tripleIdx map[string]map[*sub]struct{}
	// conjIdx maps extensional predicates to the conjunctive
	// subscriptions with a body atom on them.
	conjIdx map[string]map[*sub]struct{}

	// Shared extensional relations for conjunctive subscriptions, loaded
	// lazily at the first conjunctive Subscribe and appended (deduplicated)
	// per ingest. Append-only: LoadStore's schema is derived from run logs,
	// which only accumulate.
	base       map[string][]relalg.Tuple
	baseSet    map[string]map[string]struct{}
	baseLoaded bool
}

// NewManager builds a Manager reading from st — the same store stack the
// Tap commits through, so delta BFS and snapshots see every ingest.
func NewManager(st store.Store, opt Options) *Manager {
	return &Manager{
		st:        st,
		opt:       opt.withDefaults(),
		subs:      map[string]*sub{},
		nodeIdx:   map[string]map[*sub]struct{}{},
		tripleIdx: map[string]map[*sub]struct{}{},
		conjIdx:   map[string]map[*sub]struct{}{},
		base:      map[string][]relalg.Tuple{},
		baseSet:   map[string]map[string]struct{}{},
	}
}

// Store returns the store the manager reads from.
func (m *Manager) Store() store.Store { return m.st }

// Subscribe validates the spec, computes the initial result and registers
// the subscription, all atomically with respect to ApplyDelta — an ingest
// is reflected either in the snapshot or in a later event, never both,
// never neither.
func (m *Manager) Subscribe(spec Spec) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	s := &sub{spec: spec, set: map[string]struct{}{}, notify: make(chan struct{})}
	switch spec.Kind {
	case KindClosure:
		if spec.Root == "" {
			return Snapshot{}, errors.New("standing: closure subscription needs a root entity")
		}
		order, err := m.st.Closure(spec.Root, spec.Dir)
		if err != nil && !errors.Is(err, store.ErrNotFound) {
			return Snapshot{}, err
		}
		// An unknown root is an empty result, not an error: the
		// subscription attaches when the entity first appears.
		for _, id := range order {
			s.set[id] = struct{}{}
		}
	case KindTriple:
		if err := m.tripleSnapshotLocked(s); err != nil {
			return Snapshot{}, err
		}
	case KindConjunctive:
		cs, err := compileConj(spec)
		if err != nil {
			return Snapshot{}, err
		}
		s.conj = cs
		if err := m.ensureBaseLocked(); err != nil {
			return Snapshot{}, err
		}
		if err := m.conjSnapshotLocked(s); err != nil {
			return Snapshot{}, err
		}
	default:
		return Snapshot{}, fmt.Errorf("standing: unknown subscription kind %q", spec.Kind)
	}

	m.nextID++
	s.id = fmt.Sprintf("sub-%06d", m.nextID)
	m.subs[s.id] = s
	m.indexLocked(s)
	mStandingActive.Set(int64(len(m.subs)))
	return Snapshot{ID: s.id, Seq: 0, Items: s.items()}, nil
}

// Unsubscribe removes a subscription; its waiters wake and observe the
// removal. Reports whether the id existed.
func (m *Manager) Unsubscribe(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return false
	}
	delete(m.subs, id)
	m.unindexLocked(s)
	close(s.notify)
	mStandingActive.Set(int64(len(m.subs)))
	return true
}

// List returns every registered subscription, id-ordered.
func (m *Manager) List() []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.subs))
	for _, s := range m.subs {
		out = append(out, Info{ID: s.id, Spec: s.spec, Seq: s.last, Size: len(s.set)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Snapshot returns a subscription's full current result and the sequence
// it is valid at — the re-snapshot a consumer takes after a gap event.
func (m *Manager) Snapshot(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return Snapshot{}, false
	}
	return Snapshot{ID: s.id, Seq: s.last, Items: s.items()}, true
}

// EventsSince returns the events published after sequence `after`, or —
// when the replay ring has evicted any of them — an explicit gap event
// followed by a fresh snapshot at the current sequence. ok=false means no
// such subscription (deleted or never existed).
func (m *Manager) EventsSince(id string, after uint64) ([]Event, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return nil, false
	}
	if after >= s.last {
		return nil, true
	}
	start := s.last - uint64(len(s.buf)) + 1
	if after+1 < start {
		// The consumer fell behind the ring: the lost deltas are gone, so
		// force a re-snapshot inline. Both synthesized events carry the
		// current sequence; resuming from it continues losslessly.
		mStandingDropped.Inc()
		return []Event{
			{Seq: s.last, Type: EventGap},
			{Seq: s.last, Type: EventSnapshot, Items: s.items()},
		}, true
	}
	out := make([]Event, 0, s.last-after)
	for _, ev := range s.buf {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, true
}

// Changed returns a channel closed at the next publish (or unsubscribe)
// for the subscription. A nil channel with ok=true means events after
// `after` are already pending — poll EventsSince instead of waiting. The
// check and the channel handoff are atomic, so a publish between an empty
// EventsSince and Changed is never missed.
func (m *Manager) Changed(id string, after uint64) (<-chan struct{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return nil, false
	}
	if s.last > after {
		return nil, true
	}
	return s.notify, true
}

// publishLocked appends one event to the subscription's replay ring,
// evicting the oldest event at capacity, and wakes waiters.
func (m *Manager) publishLocked(s *sub, typ string, items []string) {
	s.last++
	ev := Event{Seq: s.last, Type: typ, Items: items}
	if len(s.buf) >= m.opt.ReplayRing {
		copy(s.buf, s.buf[1:])
		s.buf[len(s.buf)-1] = ev
	} else {
		s.buf = append(s.buf, ev)
	}
	if typ == EventAdd || typ == EventRemove {
		mStandingDeltas.Inc()
	}
	close(s.notify)
	s.notify = make(chan struct{})
}

// --- spec indexes -------------------------------------------------------------

func (m *Manager) indexLocked(s *sub) {
	switch s.spec.Kind {
	case KindClosure:
		m.indexNodeLocked(s.spec.Root, s)
		for id := range s.set {
			m.indexNodeLocked(id, s)
		}
	case KindTriple:
		bucket := m.tripleIdx[s.spec.Pattern.P]
		if bucket == nil {
			bucket = map[*sub]struct{}{}
			m.tripleIdx[s.spec.Pattern.P] = bucket
		}
		bucket[s] = struct{}{}
	case KindConjunctive:
		for _, pred := range s.conj.preds() {
			bucket := m.conjIdx[pred]
			if bucket == nil {
				bucket = map[*sub]struct{}{}
				m.conjIdx[pred] = bucket
			}
			bucket[s] = struct{}{}
		}
	}
}

func (m *Manager) unindexLocked(s *sub) {
	switch s.spec.Kind {
	case KindClosure:
		m.unindexNodeLocked(s.spec.Root, s)
		for id := range s.set {
			m.unindexNodeLocked(id, s)
		}
	case KindTriple:
		if bucket, ok := m.tripleIdx[s.spec.Pattern.P]; ok {
			delete(bucket, s)
			if len(bucket) == 0 {
				delete(m.tripleIdx, s.spec.Pattern.P)
			}
		}
	case KindConjunctive:
		for _, pred := range s.conj.preds() {
			if bucket, ok := m.conjIdx[pred]; ok {
				delete(bucket, s)
				if len(bucket) == 0 {
					delete(m.conjIdx, pred)
				}
			}
		}
	}
}

func (m *Manager) indexNodeLocked(id string, s *sub) {
	bucket, ok := m.nodeIdx[id]
	if !ok {
		bucket = map[*sub]struct{}{}
		m.nodeIdx[id] = bucket
	}
	bucket[s] = struct{}{}
}

func (m *Manager) unindexNodeLocked(id string, s *sub) {
	if bucket, ok := m.nodeIdx[id]; ok {
		delete(bucket, s)
		if len(bucket) == 0 {
			delete(m.nodeIdx, id)
		}
	}
}

// TripleItem renders a triple as a subscription item.
func TripleItem(t store.Triple) string {
	return t.S + " " + t.P + " " + t.O
}

// rowItem renders a conjunctive output row as a subscription item.
func rowItem(vals []string) string { return strings.Join(vals, " ") }
