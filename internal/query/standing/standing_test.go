package standing

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/provenance"
	"repro/internal/query/datalog"
	"repro/internal/query/scan"
	"repro/internal/store"
	"repro/internal/store/shardedstore"
)

// workload generates a randomized but deterministic ingest stream: each
// log consumes random existing artifacts, generates fresh ones, and
// occasionally re-declares a generator for an existing artifact (the
// non-monotone hazard path).
type workload struct {
	rng  *rand.Rand
	pool []string
	step int
	// selfContained skips cross-log references (uses, generator
	// replacement), so logs can ingest in any order — for tests that write
	// concurrently.
	selfContained bool
}

func (w *workload) next() *provenance.RunLog {
	i := w.step
	w.step++
	runID := fmt.Sprintf("run-%03d", i)
	execID := fmt.Sprintf("exec-%03d", i)
	l := &provenance.RunLog{
		Run: provenance.Run{ID: runID, WorkflowID: "wf", Agent: fmt.Sprintf("agent-%d", i%3), Status: provenance.StatusOK},
		Executions: []*provenance.Execution{{
			ID: execID, RunID: runID,
			ModuleID:   fmt.Sprintf("mod-%d", i%5),
			ModuleType: [...]string{"shell", "python", "spark"}[i%3],
			Status:     provenance.StatusOK,
		}},
	}
	seq := uint64(0)
	declared := map[string]bool{}
	event := func(kind provenance.EventKind, art string) {
		// Every referenced artifact must be declared in the log that
		// mentions it (cross-run re-declaration is the normal idiom).
		if !declared[art] {
			declared[art] = true
			l.Artifacts = append(l.Artifacts, &provenance.Artifact{ID: art, RunID: runID, Type: "blob"})
		}
		l.Events = append(l.Events, provenance.Event{Seq: seq, RunID: runID, Kind: kind, ExecutionID: execID, ArtifactID: art})
		seq++
	}
	for k := 0; k < 2 && len(w.pool) > 0 && !w.selfContained; k++ {
		if w.rng.Intn(2) == 0 {
			event(provenance.EventArtifactUsed, w.pool[w.rng.Intn(len(w.pool))])
		}
	}
	for k, n := 0, 1+w.rng.Intn(2); k < n; k++ {
		art := fmt.Sprintf("art-%03d-%d", i, k)
		event(provenance.EventArtifactGen, art)
		w.pool = append(w.pool, art)
	}
	if len(w.pool) > 2 && w.rng.Intn(100) < 15 && !w.selfContained {
		// Generator replacement: re-generate an already-existing artifact.
		event(provenance.EventArtifactGen, w.pool[w.rng.Intn(len(w.pool))])
	}
	return l
}

// --- reference re-query, implemented independently of the manager -------------

func requery(t *testing.T, st store.Store, spec Spec) []string {
	t.Helper()
	switch spec.Kind {
	case KindClosure:
		order, err := st.Closure(spec.Root, spec.Dir)
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				return nil
			}
			t.Fatalf("closure re-query: %v", err)
		}
		sort.Strings(order)
		return order
	case KindTriple:
		set := map[string]struct{}{}
		err := scan.Logs(st, func(l *provenance.RunLog) error {
			for _, tr := range store.TriplesOf(l) {
				if matchTriple(spec.Pattern, tr) {
					set[TripleItem(tr)] = struct{}{}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("triple re-query: %v", err)
		}
		return sortedSet(set)
	case KindConjunctive:
		p := datalog.NewProgram()
		if err := datalog.LoadStore(p, st); err != nil {
			t.Fatalf("conj re-query load: %v", err)
		}
		head := "q(" + strings.Join(spec.Output, ", ") + ")"
		r, err := datalog.ParseRule(head + " :- " + spec.Query)
		if err != nil {
			t.Fatalf("conj re-query parse: %v", err)
		}
		if err := p.AddRule(r); err != nil {
			t.Fatalf("conj re-query rule: %v", err)
		}
		goal, err := datalog.ParseAtom(head)
		if err != nil {
			t.Fatalf("conj re-query goal: %v", err)
		}
		res, err := p.Query(goal)
		if err != nil {
			t.Fatalf("conj re-query: %v", err)
		}
		set := map[string]struct{}{}
		for _, row := range res.Rows {
			set[strings.Join(row, " ")] = struct{}{}
		}
		return sortedSet(set)
	}
	t.Fatalf("unknown kind %q", spec.Kind)
	return nil
}

func sortedSet(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// tracker reconstructs a subscription's result purely from its snapshot
// and delivered events — exactly what a remote consumer holds.
type tracker struct {
	id    string
	spec  Spec
	state map[string]struct{}
	seq   uint64
}

func newTracker(t *testing.T, m *Manager, spec Spec) *tracker {
	t.Helper()
	snap, err := m.Subscribe(spec)
	if err != nil {
		t.Fatalf("subscribe %+v: %v", spec, err)
	}
	tr := &tracker{id: snap.ID, spec: spec, state: map[string]struct{}{}, seq: snap.Seq}
	for _, it := range snap.Items {
		tr.state[it] = struct{}{}
	}
	return tr
}

func (tr *tracker) sync(t *testing.T, m *Manager) {
	t.Helper()
	evs, ok := m.EventsSince(tr.id, tr.seq)
	if !ok {
		t.Fatalf("sub %s vanished", tr.id)
	}
	tr.apply(t, evs)
}

func (tr *tracker) apply(t *testing.T, evs []Event) {
	t.Helper()
	for _, ev := range evs {
		switch ev.Type {
		case EventAdd:
			for _, it := range ev.Items {
				if _, dup := tr.state[it]; dup {
					t.Fatalf("sub %s: duplicate add of %q at seq %d", tr.id, it, ev.Seq)
				}
				tr.state[it] = struct{}{}
			}
		case EventRemove:
			for _, it := range ev.Items {
				if _, have := tr.state[it]; !have {
					t.Fatalf("sub %s: remove of absent %q at seq %d", tr.id, it, ev.Seq)
				}
				delete(tr.state, it)
			}
		case EventSnapshot:
			tr.state = map[string]struct{}{}
			for _, it := range ev.Items {
				tr.state[it] = struct{}{}
			}
		case EventGap:
			// the following snapshot event rebuilds the state
		default:
			t.Fatalf("sub %s: unknown event type %q", tr.id, ev.Type)
		}
		if ev.Seq < tr.seq {
			t.Fatalf("sub %s: sequence went backwards (%d after %d)", tr.id, ev.Seq, tr.seq)
		}
		tr.seq = ev.Seq
	}
}

func (tr *tracker) verify(t *testing.T, st store.Store, step int) {
	t.Helper()
	want := requery(t, st, tr.spec)
	got := sortedSet(tr.state)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d, sub %s (%s): incremental state diverged from re-query\n got: %v\nwant: %v",
			step, tr.id, tr.spec.Kind, got, want)
	}
}

// --- the property: snapshot + accumulated deltas == fresh re-query ------------

func TestStandingPropertyMemStore(t *testing.T) {
	runStandingProperty(t, store.NewMemStore())
}

func TestStandingPropertySharded(t *testing.T) {
	runStandingProperty(t, shardedstore.NewMem(4))
}

func runStandingProperty(t *testing.T, st store.Store) {
	defer st.Close()
	m := NewManager(st, Options{ReplayRing: 4096})
	tap := NewTap(st, m)
	w := &workload{rng: rand.New(rand.NewSource(7))}

	// Seed a few logs so initial snapshots are non-trivial.
	for i := 0; i < 3; i++ {
		if err := tap.PutRunLog(w.next()); err != nil {
			t.Fatalf("seed ingest: %v", err)
		}
	}

	trackers := []*tracker{
		newTracker(t, m, Spec{Kind: KindClosure, Root: "art-000-0", Dir: store.Up}),
		newTracker(t, m, Spec{Kind: KindClosure, Root: "art-000-0", Dir: store.Down}),
		newTracker(t, m, Spec{Kind: KindClosure, Root: "exec-001", Dir: store.Down}),
		// Root that does not exist yet: attaches when it first appears.
		newTracker(t, m, Spec{Kind: KindClosure, Root: "art-010-0", Dir: store.Down}),
		// Root that never appears: must stay empty throughout.
		newTracker(t, m, Spec{Kind: KindClosure, Root: "art-nope", Dir: store.Up}),
		newTracker(t, m, Spec{Kind: KindTriple, Pattern: store.Triple{P: store.PredGenerated}}),
		newTracker(t, m, Spec{Kind: KindTriple, Pattern: store.Triple{S: "exec-002"}}),
		newTracker(t, m, Spec{Kind: KindTriple, Pattern: store.Triple{P: store.PredType, O: "Artifact"}}),
		newTracker(t, m, Spec{Kind: KindConjunctive, Query: "used(E, A), generated(E, B)", Output: []string{"A", "B"}}),
		newTracker(t, m, Spec{Kind: KindConjunctive, Query: "generated(E, A), partOfRun(E, R)", Output: []string{"A", "R"}}),
		// Duplicate of the first conjunctive spec: identical queries share
		// one delta evaluation, and both copies must stay equivalent.
		newTracker(t, m, Spec{Kind: KindConjunctive, Query: "used(E, A), generated(E, B)", Output: []string{"A", "B"}}),
	}

	for step := 0; step < 60; step++ {
		if err := tap.PutRunLog(w.next()); err != nil {
			t.Fatalf("step %d ingest: %v", step, err)
		}
		switch step {
		case 12: // mid-stream registrations see a populated store
			trackers = append(trackers,
				newTracker(t, m, Spec{Kind: KindClosure, Root: "art-005-0", Dir: store.Up}),
				newTracker(t, m, Spec{Kind: KindConjunctive, Query: "generated(E, A), moduleType(E, 'spark')", Output: []string{"A"}}),
				newTracker(t, m, Spec{Kind: KindTriple}), // full wildcard
			)
		case 30: // mid-stream unsubscribe
			last := trackers[len(trackers)-1]
			if !m.Unsubscribe(last.id) {
				t.Fatalf("unsubscribe %s reported missing", last.id)
			}
			if _, ok := m.EventsSince(last.id, 0); ok {
				t.Fatalf("events after unsubscribe should report missing")
			}
			trackers = trackers[:len(trackers)-1]
		}
		for _, tr := range trackers {
			tr.sync(t, m)
			tr.verify(t, st, step)
		}
	}

	// Manager bookkeeping matches.
	infos := m.List()
	if len(infos) != len(trackers) {
		t.Fatalf("List: got %d subs, want %d", len(infos), len(trackers))
	}
	for _, tr := range trackers {
		snap, ok := m.Snapshot(tr.id)
		if !ok {
			t.Fatalf("Snapshot(%s) missing", tr.id)
		}
		if !reflect.DeepEqual(snap.Items, sortedSet(tr.state)) {
			t.Fatalf("Snapshot(%s) disagrees with reconstructed state", tr.id)
		}
	}
}

// --- slow consumers: bounded, gap-marked, never blocking ----------------------

// A stalled consumer costs one replay ring; it resumes via an explicit gap
// event plus a fresh snapshot, while concurrent ingest and a live consumer
// proceed untouched. Run under -race this also exercises the locking.
func TestStandingSlowConsumerBounded(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	const ring = 4
	m := NewManager(st, Options{ReplayRing: ring})
	tap := NewTap(st, m)

	spec := Spec{Kind: KindTriple, Pattern: store.Triple{P: store.PredGenerated}}
	stalled := newTracker(t, m, spec)
	fast := newTracker(t, m, spec)

	writersDone := make(chan struct{})
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for {
			evs, ok := m.EventsSince(fast.id, fast.seq)
			if !ok {
				return
			}
			fast.apply(t, evs)
			ch, ok := m.Changed(fast.id, fast.seq)
			if !ok {
				return
			}
			if ch == nil {
				continue // events already pending
			}
			select {
			case <-ch:
			case <-writersDone:
				if evs, ok := m.EventsSince(fast.id, fast.seq); ok {
					fast.apply(t, evs)
				}
				return
			}
		}
	}()

	var writers sync.WaitGroup
	w := &workload{rng: rand.New(rand.NewSource(11)), selfContained: true}
	logs := make([]*provenance.RunLog, 0, 100)
	for i := 0; i < 100; i++ {
		logs = append(logs, w.next())
	}
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := g; i < len(logs); i += 4 {
				if err := tap.PutRunLog(logs[i]); err != nil {
					t.Errorf("ingest: %v", err)
				}
			}
		}(g)
	}
	writers.Wait()
	close(writersDone)
	consumer.Wait()

	want := requery(t, st, spec)

	// The live consumer converged (possibly via gap+snapshot if it briefly
	// fell behind the tiny ring — either way, exactly the re-query result).
	fast.sync(t, m)
	if got := sortedSet(fast.state); !reflect.DeepEqual(got, want) {
		t.Fatalf("fast consumer diverged:\n got: %v\nwant: %v", got, want)
	}

	// The stalled consumer is bounded: its ring holds at most `ring`
	// events, and resuming from its ancient cursor yields gap + snapshot.
	evs, ok := m.EventsSince(stalled.id, stalled.seq)
	if !ok {
		t.Fatalf("stalled sub vanished")
	}
	if len(evs) != 2 || evs[0].Type != EventGap || evs[1].Type != EventSnapshot {
		t.Fatalf("stalled consumer: want [gap snapshot], got %+v", evs)
	}
	if evs[0].Seq != evs[1].Seq {
		t.Fatalf("gap and snapshot must share a sequence, got %d vs %d", evs[0].Seq, evs[1].Seq)
	}
	stalled.apply(t, evs)
	if got := sortedSet(stalled.state); !reflect.DeepEqual(got, want) {
		t.Fatalf("stalled consumer re-snapshot diverged:\n got: %v\nwant: %v", got, want)
	}
	// Resuming from the snapshot's sequence is lossless: nothing pending.
	if evs, _ := m.EventsSince(stalled.id, stalled.seq); len(evs) != 0 {
		t.Fatalf("post-resnapshot resume should be empty, got %+v", evs)
	}
}

// --- unit coverage ------------------------------------------------------------

func TestStandingSubscribeValidation(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	m := NewManager(st, Options{})
	cases := []Spec{
		{Kind: "nope"},
		{Kind: KindClosure}, // missing root
		{Kind: KindConjunctive},
		{Kind: KindConjunctive, Query: "unknownPred(X)"},
		{Kind: KindConjunctive, Query: "used(E)"},                           // arity
		{Kind: KindConjunctive, Query: "used(E, A)", Output: []string{"Z"}}, // unbound output
		{Kind: KindConjunctive, Query: "used('e1', 'a1')"},                  // no variables
	}
	for _, spec := range cases {
		if _, err := m.Subscribe(spec); err == nil {
			t.Errorf("Subscribe(%+v): want error", spec)
		}
	}
	if infos := m.List(); len(infos) != 0 {
		t.Fatalf("failed subscribes must not register: %+v", infos)
	}
}

func TestStandingChangedWakeup(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	m := NewManager(st, Options{})
	tap := NewTap(st, m)
	tr := newTracker(t, m, Spec{Kind: KindTriple, Pattern: store.Triple{P: store.PredGenerated}})

	ch, ok := m.Changed(tr.id, tr.seq)
	if !ok || ch == nil {
		t.Fatalf("Changed on idle sub: want channel, got ch=%v ok=%v", ch, ok)
	}
	w := &workload{rng: rand.New(rand.NewSource(3))}
	if err := tap.PutRunLog(w.next()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatalf("publish did not close the notify channel")
	}
	// Events pending now: Changed reports them via a nil channel.
	if ch2, ok := m.Changed(tr.id, tr.seq); !ok || ch2 != nil {
		t.Fatalf("Changed with pending events: want nil channel, ok; got %v %v", ch2, ok)
	}
	tr.sync(t, m)
	tr.verify(t, st, 0)

	// Unsubscribe wakes waiters too.
	ch3, _ := m.Changed(tr.id, tr.seq)
	m.Unsubscribe(tr.id)
	select {
	case <-ch3:
	default:
		t.Fatalf("unsubscribe did not close the notify channel")
	}
}
