package standing

import (
	"repro/internal/provenance"
	"repro/internal/store"
)

// Tap sits at the top of a store stack (above the closure cache) and
// feeds every accepted ingest to a Manager, so standing subscriptions are
// maintained on the primary's local write path. Reads delegate untouched.
// Followers don't need a Tap: their ingests arrive through the
// replication applier, whose per-log hook feeds Manager.ApplyDelta
// directly.
type Tap struct {
	s store.Store
	m *Manager
}

var _ store.Store = (*Tap)(nil)
var _ store.Checkpointer = (*Tap)(nil)

// NewTap wraps s. The manager should have been built over the same s (or
// an outer wrapper of it), so its delta BFS sees every committed edge.
func NewTap(s store.Store, m *Manager) *Tap { return &Tap{s: s, m: m} }

// Underlying returns the wrapped store (scan.Unwrap and the replication
// source peel the Tap off through this).
func (t *Tap) Underlying() store.Store { return t.s }

// Manager returns the subscription manager the tap feeds.
func (t *Tap) Manager() *Manager { return t.m }

// PutRunLog implements Store: commit first, then fold the delta into the
// subscriptions. A failed commit reaches no subscription.
func (t *Tap) PutRunLog(l *provenance.RunLog) error {
	if err := t.s.PutRunLog(l); err != nil {
		return err
	}
	t.m.ApplyDelta(l)
	return nil
}

// RunLog implements Store.
func (t *Tap) RunLog(runID string) (*provenance.RunLog, error) { return t.s.RunLog(runID) }

// Runs implements Store.
func (t *Tap) Runs() ([]string, error) { return t.s.Runs() }

// Artifact implements Store.
func (t *Tap) Artifact(id string) (*provenance.Artifact, error) { return t.s.Artifact(id) }

// Execution implements Store.
func (t *Tap) Execution(id string) (*provenance.Execution, error) { return t.s.Execution(id) }

// GeneratorOf implements Store.
func (t *Tap) GeneratorOf(artifactID string) (string, error) { return t.s.GeneratorOf(artifactID) }

// ConsumersOf implements Store.
func (t *Tap) ConsumersOf(artifactID string) ([]string, error) { return t.s.ConsumersOf(artifactID) }

// Used implements Store.
func (t *Tap) Used(execID string) ([]string, error) { return t.s.Used(execID) }

// Generated implements Store.
func (t *Tap) Generated(execID string) ([]string, error) { return t.s.Generated(execID) }

// Expand implements Store.
func (t *Tap) Expand(ids []string, dir store.Direction) (map[string][]string, error) {
	return t.s.Expand(ids, dir)
}

// Closure implements Store.
func (t *Tap) Closure(seed string, dir store.Direction) ([]string, error) {
	return t.s.Closure(seed, dir)
}

// Stats implements Store.
func (t *Tap) Stats() (store.Stats, error) { return t.s.Stats() }

// Name implements Store.
func (t *Tap) Name() string { return t.s.Name() }

// Close implements Store.
func (t *Tap) Close() error { return t.s.Close() }

// Checkpoint forwards to the wrapped store's checkpointer when it has
// one; a memory-backed stack has nothing to checkpoint.
func (t *Tap) Checkpoint() error {
	if ck, ok := t.s.(store.Checkpointer); ok {
		return ck.Checkpoint()
	}
	return nil
}

// tripleMatcher is the triple-pattern face of store.TripleStore; the Tap
// forwards it when the wrapped stack has one, mirroring the closure
// cache.
type tripleMatcher interface {
	Match(subj, pred, obj string) []store.Triple
	MatchBatch(patterns []store.Triple) [][]store.Triple
}

// Match forwards the triple face when present.
func (t *Tap) Match(subj, pred, obj string) []store.Triple {
	if m, ok := t.s.(tripleMatcher); ok {
		return m.Match(subj, pred, obj)
	}
	return nil
}

// MatchBatch forwards the triple face when present.
func (t *Tap) MatchBatch(patterns []store.Triple) [][]store.Triple {
	if m, ok := t.s.(tripleMatcher); ok {
		return m.MatchBatch(patterns)
	}
	return make([][]store.Triple, len(patterns))
}
