// Package triplequery is a SPARQL-style basic-graph-pattern engine over the
// triple store: the Semantic-Web query approach of the systems surveyed in
// §2.2 [46, 26, 22]. Queries have the shape
//
//	SELECT ?exec ?mod WHERE {
//	  ?exec prov:module ?mod .
//	  ?exec prov:used <art-000123> .
//	}
//
// Variables start with '?'; IRIs/IDs may be written bare or in <angle
// brackets>; literals in double quotes. Patterns are joined on shared
// variables; join order is chosen by ascending estimated selectivity.
package triplequery

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/store"
)

// Pattern is one triple pattern; empty Var means the position is bound to
// the fixed value.
type part struct {
	value string
	isVar bool
}

// TriplePattern is subject / predicate / object, each either a variable or
// a constant.
type TriplePattern struct {
	S, P, O part
}

// Query is a parsed SELECT query.
type Query struct {
	Select   []string // projected variable names, in declaration order
	Patterns []TriplePattern
}

// Result holds bindings: one row per solution, columns aligned with Vars.
type Result struct {
	Vars []string
	Rows [][]string
}

// Parse parses a SPARQL-like SELECT query.
func Parse(src string) (*Query, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	i := 0
	expect := func(word string) error {
		if i >= len(toks) || !strings.EqualFold(toks[i], word) {
			return fmt.Errorf("triplequery: expected %q at token %d", word, i)
		}
		i++
		return nil
	}
	if err := expect("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for i < len(toks) && strings.HasPrefix(toks[i], "?") {
		q.Select = append(q.Select, toks[i][1:])
		i++
	}
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("triplequery: SELECT requires at least one variable")
	}
	if err := expect("WHERE"); err != nil {
		return nil, err
	}
	if err := expect("{"); err != nil {
		return nil, err
	}
	for i < len(toks) && toks[i] != "}" {
		var tp TriplePattern
		for j, dst := range []*part{&tp.S, &tp.P, &tp.O} {
			if i >= len(toks) || toks[i] == "}" || toks[i] == "." {
				return nil, fmt.Errorf("triplequery: incomplete triple pattern (position %d)", j)
			}
			*dst = parsePart(toks[i])
			i++
		}
		q.Patterns = append(q.Patterns, tp)
		if i < len(toks) && toks[i] == "." {
			i++
		}
	}
	if err := expect("}"); err != nil {
		return nil, err
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("triplequery: WHERE clause has no patterns")
	}
	// Every selected variable must appear in some pattern.
	bound := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, p := range []part{tp.S, tp.P, tp.O} {
			if p.isVar {
				bound[p.value] = true
			}
		}
	}
	for _, v := range q.Select {
		if !bound[v] {
			return nil, fmt.Errorf("triplequery: selected variable ?%s not used in WHERE", v)
		}
	}
	return q, nil
}

func parsePart(tok string) part {
	switch {
	case strings.HasPrefix(tok, "?"):
		return part{value: tok[1:], isVar: true}
	case strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">"):
		return part{value: tok[1 : len(tok)-1]}
	case strings.HasPrefix(tok, `"`) && strings.HasSuffix(tok, `"`):
		return part{value: tok[1 : len(tok)-1]}
	default:
		return part{value: tok}
	}
}

func tokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '{' || c == '}' || c == '.':
			toks = append(toks, string(c))
			i++
		case c == '<':
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("triplequery: unterminated IRI at %d", i)
			}
			toks = append(toks, src[i:i+end+1])
			i += end + 1
		case c == '"':
			end := strings.IndexByte(src[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("triplequery: unterminated literal at %d", i)
			}
			toks = append(toks, src[i:i+end+2])
			i += end + 2
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r{}", rune(src[j])) &&
				!(src[j] == '.' && (j+1 == len(src) || src[j+1] == ' ' || src[j+1] == '\n' || src[j+1] == '}')) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

// Matcher is the triple-pattern source the engine evaluates against: the
// native *store.TripleStore, or a closurecache.Cache wrapping one, whose
// memoized patterns are patched incrementally on ingest.
type Matcher interface {
	// Match returns triples matching a pattern; empty strings wildcard.
	Match(subj, pred, obj string) []store.Triple
	// MatchBatch resolves many patterns in one store call; result i holds
	// the matches of patterns[i].
	MatchBatch(patterns []store.Triple) [][]store.Triple
}

// Execute evaluates the query against a triple-pattern source.
func Execute(ts Matcher, q *Query) (*Result, error) {
	type bindingRow map[string]string
	rows := []bindingRow{{}}

	// Order patterns by estimated selectivity: fully or partially bound
	// patterns first (fewer matches), joins later.
	patterns := append([]TriplePattern(nil), q.Patterns...)
	score := func(tp TriplePattern) int {
		n := 0
		if tp.S.isVar {
			n++
		}
		if tp.P.isVar {
			n += 2 // unbound predicate scans widest
		}
		if tp.O.isVar {
			n++
		}
		return n
	}
	sort.SliceStable(patterns, func(i, j int) bool { return score(patterns[i]) < score(patterns[j]) })

	for _, tp := range patterns {
		// Resolve the pattern against the whole binding frontier, dedup the
		// resulting index probes, and answer them with one batched store
		// call instead of one Match (and one lock round-trip) per row.
		probeIdx := map[store.Triple]int{}
		var probes []store.Triple
		resolved := make([]store.Triple, len(rows))
		for ri, b := range rows {
			k := store.Triple{S: resolve(tp.S, b), P: resolve(tp.P, b), O: resolve(tp.O, b)}
			resolved[ri] = k
			if _, ok := probeIdx[k]; !ok {
				probeIdx[k] = len(probes)
				probes = append(probes, k)
			}
		}
		matches := ts.MatchBatch(probes)
		var next []bindingRow
		for ri, b := range rows {
			for _, t := range matches[probeIdx[resolved[ri]]] {
				nb := extend(b, tp, t.S, t.P, t.O)
				if nb != nil {
					next = append(next, nb)
				}
			}
		}
		rows = next
		if len(rows) == 0 {
			break
		}
	}

	res := &Result{Vars: q.Select}
	seen := map[string]bool{}
	for _, b := range rows {
		row := make([]string, len(q.Select))
		for i, v := range q.Select {
			row[i] = b[v]
		}
		key := strings.Join(row, "\x00")
		if !seen[key] {
			seen[key] = true
			res.Rows = append(res.Rows, row)
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return strings.Join(res.Rows[i], "\x00") < strings.Join(res.Rows[j], "\x00")
	})
	return res, nil
}

func resolve(p part, b map[string]string) string {
	if !p.isVar {
		return p.value
	}
	return b[p.value] // "" (wildcard) when unbound
}

func extend(b map[string]string, tp TriplePattern, s, p, o string) map[string]string {
	nb := make(map[string]string, len(b)+3)
	for k, v := range b {
		nb[k] = v
	}
	for _, pair := range []struct {
		part part
		got  string
	}{{tp.S, s}, {tp.P, p}, {tp.O, o}} {
		if !pair.part.isVar {
			continue
		}
		if have, ok := nb[pair.part.value]; ok {
			if have != pair.got {
				return nil
			}
			continue
		}
		nb[pair.part.value] = pair.got
	}
	return nb
}

// Run parses and executes in one step.
func Run(ts Matcher, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Execute(ts, q)
}
