// Package pql implements PQL, a small SQL-style provenance query language
// in the spirit of the relational approaches §2.2 surveys ([3] stores and
// queries e-science provenance through SQL). Two extensions make the
// awkward recursive queries the paper complains about first-class:
//
//	SELECT * FROM executions WHERE moduleType = 'Contour'
//	SELECT id, type FROM artifacts WHERE run = 'run-000001' ORDER BY id
//	LINEAGE OF 'art-000123'
//	DEPENDENTS OF 'art-000042'
//
// Queries run against any provenance store backend.
package pql

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokSymbol // = != < > <= >= ( ) , *
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes a PQL query.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		case c == '!' || c == '<' || c == '>':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			text := l.src[start:l.pos]
			if text == "!" {
				return nil, fmt.Errorf("pql: stray '!' at %d", start)
			}
			l.toks = append(l.toks, token{tokSymbol, text, start})
		case c == '=' || c == '(' || c == ')' || c == ',' || c == '*':
			l.toks = append(l.toks, token{tokSymbol, string(c), l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("pql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-'
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped ''
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{tokString, b.String(), start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("pql: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
}
