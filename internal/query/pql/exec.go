package pql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/provenance"
	"repro/internal/store"
)

// Result is a query result table.
type Result struct {
	Columns []string
	Rows    [][]string
}

// String renders the result as aligned text.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, v := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// tableSchemas defines the virtual relational view of a provenance store.
var tableSchemas = map[string][]string{
	"runs":        {"id", "workflow", "hash", "agent", "status"},
	"executions":  {"id", "run", "module", "moduleType", "status", "wallNanos"},
	"artifacts":   {"id", "run", "type", "contentHash", "size"},
	"uses":        {"exec", "artifact", "port"},
	"gens":        {"exec", "artifact", "port"},
	"annotations": {"subject", "key", "value", "author"},
}

// Tables lists the queryable virtual tables, sorted.
func Tables() []string {
	out := make([]string, 0, len(tableSchemas))
	for t := range tableSchemas {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Run parses and executes a PQL query against a store.
func Run(s store.Store, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Execute(s, q)
}

// Execute evaluates a parsed query on the streaming executor (stream.go):
// relalg iterators with selection pushdown and sharded parallel leaf
// scans. ExecuteEager keeps the original materializing evaluator as the
// conformance reference.
func Execute(s store.Store, q *Query) (*Result, error) {
	return executeWith(s, q, nil)
}

// ExecuteEager evaluates a parsed query on the original eager path:
// whole-table scans into row maps, then join/filter/project over
// materialized intermediates. It is retained as the conformance reference
// the streaming executor is tested and benchmarked against. Divergences
// from Execute: ORDER BY here requires the sort column to be selected, and
// unknown-column errors in WHERE surface per-row (so a short-circuited or
// row-free evaluation may not report them) instead of at compile time.
func ExecuteEager(s store.Store, q *Query) (*Result, error) {
	switch {
	case q.LineageOf != "":
		// Pushed-down closure: the backend answers the whole traversal in
		// O(hops) batch calls.
		ids, err := s.Closure(q.LineageOf, store.Up)
		if err != nil {
			return nil, err
		}
		return closureResult(s, ids)
	case q.DependsOf != "":
		ids, err := s.Closure(q.DependsOf, store.Down)
		if err != nil {
			return nil, err
		}
		return closureResult(s, ids)
	case q.Select != nil:
		return execSelect(s, q.Select)
	}
	return nil, fmt.Errorf("pql: empty query")
}

func closureResult(s store.Store, ids []string) (*Result, error) {
	res := &Result{Columns: []string{"id", "kind", "detail"}}
	for _, id := range ids {
		if a, err := s.Artifact(id); err == nil {
			res.Rows = append(res.Rows, []string{id, "artifact", a.Type})
			continue
		}
		if e, err := s.Execution(id); err == nil {
			res.Rows = append(res.Rows, []string{id, "execution", e.ModuleID})
			continue
		}
		res.Rows = append(res.Rows, []string{id, "unknown", ""})
	}
	return res, nil
}

func execSelect(s store.Store, sel *SelectStmt) (*Result, error) {
	schema, ok := tableSchemas[sel.Table]
	if !ok {
		return nil, fmt.Errorf("pql: unknown table %q (have %s)", sel.Table, strings.Join(Tables(), ", "))
	}
	rows, err := scanTable(s, sel.Table, schema)
	if err != nil {
		return nil, err
	}
	addressable := append([]string(nil), schema...)

	if sel.Join != nil {
		rschema, ok := tableSchemas[sel.Join.Table]
		if !ok {
			return nil, fmt.Errorf("pql: unknown JOIN table %q", sel.Join.Table)
		}
		rrows, err := scanTable(s, sel.Join.Table, rschema)
		if err != nil {
			return nil, err
		}
		rows, addressable, err = equijoin(sel, schema, rows, rschema, rrows)
		if err != nil {
			return nil, err
		}
	}

	if sel.Count {
		n := 0
		for _, row := range rows {
			if sel.Where != nil {
				ok, err := sel.Where.eval(row)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			n++
		}
		return &Result{Columns: []string{"count"}, Rows: [][]string{{strconv.Itoa(n)}}}, nil
	}

	cols := sel.Columns
	if cols == nil {
		cols = addressable
	}
	colIdx := map[string]bool{}
	for _, c := range addressable {
		colIdx[c] = true
	}
	for _, c := range cols {
		if !colIdx[c] {
			return nil, fmt.Errorf("pql: no column %q (have %s)", c, strings.Join(addressable, ", "))
		}
	}

	res := &Result{Columns: cols}
	for _, row := range rows {
		if sel.Where != nil {
			ok, err := sel.Where.eval(row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = row[c]
		}
		res.Rows = append(res.Rows, out)
	}
	if sel.OrderBy != "" {
		if !colIdx[sel.OrderBy] {
			return nil, fmt.Errorf("pql: ORDER BY column %q not in table %s", sel.OrderBy, sel.Table)
		}
		// Order on the full row map is gone; re-scan the order column from
		// the projected result when present, else sort by recomputing.
		oi := -1
		for i, c := range cols {
			if c == sel.OrderBy {
				oi = i
			}
		}
		if oi < 0 {
			return nil, fmt.Errorf("pql: ORDER BY column %q must be selected", sel.OrderBy)
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			less := compareLiteral(res.Rows[i][oi], res.Rows[j][oi]) < 0
			if sel.Desc {
				return !less
			}
			return less
		})
	}
	if sel.Limit > 0 && len(res.Rows) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	return res, nil
}

// equijoin hash-joins the scanned rows of two tables on the ON columns.
// The joined rows carry qualified keys ("table.col") for every column plus
// bare keys where unambiguous; the addressable column list follows the
// same rule.
func equijoin(sel *SelectStmt, lschema []string, lrows []map[string]string,
	rschema []string, rrows []map[string]string) ([]map[string]string, []string, error) {

	lcount := map[string]int{}
	for _, c := range lschema {
		lcount[c]++
	}
	ambiguous := map[string]bool{}
	for _, c := range rschema {
		if lcount[c] > 0 {
			ambiguous[c] = true
		}
	}
	resolve := func(ref string) (table, col string, err error) {
		if i := strings.IndexByte(ref, '.'); i > 0 {
			table, col = strings.ToLower(ref[:i]), ref[i+1:]
			if table != sel.Table && table != sel.Join.Table {
				return "", "", fmt.Errorf("pql: ON references unknown table %q", table)
			}
			return table, col, nil
		}
		inL := lcount[ref] > 0
		inR := false
		for _, c := range rschema {
			if c == ref {
				inR = true
			}
		}
		switch {
		case inL && inR:
			return "", "", fmt.Errorf("pql: ON column %q is ambiguous; qualify it", ref)
		case inL:
			return sel.Table, ref, nil
		case inR:
			return sel.Join.Table, ref, nil
		}
		return "", "", fmt.Errorf("pql: ON column %q not found", ref)
	}
	lt, lc, err := resolve(sel.Join.Left)
	if err != nil {
		return nil, nil, err
	}
	rt, rc, err := resolve(sel.Join.Right)
	if err != nil {
		return nil, nil, err
	}
	if lt == rt {
		return nil, nil, fmt.Errorf("pql: ON must reference both tables")
	}
	if lt != sel.Table {
		lc, rc = rc, lc // normalize: lc belongs to the FROM table
	}

	index := map[string][]map[string]string{}
	for _, row := range rrows {
		index[row[rc]] = append(index[row[rc]], row)
	}
	var out []map[string]string
	for _, lrow := range lrows {
		for _, rrow := range index[lrow[lc]] {
			merged := make(map[string]string, len(lschema)+len(rschema))
			for _, c := range lschema {
				merged[sel.Table+"."+c] = lrow[c]
				if !ambiguous[c] {
					merged[c] = lrow[c]
				}
			}
			for _, c := range rschema {
				merged[sel.Join.Table+"."+c] = rrow[c]
				if !ambiguous[c] {
					merged[c] = rrow[c]
				}
			}
			out = append(out, merged)
		}
	}
	var addressable []string
	for _, c := range lschema {
		if !ambiguous[c] {
			addressable = append(addressable, c)
		}
		addressable = append(addressable, sel.Table+"."+c)
	}
	for _, c := range rschema {
		if !ambiguous[c] {
			addressable = append(addressable, c)
		}
		addressable = append(addressable, sel.Join.Table+"."+c)
	}
	return out, addressable, nil
}

// scanTable materializes the virtual table rows from the store's run logs.
func scanTable(s store.Store, table string, schema []string) ([]map[string]string, error) {
	runs, err := s.Runs()
	if err != nil {
		return nil, err
	}
	var rows []map[string]string
	add := func(vals ...string) {
		row := make(map[string]string, len(schema))
		for i, c := range schema {
			row[c] = vals[i]
		}
		rows = append(rows, row)
	}
	for _, runID := range runs {
		l, err := s.RunLog(runID)
		if err != nil {
			return nil, err
		}
		switch table {
		case "runs":
			add(l.Run.ID, l.Run.WorkflowID, l.Run.WorkflowHash, l.Run.Agent, string(l.Run.Status))
		case "executions":
			for _, e := range l.Executions {
				add(e.ID, e.RunID, e.ModuleID, e.ModuleType, string(e.Status), strconv.FormatInt(e.WallNanos, 10))
			}
		case "artifacts":
			for _, a := range l.Artifacts {
				add(a.ID, a.RunID, a.Type, a.ContentHash, strconv.FormatInt(a.Size, 10))
			}
		case "uses":
			for _, ev := range l.Events {
				if ev.Kind == provenance.EventArtifactUsed {
					add(ev.ExecutionID, ev.ArtifactID, ev.Port)
				}
			}
		case "gens":
			for _, ev := range l.Events {
				if ev.Kind == provenance.EventArtifactGen {
					add(ev.ExecutionID, ev.ArtifactID, ev.Port)
				}
			}
		case "annotations":
			for _, an := range l.Annotations {
				add(an.Subject, an.Key, an.Value, an.Author)
			}
		}
	}
	return rows, nil
}

func (e *cmpExpr) eval(row map[string]string) (bool, error) {
	have, ok := row[e.col]
	if !ok {
		return false, fmt.Errorf("pql: unknown column %q in predicate", e.col)
	}
	switch e.op {
	case "=":
		return compareLiteral(have, e.val) == 0, nil
	case "!=":
		return compareLiteral(have, e.val) != 0, nil
	case "<":
		return compareLiteral(have, e.val) < 0, nil
	case ">":
		return compareLiteral(have, e.val) > 0, nil
	case "<=":
		return compareLiteral(have, e.val) <= 0, nil
	case ">=":
		return compareLiteral(have, e.val) >= 0, nil
	case "like":
		return matchLike(have, e.val), nil
	}
	return false, fmt.Errorf("pql: unknown operator %q", e.op)
}

func (e *binExpr) eval(row map[string]string) (bool, error) {
	l, err := e.l.eval(row)
	if err != nil {
		return false, err
	}
	if e.op == "and" && !l {
		return false, nil
	}
	if e.op == "or" && l {
		return true, nil
	}
	return e.r.eval(row)
}

// compareLiteral compares numerically when both sides parse as numbers,
// lexicographically otherwise.
func compareLiteral(a, b string) int {
	fa, ea := strconv.ParseFloat(a, 64)
	fb, eb := strconv.ParseFloat(b, 64)
	if ea == nil && eb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
	return strings.Compare(a, b)
}

// matchLike implements SQL LIKE with '%' wildcards (no '_' support).
func matchLike(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	middle := parts[1 : len(parts)-1]
	for _, m := range middle {
		if m == "" {
			continue
		}
		i := strings.Index(s, m)
		if i < 0 {
			return false
		}
		s = s[i+len(m):]
	}
	return strings.HasSuffix(s, last)
}
